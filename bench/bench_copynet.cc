// Reproduces the §II neural-generation claims (E2): a >300k-sample distant
// supervision dataset built from bracket relations (scaled down here), and
// the CopyNet-vs-plain-seq2seq OOV ablation that motivates the copy
// mechanism.
#include <cstdio>

#include "bench/bench_common.h"
#include "generation/neural_generation.h"
#include "generation/separation.h"
#include "text/ngram.h"
#include "util/timer.h"

namespace cnpb {
namespace {

void Run() {
  bench::PrintHeader("§II in-text", "neural generation (CopyNet) + ablation");
  auto world = bench::MakeBenchWorld(bench::BenchScale());
  const eval::Oracle oracle = world->Oracle();

  text::NgramCounter ngrams;
  for (const auto& sentence : world->corpus_words) ngrams.AddSentence(sentence);
  generation::BracketExtractor extractor(world->segmenter.get(), &ngrams);
  const auto prior = extractor.Extract(world->output->dump);
  std::printf("distant-supervision prior (bracket isA): %zu relations\n",
              prior.size());

  for (const bool use_copy : {true, false}) {
    generation::NeuralGeneration::Config config;
    config.epochs = 3;
    config.max_train_samples = 3000;
    config.model.use_copy = use_copy;
    generation::NeuralGeneration neural(config);
    const size_t samples =
        neural.BuildDataset(world->output->dump, prior, *world->segmenter);
    util::WallTimer timer;
    const auto stats = neural.Train();
    const double train_seconds = timer.ElapsedSeconds();

    std::printf("\n-- %s --\n",
                use_copy ? "CopyNet (with copy mechanism)"
                         : "plain attentional seq2seq (no copy)");
    std::printf("dataset:        %zu samples (paper: >300,000)\n", samples);
    std::printf("vocabulary:     input %zu / output %zu; %zu OOV targets\n",
                stats.input_vocab_size, stats.output_vocab_size,
                stats.num_oov_targets);
    std::printf("training:       %.1fs;  loss per epoch:", train_seconds);
    for (float loss : stats.epoch_loss) std::printf(" %.3f", loss);
    std::printf("\n");
    std::printf("held-out accuracy (all):  %.1f%%\n",
                100.0 * neural.EvalAccuracy(SIZE_MAX, /*oov_only=*/false));
    std::printf("held-out accuracy (OOV):  %.1f%%\n",
                100.0 * neural.EvalAccuracy(SIZE_MAX, /*oov_only=*/true));

    timer.Restart();
    const auto candidates =
        neural.ExtractAll(world->output->dump, *world->segmenter);
    const auto precision = eval::CandidatePrecision(candidates, oracle);
    std::printf("extraction:     %zu abstract-source isA @ %.1f%% "
                "(%.0f abstracts/s)\n",
                candidates.size(), 100.0 * precision.precision(),
                candidates.size() / timer.ElapsedSeconds());
  }

  std::printf("\nshape check: the copy model reaches OOV hypernyms the plain "
              "seq2seq cannot\n(the paper's stated reason for CopyNet).\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
