// Reproduces the §IV-B QA-coverage experiment (E5): coverage of an
// NLPCC-2016-sized question set (23,472 questions) and the average number
// of concepts per covered entity (paper: 91.68% / 2.14).
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/coverage.h"
#include "synth/qa_gen.h"
#include "util/timer.h"

namespace cnpb {
namespace {

void Run() {
  bench::PrintHeader("§IV-B", "coverage on the QA task");
  auto world = bench::MakeBenchWorld(bench::BenchScale());

  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      bench::DefaultBuilderConfig(), &report);

  synth::QaGenerator::Config qc;
  qc.num_questions = 23472;  // NLPCC 2016 QA size
  const auto questions = synth::QaGenerator::Generate(*world->world, qc);
  std::vector<std::string> texts;
  texts.reserve(questions.size());
  size_t gold_in_kb = 0;
  for (const auto& q : questions) {
    texts.push_back(q.text);
    if (q.mentions_kb) ++gold_in_kb;
  }

  util::WallTimer timer;
  const auto coverage = eval::QaCoverage(taxonomy, world->output->dump, texts);
  const double seconds = timer.ElapsedSeconds();

  std::printf("\nquestions:                 %zu (same size as NLPCC 2016 QA)\n",
              coverage.total_questions);
  std::printf("covered:                   %zu (%.2f%%)   [paper: 21,520 = "
              "91.68%%]\n",
              coverage.covered_questions, 100.0 * coverage.coverage());
  std::printf("covered via entity match:  %zu\n", coverage.covered_with_entity);
  std::printf("concepts / covered entity: %.2f          [paper: 2.14]\n",
              coverage.avg_concepts_per_entity());
  std::printf("generator-side ceiling:    %.2f%% of questions mention the "
              "world at all\n",
              100.0 * gold_in_kb / questions.size());
  std::printf("matching throughput:       %.0f questions/s\n",
              coverage.total_questions / seconds);
  std::printf("\nshape check: coverage lands near (but below) the in-world "
              "ceiling, with >2\nconcepts per covered entity — the "
              "multi-source taxonomy gives entities several\nhypernyms, which "
              "is what the paper credits for text understanding.\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
