// Reproduces the §II predicate-discovery result (E3): aligning SPO triples
// with the bracket prior discovers candidate isA-bearing predicates (paper:
// 341 candidates, 12 kept after purification).
#include <cstdio>

#include "bench/bench_common.h"
#include "generation/predicate_discovery.h"
#include "generation/separation.h"
#include "text/ngram.h"

namespace cnpb {
namespace {

void Run() {
  bench::PrintHeader("§II in-text", "predicate discovery over the infobox");
  auto world = bench::MakeBenchWorld(bench::BenchScale());

  text::NgramCounter ngrams;
  for (const auto& sentence : world->corpus_words) ngrams.AddSentence(sentence);
  generation::BracketExtractor extractor(world->segmenter.get(), &ngrams);
  const auto prior = extractor.Extract(world->output->dump);

  generation::PredicateDiscovery discovery({});
  const auto result = discovery.Discover(world->output->dump, prior);

  std::printf("\ncandidate predicates (aligned with the bracket prior): %zu "
              "(paper: 341)\n",
              result.candidates.size());
  std::printf("selected after purification: %zu (paper: 12)\n\n",
              result.selected.size());
  std::printf("%-12s %10s %10s %10s\n", "predicate", "triples", "aligned",
              "precision");
  for (const auto& stats : result.candidates) {
    const bool selected =
        std::find(result.selected.begin(), result.selected.end(),
                  stats.predicate) != result.selected.end();
    std::printf("%-12s %10zu %10zu %9.1f%% %s\n", stats.predicate.c_str(),
                stats.total, stats.aligned, 100.0 * stats.precision(),
                selected ? "<- selected" : "");
  }

  const auto candidates = generation::PredicateDiscovery::Extract(
      world->output->dump, result.selected);
  const auto precision = eval::CandidatePrecision(candidates, world->Oracle());
  std::printf("\ninfobox-source isA from selected predicates: %zu @ %.1f%%\n",
              candidates.size(), 100.0 * precision.precision());
  std::printf("shape check: occupation-style predicates (职业/类型/分类/...) "
              "rank top by alignment\nprecision; reference predicates "
              "(出生地/导演/品牌) never align.\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
