// Reproduces Table II: the three deployed APIs (men2ent / getConcept /
// getEntity) and their call mix. The paper reports six months of Aliyun
// traffic (82M calls); we replay a scaled-down workload with the same mix
// (men2ent-heavy: mention disambiguation is the entry point of most text-
// understanding clients, then getEntity for concept expansion).
//
// Default mode replays in-process against the ApiService. `--live` replays
// the same mix as HTTP requests against a real loopback HttpServer instead
// — the deployed shape of Table II — with `--live-calls N` (default
// 40,000) controlling the scaled call count. `--batch K` (implies --live)
// groups the same mix into the /v1/*_batch endpoints at K items per
// request: the logical call counts and the mix stay identical, only the
// wire framing changes, which is exactly the amortization the batch APIs
// sell.
//
// `--reasoning` replaces the replay with the reasoning tier's mixed
// workload (DESIGN.md §14): 40% bounded isA closure at depth <= 4, 20%
// LCA, 20% similar-entity, 20% concept expansion, in-process through
// ReasonService, against a single-hop getConcept baseline measured on the
// same taxonomy. Acceptance (exit 1 on violation): isA closure p99 stays
// under 10x the single-hop getConcept p99. `--reasoning-calls N` (default
// 20,000) sizes both loops.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "reason/engine.h"
#include "reason/service.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "util/histogram.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cnpb {
namespace {

constexpr double kPMen2Ent = 43'896'044.0 / 83'504'492.0;
constexpr double kPGetConcept = 13'815'076.0 / 83'504'492.0;

struct QueryUniverse {
  std::vector<std::string> mentions;
  std::vector<std::string> entity_names;
  std::vector<std::string> concept_names;
};

QueryUniverse MakeUniverse(const bench::BenchWorld& world,
                           const taxonomy::Taxonomy& taxonomy) {
  QueryUniverse universe;
  for (const auto& page : world.output->dump.pages()) {
    if (taxonomy.Find(page.name) == taxonomy::kInvalidNode) continue;
    universe.mentions.push_back(page.mention);
    universe.entity_names.push_back(page.name);
  }
  for (taxonomy::NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    if (taxonomy.Kind(id) == taxonomy::NodeKind::kConcept) {
      universe.concept_names.push_back(taxonomy.Name(id));
    }
  }
  return universe;
}

void PrintUsageTable(const taxonomy::ApiService& api, double seconds,
                     size_t total_calls, size_t hits) {
  const auto& usage = api.usage();
  std::printf("\n%-12s %-28s %-22s %14s\n", "API name", "Given", "Return",
              "Count");
  std::printf("%-12s %-28s %-22s %14s\n", "men2ent", "mention", "entity",
              util::CommaSeparated(usage.men2ent_calls).c_str());
  std::printf("%-12s %-28s %-22s %14s\n", "getConcept", "entity",
              "hypernym list",
              util::CommaSeparated(usage.get_concept_calls).c_str());
  std::printf("%-12s %-28s %-22s %14s\n", "getEntity", "concept",
              "hyponym list",
              util::CommaSeparated(usage.get_entity_calls).c_str());
  std::printf("\ntotal %s calls in %.2fs (%.0f calls/s), %.1f%% non-empty\n",
              util::CommaSeparated(usage.total()).c_str(), seconds,
              usage.total() / seconds, 100.0 * hits / total_calls);
  std::printf("\npaper reference (Mar-Sep 2018 on Aliyun):\n");
  std::printf("  men2ent    43,896,044\n  getConcept 13,815,076\n"
              "  getEntity  25,793,372\n");
  std::printf("shape check: men2ent > getEntity > getConcept mix is "
              "preserved at scale.\n");
}

void RunInProcess(taxonomy::ApiService* api, const QueryUniverse& universe) {
  const size_t total_calls = 834'000;  // 1:100 scale of the paper's traffic
  util::Rng rng(2018);
  util::ZipfSampler mention_zipf(universe.mentions.size(), 1.0);
  util::ZipfSampler entity_zipf(universe.entity_names.size(), 1.0);
  util::ZipfSampler concept_zipf(universe.concept_names.size(), 1.0);

  util::WallTimer timer;
  size_t hits = 0;
  for (size_t i = 0; i < total_calls; ++i) {
    const double u = rng.UniformDouble();
    if (u < kPMen2Ent) {
      hits += api->Men2Ent(universe.mentions[mention_zipf.Sample(rng)])
                      .empty()
                  ? 0
                  : 1;
    } else if (u < kPMen2Ent + kPGetConcept) {
      hits += api->GetConcept(
                      universe.entity_names[entity_zipf.Sample(rng)])
                      .empty()
                  ? 0
                  : 1;
    } else {
      hits += api->GetEntity(
                      universe.concept_names[concept_zipf.Sample(rng)])
                      .empty()
                  ? 0
                  : 1;
    }
  }
  PrintUsageTable(*api, timer.ElapsedSeconds(), total_calls, hits);
}

// Empty answer lists render as ":[]" — in a single-shot body there is at
// most one, in a batch body one per unanswered item.
size_t CountEmptyLists(const std::string& body) {
  size_t count = 0;
  for (size_t at = body.find(":[]"); at != std::string::npos;
       at = body.find(":[]", at + 3)) {
    ++count;
  }
  return count;
}

// --live: the same mix over the wire against a loopback HttpServer, split
// across 4 keep-alive connections. "Non-empty" here means HTTP 200 with a
// non-empty answer list (an unknown mention is a 404 by the wire contract).
// With `batch` > 1, calls are grouped into the batch endpoints at `batch`
// items per request, resolved against one pinned snapshot per request.
void RunLive(taxonomy::ApiService* api, const QueryUniverse& universe,
             size_t total_calls, size_t batch) {
  util::IgnoreSigpipe();
  server::ApiEndpoints endpoints(api);
  server::HttpServer::Config config;
  config.num_threads = 2;
  server::HttpServer httpd(config, endpoints.AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\n--live: replaying over HTTP on 127.0.0.1:%u%s\n",
              unsigned{httpd.port()},
              batch > 1 ? " (batched)" : "");

  constexpr int kConnections = 4;
  std::atomic<size_t> hits{0};
  std::atomic<size_t> sent{0};
  util::WallTimer timer;
  std::vector<std::thread> drivers;
  for (int c = 0; c < kConnections; ++c) {
    drivers.emplace_back([&, c] {
      util::Rng rng(2018 + static_cast<uint64_t>(c));
      util::ZipfSampler mention_zipf(universe.mentions.size(), 1.0);
      util::ZipfSampler entity_zipf(universe.entity_names.size(), 1.0);
      util::ZipfSampler concept_zipf(universe.concept_names.size(), 1.0);
      server::HttpClient client;
      const size_t share = total_calls / kConnections;
      for (size_t i = 0; i < share;) {
        if (!client.connected() &&
            !client.Connect("127.0.0.1", httpd.port()).ok()) {
          ++i;
          continue;
        }
        // Pick the endpoint by the Table II mix, then frame either one
        // call (GET) or `batch` calls (POST, one term per line).
        const double u = rng.UniformDouble();
        const char* endpoint;
        const std::vector<std::string>* names;
        util::ZipfSampler* zipf;
        if (u < kPMen2Ent) {
          endpoint = "men2ent";
          names = &universe.mentions;
          zipf = &mention_zipf;
        } else if (u < kPMen2Ent + kPGetConcept) {
          endpoint = "getConcept";
          names = &universe.entity_names;
          zipf = &entity_zipf;
        } else {
          endpoint = "getEntity";
          names = &universe.concept_names;
          zipf = &concept_zipf;
        }
        if (batch > 1) {
          const size_t items = std::min(batch, share - i);
          std::string body;
          for (size_t k = 0; k < items; ++k) {
            body += (*names)[zipf->Sample(rng)];
            body += '\n';
          }
          auto response =
              client.Post("/v1/" + std::string(endpoint) + "_batch", body);
          i += items;
          if (!response.ok()) continue;
          sent += items;
          if (response->status == 200) {
            hits += items - std::min(items, CountEmptyLists(response->body));
          }
        } else {
          const char* param = u < kPMen2Ent ? "mention"
                              : u < kPMen2Ent + kPGetConcept ? "entity"
                                                             : "concept";
          const std::string target =
              "/v1/" + std::string(endpoint) + "?" + param + "=" +
              server::PercentEncode((*names)[zipf->Sample(rng)]);
          auto response = client.Get(target);
          ++i;
          if (!response.ok()) continue;
          ++sent;
          if (response->status == 200 &&
              response->body.find(":[]") == std::string::npos) {
            ++hits;
          }
        }
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  const double seconds = timer.ElapsedSeconds();
  PrintUsageTable(*api, seconds, sent.load(), hits.load());
  httpd.Stop();
  httpd.Wait();
  const auto stats = httpd.stats();
  std::printf("wire: %llu requests over %llu connections, "
              "%llu parse errors\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.parse_errors));
}

// --reasoning: the mixed reasoning workload against the same built
// taxonomy, in-process. The baseline is single-hop getConcept — the Table
// II call the isA closure generalises — timed per call on the same
// ApiService; the mixed loop then drives ReasonService so admission and
// snapshot pinning sit on the measured path, exactly as they do behind
// /v1/isa. Returns false when the isA closure p99 breaches 10x the
// single-hop p99.
bool RunReasoning(taxonomy::ApiService* api, const QueryUniverse& universe,
                  size_t calls) {
  constexpr size_t kIsaDepth = 4;
  constexpr size_t kTopK = 10;
  std::printf("\n--reasoning: %zu-call mixed workload "
              "(40%% isa@depth<=%zu, 20%% lca, 20%% similar, 20%% expand)\n",
              calls, kIsaDepth);
  if (universe.entity_names.empty() || universe.concept_names.empty()) {
    std::fprintf(stderr, "universe too small for the reasoning mix\n");
    return false;
  }

  // Precomputed isA pairs: half pair an entity with one of its own
  // ancestors (positives across the depth range), half with a Zipf-sampled
  // concept — mostly negatives, the closure's worst case, since the whole
  // depth-bounded cone is exhausted before answering false.
  const auto view = api->CurrentView();
  util::Rng rng(4242);
  util::ZipfSampler entity_zipf(universe.entity_names.size(), 1.0);
  util::ZipfSampler concept_zipf(universe.concept_names.size(), 1.0);
  struct IsaPair {
    const std::string* entity;
    std::string concept_name;
  };
  std::vector<IsaPair> pairs;
  size_t positives = 0;
  const size_t pair_target = std::min<size_t>(4096, std::max<size_t>(calls, 2));
  for (size_t attempt = 0;
       pairs.size() < pair_target && attempt < pair_target * 4; ++attempt) {
    const std::string& entity =
        universe.entity_names[entity_zipf.Sample(rng)];
    if (pairs.size() % 2 == 0) {
      const taxonomy::NodeId id = view->Find(entity);
      if (id == taxonomy::kInvalidNode) continue;
      const auto ancestors = reason::Ancestors(*view, id, kIsaDepth, 32);
      if (ancestors.empty()) continue;
      const auto& pick = ancestors[rng.Uniform(ancestors.size())];
      pairs.push_back({&entity, std::string(view->Name(pick.node))});
      ++positives;
    } else {
      pairs.push_back(
          {&entity, universe.concept_names[concept_zipf.Sample(rng)]});
    }
  }
  if (pairs.empty()) {
    std::fprintf(stderr, "no entity has an ancestor within depth %zu\n",
                 kIsaDepth);
    return false;
  }
  std::printf("isa pairs: %zu prepared (%zu with a known ancestor)\n",
              pairs.size(), positives);

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto micros = [](std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
    return std::chrono::duration<double, std::micro>(end - start).count();
  };

  // Baseline: the single-hop lookup the closure generalises, same Zipf
  // skew, same admission path.
  util::Histogram base_us;
  size_t base_hits = 0;
  for (size_t i = 0; i < calls; ++i) {
    const std::string& entity =
        universe.entity_names[entity_zipf.Sample(rng)];
    const auto start = now();
    base_hits += api->GetConcept(entity).empty() ? 0 : 1;
    base_us.Add(micros(start, now()));
  }

  reason::ReasonService reasoning(api);
  util::Histogram isa_us, lca_us, similar_us, expand_us;
  size_t isa_true = 0;
  size_t lca_found = 0;
  size_t ranked_nonempty = 0;
  size_t errors = 0;
  size_t pair_at = 0;
  for (size_t i = 0; i < calls; ++i) {
    const double u = rng.UniformDouble();
    if (u < 0.4) {
      const IsaPair& pair = pairs[pair_at++ % pairs.size()];
      const auto start = now();
      const auto result =
          reasoning.TryIsa(*pair.entity, pair.concept_name, kIsaDepth);
      isa_us.Add(micros(start, now()));
      if (!result.ok()) {
        ++errors;
      } else if (result->isa) {
        ++isa_true;
      }
    } else if (u < 0.6) {
      const std::string& a = universe.entity_names[entity_zipf.Sample(rng)];
      const std::string& b = universe.entity_names[entity_zipf.Sample(rng)];
      const auto start = now();
      const auto result = reasoning.TryLca(a, b, 2 * kIsaDepth);
      lca_us.Add(micros(start, now()));
      if (!result.ok()) {
        ++errors;
      } else if (result->found) {
        ++lca_found;
      }
    } else if (u < 0.8) {
      const std::string& entity =
          universe.entity_names[entity_zipf.Sample(rng)];
      const auto start = now();
      const auto result = reasoning.TrySimilar(entity, kTopK);
      similar_us.Add(micros(start, now()));
      if (!result.ok()) {
        ++errors;
      } else if (!result->results.empty()) {
        ++ranked_nonempty;
      }
    } else {
      const std::string& concept_name =
          universe.concept_names[concept_zipf.Sample(rng)];
      const auto start = now();
      const auto result = reasoning.TryExpand(concept_name, kTopK);
      expand_us.Add(micros(start, now()));
      if (!result.ok()) {
        ++errors;
      } else if (!result->results.empty()) {
        ++ranked_nonempty;
      }
    }
  }

  const auto row = [](const char* op, const util::Histogram& h,
                      const std::string& note) {
    std::printf("%-12s %10zu %12.2f %12.2f   %s\n", op, h.count(),
                h.count() ? h.Percentile(50) : 0.0,
                h.count() ? h.Percentile(99) : 0.0, note.c_str());
  };
  std::printf("\n%-12s %10s %12s %12s\n", "op", "calls", "p50 (us)",
              "p99 (us)");
  row("getConcept", base_us,
      std::to_string(base_hits) + " non-empty (single-hop baseline)");
  row("isa", isa_us, std::to_string(isa_true) + " reachable");
  row("lca", lca_us, std::to_string(lca_found) + " found");
  row("similar", similar_us, "");
  row("expand", expand_us, "");
  const auto& usage = reasoning.usage();
  std::printf("reason usage: isa %llu, lca %llu, similar %llu, expand %llu"
              " (%zu errors)\n",
              static_cast<unsigned long long>(usage.isa_calls),
              static_cast<unsigned long long>(usage.lca_calls),
              static_cast<unsigned long long>(usage.similar_calls),
              static_cast<unsigned long long>(usage.expand_calls), errors);

  const double base_p99 = base_us.count() ? base_us.Percentile(99) : 0.0;
  const double isa_p99 = isa_us.count() ? isa_us.Percentile(99) : 0.0;
  const double ratio = base_p99 > 0 ? isa_p99 / base_p99 : 0.0;
  const bool pass = base_us.count() > 0 && isa_us.count() > 0 &&
                    errors == 0 && isa_p99 < 10.0 * base_p99;
  std::printf("\nacceptance  %s (isA closure p99 %.2f us = %.2fx single-hop "
              "getConcept p99 %.2f us, limit 10x at depth <= %zu)\n",
              pass ? "PASS" : "FAIL", isa_p99, ratio, base_p99, kIsaDepth);
  return pass;
}

int Run(bool live, size_t live_calls, size_t batch, bool reasoning,
        size_t reasoning_calls) {
  bench::PrintHeader("Table II", "APIs and their usage");
  auto world = bench::MakeBenchWorld(bench::BenchScale());

  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      bench::DefaultBuilderConfig(), &report);
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(world->output->dump, taxonomy, &api);

  const QueryUniverse universe = MakeUniverse(*world, taxonomy);
  if (reasoning) {
    return RunReasoning(&api, universe, reasoning_calls) ? 0 : 1;
  }
  if (live) {
    RunLive(&api, universe, live_calls, batch);
  } else {
    RunInProcess(&api, universe);
  }
  return 0;
}

}  // namespace
}  // namespace cnpb

int main(int argc, char** argv) {
  bool live = false;
  size_t live_calls = 40'000;
  size_t batch = 1;
  bool reasoning = false;
  size_t reasoning_calls = 20'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else if (std::strcmp(argv[i], "--live-calls") == 0 && i + 1 < argc) {
      live_calls = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = static_cast<size_t>(std::max(1L, std::atol(argv[++i])));
      live = true;  // batching only exists on the wire
    } else if (std::strcmp(argv[i], "--reasoning") == 0) {
      reasoning = true;
    } else if (std::strcmp(argv[i], "--reasoning-calls") == 0 &&
               i + 1 < argc) {
      reasoning_calls =
          static_cast<size_t>(std::max(1L, std::atol(argv[++i])));
      reasoning = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--live] [--live-calls N] [--batch K]"
                   " [--reasoning] [--reasoning-calls N]\n",
                   argv[0]);
      return 2;
    }
  }
  return cnpb::Run(live, live_calls, batch, reasoning, reasoning_calls);
}
