// Reproduces Table II: the three deployed APIs (men2ent / getConcept /
// getEntity) and their call mix. The paper reports six months of Aliyun
// traffic (82M calls); we replay a scaled-down workload with the same mix
// (men2ent-heavy: mention disambiguation is the entry point of most text-
// understanding clients, then getEntity for concept expansion).
#include <cstdio>

#include "bench/bench_common.h"
#include "taxonomy/api_service.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cnpb {
namespace {

void Run() {
  bench::PrintHeader("Table II", "APIs and their usage");
  auto world = bench::MakeBenchWorld(bench::BenchScale());

  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      bench::DefaultBuilderConfig(), &report);
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(world->output->dump, taxonomy, &api);

  // Workload: the paper's observed mix (43.9M / 13.8M / 25.8M out of 83.5M),
  // over Zipf-distributed mentions/entities/concepts.
  const size_t total_calls = 834'000;  // 1:100 scale of the paper's traffic
  const double p_men2ent = 43'896'044.0 / 83'504'492.0;
  const double p_get_concept = 13'815'076.0 / 83'504'492.0;

  std::vector<std::string> mentions;
  std::vector<std::string> entity_names;
  for (const auto& page : world->output->dump.pages()) {
    if (taxonomy.Find(page.name) == taxonomy::kInvalidNode) continue;
    mentions.push_back(page.mention);
    entity_names.push_back(page.name);
  }
  std::vector<std::string> concept_names;
  for (taxonomy::NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    if (taxonomy.Kind(id) == taxonomy::NodeKind::kConcept) {
      concept_names.push_back(taxonomy.Name(id));
    }
  }

  util::Rng rng(2018);
  util::ZipfSampler mention_zipf(mentions.size(), 1.0);
  util::ZipfSampler entity_zipf(entity_names.size(), 1.0);
  util::ZipfSampler concept_zipf(concept_names.size(), 1.0);

  util::WallTimer timer;
  size_t hits = 0;
  for (size_t i = 0; i < total_calls; ++i) {
    const double u = rng.UniformDouble();
    if (u < p_men2ent) {
      hits += api.Men2Ent(mentions[mention_zipf.Sample(rng)]).empty() ? 0 : 1;
    } else if (u < p_men2ent + p_get_concept) {
      hits +=
          api.GetConcept(entity_names[entity_zipf.Sample(rng)]).empty() ? 0 : 1;
    } else {
      hits +=
          api.GetEntity(concept_names[concept_zipf.Sample(rng)]).empty() ? 0 : 1;
    }
  }
  const double seconds = timer.ElapsedSeconds();

  const auto& usage = api.usage();
  std::printf("\n%-12s %-28s %-22s %14s\n", "API name", "Given", "Return",
              "Count");
  std::printf("%-12s %-28s %-22s %14s\n", "men2ent", "mention", "entity",
              util::CommaSeparated(usage.men2ent_calls).c_str());
  std::printf("%-12s %-28s %-22s %14s\n", "getConcept", "entity",
              "hypernym list",
              util::CommaSeparated(usage.get_concept_calls).c_str());
  std::printf("%-12s %-28s %-22s %14s\n", "getEntity", "concept",
              "hyponym list",
              util::CommaSeparated(usage.get_entity_calls).c_str());
  std::printf("\ntotal %s calls in %.2fs (%.0f calls/s), %.1f%% non-empty\n",
              util::CommaSeparated(usage.total()).c_str(), seconds,
              usage.total() / seconds, 100.0 * hits / total_calls);
  std::printf("\npaper reference (Mar-Sep 2018 on Aliyun):\n");
  std::printf("  men2ent    43,896,044\n  getConcept 13,815,076\n"
              "  getEntity  25,793,372\n");
  std::printf("shape check: men2ent > getEntity > getConcept mix is "
              "preserved at 1:100 scale.\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
