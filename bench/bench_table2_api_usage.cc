// Reproduces Table II: the three deployed APIs (men2ent / getConcept /
// getEntity) and their call mix. The paper reports six months of Aliyun
// traffic (82M calls); we replay a scaled-down workload with the same mix
// (men2ent-heavy: mention disambiguation is the entry point of most text-
// understanding clients, then getEntity for concept expansion).
//
// Default mode replays in-process against the ApiService. `--live` replays
// the same mix as HTTP requests against a real loopback HttpServer instead
// — the deployed shape of Table II — with `--live-calls N` (default
// 40,000) controlling the scaled call count. `--batch K` (implies --live)
// groups the same mix into the /v1/*_batch endpoints at K items per
// request: the logical call counts and the mix stay identical, only the
// wire framing changes, which is exactly the amortization the batch APIs
// sell.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cnpb {
namespace {

constexpr double kPMen2Ent = 43'896'044.0 / 83'504'492.0;
constexpr double kPGetConcept = 13'815'076.0 / 83'504'492.0;

struct QueryUniverse {
  std::vector<std::string> mentions;
  std::vector<std::string> entity_names;
  std::vector<std::string> concept_names;
};

QueryUniverse MakeUniverse(const bench::BenchWorld& world,
                           const taxonomy::Taxonomy& taxonomy) {
  QueryUniverse universe;
  for (const auto& page : world.output->dump.pages()) {
    if (taxonomy.Find(page.name) == taxonomy::kInvalidNode) continue;
    universe.mentions.push_back(page.mention);
    universe.entity_names.push_back(page.name);
  }
  for (taxonomy::NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    if (taxonomy.Kind(id) == taxonomy::NodeKind::kConcept) {
      universe.concept_names.push_back(taxonomy.Name(id));
    }
  }
  return universe;
}

void PrintUsageTable(const taxonomy::ApiService& api, double seconds,
                     size_t total_calls, size_t hits) {
  const auto& usage = api.usage();
  std::printf("\n%-12s %-28s %-22s %14s\n", "API name", "Given", "Return",
              "Count");
  std::printf("%-12s %-28s %-22s %14s\n", "men2ent", "mention", "entity",
              util::CommaSeparated(usage.men2ent_calls).c_str());
  std::printf("%-12s %-28s %-22s %14s\n", "getConcept", "entity",
              "hypernym list",
              util::CommaSeparated(usage.get_concept_calls).c_str());
  std::printf("%-12s %-28s %-22s %14s\n", "getEntity", "concept",
              "hyponym list",
              util::CommaSeparated(usage.get_entity_calls).c_str());
  std::printf("\ntotal %s calls in %.2fs (%.0f calls/s), %.1f%% non-empty\n",
              util::CommaSeparated(usage.total()).c_str(), seconds,
              usage.total() / seconds, 100.0 * hits / total_calls);
  std::printf("\npaper reference (Mar-Sep 2018 on Aliyun):\n");
  std::printf("  men2ent    43,896,044\n  getConcept 13,815,076\n"
              "  getEntity  25,793,372\n");
  std::printf("shape check: men2ent > getEntity > getConcept mix is "
              "preserved at scale.\n");
}

void RunInProcess(taxonomy::ApiService* api, const QueryUniverse& universe) {
  const size_t total_calls = 834'000;  // 1:100 scale of the paper's traffic
  util::Rng rng(2018);
  util::ZipfSampler mention_zipf(universe.mentions.size(), 1.0);
  util::ZipfSampler entity_zipf(universe.entity_names.size(), 1.0);
  util::ZipfSampler concept_zipf(universe.concept_names.size(), 1.0);

  util::WallTimer timer;
  size_t hits = 0;
  for (size_t i = 0; i < total_calls; ++i) {
    const double u = rng.UniformDouble();
    if (u < kPMen2Ent) {
      hits += api->Men2Ent(universe.mentions[mention_zipf.Sample(rng)])
                      .empty()
                  ? 0
                  : 1;
    } else if (u < kPMen2Ent + kPGetConcept) {
      hits += api->GetConcept(
                      universe.entity_names[entity_zipf.Sample(rng)])
                      .empty()
                  ? 0
                  : 1;
    } else {
      hits += api->GetEntity(
                      universe.concept_names[concept_zipf.Sample(rng)])
                      .empty()
                  ? 0
                  : 1;
    }
  }
  PrintUsageTable(*api, timer.ElapsedSeconds(), total_calls, hits);
}

// Empty answer lists render as ":[]" — in a single-shot body there is at
// most one, in a batch body one per unanswered item.
size_t CountEmptyLists(const std::string& body) {
  size_t count = 0;
  for (size_t at = body.find(":[]"); at != std::string::npos;
       at = body.find(":[]", at + 3)) {
    ++count;
  }
  return count;
}

// --live: the same mix over the wire against a loopback HttpServer, split
// across 4 keep-alive connections. "Non-empty" here means HTTP 200 with a
// non-empty answer list (an unknown mention is a 404 by the wire contract).
// With `batch` > 1, calls are grouped into the batch endpoints at `batch`
// items per request, resolved against one pinned snapshot per request.
void RunLive(taxonomy::ApiService* api, const QueryUniverse& universe,
             size_t total_calls, size_t batch) {
  util::IgnoreSigpipe();
  server::ApiEndpoints endpoints(api);
  server::HttpServer::Config config;
  config.num_threads = 2;
  server::HttpServer httpd(config, endpoints.AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\n--live: replaying over HTTP on 127.0.0.1:%u%s\n",
              unsigned{httpd.port()},
              batch > 1 ? " (batched)" : "");

  constexpr int kConnections = 4;
  std::atomic<size_t> hits{0};
  std::atomic<size_t> sent{0};
  util::WallTimer timer;
  std::vector<std::thread> drivers;
  for (int c = 0; c < kConnections; ++c) {
    drivers.emplace_back([&, c] {
      util::Rng rng(2018 + static_cast<uint64_t>(c));
      util::ZipfSampler mention_zipf(universe.mentions.size(), 1.0);
      util::ZipfSampler entity_zipf(universe.entity_names.size(), 1.0);
      util::ZipfSampler concept_zipf(universe.concept_names.size(), 1.0);
      server::HttpClient client;
      const size_t share = total_calls / kConnections;
      for (size_t i = 0; i < share;) {
        if (!client.connected() &&
            !client.Connect("127.0.0.1", httpd.port()).ok()) {
          ++i;
          continue;
        }
        // Pick the endpoint by the Table II mix, then frame either one
        // call (GET) or `batch` calls (POST, one term per line).
        const double u = rng.UniformDouble();
        const char* endpoint;
        const std::vector<std::string>* names;
        util::ZipfSampler* zipf;
        if (u < kPMen2Ent) {
          endpoint = "men2ent";
          names = &universe.mentions;
          zipf = &mention_zipf;
        } else if (u < kPMen2Ent + kPGetConcept) {
          endpoint = "getConcept";
          names = &universe.entity_names;
          zipf = &entity_zipf;
        } else {
          endpoint = "getEntity";
          names = &universe.concept_names;
          zipf = &concept_zipf;
        }
        if (batch > 1) {
          const size_t items = std::min(batch, share - i);
          std::string body;
          for (size_t k = 0; k < items; ++k) {
            body += (*names)[zipf->Sample(rng)];
            body += '\n';
          }
          auto response =
              client.Post("/v1/" + std::string(endpoint) + "_batch", body);
          i += items;
          if (!response.ok()) continue;
          sent += items;
          if (response->status == 200) {
            hits += items - std::min(items, CountEmptyLists(response->body));
          }
        } else {
          const char* param = u < kPMen2Ent ? "mention"
                              : u < kPMen2Ent + kPGetConcept ? "entity"
                                                             : "concept";
          const std::string target =
              "/v1/" + std::string(endpoint) + "?" + param + "=" +
              server::PercentEncode((*names)[zipf->Sample(rng)]);
          auto response = client.Get(target);
          ++i;
          if (!response.ok()) continue;
          ++sent;
          if (response->status == 200 &&
              response->body.find(":[]") == std::string::npos) {
            ++hits;
          }
        }
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  const double seconds = timer.ElapsedSeconds();
  PrintUsageTable(*api, seconds, sent.load(), hits.load());
  httpd.Stop();
  httpd.Wait();
  const auto stats = httpd.stats();
  std::printf("wire: %llu requests over %llu connections, "
              "%llu parse errors\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.parse_errors));
}

void Run(bool live, size_t live_calls, size_t batch) {
  bench::PrintHeader("Table II", "APIs and their usage");
  auto world = bench::MakeBenchWorld(bench::BenchScale());

  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      bench::DefaultBuilderConfig(), &report);
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(world->output->dump, taxonomy, &api);

  const QueryUniverse universe = MakeUniverse(*world, taxonomy);
  if (live) {
    RunLive(&api, universe, live_calls, batch);
  } else {
    RunInProcess(&api, universe);
  }
}

}  // namespace
}  // namespace cnpb

int main(int argc, char** argv) {
  bool live = false;
  size_t live_calls = 40'000;
  size_t batch = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else if (std::strcmp(argv[i], "--live-calls") == 0 && i + 1 < argc) {
      live_calls = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = static_cast<size_t>(std::max(1L, std::atol(argv[++i])));
      live = true;  // batching only exists on the wire
    } else {
      std::fprintf(stderr,
                   "usage: %s [--live] [--live-calls N] [--batch K]\n",
                   argv[0]);
      return 2;
    }
  }
  cnpb::Run(live, live_calls, batch);
  return 0;
}
