// Scaling sweep (system angle, §V): construction cost vs dump size, build
// throughput vs thread count, and ApiService QPS vs client count. The
// paper's deployment processes a 16M-page dump and serves ~83M API calls;
// this bench shows the pipeline's empirical scaling so the laptop-scale
// results can be extrapolated.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/incremental.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "taxonomy/api_service.h"
#include "taxonomy/serialize.h"
#include "taxonomy/snapshot.h"
#include "util/atomic_file.h"
#include "util/histogram.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace cnpb {
namespace {

// Canonical serialized form of the taxonomy, used to check byte-identity
// across thread counts (same fingerprint the determinism test uses).
std::string Fingerprint(const taxonomy::Taxonomy& taxonomy) {
  std::string out;
  taxonomy.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    out += taxonomy.Name(edge.hypo);
    out += '\t';
    out += taxonomy.Name(edge.hyper);
    out += '\t';
    out += std::to_string(static_cast<int>(edge.source));
    out += '\n';
  });
  return out;
}

void RunDumpSizeSweep() {
  std::printf("\n-- construction cost vs dump size --\n");
  std::printf("\n%10s %8s %10s %10s %10s %10s %10s\n", "entities", "pages",
              "gen (s)", "verify (s)", "isA", "precision", "pages/s");
  // Scales derive from CNPB_BENCH_ENTITIES (default 8000 keeps the
  // historical {2000, 4000, 8000, 16000} sweep) so CI can shrink the run.
  const size_t base = bench::BenchScale(8000);
  for (const size_t step : {base / 4, base / 2, base, base * 2}) {
    const size_t scale = std::max<size_t>(step, 64);
    auto world = bench::MakeBenchWorld(scale);
    util::WallTimer timer;
    core::CnProbaseBuilder::Report report;
    const auto candidates = core::CnProbaseBuilder::BuildCandidates(
        world->output->dump, world->world->lexicon(), world->corpus_words,
        bench::DefaultBuilderConfig(), &report);
    const double total = timer.ElapsedSeconds();
    const auto precision =
        eval::CandidatePrecision(candidates, world->Oracle());
    std::printf("%10zu %8zu %10.1f %10.1f %10zu %9.1f%% %10.0f\n", scale,
                world->output->dump.size(), report.seconds_generation,
                report.seconds_verification, candidates.size(),
                100.0 * precision.precision(),
                world->output->dump.size() / total);
  }
}

void RunThreadSweep() {
  std::printf("\n-- end-to-end build throughput vs CNPB_THREADS --\n");
  const size_t scale = bench::BenchScale(6000);
  auto world = bench::MakeBenchWorld(scale);
  std::printf("\n%8s %10s %10s %10s %10s  %s\n", "threads", "build (s)",
              "pages/s", "speedup", "isA", "output");
  double serial_seconds = 0.0;
  std::string serial_fingerprint;
  for (const int threads : {1, 2, 4, 8}) {
    util::ScopedThreadsOverride override_threads(threads);
    util::WallTimer timer;
    core::CnProbaseBuilder::Report report;
    const auto taxonomy = core::CnProbaseBuilder::Build(
        world->output->dump, world->world->lexicon(), world->corpus_words,
        bench::DefaultBuilderConfig(), &report);
    const double seconds = timer.ElapsedSeconds();
    const std::string fingerprint = Fingerprint(taxonomy);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fingerprint = fingerprint;
    }
    size_t num_edges = 0;
    taxonomy.ForEachEdge([&](const taxonomy::IsaEdge&) { ++num_edges; });
    std::printf("%8d %10.1f %10.0f %9.2fx %10zu  %s\n", threads, seconds,
                world->output->dump.size() / seconds,
                serial_seconds / seconds, num_edges,
                fingerprint == serial_fingerprint ? "byte-identical"
                                                  : "** DIVERGED **");
  }
}

void RunApiQpsSweep() {
  std::printf("\n-- ApiService QPS vs concurrent clients --\n");
  const size_t scale = bench::BenchScale(6000);
  auto world = bench::MakeBenchWorld(scale);
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      bench::DefaultBuilderConfig(), &report);
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(world->output->dump, taxonomy,
                                           &api);

  std::vector<std::string> mentions;
  for (const auto& page : world->output->dump.pages()) {
    mentions.push_back(page.mention);
  }

  constexpr size_t kCallsPerClient = 20000;
  std::printf("\n%8s %12s %12s %12s\n", "clients", "calls", "seconds", "QPS");
  for (const int clients : {1, 2, 4, 8}) {
    api.ResetUsage();
    util::WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&api, &mentions, c]() {
        // Each client mixes the three APIs roughly like Table II
        // (men2ent-heavy), striding the mention list from its own offset.
        for (size_t i = 0; i < kCallsPerClient; ++i) {
          const std::string& mention =
              mentions[(i * 37 + static_cast<size_t>(c) * 1009) %
                       mentions.size()];
          if (i % 2 == 0) {
            api.Men2Ent(mention);
          } else if (i % 4 == 1) {
            api.GetConcept(mention);
          } else {
            api.GetEntity(mention, 20);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds = timer.ElapsedSeconds();
    const uint64_t calls = api.usage().total();
    std::printf("%8d %12llu %12.2f %12.0f\n", clients,
                static_cast<unsigned long long>(calls), seconds,
                calls / seconds);
  }
}

void RunServeWhileUpdateSweep() {
  std::printf("\n-- ApiService QPS under publish churn (serve while "
              "updating) --\n");
  const size_t scale = bench::BenchScale(4000);
  auto world = bench::MakeBenchWorld(scale);

  // One incremental run yields a sequence of frozen versions (snapshot +
  // mention index); the sweep then republishes them cyclically under reader
  // load, so the QPS numbers isolate the cost of the snapshot swap itself.
  kb::EncyclopediaDump base;
  std::vector<std::vector<kb::EncyclopediaPage>> batches(3);
  const size_t n = world->output->dump.size();
  for (size_t i = 0; i < n; ++i) {
    kb::EncyclopediaPage page = world->output->dump.page(i);
    page.page_id = 0;
    if (i < n * 7 / 10) {
      base.AddPage(std::move(page));
    } else {
      batches[(i - n * 7 / 10) % 3].push_back(std::move(page));
    }
  }
  core::IncrementalUpdater updater(base, &world->world->lexicon(),
                                   world->corpus_words,
                                   bench::DefaultBuilderConfig());
  std::vector<std::shared_ptr<const taxonomy::Taxonomy>> versions;
  std::vector<taxonomy::ApiService::MentionIndex> indexes;
  auto freeze_current = [&]() {
    versions.push_back(updater.snapshot());
    indexes.push_back(core::CnProbaseBuilder::BuildMentionIndex(
        updater.dump(), updater.taxonomy()));
  };
  freeze_current();
  for (const auto& batch : batches) {
    updater.ApplyBatch(batch);
    freeze_current();
  }

  std::vector<std::string> mentions;
  for (const auto& page : base.pages()) mentions.push_back(page.mention);

  constexpr size_t kCallsPerClient = 20000;
  std::printf("\n%8s %12s %12s %12s %12s\n", "clients", "calls", "seconds",
              "QPS", "publishes");
  for (const int clients : {1, 2, 4, 8}) {
    taxonomy::ApiService api(versions.front(),
                             taxonomy::ApiService::MentionIndex(
                                 indexes.front()));
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> publishes{0};
    std::thread publisher([&]() {
      size_t v = 1;
      while (!stop.load(std::memory_order_acquire)) {
        api.Publish(versions[v % versions.size()],
                    taxonomy::ApiService::MentionIndex(
                        indexes[v % versions.size()]));
        publishes.fetch_add(1, std::memory_order_relaxed);
        ++v;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    util::WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&api, &mentions, c]() {
        for (size_t i = 0; i < kCallsPerClient; ++i) {
          const std::string& mention =
              mentions[(i * 37 + static_cast<size_t>(c) * 1009) %
                       mentions.size()];
          if (i % 2 == 0) {
            api.Men2Ent(mention);
          } else if (i % 4 == 1) {
            api.GetConcept(mention);
          } else {
            api.GetEntity(mention, 20);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds = timer.ElapsedSeconds();
    stop.store(true, std::memory_order_release);
    publisher.join();
    const uint64_t calls = api.usage().total();
    std::printf("%8d %12llu %12.2f %12.0f %12llu\n", clients,
                static_cast<unsigned long long>(calls), seconds,
                calls / seconds,
                static_cast<unsigned long long>(publishes.load()));
    // Flush the per-version serving gauges into the registry so a
    // --metrics-out export carries the QPS attribution of the last round.
    api.ExportMetrics(&obs::MetricsRegistry::Global());
  }
}

// Cold start: parse the TSV taxonomy + rebuild the mention index (the
// pre-snapshot serving path) vs one mmap + validation pass over the binary
// snapshot (DESIGN.md §10). Also compares query latency percentiles across
// the two backends, since the zero-copy layout must not trade cold-start
// speed for serving speed. Returns false when the snapshot load fails to
// beat the TSV path at all (the --coldstart-strict CI gate).
bool RunColdStartSweep() {
  std::printf("\n-- cold start: TSV parse vs zero-copy mmap snapshot --\n");
  const size_t scale = bench::BenchScale(8000);
  auto world = bench::MakeBenchWorld(scale);
  core::CnProbaseBuilder::Report report;
  const taxonomy::Taxonomy built = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      bench::DefaultBuilderConfig(), &report);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr && *tmpdir != '\0' ? tmpdir
                                                               : "/tmp";
  const std::string tsv_path = dir + "/cnpb_coldstart.tsv";
  const std::string snap_path = dir + "/cnpb_coldstart.snap";
  CNPB_CHECK(taxonomy::SaveTaxonomy(built, tsv_path).ok());
  const auto tsv_content = util::ReadFileToString(tsv_path);
  const size_t tsv_bytes = tsv_content.ok() ? tsv_content->size() : 0;
  CNPB_CHECK(taxonomy::WriteSnapshot(
                 built,
                 core::CnProbaseBuilder::BuildMentionIndex(
                     world->output->dump, built),
                 snap_path)
                 .ok());

  // Best-of-5 so page-cache and allocator warmup noise hits neither side.
  // The TSV side must also rebuild the mention index: that is what serving
  // actually needs before it can answer men2ent, and what the snapshot
  // carries pre-built.
  constexpr int kReps = 5;
  double tsv_seconds = std::numeric_limits<double>::infinity();
  double snap_seconds = std::numeric_limits<double>::infinity();
  std::shared_ptr<const taxonomy::ServingView> tsv_view;
  std::shared_ptr<const taxonomy::ServingView> snap_view;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    auto loaded = taxonomy::LoadTaxonomy(tsv_path);
    CNPB_CHECK(loaded.ok()) << loaded.status().ToString();
    auto frozen = taxonomy::Taxonomy::Freeze(std::move(*loaded));
    auto index = core::CnProbaseBuilder::BuildMentionIndex(
        world->output->dump, *frozen);
    tsv_seconds = std::min(tsv_seconds, timer.ElapsedSeconds());
    tsv_view = std::make_shared<taxonomy::HeapServingView>(std::move(frozen),
                                                           std::move(index));
  }
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    auto snap = taxonomy::Snapshot::Load(snap_path);
    CNPB_CHECK(snap.ok()) << snap.status().ToString();
    snap_seconds = std::min(snap_seconds, timer.ElapsedSeconds());
    snap_view = *std::move(snap);
  }
  const double speedup = tsv_seconds / snap_seconds;
  const size_t snap_bytes =
      static_cast<const taxonomy::Snapshot&>(*snap_view).file_bytes();

  // Query latency percentiles on both backends (Table II-ish mix), one
  // timed call at a time through the full ApiService path.
  const auto measure = [&](std::shared_ptr<const taxonomy::ServingView> view,
                           util::Histogram* hist) {
    taxonomy::ApiService api(std::move(view));
    std::vector<std::string> mentions;
    for (const auto& page : world->output->dump.pages()) {
      mentions.push_back(page.mention);
    }
    const size_t calls = std::min<size_t>(60000, mentions.size() * 20);
    for (size_t i = 0; i < calls; ++i) {
      const std::string& mention = mentions[(i * 37) % mentions.size()];
      util::WallTimer timer;
      if (i % 2 == 0) {
        api.Men2Ent(mention);
      } else if (i % 4 == 1) {
        api.GetConcept(mention);
      } else {
        api.GetEntity(mention, 20);
      }
      hist->Add(timer.ElapsedSeconds());
    }
  };
  util::Histogram tsv_latency;
  util::Histogram snap_latency;
  measure(tsv_view, &tsv_latency);
  measure(snap_view, &snap_latency);

  std::printf("\n%10s %12s %12s %12s %12s\n", "backend", "load (ms)",
              "p50 (us)", "p99 (us)", "bytes");
  std::printf("%10s %12.2f %12.2f %12.2f %12zu\n", "tsv",
              tsv_seconds * 1e3, tsv_latency.Percentile(50) * 1e6,
              tsv_latency.Percentile(99) * 1e6, tsv_bytes);
  std::printf("%10s %12.2f %12.2f %12.2f %12zu\n", "snapshot",
              snap_seconds * 1e3, snap_latency.Percentile(50) * 1e6,
              snap_latency.Percentile(99) * 1e6, snap_bytes);
  std::printf("cold-start speedup: %.1fx (target >=50x) %s\n", speedup,
              speedup >= 50.0 ? "OK" : "** MISS **");

  auto& registry = obs::MetricsRegistry::Global();
  registry.gauge("bench.coldstart.tsv_load_seconds")->Set(tsv_seconds);
  registry.gauge("bench.coldstart.snapshot_load_seconds")->Set(snap_seconds);
  registry.gauge("bench.coldstart.speedup")->Set(speedup);
  registry.gauge("bench.coldstart.snapshot_bytes")
      ->Set(static_cast<double>(snap_bytes));
  registry.gauge("bench.coldstart.tsv_query_p50_seconds")
      ->Set(tsv_latency.Percentile(50));
  registry.gauge("bench.coldstart.tsv_query_p99_seconds")
      ->Set(tsv_latency.Percentile(99));
  registry.gauge("bench.coldstart.snapshot_query_p50_seconds")
      ->Set(snap_latency.Percentile(50));
  registry.gauge("bench.coldstart.snapshot_query_p99_seconds")
      ->Set(snap_latency.Percentile(99));

  std::remove(tsv_path.c_str());
  std::remove(snap_path.c_str());
  return speedup >= 1.0;
}

void RunMetricsOverheadCheck() {
  std::printf("\n-- metrics overhead: instrumented vs metrics-disabled --\n");
  const size_t scale = bench::BenchScale(6000);
  auto world = bench::MakeBenchWorld(scale);
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      bench::DefaultBuilderConfig(), &report);
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(world->output->dump, taxonomy,
                                           &api);
  std::vector<std::string> mentions;
  for (const auto& page : world->output->dump.pages()) {
    mentions.push_back(page.mention);
  }

  // Single-threaded query loop (the configuration most sensitive to
  // per-call overhead). Rounds interleave the two modes and each side keeps
  // its best time, so frequency drift and scheduler noise hit both equally.
  constexpr size_t kCalls = 1000000;
  constexpr int kRounds = 8;
  auto run_once = [&]() {
    util::WallTimer timer;
    for (size_t i = 0; i < kCalls; ++i) {
      const std::string& mention = mentions[(i * 37) % mentions.size()];
      if (i % 2 == 0) {
        api.Men2Ent(mention);
      } else if (i % 4 == 1) {
        api.GetConcept(mention);
      } else {
        api.GetEntity(mention, 20);
      }
    }
    return timer.ElapsedSeconds();
  };
  run_once();  // warm caches before either side measures
  double disabled = std::numeric_limits<double>::infinity();
  double enabled = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRounds; ++r) {
    obs::SetMetricsEnabled(false);
    disabled = std::min(disabled, run_once());
    obs::SetMetricsEnabled(true);
    enabled = std::min(enabled, run_once());
  }
  const double overhead_pct = 100.0 * (enabled - disabled) / disabled;
  std::printf("\n%12s %12s %12s %10s\n", "mode", "seconds", "QPS",
              "overhead");
  std::printf("%12s %12.3f %12.0f %10s\n", "disabled", disabled,
              kCalls / disabled, "-");
  std::printf("%12s %12.3f %12.0f %9.2f%%\n", "enabled", enabled,
              kCalls / enabled, overhead_pct);
  // The observability contract (DESIGN.md §7): instrumented serving stays
  // within 2% of the metrics-disabled baseline.
  std::printf("%s\n", overhead_pct < 2.0
                          ? "overhead check: OK (<2% budget)"
                          : "overhead check: ** OVER the 2% budget **");
}

bool Run() {
  bench::PrintHeader("Scaling",
                     "construction cost, thread scaling, API throughput");
  RunDumpSizeSweep();
  RunThreadSweep();
  RunApiQpsSweep();
  RunServeWhileUpdateSweep();
  const bool coldstart_ok = RunColdStartSweep();
  RunMetricsOverheadCheck();
  std::printf("\nshape check: near-linear construction in dump size (neural "
              "training is the\nfixed-cost component); sharded build "
              "throughput rises with threads while the\nserialized taxonomy "
              "stays byte-identical; API QPS scales with reader\nconcurrency "
              "and holds up under continuous snapshot publishes (RCU swap,\n"
              "readers never block); mmap snapshots cold-start orders of "
              "magnitude faster\nthan the TSV parse; instrumentation costs "
              "<2%% of serving throughput.\n");
  return coldstart_ok;
}

}  // namespace
}  // namespace cnpb

int main(int argc, char** argv) {
  std::string metrics_out;
  bool coldstart_strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::string(argv[i]) == "--coldstart-strict") {
      // CI gate: fail the run if the mmap snapshot load is not at least as
      // fast as the TSV parse (the zero-copy format's raison d'être).
      coldstart_strict = true;
    }
  }
  const bool coldstart_ok = cnpb::Run();
  if (!metrics_out.empty()) {
    const cnpb::util::Status status = cnpb::obs::WriteMetricsFiles(
        cnpb::obs::MetricsRegistry::Global(), metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics written to %s.prom and %s.json\n",
                metrics_out.c_str(), metrics_out.c_str());
  }
  if (coldstart_strict && !coldstart_ok) {
    std::fprintf(stderr,
                 "coldstart-strict: snapshot load slower than TSV load\n");
    return 1;
  }
  return 0;
}
