// Scaling sweep (system angle, §V): construction cost and output size as
// the dump grows. The paper's deployment processes a 16M-page dump; this
// bench shows the pipeline's empirical scaling so the laptop-scale results
// can be extrapolated.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/timer.h"

namespace cnpb {
namespace {

void Run() {
  bench::PrintHeader("Scaling", "construction cost vs dump size");
  std::printf("\n%10s %8s %10s %10s %10s %10s %10s\n", "entities", "pages",
              "gen (s)", "verify (s)", "isA", "precision", "pages/s");
  for (const size_t scale : {2000, 4000, 8000, 16000}) {
    auto world = bench::MakeBenchWorld(scale);
    util::WallTimer timer;
    core::CnProbaseBuilder::Report report;
    const auto candidates = core::CnProbaseBuilder::BuildCandidates(
        world->output->dump, world->world->lexicon(), world->corpus_words,
        bench::DefaultBuilderConfig(), &report);
    const double total = timer.ElapsedSeconds();
    const auto precision =
        eval::CandidatePrecision(candidates, world->Oracle());
    std::printf("%10zu %8zu %10.1f %10.1f %10zu %9.1f%% %10.0f\n", scale,
                world->output->dump.size(), report.seconds_generation,
                report.seconds_verification, candidates.size(),
                100.0 * precision.precision(),
                world->output->dump.size() / total);
  }
  std::printf("\nshape check: near-linear construction (neural training is "
              "the fixed-cost\ncomponent); precision is scale-stable — the "
              "property that let the paper push to 15M entities.\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
