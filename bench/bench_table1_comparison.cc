// Reproduces Table I: comparison of CN-Probase against Chinese
// WikiTaxonomy, Bigcilin and Probase-Tran on entities / concepts / isA
// counts and precision. Absolute magnitudes are bounded by the synthetic
// dump scale; the *shape* (ordering, precision bands, size ratios) is what
// reproduces.
#include <cstdio>

#include "baselines/probase_tran.h"
#include "baselines/wiki_taxonomy.h"
#include "bench/bench_common.h"
#include "eval/comparison.h"
#include "util/timer.h"

namespace cnpb {
namespace {

std::vector<std::string> Thematic() {
  std::vector<std::string> words;
  for (const char* w : synth::ThematicWords()) words.emplace_back(w);
  return words;
}

void Run() {
  bench::PrintHeader("Table I", "Comparisons with other taxonomies");
  const size_t scale = bench::BenchScale();
  std::printf("synthetic dump scale: %zu world entities "
              "(set CNPB_BENCH_ENTITIES to change)\n\n",
              scale);
  auto world = bench::MakeBenchWorld(scale);
  const eval::Oracle oracle = world->Oracle();

  std::vector<eval::ComparisonRow> rows;
  util::WallTimer timer;

  // Chinese WikiTaxonomy: tag-only, conservative.
  {
    baselines::ChineseWikiTaxonomy::Config config;
    config.thematic_lexicon = Thematic();
    const auto taxonomy = baselines::ChineseWikiTaxonomy::Build(
        world->output->dump, world->world->lexicon(), config);
    rows.push_back(eval::MakeRow("Chinese WikiTaxonomy", taxonomy, oracle));
    std::printf("[built Chinese WikiTaxonomy in %.1fs]\n",
                timer.ElapsedSeconds());
  }

  // Bigcilin: multi-source, no verification.
  timer.Restart();
  {
    baselines::Bigcilin::Config config;
    const auto taxonomy =
        baselines::Bigcilin::Build(world->output->dump, world->world->lexicon(),
                                   world->corpus_words, config);
    rows.push_back(eval::MakeRow("Bigcilin", taxonomy, oracle));
    std::printf("[built Bigcilin in %.1fs]\n", timer.ElapsedSeconds());
  }

  // Probase-Tran: translated English Probase + three filters.
  timer.Restart();
  {
    const auto result = baselines::ProbaseTran::Build(
        *world->world, baselines::ProbaseTran::Config{});
    eval::ComparisonRow row;
    row.name = "Probase-Tran";
    row.num_entities = result.taxonomy.NumEntities();
    row.num_concepts = result.taxonomy.NumConcepts();
    row.num_isa = result.taxonomy.num_edges();
    row.precision = result.precision();
    rows.push_back(row);
    std::printf("[built Probase-Tran in %.1fs]\n", timer.ElapsedSeconds());
  }

  // CN-Probase: full generation + verification framework.
  timer.Restart();
  {
    core::CnProbaseBuilder::Report report;
    const auto taxonomy = core::CnProbaseBuilder::Build(
        world->output->dump, world->world->lexicon(), world->corpus_words,
        bench::DefaultBuilderConfig(), &report);
    rows.push_back(eval::MakeRow("CN-Probase", taxonomy, oracle));
    std::printf("[built CN-Probase in %.1fs]\n\n", timer.ElapsedSeconds());
  }

  std::printf("%s\n", eval::FormatTable(rows).c_str());
  std::printf("paper reference (15,990,349-page CN-DBpedia dump):\n");
  std::printf("  Chinese WikiTaxonomy    581,616 / 79,470  / 1,317,956  / 97.6%%\n");
  std::printf("  Bigcilin              9,000,000 / 70,000  / 10,000,000 / 90.0%%\n");
  std::printf("  Probase-Tran            404,910 / 151,933 / 1,819,273  / 54.5%%\n");
  std::printf("  CN-Probase           15,066,667 / 270,025 / 32,925,306 / 95.0%%\n");
  std::printf("\nshape checks: CN-Probase largest (entities/concepts/isA), "
              "precision ~95%%;\nWikiTaxonomy most precise but smallest; "
              "Probase-Tran noisiest.\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
