// Never-ending maintenance (deployment angle, §V): per-batch update cost of
// the incremental updater vs. full rebuilds, at stable precision — while the
// ApiService keeps serving queries. CN-Probase sits on CN-DBpedia, a
// never-ending extraction system: batches of new pages arrive continuously
// and the paper's deployment answers 82M API calls concurrently, so batches
// here are applied and published under reader load (RCU snapshot serving).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/incremental.h"
#include "ingest/daemon.h"
#include "ingest/wal.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "taxonomy/api_service.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace cnpb {
namespace {

constexpr int kReaders = 4;

struct ReaderState {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> probes{0};
  // expected direct-hypernym count of the probe per version; -1 = unknown.
  std::vector<std::atomic<int64_t>> expected;
  explicit ReaderState(size_t max_versions) : expected(max_versions) {
    for (auto& e : expected) e.store(-1, std::memory_order_relaxed);
  }
};

// One reader: hammers the three APIs over the mention list, timing each
// call, and probes coherence — when no publish interleaves a query, the
// result must match the pinned version's expected answer exactly.
void ReaderLoop(const taxonomy::ApiService& api,
                const std::vector<std::string>& mentions,
                const std::string& probe, ReaderState* state,
                util::Histogram* latencies_us) {
  size_t i = 0;
  while (!state->stop.load(std::memory_order_acquire)) {
    const std::string& mention = mentions[(i * 37) % mentions.size()];
    util::WallTimer timer;
    if (i % 3 == 0) {
      api.Men2Ent(mention);
    } else if (i % 3 == 1) {
      api.GetConcept(mention);
    } else {
      api.GetEntity(mention, 20);
    }
    latencies_us->Add(timer.ElapsedSeconds() * 1e6);

    const uint64_t v1 = api.version();
    const size_t got = api.GetConcept(probe).size();
    const uint64_t v2 = api.version();
    if (v1 == v2 && v1 < state->expected.size()) {
      const int64_t want = state->expected[v1].load(std::memory_order_acquire);
      if (want >= 0) {
        if (static_cast<int64_t>(got) != want) {
          state->torn.fetch_add(1, std::memory_order_relaxed);
        }
        state->probes.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ++i;
  }
}

// -- ingest daemon phase: the WAL-backed streaming path (DESIGN.md §13) --
//
// Feeds the stream pages through the IngestDaemon (durable acks, scheduled
// apply, bounded-lag publish), then measures crash recovery twice on the
// same WAL: once replaying the full log (no cursor) and once after a
// compaction bounded it to the suffix. Results land in bench.ingest.*
// gauges so --metrics-out ships them in the CI JSON artifact.
void RunIngestPhase(const bench::BenchWorld& world,
                    const kb::EncyclopediaDump& base,
                    const std::vector<kb::EncyclopediaPage>& stream,
                    core::CnProbaseBuilder::Config config) {
  std::printf("\n-- ingest daemon: WAL-backed streaming updates --\n");
  // Streamed pages carry explicit relations and ship no corpus evidence;
  // the daemon applies without the statistical verifier (as in ingestd).
  config.enable_verification = false;

  const std::string wal_dir = "bench_ingest_wal";
  if (auto segments = ingest::ListWalSegments(wal_dir); segments.ok()) {
    for (const auto& segment : *segments) std::remove(segment.path.c_str());
  }
  std::remove((wal_dir + "/wal.cursor").c_str());
  ingest::PruneStaleCheckpoints(wal_dir, 0);

  ingest::IngestDaemon::Options options;
  options.wal_dir = wal_dir;
  options.publish_min_pages = 64;
  options.publish_max_delay = std::chrono::milliseconds(25);
  options.batch_max_pages = 128;
  options.compact_every_records = 0;  // manual: we time both recovery shapes

  double feed_seconds = 0.0, full_replay_seconds = 0.0;
  uint64_t full_replay_records = 0, publishes = 0;
  {
    core::IncrementalUpdater updater(base, &world.world->lexicon(),
                                     world.corpus_words, config);
    taxonomy::ApiService api(updater.snapshot());
    ingest::IngestDaemon daemon(&updater, &api, options);
    if (const util::Status status = daemon.Start(); !status.ok()) {
      std::printf("ingest phase skipped: %s\n", status.ToString().c_str());
      return;
    }
    util::WallTimer feed_timer;
    constexpr size_t kChunk = 32;
    for (size_t i = 0; i < stream.size(); i += kChunk) {
      const size_t end = std::min(i + kChunk, stream.size());
      std::vector<kb::EncyclopediaPage> chunk(stream.begin() + i,
                                              stream.begin() + end);
      if (!daemon.SubmitBatch(chunk).ok()) {
        std::printf("ingest phase aborted: submit failed\n");
        return;
      }
    }
    if (!daemon.Flush().ok()) {
      std::printf("ingest phase aborted: flush failed\n");
      return;
    }
    feed_seconds = feed_timer.ElapsedSeconds();
    publishes = daemon.stats().publishes;
    // Crash-stop: no drain, no cursor — the next boot replays everything.
    (void)daemon.Stop(ingest::IngestDaemon::StopMode::kAbort);
  }
  const double pages_per_sec =
      feed_seconds > 0 ? stream.size() / feed_seconds : 0.0;

  const auto lag = obs::MetricsRegistry::Global()
                       .histogram("ingest.publish.lag_seconds")
                       ->Snapshot();
  const double lag_p50_ms =
      lag.TotalCount() ? lag.Percentile(50) * 1e3 : 0.0;
  const double lag_p99_ms =
      lag.TotalCount() ? lag.Percentile(99) * 1e3 : 0.0;
  std::printf("sustained ingest: %zu pages in %.2fs = %.0f pages/s "
              "(%llu publishes)\n",
              stream.size(), feed_seconds, pages_per_sec,
              static_cast<unsigned long long>(publishes));
  std::printf("publish lag (ack -> served): p50 %.1fms, p99 %.1fms over "
              "%llu pages\n",
              lag_p50_ms, lag_p99_ms,
              static_cast<unsigned long long>(lag.TotalCount()));

  // Recovery 1: full-WAL replay (the crash left no cursor), then compact
  // and drain so the next boot starts from the checkpoint.
  {
    core::IncrementalUpdater updater(base, &world.world->lexicon(),
                                     world.corpus_words, config);
    ingest::IngestDaemon daemon(&updater, nullptr, options);
    util::WallTimer recovery_timer;
    if (const util::Status status = daemon.Start(); !status.ok()) {
      std::printf("ingest phase aborted: recovery failed: %s\n",
                  status.ToString().c_str());
      return;
    }
    full_replay_seconds = recovery_timer.ElapsedSeconds();
    full_replay_records = daemon.recovery_report().records_delivered;
    (void)daemon.CompactNow();
    (void)daemon.Stop(ingest::IngestDaemon::StopMode::kDrain);
  }

  // Recovery 2: bounded replay past the compaction cursor.
  double bounded_replay_seconds = 0.0;
  uint64_t bounded_replay_records = 0;
  {
    core::IncrementalUpdater updater(base, &world.world->lexicon(),
                                     world.corpus_words, config);
    ingest::IngestDaemon daemon(&updater, nullptr, options);
    util::WallTimer recovery_timer;
    if (const util::Status status = daemon.Start(); !status.ok()) {
      std::printf("ingest phase aborted: bounded recovery failed: %s\n",
                  status.ToString().c_str());
      return;
    }
    bounded_replay_seconds = recovery_timer.ElapsedSeconds();
    bounded_replay_records = daemon.recovery_report().records_delivered;
    (void)daemon.Stop(ingest::IngestDaemon::StopMode::kDrain);
  }
  std::printf("recovery replay: full WAL %llu records in %.2fs; after "
              "compaction %llu records in %.2fs%s\n",
              static_cast<unsigned long long>(full_replay_records),
              full_replay_seconds,
              static_cast<unsigned long long>(bounded_replay_records),
              bounded_replay_seconds,
              bounded_replay_records < full_replay_records
                  ? " (bounded, as required)"
                  : " ** REPLAY NOT BOUNDED **");

  auto& registry = obs::MetricsRegistry::Global();
  registry.gauge("bench.ingest.pages_per_sec")->Set(pages_per_sec);
  registry.gauge("bench.ingest.publish_lag_p50_ms")->Set(lag_p50_ms);
  registry.gauge("bench.ingest.publish_lag_p99_ms")->Set(lag_p99_ms);
  registry.gauge("bench.ingest.replay_full_seconds")->Set(full_replay_seconds);
  registry.gauge("bench.ingest.replay_full_records")
      ->Set(static_cast<double>(full_replay_records));
  registry.gauge("bench.ingest.replay_compacted_seconds")
      ->Set(bounded_replay_seconds);
  registry.gauge("bench.ingest.replay_compacted_records")
      ->Set(static_cast<double>(bounded_replay_records));
}

void Run() {
  bench::PrintHeader("Incremental",
                     "never-ending maintenance, served while updating");
  auto world = bench::MakeBenchWorld(bench::BenchScale());
  const eval::Oracle oracle = world->Oracle();
  const auto config = bench::DefaultBuilderConfig();

  // Base = 70% of pages; the rest arrives in 3 equal batches.
  kb::EncyclopediaDump base;
  std::vector<std::vector<kb::EncyclopediaPage>> batches(3);
  const size_t n = world->output->dump.size();
  for (size_t i = 0; i < n; ++i) {
    kb::EncyclopediaPage page = world->output->dump.page(i);
    page.page_id = 0;
    if (i < n * 7 / 10) {
      base.AddPage(std::move(page));
    } else {
      batches[(i - n * 7 / 10) % 3].push_back(std::move(page));
    }
  }

  util::WallTimer timer;
  core::IncrementalUpdater updater(base, &world->world->lexicon(),
                                   world->corpus_words, config);
  const double base_seconds = timer.ElapsedSeconds();
  std::printf("\nbase build: %zu pages -> %zu isA in %.1fs (precision %.1f%%)\n",
              base.size(), updater.taxonomy().num_edges(), base_seconds,
              100.0 * eval::ExactPrecision(updater.taxonomy(), oracle)
                          .precision());

  // Probe entity for the coherence check: a base page with hypernyms.
  std::string probe;
  for (const auto& page : base.pages()) {
    const taxonomy::NodeId id = updater.taxonomy().Find(page.name);
    if (id != taxonomy::kInvalidNode &&
        !updater.taxonomy().Hypernyms(id).empty()) {
      probe = page.name;
      break;
    }
  }
  std::vector<std::string> mentions;
  for (const auto& page : base.pages()) mentions.push_back(page.mention);

  // -- serve-while-updating: readers hammer the service across publishes --
  taxonomy::ApiService api(updater.snapshot());
  ReaderState state(batches.size() + 3);
  auto expect_for = [&](uint64_t version) {
    const taxonomy::NodeId id = updater.taxonomy().Find(probe);
    const int64_t count =
        id == taxonomy::kInvalidNode
            ? 0
            : static_cast<int64_t>(updater.taxonomy().Hypernyms(id).size());
    if (version < state.expected.size()) {
      state.expected[version].store(count, std::memory_order_release);
    }
  };
  uint64_t version = updater.Publish(&api);
  expect_for(version);
  std::vector<double> publish_at = {0.0};  // seconds since readers started

  std::vector<util::Histogram> latencies(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  util::WallTimer serve_timer;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back(ReaderLoop, std::cref(api), std::cref(mentions),
                         std::cref(probe), &state, &latencies[r]);
  }

  std::printf("\n%6s %8s %12s %9s %9s %8s %8s %10s\n", "batch", "pages",
              "candidates", "accepted", "rejected", "revoked", "secs",
              "precision");
  std::vector<double> batch_seconds;
  for (size_t b = 0; b < batches.size(); ++b) {
    const auto report = updater.ApplyBatch(batches[b]);
    version = updater.Publish(&api);
    expect_for(version);
    publish_at.push_back(serve_timer.ElapsedSeconds());
    batch_seconds.push_back(report.seconds);
    std::printf("%6zu %8zu %12zu %9zu %9zu %8zu %8.2f %9.1f%%\n", b + 1,
                report.pages_added, report.candidates, report.accepted,
                report.rejected, report.revoked, report.seconds,
                100.0 * eval::ExactPrecision(updater.taxonomy(), oracle)
                            .precision());
  }
  state.stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  const double serve_seconds = serve_timer.ElapsedSeconds();
  publish_at.push_back(serve_seconds);

  // Per-batch cost must not grow with batch index: the verification corpus
  // statistics are maintained incrementally, never re-fed from scratch.
  const double growth =
      batch_seconds.front() > 0.0
          ? batch_seconds.back() / batch_seconds.front()
          : 0.0;
  std::printf("\nper-batch cost growth (batch3/batch1): %.2fx %s\n", growth,
              growth < 2.0 ? "(flat: O(delta) verification stats)"
                           : "** GROWING: batch cost scales with corpus **");

  double worst_p99 = 0.0, p50_sum = 0.0;
  uint64_t total_calls = 0;
  for (const util::Histogram& h : latencies) {
    worst_p99 = std::max(worst_p99, h.Percentile(99));
    p50_sum += h.Percentile(50);
    total_calls += h.count();
  }
  std::printf("\nserved %llu calls from %d readers across %zu published "
              "versions in %.2fs\n",
              static_cast<unsigned long long>(total_calls), kReaders,
              publish_at.size() - 1, serve_seconds);
  std::printf("query latency: p50 %.1fus (reader avg), worst-reader p99 "
              "%.1fus; coherence probes %llu, torn reads %llu%s\n",
              p50_sum / kReaders, worst_p99,
              static_cast<unsigned long long>(state.probes.load()),
              static_cast<unsigned long long>(state.torn.load()),
              state.torn.load() == 0 ? " (zero, as required)"
                                     : " ** TORN READS **");

  std::printf("\n%8s %10s %10s %10s %12s %10s\n", "version", "isA",
              "mentions", "queries", "window (s)", "QPS");
  const auto stats = api.AllVersionStats();
  for (size_t v = 0; v < stats.size(); ++v) {
    // stats[0] is the ctor's version, retired before readers started; the
    // updater's publishes map to consecutive publish_at intervals.
    const double window = v >= 1 && v < publish_at.size()
                              ? publish_at[v] - publish_at[v - 1]
                              : 0.0;
    std::printf("%8llu %10zu %10zu %10llu %12.2f %10.0f\n",
                static_cast<unsigned long long>(stats[v].version),
                stats[v].num_edges, stats[v].num_mentions,
                static_cast<unsigned long long>(stats[v].queries), window,
                window > 0 ? stats[v].queries / window : 0.0);
  }

  timer.Restart();
  core::CnProbaseBuilder::Report full_report;
  const auto full = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      config, &full_report);
  const double full_seconds = timer.ElapsedSeconds();
  std::printf("\nfull rebuild of all %zu pages: %zu isA in %.1fs "
              "(precision %.1f%%)\n",
              world->output->dump.size(), full.num_edges(), full_seconds,
              100.0 * eval::ExactPrecision(full, oracle).precision());
  std::printf("\nshape check: batches cost a small fraction of a rebuild and "
              "stay flat across\nbatch index (verification stats maintained "
              "incrementally); queries keep\nflowing during publishes with "
              "zero torn reads, each attributed to exactly one\npublished "
              "version.\n");

  // Same stream, this time through the crash-safe WAL-backed daemon.
  std::vector<kb::EncyclopediaPage> stream;
  for (const auto& batch : batches) {
    stream.insert(stream.end(), batch.begin(), batch.end());
  }
  RunIngestPhase(*world, base, stream, config);
}

}  // namespace
}  // namespace cnpb

int main(int argc, char** argv) {
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }
  cnpb::Run();
  if (!metrics_out.empty()) {
    const cnpb::util::Status status = cnpb::obs::WriteMetricsFiles(
        cnpb::obs::MetricsRegistry::Global(), metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics written to %s.prom and %s.json\n",
                metrics_out.c_str(), metrics_out.c_str());
  }
  return 0;
}
