// Never-ending maintenance (deployment angle, §V): per-batch update cost of
// the incremental updater vs. full rebuilds, at stable precision. CN-Probase
// sits on CN-DBpedia, a never-ending extraction system — batches of new
// pages arrive continuously.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/incremental.h"
#include "util/timer.h"

namespace cnpb {
namespace {

void Run() {
  bench::PrintHeader("Incremental", "never-ending taxonomy maintenance");
  auto world = bench::MakeBenchWorld(bench::BenchScale());
  const eval::Oracle oracle = world->Oracle();
  const auto config = bench::DefaultBuilderConfig();

  // Base = 70% of pages; the rest arrives in 3 equal batches.
  kb::EncyclopediaDump base;
  std::vector<std::vector<kb::EncyclopediaPage>> batches(3);
  const size_t n = world->output->dump.size();
  for (size_t i = 0; i < n; ++i) {
    kb::EncyclopediaPage page = world->output->dump.page(i);
    page.page_id = 0;
    if (i < n * 7 / 10) {
      base.AddPage(std::move(page));
    } else {
      batches[(i - n * 7 / 10) % 3].push_back(std::move(page));
    }
  }

  util::WallTimer timer;
  core::IncrementalUpdater updater(base, &world->world->lexicon(),
                                   world->corpus_words, config);
  const double base_seconds = timer.ElapsedSeconds();
  std::printf("\nbase build: %zu pages -> %zu isA in %.1fs (precision %.1f%%)\n",
              base.size(), updater.taxonomy().num_edges(), base_seconds,
              100.0 * eval::ExactPrecision(updater.taxonomy(), oracle)
                          .precision());

  std::printf("\n%8s %8s %12s %10s %10s %10s\n", "batch", "pages",
              "candidates", "accepted", "secs", "precision");
  for (size_t b = 0; b < batches.size(); ++b) {
    const auto report = updater.ApplyBatch(batches[b]);
    std::printf("%8zu %8zu %12zu %10zu %10.2f %9.1f%%\n", b + 1,
                report.pages_added, report.candidates, report.accepted,
                report.seconds,
                100.0 * eval::ExactPrecision(updater.taxonomy(), oracle)
                            .precision());
  }

  timer.Restart();
  core::CnProbaseBuilder::Report full_report;
  const auto full = core::CnProbaseBuilder::Build(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      config, &full_report);
  const double full_seconds = timer.ElapsedSeconds();
  std::printf("\nfull rebuild of all %zu pages: %zu isA in %.1fs "
              "(precision %.1f%%)\n",
              world->output->dump.size(), full.num_edges(), full_seconds,
              100.0 * eval::ExactPrecision(full, oracle).precision());
  std::printf("\nshape check: batches cost a small fraction of a rebuild "
              "(no CopyNet retraining,\nno re-extraction of old pages) at "
              "matching precision and coverage.\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
