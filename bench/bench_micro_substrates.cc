// Micro-benchmarks (M1) for the substrates every experiment rests on:
// segmenter, PMI lookups, separation parses, trie matching, taxonomy
// queries and the API service. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "generation/separation.h"
#include "taxonomy/api_service.h"
#include "text/ngram.h"
#include "text/trie_matcher.h"

namespace cnpb {
namespace {

// Small shared fixture, built once per process.
struct MicroState {
  std::unique_ptr<bench::BenchWorld> world;
  std::unique_ptr<text::NgramCounter> ngrams;
  std::unique_ptr<taxonomy::Taxonomy> taxonomy;
  std::unique_ptr<taxonomy::ApiService> api;
  std::vector<std::string> abstracts;
  std::vector<std::string> brackets;
  std::vector<std::string> mentions;
  std::vector<std::string> concepts;
};

MicroState& State() {
  static MicroState* state = [] {
    auto* s = new MicroState();
    s->world = bench::MakeBenchWorld(4000);
    s->ngrams = std::make_unique<text::NgramCounter>();
    for (const auto& sentence : s->world->corpus_words) {
      s->ngrams->AddSentence(sentence);
    }
    auto config = bench::DefaultBuilderConfig();
    config.neural.epochs = 1;
    config.neural.max_train_samples = 500;
    core::CnProbaseBuilder::Report report;
    s->taxonomy = std::make_unique<taxonomy::Taxonomy>(
        core::CnProbaseBuilder::Build(s->world->output->dump,
                                      s->world->world->lexicon(),
                                      s->world->corpus_words, config, &report));
    s->api = std::make_unique<taxonomy::ApiService>(s->taxonomy.get());
    core::CnProbaseBuilder::RegisterMentions(s->world->output->dump,
                                             *s->taxonomy, s->api.get());
    for (const auto& page : s->world->output->dump.pages()) {
      if (!page.abstract.empty()) s->abstracts.push_back(page.abstract);
      if (!page.bracket.empty()) s->brackets.push_back(page.bracket);
      s->mentions.push_back(page.mention);
    }
    for (taxonomy::NodeId id = 0; id < s->taxonomy->num_nodes(); ++id) {
      if (s->taxonomy->Kind(id) == taxonomy::NodeKind::kConcept) {
        s->concepts.push_back(s->taxonomy->Name(id));
      }
    }
    return s;
  }();
  return *state;
}

void BM_SegmenterAbstract(benchmark::State& bm) {
  MicroState& s = State();
  size_t i = 0, bytes = 0;
  for (auto _ : bm) {
    const std::string& abstract = s.abstracts[i++ % s.abstracts.size()];
    benchmark::DoNotOptimize(s.world->segmenter->Segment(abstract));
    bytes += abstract.size();
  }
  bm.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SegmenterAbstract);

void BM_PmiLookup(benchmark::State& bm) {
  MicroState& s = State();
  for (auto _ : bm) {
    benchmark::DoNotOptimize(s.ngrams->Pmi("首席", "战略官"));
  }
}
BENCHMARK(BM_PmiLookup);

void BM_SeparationParse(benchmark::State& bm) {
  MicroState& s = State();
  generation::SeparationAlgorithm separation(s.ngrams.get());
  size_t i = 0;
  for (auto _ : bm) {
    const std::string& bracket = s.brackets[i++ % s.brackets.size()];
    benchmark::DoNotOptimize(
        separation.ParseCompound(bracket, *s.world->segmenter));
  }
}
BENCHMARK(BM_SeparationParse);

void BM_TrieMatchQuestion(benchmark::State& bm) {
  MicroState& s = State();
  text::TrieMatcher matcher;
  for (size_t i = 0; i < s.mentions.size(); ++i) {
    matcher.Add(s.mentions[i], i + 1);
  }
  const std::string question = "请问" + s.mentions[7] + "的代表作品有哪些？";
  for (auto _ : bm) {
    benchmark::DoNotOptimize(matcher.FindAll(question));
  }
}
BENCHMARK(BM_TrieMatchQuestion);

void BM_TaxonomyFind(benchmark::State& bm) {
  MicroState& s = State();
  size_t i = 0;
  for (auto _ : bm) {
    benchmark::DoNotOptimize(
        s.taxonomy->Find(s.concepts[i++ % s.concepts.size()]));
  }
}
BENCHMARK(BM_TaxonomyFind);

void BM_TransitiveHypernyms(benchmark::State& bm) {
  MicroState& s = State();
  const taxonomy::NodeId node = s.taxonomy->Find("男演员");
  for (auto _ : bm) {
    benchmark::DoNotOptimize(s.taxonomy->TransitiveHypernyms(node));
  }
}
BENCHMARK(BM_TransitiveHypernyms);

void BM_ApiMen2Ent(benchmark::State& bm) {
  MicroState& s = State();
  size_t i = 0;
  for (auto _ : bm) {
    benchmark::DoNotOptimize(s.api->Men2Ent(s.mentions[i++ % s.mentions.size()]));
  }
}
BENCHMARK(BM_ApiMen2Ent);

void BM_ApiGetEntity(benchmark::State& bm) {
  MicroState& s = State();
  size_t i = 0;
  for (auto _ : bm) {
    benchmark::DoNotOptimize(
        s.api->GetEntity(s.concepts[i++ % s.concepts.size()]));
  }
}
BENCHMARK(BM_ApiGetEntity);

}  // namespace
}  // namespace cnpb

BENCHMARK_MAIN();
