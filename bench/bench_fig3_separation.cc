// Reproduces Figure 3 (the separation-algorithm walkthrough on
// 蚂蚁金服首席战略官) and the §II in-text bracket-source result (~2M isA at
// 96.2% precision), plus an ablation against a naive "rightmost word"
// baseline (A2).
#include <cstdio>

#include "bench/bench_common.h"
#include "generation/separation.h"
#include "text/ngram.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cnpb {
namespace {

void PrintTree(const generation::SeparationAlgorithm::TreeNode* node,
               int depth) {
  if (node == nullptr) return;
  std::printf("%*s%s\n", 2 * depth, "", node->text.c_str());
  PrintTree(node->left, depth + 1);
  PrintTree(node->right, depth + 1);
}

void RunWalkthrough() {
  std::printf("-- Fig. 3 walkthrough: 蚂蚁金服首席战略官 --\n");
  text::NgramCounter ngrams;
  for (int i = 0; i < 40; ++i) ngrams.AddSentence({"蚂蚁", "金服"});
  for (int i = 0; i < 40; ++i) {
    ngrams.AddSentence({"他", "担任", "首席", "战略官"});
  }
  generation::SeparationAlgorithm separation(&ngrams);
  const auto parse =
      separation.ParseWords({"蚂蚁", "金服", "首席", "战略官"});
  std::printf("binary tree:\n");
  PrintTree(parse.root, 1);
  std::printf("hypernyms (rightmost path): ");
  for (const auto& h : parse.hypernyms) std::printf("%s ", h.c_str());
  std::printf("\nexpected (paper): 首席战略官 战略官\n\n");
}

void RunBracketSource() {
  std::printf("-- bracket source: volume, precision, throughput --\n");
  auto world = bench::MakeBenchWorld(bench::BenchScale());
  text::NgramCounter ngrams;
  for (const auto& sentence : world->corpus_words) ngrams.AddSentence(sentence);
  generation::BracketExtractor extractor(world->segmenter.get(), &ngrams);

  util::WallTimer timer;
  const auto candidates = extractor.Extract(world->output->dump);
  const double seconds = timer.ElapsedSeconds();

  const auto precision = eval::CandidatePrecision(candidates, world->Oracle());
  size_t brackets = 0;
  for (const auto& page : world->output->dump.pages()) {
    if (!page.bracket.empty()) ++brackets;
  }
  std::printf("brackets parsed:      %zu\n", brackets);
  std::printf("isA extracted:        %zu\n", candidates.size());
  std::printf("precision:            %.1f%%   (paper: 96.2%%)\n",
              100.0 * precision.precision());
  std::printf("throughput:           %.0f brackets/s\n\n", brackets / seconds);

  // Ablation A2: naive baseline takes the rightmost segmented word only.
  size_t naive_total = 0, naive_correct = 0;
  for (const auto& page : world->output->dump.pages()) {
    if (page.bracket.empty()) continue;
    for (const std::string& part : util::SplitBy(page.bracket, "、")) {
      const auto words = world->segmenter->Segment(part);
      if (words.empty()) continue;
      ++naive_total;
      if (world->output->gold.IsCorrect(page.name, words.back())) {
        ++naive_correct;
      }
    }
  }
  std::printf("-- ablation A2: separation algorithm vs rightmost-word --\n");
  std::printf("separation:           %zu isA @ %.1f%%\n", candidates.size(),
              100.0 * precision.precision());
  std::printf("rightmost word only:  %zu isA @ %.1f%%\n", naive_total,
              100.0 * naive_correct / std::max<size_t>(naive_total, 1));
  std::printf("shape check: separation recovers MORE hypernyms per bracket "
              "(suffix heads like 战略官)\nat comparable precision.\n");
}

}  // namespace
}  // namespace cnpb

int main() {
  cnpb::bench::PrintHeader("Figure 3 + §II", "separation algorithm");
  cnpb::RunWalkthrough();
  cnpb::RunBracketSource();
}
