// Loopback load generator for the HTTP serving layer (DESIGN.md §9/§11): an
// in-process HttpServer over a real built taxonomy, hammered by keep-alive
// client connections on 127.0.0.1 with the Table II request mix.
//
// Phase 1 (poller baseline): 8 connections drive the server flat out twice,
// once over the portable poll(2) loop and once over the platform poller
// (epoll on Linux), with an IncrementalUpdater publishing a fresh batch
// mid-run during the second window. Reports QPS, p50/p99, the status
// breakdown, and the epoll-vs-poll delta. Acceptance: >= 20k req/s
// sustained, and the platform poller does not regress the poll baseline.
//
// Phase 2 (connection sweep): holds N concurrent keep-alive connections
// (default sweep up to 1024) using a few driver threads that multiplex
// blocking clients — send one request on every connection, then collect
// every response. A version is published mid-window at each point; each
// connection asserts its observed version stamps never go backwards.
// Acceptance: the largest point connects fully, the server rejects nothing,
// and stamps are monotonic.
//
// Phase 3 (result cache): the same Zipf-skewed mix against a cache-enabled
// ApiEndpoints; reports the cache hit ratio and the req/s delta against the
// uncached phase-1 number.
//
// Phase 4 (batch amortization): one connection compares single-shot
// /v1/men2ent against POST /v1/men2ent_batch at 64 mentions per request,
// in items resolved per second.
//
// Phase 5 (overload): the in-flight cap is armed and every admitted query
// is slowed by an injected 2ms stall, so the connections saturate admission
// and the shed path shows itself as polite 429 + Retry-After responses —
// never connection resets.
//
// Phase 6 (shard router): 4 shards x 2 replicas of in-process backends
// behind the Router frontend, all serving one generation. A healthy window
// sets the baseline, then a second window runs with concurrent batch
// traffic while one replica is stopped mid-run. Acceptance: zero
// mixed-generation responses (no refusals, every merged batch carries the
// cluster's single stamp) and the kill-window hedged p99 stays within 3x
// the healthy-cluster p99.
//
// Phase 7 (multi-collection tenancy): two collections in one
// CollectionManager behind one server. A bare-path window (routed to the
// default collection, byte-compatible with single-tenant serving) measures
// the routing-layer overhead against the phase-1 platform-poller number;
// a prefixed window splits /v1/c/<name>/ traffic across both collections
// with 1-in-4 requests hitting the /isa reasoning endpoint. Acceptance:
// both windows serve 200s with zero 5xx.
//
//   bench_server [--seconds S] [--connections N] [--threads T]
//                [--sweep N1,N2,...] [--cache-mb MB] [--json PATH]
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "collections/manager.h"
#include "core/builder.h"
#include "core/incremental.h"
#include "router/router.h"
#include "router/shard_map.h"
#include "server/client.h"
#include "server/http.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cnpb {
namespace {

// The paper's observed API mix (Table II, 83.5M calls over six months).
constexpr double kPMen2Ent = 43'896'044.0 / 83'504'492.0;
constexpr double kPGetConcept = 13'815'076.0 / 83'504'492.0;

struct Options {
  double seconds = 2.0;
  int connections = 8;
  int threads = 4;
  std::vector<int> sweep = {8, 64, 256, 1024};
  size_t cache_mb = 16;
  std::string json_path;
};

struct WorkerResult {
  util::Histogram latency_ms;
  uint64_t ok = 0;
  uint64_t shed = 0;          // 429
  uint64_t not_found = 0;     // 404
  uint64_t server_error = 0;  // 5xx
  uint64_t io_failures = 0;   // connection died; reconnected
  uint64_t shed_without_retry_after = 0;
};

// The client side of a 1024-connection sweep needs ~2x that in fds (client
// and server ends both live in this process); the default soft limit is
// often 1024. Raising it is bench setup, not product behaviour — the
// server itself never needs more fds than connections it accepted.
void RaiseFdLimit() {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  const rlim_t want = std::min<rlim_t>(lim.rlim_max, 1 << 16);
  if (lim.rlim_cur >= want) return;
  lim.rlim_cur = want;
  (void)setrlimit(RLIMIT_NOFILE, &lim);
}

uint64_t ParseVersionStamp(const std::string& body) {
  const size_t at = body.find("\"version\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(body.c_str() + at + 10, nullptr, 10);
}

// Pre-rendered request targets in the Table II mix, Zipf-skewed like the
// in-process bench, so the hot loop does no string building.
std::vector<std::string> MakeTargets(
    const std::vector<std::string>& mentions,
    const std::vector<std::string>& entities,
    const std::vector<std::string>& concepts, uint64_t seed, size_t count) {
  util::Rng rng(seed);
  util::ZipfSampler mention_zipf(mentions.size(), 1.0);
  util::ZipfSampler entity_zipf(entities.size(), 1.0);
  util::ZipfSampler concept_zipf(concepts.size(), 1.0);
  std::vector<std::string> targets;
  targets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double u = rng.UniformDouble();
    if (u < kPMen2Ent) {
      targets.push_back(
          "/v1/men2ent?mention=" +
          server::PercentEncode(mentions[mention_zipf.Sample(rng)]));
    } else if (u < kPMen2Ent + kPGetConcept) {
      targets.push_back(
          "/v1/getConcept?entity=" +
          server::PercentEncode(entities[entity_zipf.Sample(rng)]));
    } else {
      targets.push_back(
          "/v1/getEntity?concept=" +
          server::PercentEncode(concepts[concept_zipf.Sample(rng)]) +
          "&limit=20");
    }
  }
  return targets;
}

void DriveConnection(uint16_t port, const std::vector<std::string>& targets,
                     std::chrono::steady_clock::time_point deadline,
                     WorkerResult* result) {
  server::HttpClient client;
  size_t i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!client.connected() &&
        !client.Connect("127.0.0.1", port).ok()) {
      ++result->io_failures;
      continue;
    }
    const std::string& target = targets[i++ % targets.size()];
    const auto start = std::chrono::steady_clock::now();
    auto response = client.Get(target);
    if (!response.ok()) {
      ++result->io_failures;
      continue;
    }
    result->latency_ms.Add(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (response->status == 200) {
      ++result->ok;
    } else if (response->status == 429) {
      ++result->shed;
      if (response->Header("Retry-After").empty()) {
        ++result->shed_without_retry_after;
      }
    } else if (response->status == 404) {
      ++result->not_found;
    } else if (response->status >= 500) {
      ++result->server_error;
    }
  }
}

uint64_t TotalRequests(const WorkerResult& r) {
  return r.ok + r.shed + r.not_found + r.server_error;
}

struct Window {
  double qps = 0;
  double elapsed = 0;
  double p50 = 0;
  double p99 = 0;
  WorkerResult total;
};

// One thread per connection, request/response lockstep — the right shape
// for small connection counts where per-request latency matters. A nonzero
// `stagger_ms` spaces out the connects: a burst of simultaneous connects is
// drained into one event loop's accept pass, while connects arriving under
// load spread across the loops — which is what an overload test needs to
// get queries genuinely concurrent.
Window RunWindow(uint16_t port,
                 const std::vector<std::vector<std::string>>& target_sets,
                 int connections, double seconds, int stagger_ms = 0) {
  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  util::WallTimer timer;
  std::vector<std::thread> workers;
  for (int c = 0; c < connections; ++c) {
    if (stagger_ms > 0 && c > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stagger_ms));
    }
    workers.emplace_back(
        DriveConnection, port,
        std::cref(target_sets[static_cast<size_t>(c) % target_sets.size()]),
        deadline, &results[static_cast<size_t>(c)]);
  }
  for (auto& worker : workers) worker.join();
  Window window;
  window.elapsed = timer.ElapsedSeconds();
  util::Histogram latency;
  for (const WorkerResult& r : results) {
    window.total.ok += r.ok;
    window.total.shed += r.shed;
    window.total.not_found += r.not_found;
    window.total.server_error += r.server_error;
    window.total.io_failures += r.io_failures;
    window.total.shed_without_retry_after += r.shed_without_retry_after;
    for (double sample : r.latency_ms.samples()) latency.Add(sample);
  }
  window.qps =
      static_cast<double>(TotalRequests(window.total)) / window.elapsed;
  window.p50 = latency.Percentile(50);
  window.p99 = latency.Percentile(99);
  return window;
}

void PrintWindow(const char* label, const Window& w) {
  std::printf("  %-10s %s requests (%.0f req/s)   p50 %.3f ms   p99 %.3f ms\n",
              label, util::CommaSeparated(TotalRequests(w.total)).c_str(),
              w.qps, w.p50, w.p99);
  std::printf("             200: %llu   404: %llu   429: %llu   5xx: %llu"
              "   io: %llu\n",
              static_cast<unsigned long long>(w.total.ok),
              static_cast<unsigned long long>(w.total.not_found),
              static_cast<unsigned long long>(w.total.shed),
              static_cast<unsigned long long>(w.total.server_error),
              static_cast<unsigned long long>(w.total.io_failures));
}

// One driver multiplexing `num_clients` blocking connections: send one
// request on every connection, then collect every response. All
// connections are concurrently in flight from the server's point of view,
// with only a handful of driver threads behind them.
struct SweepShard {
  uint64_t requests = 0;
  uint64_t io_failures = 0;
  uint64_t connect_failures = 0;
  bool versions_monotonic = true;
};

void DriveMultiplexed(uint16_t port, const std::vector<std::string>& targets,
                      int num_clients, std::atomic<int>* connected,
                      std::chrono::steady_clock::time_point deadline,
                      SweepShard* out) {
  std::vector<server::HttpClient> clients(static_cast<size_t>(num_clients));
  std::vector<uint64_t> last_version(static_cast<size_t>(num_clients), 0);
  for (auto& client : clients) {
    if (client.Connect("127.0.0.1", port).ok()) {
      connected->fetch_add(1, std::memory_order_relaxed);
    } else {
      ++out->connect_failures;
    }
  }
  size_t i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto& client : clients) {
      if (!client.connected()) continue;
      const std::string& target = targets[i++ % targets.size()];
      const std::string request =
          "GET " + target + " HTTP/1.1\r\nHost: bench\r\n\r\n";
      if (!client.SendRaw(request).ok()) ++out->io_failures;
    }
    for (size_t k = 0; k < clients.size(); ++k) {
      if (!clients[k].connected()) {
        // Reconnect out of band so the next round regains the connection.
        if (clients[k].Connect("127.0.0.1", port).ok()) last_version[k] = 0;
        continue;
      }
      auto response = clients[k].ReadResponse();
      if (!response.ok()) {
        ++out->io_failures;
        continue;
      }
      ++out->requests;
      // Versions are published in increasing order and every response is
      // stamped from its pinned snapshot, so what one connection observes
      // can never go backwards — a mid-sweep publish must only ever move
      // the stamps forward.
      const uint64_t version = ParseVersionStamp(response->body);
      if (version > 0) {
        if (version < last_version[k]) out->versions_monotonic = false;
        last_version[k] = version;
      }
    }
  }
}

std::string JsonBool(bool value) { return value ? "true" : "false"; }

void Run(const Options& options) {
  util::IgnoreSigpipe();
  RaiseFdLimit();
  bench::PrintHeader("bench_server",
                     "loopback HTTP serving under the Table II mix");
  auto world = bench::MakeBenchWorld(bench::BenchScale(4000));
  const auto config = bench::DefaultBuilderConfig();

  // The updater owns the authoritative snapshot: it builds the base
  // taxonomy once and republishes after each batch — exactly the deployed
  // never-ending-extraction loop this server fronts.
  core::IncrementalUpdater updater(world->output->dump,
                                   &world->world->lexicon(),
                                   world->corpus_words, config);
  taxonomy::ApiService api(taxonomy::Taxonomy::Freeze(taxonomy::Taxonomy()));
  updater.Publish(&api);
  const uint64_t version_before = api.version();

  // Query universe, drawn from what the base taxonomy can answer.
  const auto snapshot = api.CurrentTaxonomy();
  std::vector<std::string> mentions;
  std::vector<std::string> entities;
  for (const auto& page : world->output->dump.pages()) {
    if (snapshot->Find(page.name) == taxonomy::kInvalidNode) continue;
    mentions.push_back(page.mention);
    entities.push_back(page.name);
  }
  std::vector<std::string> concepts;
  for (taxonomy::NodeId id = 0; id < snapshot->num_nodes(); ++id) {
    if (snapshot->Kind(id) == taxonomy::NodeKind::kConcept) {
      concepts.push_back(snapshot->Name(id));
    }
  }
  std::printf("universe: %zu mentions, %zu entities, %zu concepts "
              "(version %llu)\n",
              mentions.size(), entities.size(), concepts.size(),
              static_cast<unsigned long long>(version_before));

  // A fresh batch to publish mid-run: new names under existing tags.
  std::vector<kb::EncyclopediaPage> fresh;
  for (int i = 0; i < 40; ++i) {
    kb::EncyclopediaPage page;
    page.name = "新条目" + std::to_string(i);
    page.mention = page.name;
    page.tags = world->output->dump.page(i % world->output->dump.size()).tags;
    fresh.push_back(std::move(page));
  }

  server::ApiEndpoints endpoints(&api);
  std::vector<std::vector<std::string>> target_sets;
  for (int c = 0; c < options.connections; ++c) {
    target_sets.push_back(MakeTargets(mentions, entities, concepts,
                                      2018 + static_cast<uint64_t>(c),
                                      4096));
  }

  // ---- Phase 1: poller baseline, poll(2) vs the platform poller ----
  std::printf("\nphase 1: %d keep-alive connections, %.1fs per window\n",
              options.connections, options.seconds);
  Window poll_window;
  {
    server::HttpServer::Config server_config;
    server_config.num_threads = options.threads;
    server_config.poller = server::HttpServer::Poller::kPoll;
    server::HttpServer httpd(server_config, endpoints.AsHandler());
    if (const util::Status status = httpd.Start(); !status.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    poll_window = RunWindow(httpd.port(), target_sets, options.connections,
                            options.seconds);
    httpd.Stop();
    httpd.Wait();
  }
  PrintWindow("poll", poll_window);

  server::HttpServer::Config server_config;
  server_config.num_threads = options.threads;
  server::HttpServer httpd(server_config, endpoints.AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  const bool have_epoll = std::string(httpd.poller_name()) == "epoll";

  // The mid-run publish rides on the platform-poller window, while load is
  // on: the reported QPS includes serving across a live version swap.
  Window epoll_window;
  {
    std::thread publisher([&] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.seconds * 0.5));
      const auto batch = updater.ApplyBatch(fresh);
      const uint64_t version_after = updater.Publish(&api);
      std::printf("  mid-run publish: version %llu -> %llu "
                  "(+%zu pages, %zu accepted)\n",
                  static_cast<unsigned long long>(version_before),
                  static_cast<unsigned long long>(version_after),
                  batch.pages_added, batch.accepted);
    });
    epoll_window = RunWindow(httpd.port(), target_sets, options.connections,
                             options.seconds);
    publisher.join();
  }
  PrintWindow(httpd.poller_name(), epoll_window);
  const double delta_pct =
      poll_window.qps > 0
          ? 100.0 * (epoll_window.qps - poll_window.qps) / poll_window.qps
          : 0.0;
  const bool floor_ok = epoll_window.qps >= 20000.0;
  // "No regression" leaves room for run-to-run noise: at 8 connections the
  // two pollers do the same number of syscalls per request, so anything
  // beyond -10% would be a real epoll-path defect, not noise.
  const bool no_regression = !have_epoll || epoll_window.qps >= 0.9 * poll_window.qps;
  std::printf("  delta       %s vs poll: %+.1f%%\n", httpd.poller_name(),
              delta_pct);
  std::printf("  acceptance  %s (floor 20,000 req/s; %s)\n",
              floor_ok && no_regression ? "PASS" : "FAIL",
              no_regression ? "no poll regression" : "REGRESSED vs poll");

  // ---- Phase 2: connection sweep with mid-sweep publishes ----
  std::printf("\nphase 2: connection sweep (%s poller)\n",
              httpd.poller_name());
  struct SweepPoint {
    int connections = 0;
    double qps = 0;
    uint64_t requests = 0;
    uint64_t connect_failures = 0;
    uint64_t io_failures = 0;
    uint64_t rejected = 0;
    size_t open_peak = 0;
    bool versions_monotonic = true;
  };
  std::vector<SweepPoint> sweep_points;
  const double sweep_seconds = std::max(0.5, options.seconds / 2.0);
  for (const int n : options.sweep) {
    const uint64_t rejected_before = httpd.stats().connections_rejected;
    const int drivers = std::min(8, n);
    std::vector<SweepShard> shards(static_cast<size_t>(drivers));
    std::atomic<int> connected{0};
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(sweep_seconds));
    util::WallTimer timer;
    std::vector<std::thread> threads;
    for (int d = 0; d < drivers; ++d) {
      const int clients = n / drivers + (d < n % drivers ? 1 : 0);
      threads.emplace_back(DriveMultiplexed, httpd.port(),
                           std::cref(target_sets[static_cast<size_t>(d) %
                                                 target_sets.size()]),
                           clients, &connected, deadline,
                           &shards[static_cast<size_t>(d)]);
    }
    // Publish only once every connection is up (or the window is half
    // gone), so the version swap provably lands under full concurrency —
    // open_connections sampled here is the evidence. A completed client
    // connect() only proves the kernel queued the connection; the second
    // clause waits for the event loops to actually accept them all.
    while ((connected.load(std::memory_order_relaxed) < n ||
            httpd.stats().open_connections < static_cast<size_t>(n)) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const size_t open_peak = httpd.stats().open_connections;
    updater.Publish(&api);  // the swap lands while all n connections serve
    for (auto& thread : threads) thread.join();
    const double elapsed = timer.ElapsedSeconds();

    SweepPoint point;
    point.connections = n;
    point.open_peak = open_peak;
    for (const SweepShard& shard : shards) {
      point.requests += shard.requests;
      point.io_failures += shard.io_failures;
      point.connect_failures += shard.connect_failures;
      point.versions_monotonic &= shard.versions_monotonic;
    }
    point.qps = static_cast<double>(point.requests) / elapsed;
    point.rejected = httpd.stats().connections_rejected - rejected_before;
    sweep_points.push_back(point);
    std::printf("  %5d conns  %9.0f req/s   open@publish %5zu   "
                "rejected %llu   connect-fail %llu   stamps %s\n",
                n, point.qps, point.open_peak,
                static_cast<unsigned long long>(point.rejected),
                static_cast<unsigned long long>(point.connect_failures),
                point.versions_monotonic ? "monotonic" : "WENT BACKWARDS");
  }
  const SweepPoint& top = sweep_points.back();
  bool sweep_ok = top.connect_failures == 0 && top.rejected == 0 &&
                  top.open_peak == static_cast<size_t>(top.connections);
  for (const SweepPoint& point : sweep_points) {
    sweep_ok = sweep_ok && point.versions_monotonic;
  }
  std::printf("  acceptance  %s (%d concurrent connections, 0 rejected, "
              "monotonic stamps)\n",
              sweep_ok ? "PASS" : "FAIL", top.connections);

  // ---- Phase 3: result cache on the same mix ----
  server::ResultCache::Config cache_config;
  cache_config.max_bytes = options.cache_mb << 20;
  server::ApiEndpoints cached_endpoints(&api, cache_config);
  Window cache_window;
  {
    server::HttpServer::Config cached_config;
    cached_config.num_threads = options.threads;
    server::HttpServer cached_httpd(cached_config,
                                    cached_endpoints.AsHandler());
    if (const util::Status status = cached_httpd.Start(); !status.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    cache_window = RunWindow(cached_httpd.port(), target_sets,
                             options.connections, options.seconds);
    cached_httpd.Stop();
    cached_httpd.Wait();
  }
  const server::ResultCache::Stats cache_stats =
      cached_endpoints.cache()->stats();
  const double cache_delta_pct =
      epoll_window.qps > 0
          ? 100.0 * (cache_window.qps - epoll_window.qps) / epoll_window.qps
          : 0.0;
  std::printf("\nphase 3: result cache (%zu MB), %d connections\n",
              options.cache_mb, options.connections);
  PrintWindow("cached", cache_window);
  std::printf("  cache       hit ratio %.1f%% (%llu hits, %llu misses, "
              "%llu insertions, %llu evictions)\n",
              100.0 * cache_stats.hit_ratio(),
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.insertions),
              static_cast<unsigned long long>(cache_stats.evictions));
  std::printf("  delta       cached vs uncached: %+.1f%%\n", cache_delta_pct);

  // ---- Phase 4: batch amortization ----
  // The same mentions, resolved one-per-request and 64-per-request. Items
  // per second is the honest unit: a batch answers 64 lookups against one
  // pinned snapshot with one round trip.
  constexpr int kBatchSize = 64;
  const double batch_seconds = std::max(0.5, options.seconds / 2.0);
  uint64_t single_items = 0;
  double single_elapsed = 0;
  uint64_t batch_items = 0;
  double batch_elapsed = 0;
  {
    server::HttpClient client;
    if (client.Connect("127.0.0.1", httpd.port()).ok()) {
      util::WallTimer timer;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(batch_seconds));
      size_t i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string target =
            "/v1/men2ent?mention=" +
            server::PercentEncode(mentions[i++ % mentions.size()]);
        if (client.Get(target).ok()) ++single_items;
      }
      single_elapsed = timer.ElapsedSeconds();
    }
  }
  {
    server::HttpClient client;
    if (client.Connect("127.0.0.1", httpd.port()).ok()) {
      util::WallTimer timer;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(batch_seconds));
      size_t i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        std::string body;
        for (int k = 0; k < kBatchSize; ++k) {
          body += mentions[i++ % mentions.size()];
          body += '\n';
        }
        auto response = client.Post("/v1/men2ent_batch", body);
        if (response.ok() && response->status == 200) {
          batch_items += kBatchSize;
        }
      }
      batch_elapsed = timer.ElapsedSeconds();
    }
  }
  const double single_rate = single_elapsed > 0
      ? static_cast<double>(single_items) / single_elapsed : 0.0;
  const double batch_rate = batch_elapsed > 0
      ? static_cast<double>(batch_items) / batch_elapsed : 0.0;
  std::printf("\nphase 4: batch amortization, 1 connection, %d per batch\n",
              kBatchSize);
  std::printf("  single      %9.0f mentions/s\n", single_rate);
  std::printf("  batched     %9.0f mentions/s (%.1fx)\n", batch_rate,
              single_rate > 0 ? batch_rate / single_rate : 0.0);

  // ---- Phase 5: overload -> polite 429s ----
  taxonomy::ApiService::ServingLimits limits;
  limits.max_in_flight = 2;
  api.SetServingLimits(limits);
  Window shed_window;
  const int shed_connections = std::max(16, options.connections);
  {
    util::ScopedFaultInjection stall("api.query=1:delay=2", 9);
    shed_window = RunWindow(httpd.port(), target_sets, shed_connections,
                            0.8, /*stagger_ms=*/5);
  }
  api.SetServingLimits(taxonomy::ApiService::ServingLimits());
  const uint64_t shed_requests = TotalRequests(shed_window.total);
  std::printf("\nphase 5: in-flight cap 2 + 2ms injected stall\n");
  std::printf("  requests    %llu, shed %llu (%.1f%%), resets %llu, "
              "429s missing Retry-After: %llu\n",
              static_cast<unsigned long long>(shed_requests),
              static_cast<unsigned long long>(shed_window.total.shed),
              shed_requests > 0
                  ? 100.0 * static_cast<double>(shed_window.total.shed) /
                        static_cast<double>(shed_requests)
                  : 0.0,
              static_cast<unsigned long long>(shed_window.total.io_failures),
              static_cast<unsigned long long>(
                  shed_window.total.shed_without_retry_after));
  const bool overload_ok = shed_window.total.shed > 0 &&
                           shed_window.total.shed_without_retry_after == 0;
  std::printf("  acceptance  %s (sheds surface as 429 + Retry-After, "
              "not resets)\n",
              overload_ok ? "PASS" : "FAIL");

  httpd.Stop();
  httpd.Wait();
  const auto stats = httpd.stats();
  std::printf("\nserver: %llu connections, %llu requests, "
              "%llu parse errors, %llu io errors\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.io_errors));

  // ---- Phase 6: shard router over a replicated cluster ----
  // Every backend is its own ApiService pinning the same published
  // snapshot, so the whole cluster serves one generation — exactly the
  // deployed shape right after a coordinated publish. The router hashes,
  // hedges, fails over, and merges; a replica dies mid-window.
  constexpr size_t kRouterShards = 4;
  constexpr size_t kRouterReplicas = 2;
  const double router_seconds = std::max(0.8, options.seconds / 2.0);
  std::printf("\nphase 6: shard router, %zu shards x %zu replicas, "
              "%.1fs per window\n",
              kRouterShards, kRouterReplicas, router_seconds);
  const auto router_mentions = core::CnProbaseBuilder::BuildMentionIndex(
      world->output->dump, *snapshot);
  std::vector<std::unique_ptr<taxonomy::ApiService>> shard_apis;
  std::vector<std::unique_ptr<server::ApiEndpoints>> shard_endpoints;
  std::vector<std::unique_ptr<server::HttpServer>> shard_servers;
  std::vector<std::vector<router::ShardMap::Endpoint>> topology(kRouterShards);
  for (size_t s = 0; s < kRouterShards; ++s) {
    for (size_t r = 0; r < kRouterReplicas; ++r) {
      shard_apis.push_back(
          std::make_unique<taxonomy::ApiService>(snapshot, router_mentions));
      shard_endpoints.push_back(
          std::make_unique<server::ApiEndpoints>(shard_apis.back().get()));
      server::HttpServer::Config backend_config;
      backend_config.num_threads = 2;
      backend_config.drain_deadline = std::chrono::milliseconds(500);
      shard_servers.push_back(std::make_unique<server::HttpServer>(
          backend_config, shard_endpoints.back()->AsHandler()));
      if (const util::Status status = shard_servers.back()->Start();
          !status.ok()) {
        std::fprintf(stderr, "backend start failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
      topology[s].push_back({"127.0.0.1", shard_servers.back()->port()});
    }
  }
  router::ShardMap::Options map_options;
  map_options.quarantine_failures = 3;
  map_options.quarantine_period = std::chrono::milliseconds(200);
  router::ShardMap shard_map(std::move(topology), map_options);
  router::Router::Options router_options;
  // The router handler blocks on backend I/O, so give it a loop thread per
  // client connection — the frontend must not be the bottleneck measured.
  router_options.server.num_threads = std::max(options.connections, 4);
  router_options.connect_deadline = std::chrono::milliseconds(250);
  router_options.recv_deadline = std::chrono::milliseconds(1000);
  router_options.hedge_initial = std::chrono::milliseconds(10);
  router::Router router(&shard_map, router_options);
  if (const util::Status status = router.Start(); !status.ok()) {
    std::fprintf(stderr, "router start failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }

  const Window router_healthy = RunWindow(
      router.port(), target_sets, options.connections, router_seconds);
  PrintWindow("healthy", router_healthy);

  // Kill window: the Table II singles plus one dedicated batch connection
  // (the fan-out/merge and coherence-barrier path), with shard 0's second
  // replica stopped partway in.
  std::atomic<uint64_t> batch_ok{0};
  std::atomic<uint64_t> batch_refused{0};
  std::atomic<uint64_t> batch_failed{0};
  std::atomic<bool> batch_stamps_uniform{true};
  Window router_chaos;
  {
    const auto chaos_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(router_seconds));
    std::thread batcher([&] {
      server::HttpClient client;
      size_t i = 0;
      while (std::chrono::steady_clock::now() < chaos_deadline) {
        if (!client.connected() &&
            !client.Connect("127.0.0.1", router.port()).ok()) {
          ++batch_failed;
          continue;
        }
        std::string body;
        for (int k = 0; k < 32; ++k) {
          body += mentions[i++ % mentions.size()];
          body += '\n';
        }
        auto response = client.Post("/v1/men2ent_batch", body);
        if (!response.ok()) {
          ++batch_failed;
          client.Close();
          continue;
        }
        if (response->status == 200) {
          ++batch_ok;
          // A merged batch carries exactly one generation stamp, and every
          // backend serves version 1 — any other stamp means the merge
          // mixed generations or dropped the version.
          if (ParseVersionStamp(response->body) != 1) {
            batch_stamps_uniform.store(false, std::memory_order_relaxed);
          }
        } else if (response->status == 503) {
          ++batch_refused;
        } else {
          ++batch_failed;
        }
      }
    });
    std::thread killer([&] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(router_seconds * 0.4));
      shard_servers[1]->Stop();
      shard_servers[1]->Wait();
    });
    router_chaos = RunWindow(router.port(), target_sets, options.connections,
                             router_seconds);
    batcher.join();
    killer.join();
  }
  PrintWindow("kill-one", router_chaos);

  const router::Router::Stats router_stats = router.stats();
  const double router_p99_ratio =
      router_healthy.p99 > 0 ? router_chaos.p99 / router_healthy.p99 : 0.0;
  const bool router_coherent =
      router_stats.mixed_generation_refusals == 0 &&
      batch_stamps_uniform.load(std::memory_order_relaxed) &&
      batch_ok.load() > 0;
  const bool router_tail_ok =
      router_healthy.p99 <= 0 ||
      router_chaos.p99 <= 3.0 * router_healthy.p99;
  std::printf("  batches     %llu merged, %llu refused, %llu failed "
              "(32 mentions each)\n",
              static_cast<unsigned long long>(batch_ok.load()),
              static_cast<unsigned long long>(batch_refused.load()),
              static_cast<unsigned long long>(batch_failed.load()));
  std::printf("  router      hedges %llu (wins %llu), failovers %llu, "
              "mixed refusals %llu, hedge delay %lld ms\n",
              static_cast<unsigned long long>(router_stats.hedges),
              static_cast<unsigned long long>(router_stats.hedge_wins),
              static_cast<unsigned long long>(router_stats.failovers),
              static_cast<unsigned long long>(
                  router_stats.mixed_generation_refusals),
              static_cast<long long>(router.hedge_delay().count()));
  std::printf("  acceptance  %s (single generation everywhere; kill-window "
              "p99 %.2fx healthy, limit 3x)\n",
              (router_coherent && router_tail_ok) ? "PASS" : "FAIL",
              router_p99_ratio);

  router.Stop();
  router.Wait();
  for (auto& backend : shard_servers) {
    backend->Stop();
    backend->Wait();
  }

  // ---- Phase 7: multi-collection tenancy ----
  // Two collections over the same published snapshot (isolation itself is
  // a test concern — tests/collections_test.cc; here the question is what
  // the tenancy routing layer costs and what the reasoning endpoints do to
  // the tail). The bare window is byte-compatible single-tenant traffic
  // through the manager's default-collection route, so the delta against
  // the phase-1 platform-poller window is pure routing overhead.
  const double coll_seconds = std::max(0.8, options.seconds / 2.0);
  std::printf("\nphase 7: multi-collection tenancy, 2 collections, "
              "%.1fs per window\n", coll_seconds);
  collections::CollectionManager::Options coll_options;
  coll_options.default_collection = "a";
  collections::CollectionManager manager(coll_options);
  const auto tenancy_view = api.CurrentView();
  for (const char* name : {"a", "b"}) {
    if (const util::Status status = manager.AddCollection(name, tenancy_view);
        !status.ok()) {
      std::fprintf(stderr, "add collection %s failed: %s\n", name,
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  Window coll_bare;
  Window coll_prefixed;
  {
    server::HttpServer::Config coll_config;
    coll_config.num_threads = options.threads;
    server::HttpServer coll_httpd(coll_config, manager.AsHandler());
    if (const util::Status status = coll_httpd.Start(); !status.ok()) {
      std::fprintf(stderr, "collections server start failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    coll_bare = RunWindow(coll_httpd.port(), target_sets,
                          options.connections, coll_seconds);
    PrintWindow("bare", coll_bare);

    // Prefixed sets: each connection pins one collection (alternating), its
    // Table II targets rewritten under /v1/c/<name>/, and every 4th target
    // replaced by a bounded isA closure — random entity x random concept,
    // so mostly full depth-4 negative cones, the closure's worst case.
    std::vector<std::vector<std::string>> coll_target_sets;
    {
      util::Rng rng(77);
      util::ZipfSampler entity_zipf(entities.size(), 1.0);
      util::ZipfSampler concept_zipf(concepts.size(), 1.0);
      for (int c = 0; c < options.connections; ++c) {
        const std::string prefix =
            std::string("/v1/c/") + (c % 2 == 0 ? "a" : "b");
        std::vector<std::string> targets;
        const auto& base =
            target_sets[static_cast<size_t>(c) % target_sets.size()];
        targets.reserve(base.size());
        for (const std::string& target : base) {
          targets.push_back(prefix + target.substr(3));  // after "/v1"
        }
        for (size_t i = 0; i < targets.size(); i += 4) {
          targets[i] =
              prefix + "/isa?entity=" +
              server::PercentEncode(entities[entity_zipf.Sample(rng)]) +
              "&concept=" +
              server::PercentEncode(concepts[concept_zipf.Sample(rng)]) +
              "&max_depth=4";
        }
        coll_target_sets.push_back(std::move(targets));
      }
    }
    coll_prefixed = RunWindow(coll_httpd.port(), coll_target_sets,
                              options.connections, coll_seconds);
    PrintWindow("prefixed", coll_prefixed);
    coll_httpd.Stop();
    coll_httpd.Wait();
  }
  const double tenancy_overhead_pct =
      epoll_window.qps > 0
          ? 100.0 * (epoll_window.qps - coll_bare.qps) / epoll_window.qps
          : 0.0;
  const bool collections_ok = coll_bare.total.ok > 0 &&
                              coll_prefixed.total.ok > 0 &&
                              coll_bare.total.server_error == 0 &&
                              coll_prefixed.total.server_error == 0;
  std::printf("  routing     bare %.0f req/s vs single-tenant %.0f req/s "
              "(%.1f%% overhead)\n",
              coll_bare.qps, epoll_window.qps, tenancy_overhead_pct);
  std::printf("  acceptance  %s (both collections served, zero 5xx; "
              "1-in-4 prefixed requests are depth-4 isA closures)\n",
              collections_ok ? "PASS" : "FAIL");

  if (!options.json_path.empty()) {
    std::string json = "{\n";
    json += "  \"bench\": \"bench_server\",\n";
    json += "  \"seconds\": " + std::to_string(options.seconds) + ",\n";
    json += "  \"poller\": \"" + std::string(httpd.poller_name()) + "\",\n";
    json += "  \"baseline\": {\"poll_qps\": " +
            std::to_string(poll_window.qps) + ", \"platform_qps\": " +
            std::to_string(epoll_window.qps) + ", \"delta_pct\": " +
            std::to_string(delta_pct) + "},\n";
    json += "  \"sweep\": [";
    for (size_t i = 0; i < sweep_points.size(); ++i) {
      const SweepPoint& point = sweep_points[i];
      if (i > 0) json += ", ";
      json += "{\"connections\": " + std::to_string(point.connections) +
              ", \"qps\": " + std::to_string(point.qps) +
              ", \"open_at_publish\": " + std::to_string(point.open_peak) +
              ", \"rejected\": " + std::to_string(point.rejected) +
              ", \"connect_failures\": " +
              std::to_string(point.connect_failures) +
              ", \"versions_monotonic\": " +
              JsonBool(point.versions_monotonic) + "}";
    }
    json += "],\n";
    json += "  \"cache\": {\"qps\": " + std::to_string(cache_window.qps) +
            ", \"hit_ratio\": " + std::to_string(cache_stats.hit_ratio()) +
            ", \"hits\": " + std::to_string(cache_stats.hits) +
            ", \"misses\": " + std::to_string(cache_stats.misses) +
            ", \"delta_vs_uncached_pct\": " +
            std::to_string(cache_delta_pct) + "},\n";
    json += "  \"batch\": {\"single_items_per_s\": " +
            std::to_string(single_rate) + ", \"batch_items_per_s\": " +
            std::to_string(batch_rate) + ", \"batch_size\": " +
            std::to_string(kBatchSize) + "},\n";
    json += "  \"overload\": {\"requests\": " +
            std::to_string(shed_requests) + ", \"shed\": " +
            std::to_string(shed_window.total.shed) +
            ", \"missing_retry_after\": " +
            std::to_string(shed_window.total.shed_without_retry_after) +
            "},\n";
    json += "  \"router\": {\"shards\": " + std::to_string(kRouterShards) +
            ", \"replicas\": " + std::to_string(kRouterReplicas) +
            ", \"healthy_qps\": " + std::to_string(router_healthy.qps) +
            ", \"healthy_p99_ms\": " + std::to_string(router_healthy.p99) +
            ", \"kill_qps\": " + std::to_string(router_chaos.qps) +
            ", \"kill_p99_ms\": " + std::to_string(router_chaos.p99) +
            ", \"p99_ratio\": " + std::to_string(router_p99_ratio) +
            ", \"hedges\": " + std::to_string(router_stats.hedges) +
            ", \"hedge_wins\": " + std::to_string(router_stats.hedge_wins) +
            ", \"failovers\": " + std::to_string(router_stats.failovers) +
            ", \"mixed_generation_refusals\": " +
            std::to_string(router_stats.mixed_generation_refusals) +
            ", \"batches_merged\": " + std::to_string(batch_ok.load()) +
            ", \"batches_refused\": " + std::to_string(batch_refused.load()) +
            "},\n";
    json += "  \"collections\": {\"count\": 2"
            ", \"bare_qps\": " + std::to_string(coll_bare.qps) +
            ", \"bare_p99_ms\": " + std::to_string(coll_bare.p99) +
            ", \"prefixed_qps\": " + std::to_string(coll_prefixed.qps) +
            ", \"prefixed_p99_ms\": " + std::to_string(coll_prefixed.p99) +
            ", \"reasoning_share\": 0.25" +
            ", \"tenancy_overhead_pct\": " +
            std::to_string(tenancy_overhead_pct) + "},\n";
    json += "  \"acceptance\": {\"throughput_floor\": " +
            JsonBool(floor_ok) + ", \"no_poll_regression\": " +
            JsonBool(no_regression) + ", \"sweep\": " + JsonBool(sweep_ok) +
            ", \"overload_polite\": " + JsonBool(overload_ok) +
            ", \"router_coherent\": " + JsonBool(router_coherent) +
            ", \"router_hedged_tail\": " + JsonBool(router_tail_ok) +
            ", \"collections_served\": " + JsonBool(collections_ok) + "}\n";
    json += "}\n";
    if (std::FILE* f = std::fopen(options.json_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\nwrote %s\n", options.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace cnpb

int main(int argc, char** argv) {
  cnpb::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seconds" && i + 1 < argc) {
      options.seconds = std::atof(argv[++i]);
    } else if (arg == "--connections" && i + 1 < argc) {
      options.connections = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--sweep" && i + 1 < argc) {
      options.sweep.clear();
      const std::string list = argv[++i];
      size_t start = 0;
      while (start < list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        const int n = std::atoi(list.substr(start, comma - start).c_str());
        if (n > 0) options.sweep.push_back(n);
        start = comma + 1;
      }
      if (options.sweep.empty()) {
        std::fprintf(stderr, "--sweep needs a comma-separated list\n");
        return 2;
      }
    } else if (arg == "--cache-mb" && i + 1 < argc) {
      options.cache_mb =
          static_cast<size_t>(std::max(1, std::atoi(argv[++i])));
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seconds S] [--connections N] [--threads T] "
                   "[--sweep N1,N2,...] [--cache-mb MB] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  cnpb::Run(options);
  return 0;
}
