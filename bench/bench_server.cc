// Loopback load generator for the HTTP serving layer (DESIGN.md §9): an
// in-process HttpServer over a real built taxonomy, hammered by keep-alive
// client connections on 127.0.0.1 with the Table II request mix.
//
// Phase 1 (throughput): 8 connections drive the server flat out for a fixed
// wall window; an IncrementalUpdater applies and publishes a fresh batch
// mid-run, so the reported QPS includes serving across a live version swap.
// Reports QPS, p50/p99 latency, and the status breakdown. Acceptance floor:
// >= 20k req/s sustained over loopback keep-alive.
//
// Phase 2 (overload): the in-flight cap is armed and every admitted query
// is slowed by an injected 2ms stall, so the connections saturate admission
// and the shed path shows itself as polite 429 + Retry-After responses —
// never connection resets.
//
//   bench_server [--seconds S] [--connections N] [--threads T]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/incremental.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cnpb {
namespace {

// The paper's observed API mix (Table II, 83.5M calls over six months).
constexpr double kPMen2Ent = 43'896'044.0 / 83'504'492.0;
constexpr double kPGetConcept = 13'815'076.0 / 83'504'492.0;

struct WorkerResult {
  util::Histogram latency_ms;
  uint64_t ok = 0;
  uint64_t shed = 0;          // 429
  uint64_t not_found = 0;     // 404
  uint64_t server_error = 0;  // 5xx
  uint64_t io_failures = 0;   // connection died; reconnected
  uint64_t shed_without_retry_after = 0;
};

// Pre-rendered request targets in the Table II mix, Zipf-skewed like the
// in-process bench, so the hot loop does no string building.
std::vector<std::string> MakeTargets(
    const std::vector<std::string>& mentions,
    const std::vector<std::string>& entities,
    const std::vector<std::string>& concepts, uint64_t seed, size_t count) {
  util::Rng rng(seed);
  util::ZipfSampler mention_zipf(mentions.size(), 1.0);
  util::ZipfSampler entity_zipf(entities.size(), 1.0);
  util::ZipfSampler concept_zipf(concepts.size(), 1.0);
  std::vector<std::string> targets;
  targets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double u = rng.UniformDouble();
    if (u < kPMen2Ent) {
      targets.push_back(
          "/v1/men2ent?mention=" +
          server::PercentEncode(mentions[mention_zipf.Sample(rng)]));
    } else if (u < kPMen2Ent + kPGetConcept) {
      targets.push_back(
          "/v1/getConcept?entity=" +
          server::PercentEncode(entities[entity_zipf.Sample(rng)]));
    } else {
      targets.push_back(
          "/v1/getEntity?concept=" +
          server::PercentEncode(concepts[concept_zipf.Sample(rng)]) +
          "&limit=20");
    }
  }
  return targets;
}

void DriveConnection(uint16_t port, const std::vector<std::string>& targets,
                     std::chrono::steady_clock::time_point deadline,
                     WorkerResult* result) {
  server::HttpClient client;
  size_t i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!client.connected() &&
        !client.Connect("127.0.0.1", port).ok()) {
      ++result->io_failures;
      continue;
    }
    const std::string& target = targets[i++ % targets.size()];
    const auto start = std::chrono::steady_clock::now();
    auto response = client.Get(target);
    if (!response.ok()) {
      ++result->io_failures;
      continue;
    }
    result->latency_ms.Add(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (response->status == 200) {
      ++result->ok;
    } else if (response->status == 429) {
      ++result->shed;
      if (response->Header("Retry-After").empty()) {
        ++result->shed_without_retry_after;
      }
    } else if (response->status == 404) {
      ++result->not_found;
    } else if (response->status >= 500) {
      ++result->server_error;
    }
  }
}

uint64_t TotalRequests(const WorkerResult& r) {
  return r.ok + r.shed + r.not_found + r.server_error;
}

void Run(double seconds, int connections, int server_threads) {
  util::IgnoreSigpipe();
  bench::PrintHeader("bench_server",
                     "loopback HTTP serving under the Table II mix");
  auto world = bench::MakeBenchWorld(bench::BenchScale(4000));
  const auto config = bench::DefaultBuilderConfig();

  // The updater owns the authoritative snapshot: it builds the base
  // taxonomy once and republishes after each batch — exactly the deployed
  // never-ending-extraction loop this server fronts.
  core::IncrementalUpdater updater(world->output->dump,
                                   &world->world->lexicon(),
                                   world->corpus_words, config);
  taxonomy::ApiService api(taxonomy::Taxonomy::Freeze(taxonomy::Taxonomy()));
  updater.Publish(&api);
  const uint64_t version_before = api.version();

  // Query universe, drawn from what the base taxonomy can answer.
  const auto snapshot = api.CurrentTaxonomy();
  std::vector<std::string> mentions;
  std::vector<std::string> entities;
  for (const auto& page : world->output->dump.pages()) {
    if (snapshot->Find(page.name) == taxonomy::kInvalidNode) continue;
    mentions.push_back(page.mention);
    entities.push_back(page.name);
  }
  std::vector<std::string> concepts;
  for (taxonomy::NodeId id = 0; id < snapshot->num_nodes(); ++id) {
    if (snapshot->Kind(id) == taxonomy::NodeKind::kConcept) {
      concepts.push_back(snapshot->Name(id));
    }
  }
  std::printf("universe: %zu mentions, %zu entities, %zu concepts "
              "(version %llu)\n",
              mentions.size(), entities.size(), concepts.size(),
              static_cast<unsigned long long>(version_before));

  // A fresh batch to publish mid-run: new names under existing tags.
  std::vector<kb::EncyclopediaPage> fresh;
  for (int i = 0; i < 40; ++i) {
    kb::EncyclopediaPage page;
    page.name = "新条目" + std::to_string(i);
    page.mention = page.name;
    page.tags = world->output->dump.page(i % world->output->dump.size()).tags;
    fresh.push_back(std::move(page));
  }

  server::ApiEndpoints endpoints(&api);
  server::HttpServer::Config server_config;
  server_config.num_threads = server_threads;
  server::HttpServer httpd(server_config, endpoints.AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }

  // ---- Phase 1: sustained throughput with a mid-run publish ----
  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::vector<std::string>> target_sets;
  for (int c = 0; c < connections; ++c) {
    target_sets.push_back(MakeTargets(mentions, entities, concepts,
                                      2018 + static_cast<uint64_t>(c),
                                      4096));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  util::WallTimer timer;
  std::vector<std::thread> workers;
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back(DriveConnection, httpd.port(),
                         std::cref(target_sets[static_cast<size_t>(c)]),
                         deadline, &results[static_cast<size_t>(c)]);
  }
  // Publish a new version roughly mid-window, while the load is on.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds * 0.5));
  const auto batch = updater.ApplyBatch(fresh);
  const uint64_t version_after = updater.Publish(&api);
  for (auto& worker : workers) worker.join();
  const double elapsed = timer.ElapsedSeconds();

  util::Histogram latency;
  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.ok += r.ok;
    total.shed += r.shed;
    total.not_found += r.not_found;
    total.server_error += r.server_error;
    total.io_failures += r.io_failures;
    for (double sample : r.latency_ms.samples()) latency.Add(sample);
  }
  const uint64_t requests = TotalRequests(total);
  const double qps = static_cast<double>(requests) / elapsed;
  std::printf("\nphase 1: %d keep-alive connections, %.1fs window\n",
              connections, elapsed);
  std::printf("  requests    %s (%.0f req/s)\n",
              util::CommaSeparated(requests).c_str(), qps);
  std::printf("  latency     p50 %.3f ms   p99 %.3f ms\n",
              latency.Percentile(50), latency.Percentile(99));
  std::printf("  statuses    200: %llu   404: %llu   429: %llu   5xx: %llu"
              "   io: %llu\n",
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.not_found),
              static_cast<unsigned long long>(total.shed),
              static_cast<unsigned long long>(total.server_error),
              static_cast<unsigned long long>(total.io_failures));
  std::printf("  mid-run publish: version %llu -> %llu "
              "(+%zu pages, %zu accepted)\n",
              static_cast<unsigned long long>(version_before),
              static_cast<unsigned long long>(version_after),
              batch.pages_added, batch.accepted);
  std::printf("  acceptance  %s (floor 20,000 req/s)\n",
              qps >= 20000.0 ? "PASS" : "FAIL");

  // ---- Phase 2: overload -> polite 429s ----
  taxonomy::ApiService::ServingLimits limits;
  limits.max_in_flight = 2;
  api.SetServingLimits(limits);
  util::ScopedFaultInjection stall("api.query=1:delay=2", 9);
  std::vector<WorkerResult> shed_results(static_cast<size_t>(connections));
  const auto shed_deadline = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(800);
  std::vector<std::thread> shed_workers;
  for (int c = 0; c < connections; ++c) {
    shed_workers.emplace_back(DriveConnection, httpd.port(),
                              std::cref(target_sets[static_cast<size_t>(c)]),
                              shed_deadline,
                              &shed_results[static_cast<size_t>(c)]);
  }
  for (auto& worker : shed_workers) worker.join();
  util::FaultInjector::Global().Clear();
  api.SetServingLimits(taxonomy::ApiService::ServingLimits());

  uint64_t shed_total = 0;
  uint64_t shed_requests = 0;
  uint64_t shed_resets = 0;
  uint64_t missing_retry_after = 0;
  for (const WorkerResult& r : shed_results) {
    shed_total += r.shed;
    shed_requests += TotalRequests(r);
    shed_resets += r.io_failures;
    missing_retry_after += r.shed_without_retry_after;
  }
  std::printf("\nphase 2: in-flight cap 2 + 2ms injected stall\n");
  std::printf("  requests    %llu, shed %llu (%.1f%%), resets %llu, "
              "429s missing Retry-After: %llu\n",
              static_cast<unsigned long long>(shed_requests),
              static_cast<unsigned long long>(shed_total),
              shed_requests > 0
                  ? 100.0 * static_cast<double>(shed_total) /
                        static_cast<double>(shed_requests)
                  : 0.0,
              static_cast<unsigned long long>(shed_resets),
              static_cast<unsigned long long>(missing_retry_after));
  std::printf("  acceptance  %s (sheds surface as 429 + Retry-After, "
              "not resets)\n",
              shed_total > 0 && missing_retry_after == 0 ? "PASS" : "FAIL");

  httpd.Stop();
  httpd.Wait();
  const auto stats = httpd.stats();
  std::printf("\nserver: %llu connections, %llu requests, "
              "%llu parse errors, %llu io errors\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.io_errors));
}

}  // namespace
}  // namespace cnpb

int main(int argc, char** argv) {
  double seconds = 2.0;
  int connections = 8;
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--connections" && i + 1 < argc) {
      connections = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seconds S] [--connections N] [--threads T]\n",
                   argv[0]);
      return 2;
    }
  }
  cnpb::Run(seconds, connections, threads);
  return 0;
}
