// Reproduces the per-source precision results quoted in the paper's text:
// bracket ~96.2% (§II) and tag 97.4% after verification (§IV-B), plus the
// raw-vs-verified view for every source (E1/E4).
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace cnpb {
namespace {

std::map<taxonomy::Source, eval::PrecisionResult> BySource(
    const generation::CandidateList& candidates, const eval::Oracle& oracle) {
  std::map<taxonomy::Source, eval::PrecisionResult> result;
  for (const auto& candidate : candidates) {
    auto& r = result[candidate.source];
    ++r.evaluated;
    if (oracle(candidate.hypo, candidate.hyper)) ++r.correct;
  }
  return result;
}

void Run() {
  bench::PrintHeader("§II / §IV-B in-text", "per-source precision");
  auto world = bench::MakeBenchWorld(bench::BenchScale());
  const eval::Oracle oracle = world->Oracle();

  auto config = bench::DefaultBuilderConfig();

  core::CnProbaseBuilder::Report raw_report;
  auto raw_config = config;
  raw_config.enable_verification = false;
  const auto raw = core::CnProbaseBuilder::BuildCandidates(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      raw_config, &raw_report);

  core::CnProbaseBuilder::Report verified_report;
  const auto verified = core::CnProbaseBuilder::BuildCandidates(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      config, &verified_report);

  const auto raw_by_source = BySource(raw, oracle);
  const auto verified_by_source = BySource(verified, oracle);

  std::printf("\n%-10s %22s %22s\n", "source", "generation (raw)",
              "after verification");
  for (taxonomy::Source source :
       {taxonomy::Source::kBracket, taxonomy::Source::kAbstract,
        taxonomy::Source::kInfobox, taxonomy::Source::kTag}) {
    const auto raw_it = raw_by_source.find(source);
    const auto ver_it = verified_by_source.find(source);
    std::printf("%-10s %14zu @ %5.1f%% %14zu @ %5.1f%%\n",
                taxonomy::SourceName(source),
                raw_it == raw_by_source.end() ? 0 : raw_it->second.evaluated,
                raw_it == raw_by_source.end()
                    ? 0.0
                    : 100.0 * raw_it->second.precision(),
                ver_it == verified_by_source.end() ? 0
                                                   : ver_it->second.evaluated,
                ver_it == verified_by_source.end()
                    ? 0.0
                    : 100.0 * ver_it->second.precision());
  }
  const auto total_raw = eval::CandidatePrecision(raw, oracle);
  const auto total_ver = eval::CandidatePrecision(verified, oracle);
  std::printf("%-10s %14zu @ %5.1f%% %14zu @ %5.1f%%\n", "ALL",
              total_raw.evaluated, 100.0 * total_raw.precision(),
              total_ver.evaluated, 100.0 * total_ver.precision());

  std::printf("\npaper reference: bracket source 96.2%% (raw, §II); tag "
              "97.4%% (final, §IV-B);\noverall 95.0%% (Table I).\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
