// Ablation A1: contribution of each verification strategy. The paper argues
// Bigcilin's lower precision comes from lacking a verification module; this
// bench quantifies each strategy's share on the same candidate pool.
#include <cstdio>

#include "bench/bench_common.h"
#include "verification/pipeline.h"

namespace cnpb {
namespace {

struct AblationRow {
  const char* name;
  bool syntax;
  bool ner;
  bool incompatible;
};

void Run() {
  bench::PrintHeader("Ablation A1", "verification strategies");
  auto world = bench::MakeBenchWorld(bench::BenchScale());
  const eval::Oracle oracle = world->Oracle();

  // Generate once (verification off), then verify under each setting.
  auto gen_config = bench::DefaultBuilderConfig();
  gen_config.enable_verification = false;
  core::CnProbaseBuilder::Report report;
  const auto raw = core::CnProbaseBuilder::BuildCandidates(
      world->output->dump, world->world->lexicon(), world->corpus_words,
      gen_config, &report);
  const auto raw_precision = eval::CandidatePrecision(raw, oracle);

  const AblationRow rows[] = {
      {"none (= Bigcilin)", false, false, false},
      {"syntax only", true, false, false},
      {"NER only", false, true, false},
      {"incompatible only", false, false, true},
      {"syntax + NER", true, true, false},
      {"all three (= CN-Probase)", true, true, true},
  };

  std::printf("\nraw candidate pool: %zu relations @ %.1f%%\n\n", raw.size(),
              100.0 * raw_precision.precision());
  std::printf("%-26s %10s %10s %10s %11s %10s\n", "strategies", "kept",
              "rej.syn", "rej.ner", "rej.incomp", "precision");
  for (const AblationRow& row : rows) {
    verification::VerificationPipeline::Config config;
    config.use_syntax = row.syntax;
    config.use_ner = row.ner;
    config.use_incompatible = row.incompatible;
    for (const char* word : synth::ThematicWords()) {
      config.syntax.thematic_lexicon.emplace_back(word);
    }
    verification::VerificationPipeline pipeline(&world->output->dump,
                                                &world->world->lexicon(),
                                                config);
    for (const auto& sentence : world->corpus_words) {
      pipeline.AddCorpusSentence(sentence);
    }
    verification::VerificationPipeline::Report vreport;
    const auto verified = pipeline.Verify(raw, &vreport);
    const auto precision = eval::CandidatePrecision(verified, oracle);
    std::printf("%-26s %10zu %10zu %10zu %11zu %9.1f%%\n", row.name,
                verified.size(), vreport.rejected_syntax, vreport.rejected_ner,
                vreport.rejected_incompatible, 100.0 * precision.precision());
  }
  std::printf("\nshape check: each strategy removes a distinct error family "
              "(thematic tags /\nNE hypernyms / cross-domain concepts); "
              "combined they lift raw precision to ~95%%,\nthe Bigcilin -> "
              "CN-Probase gap of Table I.\n");
}

}  // namespace
}  // namespace cnpb

int main() { cnpb::Run(); }
