#ifndef CNPROBASE_BENCH_BENCH_COMMON_H_
#define CNPROBASE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "eval/precision.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/segmenter.h"

namespace cnpb::bench {

// Everything a table/figure bench needs, built once. Heap members keep
// internal pointers (segmenter -> lexicon) stable.
struct BenchWorld {
  std::unique_ptr<synth::WorldModel> world;
  std::unique_ptr<synth::EncyclopediaGenerator::Output> output;
  std::unique_ptr<text::Segmenter> segmenter;
  std::unique_ptr<synth::Corpus> corpus;
  std::vector<std::vector<std::string>> corpus_words;

  eval::Oracle Oracle() const {
    const synth::GoldTruth* gold = &output->gold;
    return [gold](const std::string& hypo, const std::string& hyper) {
      return gold->IsCorrect(hypo, hyper);
    };
  }
};

// Scale comes from CNPB_BENCH_ENTITIES (default 12000): the benches report
// the paper's *shape*, not its 15M-entity magnitude.
inline size_t BenchScale(size_t default_entities = 12000) {
  const char* env = std::getenv("CNPB_BENCH_ENTITIES");
  if (env != nullptr) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<size_t>(value);
  }
  return default_entities;
}

inline std::unique_ptr<BenchWorld> MakeBenchWorld(size_t num_entities,
                                                  uint64_t seed = 42) {
  auto bench = std::make_unique<BenchWorld>();
  synth::WorldModel::Config wc;
  wc.num_entities = num_entities;
  wc.seed = seed;
  bench->world =
      std::make_unique<synth::WorldModel>(synth::WorldModel::Generate(wc));
  synth::EncyclopediaGenerator::Config gc;
  gc.seed = seed + 1;
  bench->output = std::make_unique<synth::EncyclopediaGenerator::Output>(
      synth::EncyclopediaGenerator::Generate(*bench->world, gc));
  bench->segmenter =
      std::make_unique<text::Segmenter>(&bench->world->lexicon());
  synth::CorpusGenerator::Config cc;
  cc.seed = seed + 2;
  bench->corpus = std::make_unique<synth::Corpus>(synth::CorpusGenerator::Generate(
      *bench->world, bench->output->dump, *bench->segmenter, cc));
  bench->corpus_words.reserve(bench->corpus->sentences.size());
  for (const auto& sentence : bench->corpus->sentences) {
    std::vector<std::string> words;
    words.reserve(sentence.size());
    for (const auto& token : sentence) words.push_back(token.word);
    bench->corpus_words.push_back(std::move(words));
  }
  return bench;
}

// Default CN-Probase builder configuration for benches.
inline core::CnProbaseBuilder::Config DefaultBuilderConfig() {
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 2;
  config.neural.max_train_samples = 3000;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  return config;
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

}  // namespace cnpb::bench

#endif  // CNPROBASE_BENCH_BENCH_COMMON_H_
