#ifndef CNPROBASE_KB_MERGE_H_
#define CNPROBASE_KB_MERGE_H_

#include <vector>

#include "kb/dump.h"

namespace cnpb::kb {

// Merges several encyclopedia dumps into one, the step that produces
// CN-DBpedia from Baidu Baike, Hudong Baike and Chinese Wikipedia (paper
// §IV-A). Pages are keyed by their disambiguated name:
//   - the first non-empty bracket/abstract wins (earlier dumps take
//     priority — pass the richest site first),
//   - infobox triples are unioned with exact-duplicate removal,
//   - tags are unioned with duplicate removal.
EncyclopediaDump MergeDumps(const std::vector<const EncyclopediaDump*>& dumps);

}  // namespace cnpb::kb

#endif  // CNPROBASE_KB_MERGE_H_
