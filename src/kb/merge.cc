#include "kb/merge.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cnpb::kb {

EncyclopediaDump MergeDumps(
    const std::vector<const EncyclopediaDump*>& dumps) {
  EncyclopediaDump merged;
  std::unordered_map<std::string, size_t> index;  // name -> merged position
  std::vector<EncyclopediaPage> pages;

  for (const EncyclopediaDump* dump : dumps) {
    for (const EncyclopediaPage& page : dump->pages()) {
      auto it = index.find(page.name);
      if (it == index.end()) {
        index.emplace(page.name, pages.size());
        EncyclopediaPage copy = page;
        copy.page_id = 0;  // reassigned on insertion below
        pages.push_back(std::move(copy));
        continue;
      }
      EncyclopediaPage& target = pages[it->second];
      if (target.bracket.empty()) target.bracket = page.bracket;
      if (target.abstract.empty()) target.abstract = page.abstract;
      for (const SpoTriple& triple : page.infobox) {
        SpoTriple renamed = triple;
        renamed.subject = target.name;
        if (std::find(target.infobox.begin(), target.infobox.end(), renamed) ==
            target.infobox.end()) {
          target.infobox.push_back(std::move(renamed));
        }
      }
      for (const std::string& tag : page.tags) {
        if (std::find(target.tags.begin(), target.tags.end(), tag) ==
            target.tags.end()) {
          target.tags.push_back(tag);
        }
      }
      for (const std::string& alias : page.aliases) {
        if (std::find(target.aliases.begin(), target.aliases.end(), alias) ==
            target.aliases.end()) {
          target.aliases.push_back(alias);
        }
      }
    }
  }
  for (EncyclopediaPage& page : pages) merged.AddPage(std::move(page));
  return merged;
}

}  // namespace cnpb::kb
