#include "kb/dump.h"

#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::kb {

uint64_t EncyclopediaDump::AddPage(EncyclopediaPage page) {
  if (page.page_id == 0) page.page_id = pages_.size() + 1;
  const uint64_t id = page.page_id;
  by_name_.emplace(page.name, pages_.size());
  pages_.push_back(std::move(page));
  return id;
}

const EncyclopediaPage* EncyclopediaDump::FindByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &pages_[it->second];
}

DumpStats EncyclopediaDump::Stats() const {
  DumpStats stats;
  stats.num_pages = pages_.size();
  for (const EncyclopediaPage& page : pages_) {
    if (!page.abstract.empty()) ++stats.num_abstracts;
    if (!page.bracket.empty()) ++stats.num_brackets;
    stats.num_triples += page.infobox.size();
    stats.num_tags += page.tags.size();
  }
  return stats;
}

namespace {
// Sub-field separators; '\x02'..'\x03' cannot appear in UTF-8 text.
constexpr char kPairSep = '\x02';
constexpr char kKvSep = '\x03';
}  // namespace

util::Status EncyclopediaDump::Save(const std::string& path) const {
  util::TsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  for (const EncyclopediaPage& page : pages_) {
    std::string infobox;
    for (const SpoTriple& t : page.infobox) {
      if (!infobox.empty()) infobox += kPairSep;
      infobox += t.predicate;
      infobox += kKvSep;
      infobox += t.object;
    }
    std::string tags;
    for (const std::string& tag : page.tags) {
      if (!tags.empty()) tags += kPairSep;
      tags += tag;
    }
    std::string aliases;
    for (const std::string& alias : page.aliases) {
      if (!aliases.empty()) aliases += kPairSep;
      aliases += alias;
    }
    writer.WriteRow({std::to_string(page.page_id), page.name, page.mention,
                     page.bracket, page.abstract, infobox, tags, aliases});
  }
  return writer.Close();
}

util::Result<EncyclopediaDump> EncyclopediaDump::Load(const std::string& path) {
  auto rows = util::ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  EncyclopediaDump dump;
  for (const auto& row : *rows) {
    if (row.size() != 8) {
      return util::InvalidArgumentError(
          util::StrFormat("dump row has %zu fields, want 8", row.size()));
    }
    EncyclopediaPage page;
    page.page_id = std::strtoull(row[0].c_str(), nullptr, 10);
    page.name = row[1];
    page.mention = row[2];
    page.bracket = row[3];
    page.abstract = row[4];
    if (!row[5].empty()) {
      for (const std::string& pair : util::Split(row[5], kPairSep)) {
        const std::vector<std::string> kv = util::Split(pair, kKvSep);
        if (kv.size() != 2) {
          return util::InvalidArgumentError("malformed infobox cell");
        }
        page.infobox.push_back({page.name, kv[0], kv[1]});
      }
    }
    if (!row[6].empty()) {
      page.tags = util::Split(row[6], kPairSep);
    }
    if (!row[7].empty()) {
      page.aliases = util::Split(row[7], kPairSep);
    }
    dump.AddPage(std::move(page));
  }
  return dump;
}

}  // namespace cnpb::kb
