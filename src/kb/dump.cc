#include "kb/dump.h"

#include <cerrno>
#include <cstdlib>
#include <memory>
#include <unordered_set>

#include "obs/metrics.h"
#include "text/utf8.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::kb {

uint64_t EncyclopediaDump::AddPage(EncyclopediaPage page) {
  if (page.page_id == 0) page.page_id = pages_.size() + 1;
  const uint64_t id = page.page_id;
  by_name_.emplace(page.name, pages_.size());
  pages_.push_back(std::move(page));
  return id;
}

const EncyclopediaPage* EncyclopediaDump::FindByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &pages_[it->second];
}

DumpStats EncyclopediaDump::Stats() const {
  DumpStats stats;
  stats.num_pages = pages_.size();
  for (const EncyclopediaPage& page : pages_) {
    if (!page.abstract.empty()) ++stats.num_abstracts;
    if (!page.bracket.empty()) ++stats.num_brackets;
    stats.num_triples += page.infobox.size();
    stats.num_tags += page.tags.size();
  }
  return stats;
}

namespace {
// Sub-field separators; '\x02'..'\x03' cannot appear in UTF-8 text.
constexpr char kPairSep = '\x02';
constexpr char kKvSep = '\x03';
}  // namespace

util::Status EncyclopediaDump::Save(const std::string& path) const {
  util::TsvWriter writer(path, {.fault_prefix = "kb.dump.save"});
  if (!writer.status().ok()) return writer.status();
  for (const EncyclopediaPage& page : pages_) {
    std::string infobox;
    for (const SpoTriple& t : page.infobox) {
      if (!infobox.empty()) infobox += kPairSep;
      infobox += t.predicate;
      infobox += kKvSep;
      infobox += t.object;
    }
    std::string tags;
    for (const std::string& tag : page.tags) {
      if (!tags.empty()) tags += kPairSep;
      tags += tag;
    }
    std::string aliases;
    for (const std::string& alias : page.aliases) {
      if (!aliases.empty()) aliases += kPairSep;
      aliases += alias;
    }
    writer.WriteRow({std::to_string(page.page_id), page.name, page.mention,
                     page.bracket, page.abstract, infobox, tags, aliases});
  }
  return writer.Close();
}

namespace {

// Parses a page_id field strictly: nonempty, all digits, no overflow, not
// zero (zero is the "assign me one" sentinel and never appears in a saved
// dump). Returns 0 on any failure.
uint64_t ParsePageId(const std::string& field) {
  uint64_t id = 0;
  if (!util::ParseUint64(field, &id)) return 0;
  return id;
}

// Validates one raw row into `page`; returns the reason code of the first
// defect, or nullptr when the row is clean. `is_last_unchecksummed` refines
// a short final row into "truncated_row" (the torn-tail signature of a file
// whose checksum footer was lost with the truncation).
const char* ValidateRow(const std::vector<std::string>& row,
                        bool is_last_unchecksummed,
                        const std::unordered_set<uint64_t>& seen_ids,
                        const EncyclopediaDump& dump,
                        EncyclopediaPage* page) {
  if (row.size() != 8) {
    return (is_last_unchecksummed && row.size() < 8) ? "truncated_row"
                                                     : "bad_field_count";
  }
  for (size_t i = 1; i < row.size(); ++i) {
    if (!text::IsValidUtf8(row[i])) return "bad_utf8";
  }
  page->page_id = ParsePageId(row[0]);
  if (page->page_id == 0) return "bad_page_id";
  if (seen_ids.count(page->page_id) > 0) return "dup_page_id";
  if (dump.FindByName(row[1]) != nullptr) return "dup_name";
  page->name = row[1];
  page->mention = row[2];
  page->bracket = row[3];
  page->abstract = row[4];
  if (!row[5].empty()) {
    for (const std::string& pair : util::Split(row[5], kPairSep)) {
      const std::vector<std::string> kv = util::Split(pair, kKvSep);
      if (kv.size() != 2) return "bad_infobox";
      page->infobox.push_back({page->name, kv[0], kv[1]});
    }
  }
  if (!row[6].empty()) page->tags = util::Split(row[6], kPairSep);
  if (!row[7].empty()) page->aliases = util::Split(row[7], kPairSep);
  return nullptr;
}

}  // namespace

util::Result<EncyclopediaDump> EncyclopediaDump::Load(const std::string& path) {
  return Load(path, DumpLoadOptions{}, nullptr);
}

util::Result<EncyclopediaDump> EncyclopediaDump::Load(
    const std::string& path, const DumpLoadOptions& options,
    DumpLoadReport* report) {
  CNPB_RETURN_IF_ERROR(util::CheckFault("kb.dump.read"));
  auto data = util::ReadTsvFileData(path);
  if (!data.ok()) return data.status();

  DumpLoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = DumpLoadReport{};
  report->checksummed = data->checksummed;
  report->rows_total = data->rows.size();

  EncyclopediaDump dump;
  std::unordered_set<uint64_t> seen_ids;
  seen_ids.reserve(data->rows.size());
  std::unique_ptr<util::TsvWriter> quarantine;
  for (size_t i = 0; i < data->rows.size(); ++i) {
    const auto& row = data->rows[i];
    EncyclopediaPage page;
    const bool last_unchecksummed =
        !data->checksummed && i + 1 == data->rows.size();
    const char* reason =
        ValidateRow(row, last_unchecksummed, seen_ids, dump, &page);
    if (reason == nullptr) {
      seen_ids.insert(page.page_id);
      dump.AddPage(std::move(page));
      ++report->rows_ok;
      continue;
    }
    ++report->rows_quarantined;
    ++report->quarantined_by_reason[reason];
    if (report->rows_quarantined > options.max_errors) {
      return util::InvalidArgumentError(util::StrFormat(
          "%s: row %zu is malformed (%s) and the quarantine budget of %zu "
          "is exhausted",
          path.c_str(), i + 1, reason, options.max_errors));
    }
    if (!options.quarantine_path.empty()) {
      if (quarantine == nullptr) {
        quarantine = std::make_unique<util::TsvWriter>(
            options.quarantine_path,
            util::TsvWriterOptions{.fault_prefix = "kb.quarantine"});
      }
      std::vector<std::string> sidecar_row;
      sidecar_row.reserve(row.size() + 2);
      sidecar_row.push_back(reason);
      sidecar_row.push_back(std::to_string(i + 1));
      sidecar_row.insert(sidecar_row.end(), row.begin(), row.end());
      quarantine->WriteRow(sidecar_row);
    }
  }
  if (quarantine != nullptr) {
    const util::Status status = quarantine->Close();
    if (!status.ok()) {
      CNPB_LOG(Warning) << "quarantine sidecar write failed: "
                        << status.ToString();
    }
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.counter("kb.load.rows_ok")->Increment(report->rows_ok);
  if (report->rows_quarantined > 0) {
    metrics.counter("kb.load.quarantined")
        ->Increment(report->rows_quarantined);
    for (const auto& [reason, count] : report->quarantined_by_reason) {
      metrics.counter("kb.load.quarantined." + reason)->Increment(count);
    }
  }
  return dump;
}

}  // namespace cnpb::kb
