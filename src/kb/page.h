#ifndef CNPROBASE_KB_PAGE_H_
#define CNPROBASE_KB_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cnpb::kb {

// One infobox row: <subject, predicate, object>. The subject is implicit
// (the page entity); we keep it explicit for SPO-triple alignment in
// predicate discovery.
struct SpoTriple {
  std::string subject;
  std::string predicate;
  std::string object;

  bool operator==(const SpoTriple& other) const = default;
};

// One encyclopedia page, mirroring the five regions of Figure 1:
//   (a) entity name with disambiguation bracket,
//   (b) abstract paragraph,
//   (c) infobox SPO triples,
//   (d) tags.
// `name` is the disambiguated entity identifier: mention + optional bracket,
// e.g. "刘德华（中国香港男演员、歌手）". `mention` is the bare surface form.
struct EncyclopediaPage {
  uint64_t page_id = 0;
  std::string name;      // disambiguated entity name (mention + bracket)
  std::string mention;   // surface form without the bracket
  std::string bracket;   // disambiguation noun compound; may be empty
  std::string abstract;  // free-text abstract; may be empty
  std::vector<SpoTriple> infobox;
  std::vector<std::string> tags;
  // Alternative surface forms (nicknames, abbreviations, former names) that
  // should also resolve to this entity via men2ent.
  std::vector<std::string> aliases;
};

}  // namespace cnpb::kb

#endif  // CNPROBASE_KB_PAGE_H_
