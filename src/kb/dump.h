#ifndef CNPROBASE_KB_DUMP_H_
#define CNPROBASE_KB_DUMP_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "kb/page.h"
#include "util/status.h"

namespace cnpb::kb {

// Aggregate counts in the style of the paper's dataset description
// (15,990,349 entities, 8,096,835 abstracts, 132,435,632 SPO triples,
// 19,929,407 tags for the May 2017 CN-DBpedia dump).
struct DumpStats {
  size_t num_pages = 0;
  size_t num_abstracts = 0;
  size_t num_triples = 0;
  size_t num_tags = 0;
  size_t num_brackets = 0;
};

// Quarantine reason codes (stable strings: they name sidecar rows, metric
// suffixes, and test expectations).
//   bad_field_count  row does not have exactly 8 fields
//   truncated_row    short final row of an unchecksummed file (torn tail)
//   bad_page_id      page_id field empty / non-numeric / zero / overflow
//   dup_page_id      page_id already used by an earlier row
//   dup_name         disambiguated name already used by an earlier row
//   bad_utf8         a text field is not well-formed UTF-8
//   bad_infobox      infobox cell without a predicate/object pair
//
// How a malformed row is handled during Load:
struct DumpLoadOptions {
  // Rows quarantined beyond this budget fail the load. 0 = strict (any bad
  // row fails, the pre-robustness behaviour); SIZE_MAX = keep going no
  // matter what.
  size_t max_errors = 0;
  // When set, quarantined rows are appended to this sidecar TSV as
  //   reason, row_number (1-based), original fields...
  // written atomically with a checksum footer. Empty = count only.
  std::string quarantine_path;
};

// What a Load actually did, for callers and for the obs counters
// (kb.load.rows_ok / kb.load.quarantined / kb.load.quarantined.<reason>).
struct DumpLoadReport {
  size_t rows_total = 0;
  size_t rows_ok = 0;
  size_t rows_quarantined = 0;
  bool checksummed = false;  // file carried a valid CRC32 footer
  std::map<std::string, size_t> quarantined_by_reason;
};

// An in-memory encyclopedia dump: the input of the whole framework.
class EncyclopediaDump {
 public:
  // Appends a page; assigns page_id if zero. Returns the stored id.
  uint64_t AddPage(EncyclopediaPage page);

  const std::vector<EncyclopediaPage>& pages() const { return pages_; }
  size_t size() const { return pages_.size(); }
  const EncyclopediaPage& page(size_t i) const { return pages_[i]; }

  // Finds a page by its disambiguated name; nullptr if absent.
  const EncyclopediaPage* FindByName(const std::string& name) const;

  DumpStats Stats() const;

  // TSV persistence. Format (one page per row):
  // name, mention, bracket, abstract, infobox("p=o;p=o"), tags("t;t").
  // Save is atomic (temp + fsync + rename) with a CRC32 footer; a failed
  // save leaves the previous file intact.
  util::Status Save(const std::string& path) const;

  // Strict load: the first malformed row fails the whole file (equivalent
  // to Load(path, DumpLoadOptions{}) — CN-Probase's historical contract).
  static util::Result<EncyclopediaDump> Load(const std::string& path);

  // Quarantine-and-continue load: malformed rows are diverted to the
  // sidecar (see DumpLoadOptions) up to `max_errors`, and the load succeeds
  // with the surviving pages. A checksum-invalid file never parses at all
  // (kDataLoss). `report`, if non-null, receives the row accounting.
  static util::Result<EncyclopediaDump> Load(const std::string& path,
                                             const DumpLoadOptions& options,
                                             DumpLoadReport* report = nullptr);

 private:
  std::vector<EncyclopediaPage> pages_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace cnpb::kb

#endif  // CNPROBASE_KB_DUMP_H_
