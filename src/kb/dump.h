#ifndef CNPROBASE_KB_DUMP_H_
#define CNPROBASE_KB_DUMP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kb/page.h"
#include "util/status.h"

namespace cnpb::kb {

// Aggregate counts in the style of the paper's dataset description
// (15,990,349 entities, 8,096,835 abstracts, 132,435,632 SPO triples,
// 19,929,407 tags for the May 2017 CN-DBpedia dump).
struct DumpStats {
  size_t num_pages = 0;
  size_t num_abstracts = 0;
  size_t num_triples = 0;
  size_t num_tags = 0;
  size_t num_brackets = 0;
};

// An in-memory encyclopedia dump: the input of the whole framework.
class EncyclopediaDump {
 public:
  // Appends a page; assigns page_id if zero. Returns the stored id.
  uint64_t AddPage(EncyclopediaPage page);

  const std::vector<EncyclopediaPage>& pages() const { return pages_; }
  size_t size() const { return pages_.size(); }
  const EncyclopediaPage& page(size_t i) const { return pages_[i]; }

  // Finds a page by its disambiguated name; nullptr if absent.
  const EncyclopediaPage* FindByName(const std::string& name) const;

  DumpStats Stats() const;

  // TSV persistence. Format (one page per row):
  // name, mention, bracket, abstract, infobox("p=o;p=o"), tags("t;t").
  util::Status Save(const std::string& path) const;
  static util::Result<EncyclopediaDump> Load(const std::string& path);

 private:
  std::vector<EncyclopediaPage> pages_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace cnpb::kb

#endif  // CNPROBASE_KB_DUMP_H_
