#ifndef CNPROBASE_SYNTH_ONTOLOGY_H_
#define CNPROBASE_SYNTH_ONTOLOGY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "synth/world_data.h"

namespace cnpb::synth {

// Kinds of infobox values; select how the generator fills them in.
enum class ValueKind : uint8_t {
  kDate = 0,     // 1987年3月12日
  kNumber,       // plain quantity with a unit
  kCityRef,      // name of a place entity
  kCountryRef,   // name of a country entity
  kWorkRef,      // name of a work entity
  kOrgRef,       // name of an organisation entity
  kPersonRef,    // name of a person entity
  kConceptIsa,   // a gold concept of the entity (implicit isA predicate!)
  kIndustry,     // industry word (经营范围)
  kText,         // free literal
};

// One infobox column of a domain schema.
struct AttributeSpec {
  const char* predicate;
  ValueKind kind;
  double presence;  // probability the column is present on a page
};

// Infobox schema of a domain (Figure 1(c) analogue).
const std::vector<AttributeSpec>& SchemaFor(Domain domain);

// The ground-truth concept DAG built from OntologyRows(). This is what the
// paper does NOT have (they must infer it); our generator uses it to emit
// pages and our evaluation uses it to score extraction.
class Ontology {
 public:
  struct ConceptInfo {
    std::string name;
    std::vector<int> parents;
    std::vector<int> children;
    Domain domain = Domain::kOther;
    NameStyle style = NameStyle::kNone;
    double entity_weight = 0.0;
    std::string english;
    int pool = -1;
    bool title_like = false;
  };

  // Builds from the static table; check-fails on dangling parent names.
  static Ontology Build();

  int Find(std::string_view name) const;  // -1 if absent
  bool Contains(std::string_view name) const { return Find(name) >= 0; }
  const ConceptInfo& ConceptAt(int id) const { return concepts_[id]; }
  size_t size() const { return concepts_.size(); }

  // All strict ancestors of `id` (transitive parents).
  const std::vector<int>& Ancestors(int id) const;
  bool IsAncestor(int maybe_ancestor, int id) const;

  // Concept ids that carry entities (entity_weight > 0).
  const std::vector<int>& EntityBearingConcepts() const {
    return entity_bearing_;
  }

  // Every (child, parent) edge — the gold subconcept-concept relations.
  std::vector<std::pair<int, int>> AllEdges() const;

  bool IsThematic(std::string_view word) const;
  const std::unordered_set<std::string>& thematic_set() const {
    return thematic_;
  }

 private:
  std::vector<ConceptInfo> concepts_;
  std::unordered_map<std::string, int> index_;
  std::vector<std::vector<int>> ancestors_;
  std::vector<int> entity_bearing_;
  std::unordered_set<std::string> thematic_;
};

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_ONTOLOGY_H_
