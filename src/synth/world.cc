#include "synth/world.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace cnpb::synth {

namespace {

// Picks an index from cumulative weights.
size_t WeightedPick(const std::vector<double>& cumulative, util::Rng& rng) {
  const double u = rng.UniformDouble() * cumulative.back();
  const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
  return static_cast<size_t>(it - cumulative.begin());
}

}  // namespace

const std::vector<size_t>& WorldModel::EmptyIndex() {
  static const auto* empty = new std::vector<size_t>();
  return *empty;
}

const std::vector<size_t>& WorldModel::EntitiesOfDomain(Domain domain) const {
  auto it = by_domain_.find(static_cast<int>(domain));
  return it == by_domain_.end() ? EmptyIndex() : it->second;
}

const std::vector<size_t>& WorldModel::EntitiesOfConcept(int concept_id) const {
  auto it = by_concept_.find(concept_id);
  return it == by_concept_.end() ? EmptyIndex() : it->second;
}

WorldModel WorldModel::Generate(const Config& config) {
  WorldModel world;
  world.ontology_ = Ontology::Build();
  util::Rng rng(config.seed);
  world.GenerateEntities(config.num_entities, config.ambiguity_rate,
                         config.second_concept_rate, rng);
  world.FillAttributes(rng);
  world.BuildLexicon();
  return world;
}

std::string WorldModel::MakeName(int concept_id, util::Rng& rng) const {
  const Ontology::ConceptInfo& info = ontology_.ConceptAt(concept_id);
  switch (info.style) {
    case NameStyle::kPerson: {
      std::string name = rng.Choice(Surnames());
      name += rng.Choice(GivenNameChars());
      if (rng.Bernoulli(0.7)) name += rng.Choice(GivenNameChars());
      return name;
    }
    case NameStyle::kPlaceSynth: {
      std::string name = rng.Choice(PlaceMorphemes());
      if (info.name == "省份") {
        name += rng.Choice(PlaceMorphemes());
        name += "省";
        return name;
      }
      name += rng.Choice(PlaceMorphemes());
      name += rng.Choice(PlaceSuffixes());
      return name;
    }
    case NameStyle::kCityList: {
      // Real cities first, synthesised overflow after.
      if (rng.Bernoulli(0.5)) return rng.Choice(MajorCities());
      std::string name = rng.Choice(PlaceMorphemes());
      name += rng.Choice(PlaceMorphemes());
      name += "市";
      return name;
    }
    case NameStyle::kCountryList:
      return rng.Choice(Countries());
    case NameStyle::kWorkTitle: {
      std::string name;
      const int len = static_cast<int>(rng.UniformInt(2, 4));
      for (int i = 0; i < len; ++i) name += rng.Choice(WorkTitleChars());
      return name;
    }
    case NameStyle::kOrgName: {
      std::string name = rng.Choice(OrgPrefixes());
      name += rng.Choice(OrgMiddles());
      if (info.name == "大学" || info.name == "综合性大学") {
        name += "大学";
      } else if (info.name == "中学") {
        name += "中学";
      } else if (info.name == "医院") {
        name += "医院";
      } else if (info.name == "银行") {
        name += "银行";
      } else if (info.name == "乐队") {
        name += "乐队";
      } else if (info.name == "研究所") {
        name += "研究所";
      } else if (info.name == "博物馆") {
        name += "博物馆";
      } else if (info.name == "足球俱乐部" || info.name == "篮球俱乐部") {
        name += "队";
      } else {
        name += rng.Choice(OrgIndustries());
      }
      return name;
    }
    case NameStyle::kAnimal: {
      std::string name;
      if (rng.Bernoulli(0.75)) name = rng.Choice(AnimalPrefixes());
      name += rng.Choice(AnimalBases(std::max(info.pool, 0)));
      return name;
    }
    case NameStyle::kPlant: {
      std::string name;
      if (rng.Bernoulli(0.7)) name = rng.Choice(PlantPrefixes());
      name += rng.Choice(PlantBases(std::max(info.pool, 0)));
      return name;
    }
    case NameStyle::kDish: {
      std::string name = rng.Choice(DishPrefixes());
      name += rng.Choice(DishBases(std::max(info.pool, 0)));
      return name;
    }
    case NameStyle::kFoodList: {
      switch (info.pool) {
        case 0:
          return rng.Choice(Fruits());
        case 1:
          return rng.Choice(Vegetables());
        case 2:
          return rng.Choice(Drinks());
        default:
          return rng.Choice(Desserts());
      }
    }
    case NameStyle::kProduct: {
      std::string name = rng.Choice(ProductBrandChars());
      name += rng.Choice(ProductBrandChars());
      name += static_cast<char>('A' + rng.Uniform(26));
      name += std::to_string(rng.UniformInt(1, 30));
      return name;
    }
    case NameStyle::kEventName: {
      std::string name = rng.Choice(PlaceMorphemes());
      name += rng.Choice(PlaceMorphemes());
      const auto& cores = EventCores();
      const int pool = std::max(info.pool, 0);
      // Two core words per pool, laid out flat.
      const size_t core = static_cast<size_t>(pool) * 2 + rng.Uniform(2);
      name += cores[std::min(core, cores.size() - 1)];
      return name;
    }
    case NameStyle::kNone:
      break;
  }
  CNPB_CHECK(false) << "concept " << info.name << " carries no entities";
  return "";
}

void WorldModel::GenerateEntities(size_t count, double ambiguity_rate,
                                  double second_concept_rate,
                                  util::Rng& rng) {
  const std::vector<int>& bearing = ontology_.EntityBearingConcepts();
  CNPB_CHECK(!bearing.empty());
  std::vector<double> cumulative;
  cumulative.reserve(bearing.size());
  double total = 0.0;
  for (int concept_id : bearing) {
    total += ontology_.ConceptAt(concept_id).entity_weight;
    cumulative.push_back(total);
  }

  // Mentions generated so far, per primary concept, for ambiguity reuse.
  std::vector<std::string> reusable_mentions;

  entities_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int concept_id = bearing[WeightedPick(cumulative, rng)];
    const Ontology::ConceptInfo& info = ontology_.ConceptAt(concept_id);

    WorldEntity entity;
    entity.domain = info.domain;
    entity.primary = concept_id;
    entity.concepts.push_back(concept_id);

    // A second, compatible concept from the same domain. Person entities
    // model the actor+singer pattern; others pick an entity-bearing sibling.
    if (rng.Bernoulli(second_concept_rate)) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const int other = bearing[WeightedPick(cumulative, rng)];
        if (other == concept_id) continue;
        if (ontology_.ConceptAt(other).domain != info.domain) continue;
        if (ontology_.IsAncestor(other, concept_id) ||
            ontology_.IsAncestor(concept_id, other)) {
          continue;
        }
        entity.concepts.push_back(other);
        break;
      }
    }

    if (!reusable_mentions.empty() && rng.Bernoulli(ambiguity_rate)) {
      entity.mention = rng.Choice(reusable_mentions);
    } else {
      entity.mention = MakeName(concept_id, rng);
      if (info.style == NameStyle::kPerson && reusable_mentions.size() < 4096) {
        reusable_mentions.push_back(entity.mention);
      }
    }

    by_domain_[static_cast<int>(entity.domain)].push_back(entities_.size());
    for (int c : entity.concepts) by_concept_[c].push_back(entities_.size());
    const std::string& cname = info.name;
    if (cname == "大学" || cname == "综合性大学" || cname == "中学") {
      schools_.push_back(entities_.size());
    }
    if (info.domain == Domain::kOrg && cname != "大学" &&
        cname != "综合性大学" && cname != "中学" && cname != "医院" &&
        cname != "政府机构" && cname != "协会" && cname != "研究所") {
      companies_.push_back(entities_.size());
    }
    entities_.push_back(std::move(entity));
  }
}

void WorldModel::FillAttributes(util::Rng& rng) {
  auto ref_name = [&](const std::vector<size_t>& pool) -> std::string {
    if (pool.empty()) return "";
    return entities_[pool[rng.Uniform(pool.size())]].mention;
  };
  const std::vector<size_t>& places = EntitiesOfDomain(Domain::kPlace);
  const std::vector<size_t>& works = EntitiesOfDomain(Domain::kWork);
  const std::vector<size_t>& persons = EntitiesOfDomain(Domain::kPerson);

  for (WorldEntity& entity : entities_) {
    const std::vector<AttributeSpec>& schema = SchemaFor(entity.domain);
    for (const AttributeSpec& spec : schema) {
      if (!rng.Bernoulli(spec.presence)) continue;
      std::string value;
      switch (spec.kind) {
        case ValueKind::kDate:
          value = util::StrFormat("%d年%d月%d日",
                                  static_cast<int>(rng.UniformInt(1930, 2015)),
                                  static_cast<int>(rng.UniformInt(1, 12)),
                                  static_cast<int>(rng.UniformInt(1, 28)));
          break;
        case ValueKind::kNumber:
          value = std::to_string(rng.UniformInt(10, 9999));
          break;
        case ValueKind::kCityRef:
          value = places.empty() ? std::string(rng.Choice(MajorCities()))
                                 : ref_name(places);
          break;
        case ValueKind::kCountryRef:
          value = rng.Choice(Countries());
          break;
        case ValueKind::kWorkRef:
          value = ref_name(works);
          break;
        case ValueKind::kOrgRef:
          if (spec.predicate == std::string("毕业院校")) {
            value = ref_name(schools_);
          } else {
            value = ref_name(companies_);
          }
          break;
        case ValueKind::kPersonRef:
          value = ref_name(persons);
          break;
        case ValueKind::kConceptIsa: {
          // One triple per gold concept; occasionally (noise) a wrong one.
          for (int concept_id : entity.concepts) {
            std::string v = ontology_.ConceptAt(concept_id).name;
            entity.attributes.emplace_back(spec.predicate, std::move(v));
          }
          continue;
        }
        case ValueKind::kIndustry:
          value = rng.Choice(OrgIndustries());
          break;
        case ValueKind::kText:
          if (spec.predicate == std::string("中文名") ||
              spec.predicate == std::string("中文名称") ||
              spec.predicate == std::string("中文学名")) {
            value = entity.mention;
          } else if (spec.predicate == std::string("界")) {
            value = entity.domain == Domain::kBio ? "动物界" : "其他";
          } else {
            value = "无";
          }
          break;
      }
      if (!value.empty()) {
        entity.attributes.emplace_back(spec.predicate, std::move(value));
      }
    }
  }
}

void WorldModel::BuildLexicon() {
  // Concept words: frequent nouns. Excluding the 首席X官 compounds keeps the
  // segmenter splitting them, which is what exercises the separation
  // algorithm's deep trees (Fig. 3).
  for (size_t i = 0; i < ontology_.size(); ++i) {
    const std::string& name = ontology_.ConceptAt(i).name;
    if (util::StartsWith(name, "首席")) continue;
    lexicon_.Add(name, 200, text::Pos::kNoun);
  }
  for (const char* word : ThematicWords()) {
    lexicon_.Add(word, 150, text::Pos::kNoun);
  }
  for (const char* word : CommonWords()) {
    lexicon_.Add(word, 1000, text::Pos::kOther);
  }
  for (const char* word : Countries()) {
    lexicon_.Add(word, 300, text::Pos::kProperNoun);
  }
  for (const char* word : Regions()) {
    lexicon_.Add(word, 250, text::Pos::kProperNoun);
  }
  for (const char* word : MajorCities()) {
    lexicon_.Add(word, 200, text::Pos::kProperNoun);
  }
  for (const char* word : Surnames()) {
    lexicon_.Add(word, 80, text::Pos::kProperNoun);
  }
  for (const char* word : OrgIndustries()) {
    lexicon_.Add(word, 120, text::Pos::kNoun);
  }
  // Entity mentions: lower frequency proper nouns. Person and org mentions
  // matter most (brackets and abstracts reference them).
  for (const WorldEntity& entity : entities_) {
    text::Pos pos = text::Pos::kProperNoun;
    lexicon_.Add(entity.mention, 20, pos);
  }
}

}  // namespace cnpb::synth
