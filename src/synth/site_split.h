#ifndef CNPROBASE_SYNTH_SITE_SPLIT_H_
#define CNPROBASE_SYNTH_SITE_SPLIT_H_

#include <vector>

#include "kb/dump.h"

namespace cnpb::synth {

// Splits a master dump into overlapping per-site views, simulating the
// three source encyclopedias CN-DBpedia is built from: each site covers a
// random subset of the pages, and a covered page keeps each content region
// (bracket / abstract / infobox / tags) with its own probability — no site
// alone has everything, which is what makes the merge step (kb::MergeDumps)
// worthwhile.
struct SiteSplitConfig {
  int num_sites = 3;
  uint64_t seed = 77;
  // Probability a page exists on a given site.
  double page_coverage = 0.6;
  // Per-region retention probabilities for a covered page.
  double keep_bracket = 0.8;
  double keep_abstract = 0.7;
  double keep_infobox = 0.7;
  double keep_tags = 0.6;
};

std::vector<kb::EncyclopediaDump> SplitIntoSites(
    const kb::EncyclopediaDump& master, const SiteSplitConfig& config);

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_SITE_SPLIT_H_
