#include "synth/qa_gen.h"

#include "util/rng.h"
#include "util/strings.h"

namespace cnpb::synth {

namespace {

// Out-of-KB chit-chat fragments: none of these words are entities or
// concepts of the world (verified by tests).
const std::vector<const char*>& ChitChat() {
  static const auto* v = new std::vector<const char*>{
      "今天天气怎么样",       "你叫什么名字",       "给我讲个笑话",
      "现在几点了",           "明天会下雨吗",       "帮我定个闹钟",
      "你觉得我说得对吗",     "这句话怎么翻译",     "我该穿什么衣服",
      "晚饭吃什么好呢",       "怎么才能睡得更好",   "这道题怎么解",
  };
  return *v;
}

}  // namespace

std::vector<QaQuestion> QaGenerator::Generate(const WorldModel& world,
                                              const Config& config) {
  util::Rng rng(config.seed);
  const Ontology& onto = world.ontology();
  const std::vector<WorldEntity>& entities = world.entities();

  std::vector<QaQuestion> questions;
  questions.reserve(config.num_questions);
  for (size_t i = 0; i < config.num_questions; ++i) {
    QaQuestion q;
    if (rng.Bernoulli(config.out_of_kb_rate) || entities.empty()) {
      q.text = ChitChat()[rng.Uniform(ChitChat().size())];
      q.text += "？";
      q.mentions_kb = false;
      questions.push_back(std::move(q));
      continue;
    }
    const WorldEntity& entity = entities[rng.Uniform(entities.size())];
    const std::string& concept_name = onto.ConceptAt(entity.primary).name;
    switch (rng.Uniform(5)) {
      case 0:
        q.text = entity.mention + "的代表作品有哪些？";
        break;
      case 1:
        q.text = entity.mention + "是谁？";
        break;
      case 2:
        q.text = "有哪些著名的" + concept_name + "？";
        break;
      case 3:
        q.text = entity.mention + "出生在哪里？";
        break;
      default:
        q.text = util::StrFormat("%s和%s是什么关系？", entity.mention.c_str(),
                                 concept_name.c_str());
        break;
    }
    q.mentions_kb = true;
    questions.push_back(std::move(q));
  }
  return questions;
}

}  // namespace cnpb::synth
