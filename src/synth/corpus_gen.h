#ifndef CNPROBASE_SYNTH_CORPUS_GEN_H_
#define CNPROBASE_SYNTH_CORPUS_GEN_H_

#include <string>
#include <vector>

#include "kb/dump.h"
#include "synth/world.h"
#include "text/ngram.h"
#include "text/segmenter.h"

namespace cnpb::synth {

// One corpus token. `gold_ne` is generator-side truth used only to evaluate
// the NER substrate itself; the verification module never reads it.
struct CorpusToken {
  std::string word;
  bool gold_ne = false;
};

// The Chinese text corpus substitute: segmented encyclopedia abstracts plus
// patterned sentences that give the PMI table realistic collocation
// statistics (title compounds, NE-after-preposition contexts, company
// mentions in diverse contexts).
struct Corpus {
  std::vector<std::vector<CorpusToken>> sentences;

  size_t NumTokens() const;
  // Feeds every sentence into the n-gram counter.
  void FillNgrams(text::NgramCounter* counter) const;
};

class CorpusGenerator {
 public:
  struct Config {
    uint64_t seed = 11;
    // Pattern sentences per title-like entity reinforcing 首席+X官 bigrams.
    int title_patterns = 3;
    // Extra diverse-context sentences per organisation.
    int org_context_sentences = 4;
  };

  static Corpus Generate(const WorldModel& world,
                         const kb::EncyclopediaDump& dump,
                         const text::Segmenter& segmenter,
                         const Config& config);
};

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_CORPUS_GEN_H_
