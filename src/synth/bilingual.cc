#include "synth/bilingual.h"

#include "text/utf8.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cnpb::synth {

namespace {
// Pinyin-like syllable pool for deterministic romanisation.
const char* kSyllables[] = {
    "zhang", "li",   "wang", "liu",  "chen", "yang", "zhao", "huang",
    "zhou",  "wu",   "xu",   "sun",  "ma",   "zhu",  "hu",   "guo",
    "he",    "gao",  "lin",  "luo",  "mei",  "lan",  "xin",  "yu",
    "feng",  "yun",  "hai",  "jiang", "shan", "he",  "hu",   "shi",
    "sha",   "xing", "yong", "ping", "luo",  "jia",  "xiang", "gui",
    "an",    "chang", "ning", "lin", "de",   "fu",   "ji",   "tai",
    "hua",   "jin",  "yin",  "qing", "bai",  "hei",  "long", "bo",
    "wei",   "rui",  "heng", "da",   "teng", "du",   "dong", "yi"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);
}  // namespace

std::string BilingualDictionary::Romanize(const std::string& mention) {
  std::string out;
  size_t pos = 0;
  bool first = true;
  while (pos < mention.size()) {
    const char32_t cp = text::DecodeCodepointAt(mention, pos);
    if (!first) out += ' ';
    first = false;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else {
      out += kSyllables[static_cast<size_t>(cp) % kNumSyllables];
    }
  }
  return out;
}

BilingualDictionary BilingualDictionary::Build(const WorldModel& world,
                                               const Config& config) {
  BilingualDictionary dict;
  util::Rng rng(config.seed);
  const Ontology& onto = world.ontology();
  const std::vector<const char*>& confusion = ConfusionWords();

  dict.unknown_.chinese = "";
  dict.unknown_.correct = false;
  dict.unknown_.confidence = 0.0;

  dict.concept_english_.resize(onto.size());
  for (size_t c = 0; c < onto.size(); ++c) {
    const auto& info = onto.ConceptAt(c);
    dict.concept_english_[c] = info.english;
    Translation t;
    if (rng.Bernoulli(config.concept_error_rate)) {
      t.correct = false;
      t.chinese = confusion[rng.Uniform(confusion.size())];
      t.pos = rng.Bernoulli(config.error_non_noun_rate) ? text::Pos::kVerb
                                                        : text::Pos::kNoun;
      t.confidence = 0.3 + 0.5 * rng.UniformDouble();
    } else {
      t.correct = true;
      t.chinese = info.name;
      t.pos = text::Pos::kNoun;
      t.confidence = 0.6 + 0.4 * rng.UniformDouble();
    }
    // Several concepts can share a gloss (actor appears twice); first wins,
    // which itself is a realistic translation-collision error source.
    dict.concept_translations_.emplace(info.english, std::move(t));
  }

  std::vector<std::string> mentions;
  mentions.reserve(world.entities().size());
  for (const WorldEntity& entity : world.entities()) {
    mentions.push_back(entity.mention);
  }
  for (const std::string& mention : mentions) {
    const std::string english = Romanize(mention);
    if (dict.entity_translations_.count(english) > 0) continue;
    Translation t;
    if (rng.Bernoulli(config.entity_error_rate) && mentions.size() > 1) {
      t.correct = false;
      // Wrong entity or transliteration junk.
      if (rng.Bernoulli(0.6)) {
        const std::string& other = mentions[rng.Uniform(mentions.size())];
        t.chinese = other == mention ? other + "氏" : other;
      } else {
        t.chinese = mention + "尔";
      }
      t.pos = text::Pos::kProperNoun;
      t.confidence = 0.2 + 0.5 * rng.UniformDouble();
    } else {
      t.correct = true;
      t.chinese = mention;
      t.pos = text::Pos::kProperNoun;
      t.confidence = 0.5 + 0.5 * rng.UniformDouble();
    }
    dict.entity_translations_.emplace(english, std::move(t));
  }
  return dict;
}

const std::string& BilingualDictionary::EnglishConcept(int concept_id) const {
  CNPB_CHECK(concept_id >= 0 &&
             static_cast<size_t>(concept_id) < concept_english_.size());
  return concept_english_[concept_id];
}

const BilingualDictionary::Translation& BilingualDictionary::TranslateConcept(
    const std::string& english) const {
  auto it = concept_translations_.find(english);
  return it == concept_translations_.end() ? unknown_ : it->second;
}

const BilingualDictionary::Translation& BilingualDictionary::TranslateEntity(
    const std::string& english) const {
  auto it = entity_translations_.find(english);
  return it == entity_translations_.end() ? unknown_ : it->second;
}

bool BilingualDictionary::KnowsConcept(const std::string& english) const {
  return concept_translations_.count(english) > 0;
}

bool BilingualDictionary::KnowsEntity(const std::string& english) const {
  return entity_translations_.count(english) > 0;
}

}  // namespace cnpb::synth
