#ifndef CNPROBASE_SYNTH_WORLD_DATA_H_
#define CNPROBASE_SYNTH_WORLD_DATA_H_

#include <cstdint>
#include <vector>

namespace cnpb::synth {

// How entities directly under a concept are named by the generator.
enum class NameStyle : uint8_t {
  kPerson = 0,   // surname + given name
  kPlaceSynth,   // morpheme + place suffix (synthesised towns/rivers/...)
  kCityList,     // real major-city list (bounded, then synthesised overflow)
  kCountryList,  // real country list (bounded)
  kWorkTitle,    // 2-4 char lyrical title
  kOrgName,      // company / school / org compound names
  kAnimal,       // prefix + animal base per subtype
  kPlant,        // prefix + plant base per subtype
  kDish,         // flavour prefix + dish base
  kFoodList,     // bounded food lists (fruit, drink, ...)
  kProduct,      // brand-like prefix + model
  kEventName,    // event compounds (XX战争, XX比赛, ...)
  kNone,         // concept never carries entities directly
};

// Broad domain; selects the infobox schema and abstract template.
enum class Domain : uint8_t {
  kPerson = 0,
  kPlace,
  kWork,
  kOrg,
  kBio,
  kFood,
  kProduct,
  kEvent,
  kOther,
};

// One row of the hand-built ground-truth ontology.
struct ConceptRow {
  const char* name;      // Chinese concept word (also a lexicon word)
  const char* parent1;   // "" for domain roots
  const char* parent2;   // "" if single-parent
  Domain domain;
  NameStyle style;       // how entities attached here are named
  double entity_weight;  // relative share of generated entities (0 = none)
  const char* english;   // gloss used by the Probase-Tran simulator
  // Sub-pool selector for kAnimal/kPlant/kDish styles (index into the
  // corresponding base-word pool group); -1 if unused.
  int pool = -1;
  // True for role/title concepts that show up in person brackets behind an
  // organisation or region modifier (首席战略官, 董事长, ...).
  bool title_like = false;
};

const std::vector<ConceptRow>& OntologyRows();

// ---- word pools ----------------------------------------------------------

const std::vector<const char*>& Surnames();
const std::vector<const char*>& GivenNameChars();
const std::vector<const char*>& PlaceMorphemes();
const std::vector<const char*>& PlaceSuffixes();   // 州/阳/城/山/...
const std::vector<const char*>& MajorCities();
const std::vector<const char*>& Countries();
const std::vector<const char*>& Regions();         // bracket modifiers: 中国内地/香港/...
const std::vector<const char*>& OrgPrefixes();
const std::vector<const char*>& OrgMiddles();
const std::vector<const char*>& OrgIndustries();   // 科技/传媒/... (also used by 经营范围)
const std::vector<const char*>& WorkTitleChars();
const std::vector<const char*>& AnimalPrefixes();
// pool: 0 mammal, 1 bird, 2 fish, 3 insect, 4 reptile, 5 cat, 6 dog.
const std::vector<const char*>& AnimalBases(int pool);
const std::vector<const char*>& PlantPrefixes();
// pool: 0 flower, 1 tree, 2 herb.
const std::vector<const char*>& PlantBases(int pool);
const std::vector<const char*>& DishPrefixes();
// pool: 0 sichuan, 1 canton, 2 noodle, 3 snack.
const std::vector<const char*>& DishBases(int pool);
const std::vector<const char*>& Fruits();
const std::vector<const char*>& Vegetables();
const std::vector<const char*>& Drinks();
const std::vector<const char*>& Desserts();
const std::vector<const char*>& ProductBrandChars();
const std::vector<const char*>& EventCores();      // 战争/战役/比赛/...

// The 184-word style non-taxonomic thematic lexicon (paper cites Li et al.;
// we ship a representative subset used both as tag noise and as the
// syntax-rule filter list).
const std::vector<const char*>& ThematicWords();

// Common function/content words for abstracts and the corpus language model.
const std::vector<const char*>& CommonWords();

// Wrong-sense Chinese words for the translation simulator's polysemy model
// (none of these are ontology concepts).
const std::vector<const char*>& ConfusionWords();

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_WORLD_DATA_H_
