#ifndef CNPROBASE_SYNTH_BILINGUAL_H_
#define CNPROBASE_SYNTH_BILINGUAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "synth/world.h"
#include "text/lexicon.h"

namespace cnpb::synth {

// Bilingual resources for the Probase-Tran baseline: English forms of world
// concepts/entities plus a noisy EN->ZH dictionary that models what a
// general-purpose machine translator does to taxonomy terms (wrong sense for
// polysemous words, transliteration drift for names, occasional non-noun
// output). Error assignments are deterministic per term.
class BilingualDictionary {
 public:
  struct Config {
    uint64_t seed = 31;
    // Fraction of concept glosses whose back-translation picks a wrong sense.
    double concept_error_rate = 0.30;
    // Fraction of entity names that mistranslate (wrong entity or junk).
    double entity_error_rate = 0.25;
    // Among erroneous concept translations, fraction that come back as a
    // non-noun (caught by the POS filter).
    double error_non_noun_rate = 0.35;
  };

  static BilingualDictionary Build(const WorldModel& world,
                                   const Config& config);

  // English gloss of a concept (e.g. 演员 -> "actor").
  const std::string& EnglishConcept(int concept_id) const;

  // Deterministic romanisation of a Chinese mention (e.g. 刘德华 -> "Liu
  // Dehua"-like syllables).
  static std::string Romanize(const std::string& mention);

  struct Translation {
    std::string chinese;
    text::Pos pos = text::Pos::kNoun;
    double confidence = 1.0;  // translator-reported confidence
    bool correct = true;      // generator-side truth (evaluation only)
  };

  // Translates an English concept gloss back to Chinese.
  const Translation& TranslateConcept(const std::string& english) const;
  // Translates a romanised entity name back to Chinese.
  const Translation& TranslateEntity(const std::string& english) const;

  bool KnowsConcept(const std::string& english) const;
  bool KnowsEntity(const std::string& english) const;

 private:
  std::vector<std::string> concept_english_;
  std::unordered_map<std::string, Translation> concept_translations_;
  std::unordered_map<std::string, Translation> entity_translations_;
  Translation unknown_;
};

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_BILINGUAL_H_
