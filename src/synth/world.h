#ifndef CNPROBASE_SYNTH_WORLD_H_
#define CNPROBASE_SYNTH_WORLD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "synth/ontology.h"
#include "text/lexicon.h"
#include "util/rng.h"

namespace cnpb::synth {

// A ground-truth entity: surface mention plus the gold direct concepts it
// belongs to. Attributes are filled in a second pass so references (e.g. a
// film's 导演) can point at other entities.
struct WorldEntity {
  std::string mention;
  std::vector<int> concepts;  // direct gold concepts (ontology ids)
  int primary = -1;           // concepts[0]
  Domain domain = Domain::kOther;
  std::vector<std::pair<std::string, std::string>> attributes;
};

// The synthetic universe that substitutes for CN-DBpedia's underlying
// reality: a concept ontology, a population of entities with attributes,
// and the word lexicon the segmenter/PMI substrate runs on.
class WorldModel {
 public:
  struct Config {
    size_t num_entities = 10000;
    uint64_t seed = 42;
    // Probability of deliberately reusing an existing mention, creating the
    // ambiguity men2ent must resolve.
    double ambiguity_rate = 0.03;
    // Probability an entity carries a second compatible concept (e.g.
    // 男演员 + 歌手), giving multi-concept entities.
    double second_concept_rate = 0.45;
  };

  static WorldModel Generate(const Config& config);

  const Ontology& ontology() const { return ontology_; }
  const std::vector<WorldEntity>& entities() const { return entities_; }
  const text::Lexicon& lexicon() const { return lexicon_; }

  // Entity indices grouped by domain (for cross-references).
  const std::vector<size_t>& EntitiesOfDomain(Domain domain) const;

  // Entity indices whose primary concept is `concept_id`.
  const std::vector<size_t>& EntitiesOfConcept(int concept_id) const;

  // Indices of school-like organisations (大学/中学; for 毕业院校).
  const std::vector<size_t>& Schools() const { return schools_; }
  // Indices of company-like organisations (for 经纪公司/品牌/title brackets).
  const std::vector<size_t>& Companies() const { return companies_; }

 private:
  WorldModel() = default;

  void GenerateEntities(size_t count, double ambiguity_rate,
                        double second_concept_rate, util::Rng& rng);
  void FillAttributes(util::Rng& rng);
  void BuildLexicon();
  std::string MakeName(int concept_id, util::Rng& rng) const;

  Ontology ontology_;
  std::vector<WorldEntity> entities_;
  text::Lexicon lexicon_;
  std::unordered_map<int, std::vector<size_t>> by_domain_;
  std::unordered_map<int, std::vector<size_t>> by_concept_;
  std::vector<size_t> schools_;
  std::vector<size_t> companies_;
  static const std::vector<size_t>& EmptyIndex();
};

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_WORLD_H_
