#ifndef CNPROBASE_SYNTH_QA_GEN_H_
#define CNPROBASE_SYNTH_QA_GEN_H_

#include <string>
#include <vector>

#include "synth/world.h"

namespace cnpb::synth {

// One generated question. `mentions_kb` records whether the question text
// actually contains a taxonomy entity or concept (generator-side truth used
// to sanity-check the coverage measurement, never by the measurement itself).
struct QaQuestion {
  std::string text;
  bool mentions_kb = false;
};

// NLPCC-2016-style QA set substitute: templated Chinese questions, most of
// which reference an in-world entity or concept, a fraction of which are
// fully out-of-knowledge-base chit-chat.
class QaGenerator {
 public:
  struct Config {
    uint64_t seed = 23;
    size_t num_questions = 23472;  // same size as NLPCC 2016 QA
    // Fraction of questions with no KB entity/concept at all; calibrates the
    // ~91.7% coverage ceiling.
    double out_of_kb_rate = 0.08;
  };

  static std::vector<QaQuestion> Generate(const WorldModel& world,
                                          const Config& config);
};

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_QA_GEN_H_
