#include "synth/world_data.h"

namespace cnpb::synth {

namespace {
// Shorthand to keep the ontology table readable.
constexpr Domain P = Domain::kPerson;
constexpr Domain L = Domain::kPlace;
constexpr Domain W = Domain::kWork;
constexpr Domain O = Domain::kOrg;
constexpr Domain B = Domain::kBio;
constexpr Domain F = Domain::kFood;
constexpr Domain R = Domain::kProduct;
constexpr Domain E = Domain::kEvent;

constexpr NameStyle SP = NameStyle::kPerson;
constexpr NameStyle SL = NameStyle::kPlaceSynth;
constexpr NameStyle SC = NameStyle::kCityList;
constexpr NameStyle SN = NameStyle::kCountryList;
constexpr NameStyle SW = NameStyle::kWorkTitle;
constexpr NameStyle SO = NameStyle::kOrgName;
constexpr NameStyle SA = NameStyle::kAnimal;
constexpr NameStyle SV = NameStyle::kPlant;
constexpr NameStyle SD = NameStyle::kDish;
constexpr NameStyle SF = NameStyle::kFoodList;
constexpr NameStyle SR = NameStyle::kProduct;
constexpr NameStyle SE = NameStyle::kEventName;
constexpr NameStyle S0 = NameStyle::kNone;
}  // namespace

const std::vector<ConceptRow>& OntologyRows() {
  static const auto* rows = new std::vector<ConceptRow>{
      // ---- person domain -------------------------------------------------
      {"人物", "", "", P, S0, 0, "person"},
      {"娱乐人物", "人物", "", P, S0, 0, "entertainer"},
      {"演员", "娱乐人物", "", P, SP, 0.5, "actor"},
      {"男演员", "演员", "", P, SP, 2.0, "actor"},
      {"女演员", "演员", "", P, SP, 2.0, "actress"},
      {"喜剧演员", "演员", "", P, SP, 0.8, "comedian"},
      {"艺术家", "人物", "", P, S0, 0, "artist"},
      {"音乐家", "艺术家", "", P, SP, 0.3, "musician"},
      {"歌手", "音乐家", "娱乐人物", P, SP, 1.0, "singer"},
      {"流行歌手", "歌手", "", P, SP, 1.2, "pop singer"},
      {"民谣歌手", "歌手", "", P, SP, 0.5, "folk singer"},
      {"作曲家", "音乐家", "", P, SP, 0.5, "composer"},
      {"作词人", "音乐家", "", P, SP, 0.4, "lyricist"},
      {"钢琴家", "音乐家", "", P, SP, 0.4, "pianist"},
      {"小提琴家", "音乐家", "", P, SP, 0.3, "violinist"},
      {"画家", "艺术家", "", P, SP, 0.6, "painter"},
      {"书法家", "艺术家", "", P, SP, 0.4, "calligrapher"},
      {"雕塑家", "艺术家", "", P, SP, 0.2, "sculptor"},
      {"导演", "娱乐人物", "", P, SP, 0.4, "director"},
      {"电影导演", "导演", "", P, SP, 0.8, "film director"},
      {"编剧", "娱乐人物", "", P, SP, 0.5, "screenwriter"},
      {"制片人", "娱乐人物", "", P, SP, 0.4, "producer"},
      {"主持人", "娱乐人物", "", P, SP, 0.5, "host"},
      {"模特", "娱乐人物", "", P, SP, 0.4, "model"},
      {"作家", "人物", "", P, SP, 0.5, "writer"},
      {"小说家", "作家", "", P, SP, 0.8, "novelist"},
      {"诗人", "作家", "", P, SP, 0.6, "poet"},
      {"散文家", "作家", "", P, SP, 0.3, "essayist"},
      {"科学家", "人物", "", P, SP, 0.3, "scientist"},
      {"物理学家", "科学家", "", P, SP, 0.5, "physicist"},
      {"化学家", "科学家", "", P, SP, 0.4, "chemist"},
      {"数学家", "科学家", "", P, SP, 0.4, "mathematician"},
      {"生物学家", "科学家", "", P, SP, 0.4, "biologist"},
      {"计算机科学家", "科学家", "", P, SP, 0.3, "computer scientist"},
      {"工程师", "人物", "", P, SP, 0.5, "engineer"},
      {"软件工程师", "工程师", "", P, SP, 0.6, "software engineer"},
      {"建筑师", "人物", "", P, SP, 0.3, "architect"},
      {"医生", "人物", "", P, SP, 0.5, "doctor"},
      {"外科医生", "医生", "", P, SP, 0.4, "surgeon"},
      {"教师", "人物", "", P, SP, 0.5, "teacher"},
      {"教授", "教师", "", P, SP, 0.6, "professor"},
      {"运动员", "人物", "", P, SP, 0.3, "athlete"},
      {"篮球运动员", "运动员", "", P, SP, 0.7, "basketball player"},
      {"足球运动员", "运动员", "", P, SP, 0.8, "football player"},
      {"乒乓球运动员", "运动员", "", P, SP, 0.5, "table tennis player"},
      {"游泳运动员", "运动员", "", P, SP, 0.4, "swimmer"},
      {"田径运动员", "运动员", "", P, SP, 0.3, "track athlete"},
      {"政治家", "人物", "", P, SP, 0.4, "politician"},
      {"外交官", "人物", "", P, SP, 0.3, "diplomat"},
      {"企业家", "人物", "", P, SP, 0.6, "entrepreneur"},
      {"商人", "人物", "", P, SP, 0.4, "businessman"},
      {"投资人", "人物", "", P, SP, 0.3, "investor"},
      {"摄影师", "人物", "", P, SP, 0.3, "photographer"},
      {"记者", "人物", "", P, SP, 0.4, "journalist"},
      {"律师", "人物", "", P, SP, 0.4, "lawyer"},
      {"厨师", "人物", "", P, SP, 0.3, "chef"},
      {"飞行员", "人物", "", P, SP, 0.2, "pilot"},
      {"军人", "人物", "", P, SP, 0.3, "soldier"},
      {"将军", "军人", "", P, SP, 0.3, "general"},
      {"历史人物", "人物", "", P, SP, 0.4, "historical figure"},
      {"配音演员", "演员", "", P, SP, 0.3, "voice actor"},
      {"舞蹈家", "艺术家", "", P, SP, 0.3, "dancer"},
      {"漫画家", "艺术家", "", P, SP, 0.3, "comic artist"},
      {"设计师", "人物", "", P, SP, 0.3, "designer"},
      {"服装设计师", "设计师", "", P, SP, 0.2, "fashion designer"},
      {"心理学家", "科学家", "", P, SP, 0.3, "psychologist"},
      {"经济学家", "科学家", "", P, SP, 0.3, "economist"},
      {"翻译家", "作家", "", P, SP, 0.2, "translator"},
      {"指挥家", "音乐家", "", P, SP, 0.2, "conductor"},
      {"排球运动员", "运动员", "", P, SP, 0.3, "volleyball player"},
      {"网球运动员", "运动员", "", P, SP, 0.3, "tennis player"},
      {"拳击运动员", "运动员", "", P, SP, 0.2, "boxer"},
      {"赛车手", "运动员", "", P, SP, 0.2, "racing driver"},
      {"教练", "人物", "", P, SP, 0.3, "coach"},
      {"护士", "人物", "", P, SP, 0.2, "nurse"},
      {"经理人", "人物", "", P, S0, 0, "manager"},
      // Suffix heads of the 首席X官 titles; the separation algorithm's
      // rightmost-path extraction yields them as additional hypernyms.
      {"执行官", "经理人", "", P, S0, 0, "executive officer"},
      {"战略官", "经理人", "", P, S0, 0, "strategy officer"},
      {"技术官", "经理人", "", P, S0, 0, "technology officer"},
      {"首席执行官", "执行官", "企业家", P, SP, 0.4,
       "chief executive officer", -1, true},
      {"首席战略官", "战略官", "", P, SP, 0.2, "chief strategy officer", -1,
       true},
      {"首席技术官", "技术官", "", P, SP, 0.3, "chief technology officer", -1,
       true},
      {"董事长", "经理人", "企业家", P, SP, 0.4, "chairman", -1, true},
      {"总经理", "经理人", "", P, SP, 0.3, "general manager", -1, true},
      // ---- place domain --------------------------------------------------
      {"地点", "", "", L, S0, 0, "place"},
      {"国家", "地点", "", L, SN, 0.3, "country"},
      {"城市", "地点", "", L, SC, 1.2, "city"},
      {"省会城市", "城市", "", L, SC, 0.3, "provincial capital"},
      {"沿海城市", "城市", "", L, SC, 0.3, "coastal city"},
      {"历史文化名城", "城市", "", L, SC, 0.3, "historic city"},
      {"省份", "地点", "", L, SL, 0.2, "province"},
      {"县", "地点", "", L, SL, 1.0, "county"},
      {"乡镇", "地点", "", L, SL, 0.8, "town"},
      {"山脉", "地点", "", L, SL, 0.5, "mountain range"},
      {"河流", "地点", "", L, SL, 0.6, "river"},
      {"湖泊", "地点", "", L, SL, 0.4, "lake"},
      {"岛屿", "地点", "", L, SL, 0.3, "island"},
      {"景点", "地点", "", L, S0, 0, "scenic spot"},
      {"公园", "景点", "", L, SL, 0.5, "park"},
      {"博物馆", "景点", "", L, SO, 0.4, "museum"},
      {"建筑", "地点", "", L, S0, 0, "building"},
      {"桥梁", "建筑", "", L, SL, 0.3, "bridge"},
      {"寺庙", "建筑", "景点", L, SL, 0.4, "temple"},
      {"宫殿", "建筑", "景点", L, SL, 0.2, "palace"},
      {"水库", "地点", "", L, SL, 0.2, "reservoir"},
      {"峡谷", "地点", "", L, SL, 0.2, "canyon"},
      {"沙漠", "地点", "", L, SL, 0.15, "desert"},
      {"草原", "地点", "", L, SL, 0.15, "grassland"},
      {"森林公园", "公园", "", L, SL, 0.2, "forest park"},
      // ---- work domain ---------------------------------------------------
      {"作品", "", "", W, S0, 0, "work"},
      {"电影", "作品", "", W, SW, 0.6, "film"},
      {"动作电影", "电影", "", W, SW, 0.8, "action film"},
      {"喜剧电影", "电影", "", W, SW, 0.8, "comedy film"},
      {"爱情电影", "电影", "", W, SW, 0.7, "romance film"},
      {"科幻电影", "电影", "", W, SW, 0.6, "science fiction film"},
      {"纪录片", "电影", "", W, SW, 0.4, "documentary"},
      {"电视剧", "作品", "", W, SW, 0.5, "television series"},
      {"武侠剧", "电视剧", "", W, SW, 0.5, "wuxia series"},
      {"古装剧", "电视剧", "", W, SW, 0.6, "costume drama"},
      {"都市剧", "电视剧", "", W, SW, 0.5, "urban drama"},
      {"书籍", "作品", "", W, S0, 0, "book"},
      {"小说", "书籍", "", W, SW, 0.5, "novel"},
      {"武侠小说", "小说", "", W, SW, 0.6, "wuxia novel"},
      {"言情小说", "小说", "", W, SW, 0.6, "romance novel"},
      {"科幻小说", "小说", "", W, SW, 0.5, "science fiction novel"},
      {"历史小说", "小说", "", W, SW, 0.4, "historical novel"},
      {"教材", "书籍", "", W, SW, 0.3, "textbook"},
      {"诗歌", "作品", "", W, SW, 0.5, "poem"},
      {"歌曲", "作品", "", W, SW, 0.8, "song"},
      {"流行歌曲", "歌曲", "", W, SW, 0.9, "pop song"},
      {"民谣", "歌曲", "", W, SW, 0.4, "folk song"},
      {"专辑", "作品", "", W, SW, 0.6, "album"},
      {"游戏", "作品", "", W, SW, 0.4, "game"},
      {"网络游戏", "游戏", "", W, SW, 0.5, "online game"},
      {"手机游戏", "游戏", "", W, SW, 0.5, "mobile game"},
      {"动画", "作品", "", W, SW, 0.4, "animation"},
      {"漫画", "作品", "", W, SW, 0.4, "comic"},
      {"杂志", "作品", "", W, SW, 0.3, "magazine"},
      {"悬疑小说", "小说", "", W, SW, 0.4, "mystery novel"},
      {"动画电影", "电影", "动画", W, SW, 0.4, "animated film"},
      {"恐怖电影", "电影", "", W, SW, 0.3, "horror film"},
      {"传记电影", "电影", "", W, SW, 0.3, "biographical film"},
      {"电视节目", "作品", "", W, S0, 0, "television program"},
      {"综艺节目", "电视节目", "", W, SW, 0.4, "variety show"},
      // ---- organisation domain -------------------------------------------
      {"组织", "", "", O, S0, 0, "organization"},
      {"公司", "组织", "", O, SO, 0.5, "company"},
      {"科技公司", "公司", "", O, SO, 0.8, "technology company"},
      {"互联网公司", "科技公司", "", O, SO, 0.7, "internet company"},
      {"游戏公司", "科技公司", "", O, SO, 0.4, "game company"},
      {"电影公司", "公司", "", O, SO, 0.4, "film company"},
      {"唱片公司", "公司", "", O, SO, 0.3, "record company"},
      {"房地产公司", "公司", "", O, SO, 0.3, "real estate company"},
      {"银行", "公司", "", O, SO, 0.4, "bank"},
      {"出版社", "公司", "", O, SO, 0.3, "publisher"},
      {"大学", "组织", "", O, SO, 0.6, "university"},
      {"综合性大学", "大学", "", O, SO, 0.3, "comprehensive university"},
      {"中学", "组织", "", O, SO, 0.4, "high school"},
      {"医院", "组织", "", O, SO, 0.4, "hospital"},
      {"乐队", "组织", "娱乐人物", O, SO, 0.3, "band"},
      {"球队", "组织", "", O, S0, 0, "sports team"},
      {"足球俱乐部", "球队", "", O, SO, 0.4, "football club"},
      {"篮球俱乐部", "球队", "", O, SO, 0.3, "basketball club"},
      {"研究所", "组织", "", O, SO, 0.3, "research institute"},
      {"政府机构", "组织", "", O, SO, 0.2, "government agency"},
      {"协会", "组织", "", O, SO, 0.3, "association"},
      {"航空公司", "公司", "", O, SO, 0.2, "airline"},
      {"律师事务所", "组织", "", O, SO, 0.2, "law firm"},
      {"基金会", "组织", "", O, SO, 0.2, "foundation"},
      {"艺术团", "组织", "", O, SO, 0.2, "art troupe"},
      // ---- biology domain ------------------------------------------------
      {"生物", "", "", B, S0, 0, "organism"},
      {"动物", "生物", "", B, S0, 0, "animal"},
      {"哺乳动物", "动物", "", B, SA, 0.6, "mammal", 0},
      {"鸟类", "动物", "", B, SA, 0.5, "bird", 1},
      {"鱼类", "动物", "", B, SA, 0.4, "fish", 2},
      {"昆虫", "动物", "", B, SA, 0.4, "insect", 3},
      {"爬行动物", "动物", "", B, SA, 0.3, "reptile", 4},
      {"猫科动物", "哺乳动物", "", B, SA, 0.3, "felid", 5},
      {"犬科动物", "哺乳动物", "", B, SA, 0.3, "canid", 6},
      {"植物", "生物", "", B, S0, 0, "plant"},
      {"花卉", "植物", "", B, SV, 0.5, "flower", 0},
      {"树木", "植物", "", B, SV, 0.5, "tree", 1},
      {"草本植物", "植物", "", B, SV, 0.4, "herb", 2},
      {"药用植物", "植物", "", B, SV, 0.3, "medicinal plant", 2},
      {"两栖动物", "动物", "", B, SA, 0.2, "amphibian", 4},
      {"水生植物", "植物", "", B, SV, 0.2, "aquatic plant", 2},
      // ---- food domain ---------------------------------------------------
      {"食物", "", "", F, S0, 0, "food"},
      {"菜品", "食物", "", F, S0, 0, "dish"},
      {"川菜", "菜品", "", F, SD, 0.5, "sichuan dish", 0},
      {"粤菜", "菜品", "", F, SD, 0.4, "cantonese dish", 1},
      {"面食", "食物", "", F, SD, 0.4, "noodle dish", 2},
      {"小吃", "食物", "", F, SD, 0.4, "snack", 3},
      {"水果", "食物", "", F, SF, 0.3, "fruit", 0},
      {"蔬菜", "食物", "", F, SF, 0.3, "vegetable", 1},
      {"饮料", "食物", "", F, SF, 0.3, "drink", 2},
      {"甜点", "食物", "", F, SF, 0.3, "dessert", 3},
      // ---- product domain ------------------------------------------------
      {"产品", "", "", R, S0, 0, "product"},
      {"电子产品", "产品", "", R, S0, 0, "electronic product"},
      {"手机", "电子产品", "", R, SR, 0.6, "mobile phone"},
      {"相机", "电子产品", "", R, SR, 0.3, "camera"},
      {"电脑", "电子产品", "", R, S0, 0, "computer"},
      {"笔记本电脑", "电脑", "", R, SR, 0.4, "laptop"},
      {"汽车", "产品", "", R, SR, 0.5, "car"},
      {"跑车", "汽车", "", R, SR, 0.3, "sports car"},
      {"软件", "产品", "", R, S0, 0, "software"},
      {"操作系统", "软件", "", R, SR, 0.2, "operating system"},
      {"应用软件", "软件", "", R, SR, 0.4, "application"},
      {"平板电脑", "电脑", "", R, SR, 0.2, "tablet computer"},
      {"智能手表", "电子产品", "", R, SR, 0.2, "smart watch"},
      {"电动汽车", "汽车", "", R, SR, 0.2, "electric car"},
      // ---- event domain --------------------------------------------------
      {"事件", "", "", E, S0, 0, "event"},
      {"战争", "事件", "", E, SE, 0.3, "war", 0},
      {"战役", "事件", "", E, SE, 0.4, "battle", 1},
      {"比赛", "事件", "", E, S0, 0, "competition"},
      {"体育赛事", "比赛", "", E, SE, 0.4, "sports event", 2},
      {"节日", "事件", "", E, SE, 0.3, "festival", 3},
      {"传统节日", "节日", "", E, SE, 0.2, "traditional festival", 3},
      {"会议", "事件", "", E, SE, 0.3, "conference", 4},
      {"奖项", "事件", "", E, S0, 0, "award"},
      {"电影奖", "奖项", "", E, SE, 0.3, "film award", 5},
      {"音乐奖", "奖项", "", E, SE, 0.3, "music award", 5},
      {"文学奖", "奖项", "", E, SE, 0.2, "literary award", 5},
  };
  return *rows;
}

const std::vector<const char*>& Surnames() {
  static const auto* v = new std::vector<const char*>{
      "王", "李", "张", "刘", "陈", "杨", "黄", "赵", "吴", "周",
      "徐", "孙", "马", "朱", "胡", "郭", "何", "高", "林", "罗",
      "郑", "梁", "谢", "宋", "唐", "许", "韩", "冯", "邓", "曹",
      "彭", "曾", "萧", "田", "董", "袁", "潘", "蒋", "蔡", "余"};
  return *v;
}

const std::vector<const char*>& GivenNameChars() {
  static const auto* v = new std::vector<const char*>{
      "伟", "芳", "娜", "敏", "静", "丽", "强", "磊", "军", "洋",
      "勇", "艳", "杰", "娟", "涛", "明", "超", "秀", "兰", "霞",
      "平", "刚", "桂", "英", "华", "文", "辉", "建", "国", "玉",
      "萍", "红", "飞", "龙", "云", "宇", "晨", "欣", "怡", "浩",
      "天", "志", "海", "春", "峰", "晓", "雪", "琳", "佳", "嘉",
      "俊", "彬", "鹏", "琪", "睿", "思", "雨", "婷", "慧", "岚"};
  return *v;
}

const std::vector<const char*>& PlaceMorphemes() {
  static const auto* v = new std::vector<const char*>{
      "安", "长", "宁", "临", "武", "汉", "广", "德", "福", "吉",
      "泰", "华", "金", "银", "青", "白", "黑", "龙", "凤", "云",
      "海", "江", "山", "河", "湖", "石", "沙", "新", "兴", "永",
      "平", "洛", "漳", "潍", "绍", "嘉", "湘", "赣", "桂", "庆"};
  return *v;
}

const std::vector<const char*>& PlaceSuffixes() {
  static const auto* v = new std::vector<const char*>{
      "州", "阳", "城", "山", "江", "河", "湖", "岛", "县", "镇",
      "村", "关", "口", "湾", "滩", "岭", "峰", "溪", "泉", "林"};
  return *v;
}

const std::vector<const char*>& MajorCities() {
  static const auto* v = new std::vector<const char*>{
      "北京", "上海", "广州", "深圳", "成都", "杭州", "南京", "武汉",
      "西安", "重庆", "天津", "苏州", "长沙", "沈阳", "青岛", "郑州",
      "大连", "厦门", "福州", "昆明", "哈尔滨", "济南", "合肥", "南昌",
      "贵阳", "兰州", "太原", "石家庄", "南宁", "乌鲁木齐"};
  return *v;
}

const std::vector<const char*>& Countries() {
  static const auto* v = new std::vector<const char*>{
      "中国", "美国", "日本", "法国", "英国", "德国", "俄罗斯",
      "意大利", "西班牙", "加拿大", "澳大利亚", "韩国", "印度",
      "巴西", "荷兰", "瑞士", "瑞典", "挪威", "埃及", "墨西哥"};
  return *v;
}

const std::vector<const char*>& Regions() {
  static const auto* v = new std::vector<const char*>{
      "中国内地", "中国香港", "中国台湾", "美国",  "日本",
      "韩国",     "英国",     "法国",     "新加坡"};
  return *v;
}

const std::vector<const char*>& OrgPrefixes() {
  static const auto* v = new std::vector<const char*>{
      "华", "中", "天", "金", "银", "创", "新", "联", "博", "宏",
      "伟", "瑞", "安", "泰", "恒", "嘉", "海", "星", "光", "达",
      "蚂", "腾", "百", "京", "网", "微", "迅", "奇", "乐", "优"};
  return *v;
}

const std::vector<const char*>& OrgMiddles() {
  static const auto* v = new std::vector<const char*>{
      "科", "信", "讯", "辰", "源", "丰", "立", "成", "威", "胜",
      "蚁", "鹅", "度", "东", "易", "软", "捷", "虎", "视", "酷"};
  return *v;
}

const std::vector<const char*>& OrgIndustries() {
  static const auto* v = new std::vector<const char*>{
      "科技", "集团", "控股", "传媒", "网络", "电子", "软件",
      "生物", "能源", "地产", "金服", "影业", "唱片", "证券"};
  return *v;
}

const std::vector<const char*>& WorkTitleChars() {
  static const auto* v = new std::vector<const char*>{
      "爱", "情", "梦", "天", "地", "风", "云", "雨", "雪", "花",
      "月", "星", "光", "影", "夜", "城", "海", "山", "江", "湖",
      "剑", "刀", "侠", "缘", "恋", "歌", "传", "记", "春", "秋",
      "红", "蓝", "青", "白", "黑", "金", "心", "泪", "笑", "魂"};
  return *v;
}

const std::vector<const char*>& AnimalPrefixes() {
  static const auto* v = new std::vector<const char*>{
      "东北", "华南", "金丝", "梅花", "雪地", "红冠", "蓝尾",
      "黑背", "白头", "长尾", "斑点", "丛林", "草原", "高山"};
  return *v;
}

const std::vector<const char*>& AnimalBases(int pool) {
  static const auto* mammal = new std::vector<const char*>{
      "虎", "豹", "猴", "鹿", "熊", "狼", "兔", "象", "貂", "羚"};
  static const auto* bird = new std::vector<const char*>{
      "雀", "鹤", "鹰", "燕", "鸥", "鹦鹉", "画眉", "杜鹃", "孔雀", "雉"};
  static const auto* fish = new std::vector<const char*>{
      "鲤", "鲈", "鲨", "鳗", "鲑", "鳜", "鲟", "鲷", "鲫", "鲢"};
  static const auto* insect = new std::vector<const char*>{
      "蝶", "蜂", "蚁", "蝉", "螳螂", "甲虫", "蜻蜓", "蟋蟀"};
  static const auto* reptile = new std::vector<const char*>{
      "蛇", "龟", "蜥蜴", "鳄", "壁虎"};
  static const auto* cat = new std::vector<const char*>{
      "虎", "豹", "猫", "狮", "猞猁"};
  static const auto* dog = new std::vector<const char*>{
      "狼", "狐", "犬", "豺", "貉"};
  switch (pool) {
    case 0:
      return *mammal;
    case 1:
      return *bird;
    case 2:
      return *fish;
    case 3:
      return *insect;
    case 4:
      return *reptile;
    case 5:
      return *cat;
    default:
      return *dog;
  }
}

const std::vector<const char*>& PlantPrefixes() {
  static const auto* v = new std::vector<const char*>{
      "野", "山", "金", "银", "紫", "红", "白", "香", "寒", "南"};
  return *v;
}

const std::vector<const char*>& PlantBases(int pool) {
  static const auto* flower = new std::vector<const char*>{
      "兰", "菊", "莲", "梅", "桂", "茶花", "牡丹", "芍药", "杜鹃花", "蔷薇"};
  static const auto* tree = new std::vector<const char*>{
      "松", "柏", "杨", "柳", "樟", "桦", "槐", "榕", "杉", "枫"};
  static const auto* herb = new std::vector<const char*>{
      "草", "蒿", "芝", "参", "芩", "薄荷", "艾", "蕨"};
  switch (pool) {
    case 0:
      return *flower;
    case 1:
      return *tree;
    default:
      return *herb;
  }
}

const std::vector<const char*>& DishPrefixes() {
  static const auto* v = new std::vector<const char*>{
      "麻辣", "宫保", "鱼香", "水煮", "回锅", "清蒸", "红烧",
      "白切", "干煸", "糖醋", "椒盐", "蒜蓉"};
  return *v;
}

const std::vector<const char*>& DishBases(int pool) {
  static const auto* sichuan = new std::vector<const char*>{
      "鸡丁", "肉片", "豆腐", "牛肉", "鱼", "肥肠", "兔丁"};
  static const auto* canton = new std::vector<const char*>{
      "鸡", "乳鸽", "烧鹅", "虾饺", "叉烧", "排骨"};
  static const auto* noodle = new std::vector<const char*>{
      "面", "刀削面", "拉面", "米线", "粉丝", "饺子"};
  static const auto* snack = new std::vector<const char*>{
      "豆花", "锅盔", "凉粉", "汤圆", "烧饼", "糍粑"};
  switch (pool) {
    case 0:
      return *sichuan;
    case 1:
      return *canton;
    case 2:
      return *noodle;
    default:
      return *snack;
  }
}

const std::vector<const char*>& Fruits() {
  static const auto* v = new std::vector<const char*>{
      "苹果", "香蕉", "橘子", "葡萄", "西瓜", "荔枝", "龙眼",
      "芒果", "樱桃", "草莓", "柚子", "桃子", "枇杷", "杨梅"};
  return *v;
}

const std::vector<const char*>& Vegetables() {
  static const auto* v = new std::vector<const char*>{
      "白菜", "萝卜", "芹菜", "菠菜", "茄子", "黄瓜", "南瓜",
      "土豆", "青椒", "西红柿", "豆角", "莴笋"};
  return *v;
}

const std::vector<const char*>& Drinks() {
  static const auto* v = new std::vector<const char*>{
      "绿茶", "红茶", "乌龙茶", "豆浆", "酸梅汤", "米酒", "咖啡", "果汁"};
  return *v;
}

const std::vector<const char*>& Desserts() {
  static const auto* v = new std::vector<const char*>{
      "月饼", "绿豆糕", "桂花糕", "蛋挞", "双皮奶", "杏仁豆腐", "芝麻糊"};
  return *v;
}

const std::vector<const char*>& ProductBrandChars() {
  static const auto* v = new std::vector<const char*>{
      "星", "辰", "光", "速", "锐", "捷", "酷", "炫", "智", "云",
      "雷", "风", "火", "影", "翼", "界", "域", "元", "极", "灵"};
  return *v;
}

const std::vector<const char*>& EventCores() {
  // pool indices: 0 war, 1 battle, 2 sports event, 3 festival, 4 conference,
  // 5 award. Kept in one flat list; the generator offsets by pool.
  static const auto* v = new std::vector<const char*>{
      "战争", "之战", "战役", "会战", "运动会", "锦标赛",
      "文化节", "艺术节", "博览会", "论坛",   "电影节", "颁奖礼"};
  return *v;
}

const std::vector<const char*>& ThematicWords() {
  // Representative subset of the 184-word non-taxonomic thematic lexicon the
  // paper borrows from Li et al. (2015). These describe topics, not classes.
  static const auto* v = new std::vector<const char*>{
      "音乐", "政治", "军事", "体育", "娱乐", "科学", "历史", "文化",
      "教育", "经济", "艺术", "文学", "宗教", "哲学", "旅游", "美食",
      "时尚", "健康", "医学", "法律", "金融", "科技", "自然", "地理",
      "社会", "生活", "影视", "动漫", "电竞", "汽车圈", "财经", "军迷",
      "国学", "民俗", "天文", "气象", "环保", "公益", "摄影", "收藏",
      "养生", "体坛", "乐坛", "文坛", "影坛", "学术", "传媒", "互联网"};
  return *v;
}

const std::vector<const char*>& CommonWords() {
  static const auto* v = new std::vector<const char*>{
      "的",   "是",   "在",   "于",   "年",   "月",   "日",   "出生",
      "毕业", "担任", "获得", "创办", "位于", "一部", "一名", "著名",
      "知名", "主演", "执导", "发行", "出版", "成立", "等",   "和",
      "与",   "其",   "代表作", "包括", "曾",  "现任", "首席", "战略官",
      "执行官", "技术官", "先生", "女士", "职业", "工作", "生涯", "活跃",
      "一家", "一种", "一座", "一次", "分布", "发布", "发生", "他",
      "她",   "凭借", "被誉为", "总部", "是一位"};
  return *v;
}

const std::vector<const char*>& ConfusionWords() {
  // Wrong-sense translations for the Probase-Tran polysemy model; none of
  // these are ontology concepts, so picking one is always an error.
  static const auto* v = new std::vector<const char*>{
      "行动者", "随声附和者", "指挥者", "作品集", "放映机", "乐器",
      "跑步者", "飞行物",   "建造者", "治疗",   "讲台",   "比喻",
      "潮流",   "资本",     "窗口",   "平台",   "桥段",   "符号",
      "容器",   "载体",     "象征",   "典范",   "风向标", "代名词"};
  return *v;
}

}  // namespace cnpb::synth
