#include "synth/ontology.h"

#include <algorithm>

#include "util/logging.h"

namespace cnpb::synth {

const std::vector<AttributeSpec>& SchemaFor(Domain domain) {
  static const auto* person = new std::vector<AttributeSpec>{
      {"中文名", ValueKind::kText, 1.0},
      {"国籍", ValueKind::kCountryRef, 0.9},
      {"出生日期", ValueKind::kDate, 0.9},
      {"出生地", ValueKind::kCityRef, 0.8},
      {"职业", ValueKind::kConceptIsa, 0.95},
      {"代表作品", ValueKind::kWorkRef, 0.6},
      {"毕业院校", ValueKind::kOrgRef, 0.5},
      {"身高", ValueKind::kNumber, 0.4},
      {"体重", ValueKind::kNumber, 0.3},
      {"经纪公司", ValueKind::kOrgRef, 0.3},
  };
  static const auto* place = new std::vector<AttributeSpec>{
      {"中文名称", ValueKind::kText, 1.0},
      {"所属国家", ValueKind::kCountryRef, 0.9},
      {"面积", ValueKind::kNumber, 0.8},
      {"人口", ValueKind::kNumber, 0.7},
      {"地理类别", ValueKind::kConceptIsa, 0.7},
      {"著名景点", ValueKind::kText, 0.3},
  };
  static const auto* work = new std::vector<AttributeSpec>{
      {"中文名", ValueKind::kText, 1.0},
      {"导演", ValueKind::kPersonRef, 0.7},
      {"主演", ValueKind::kPersonRef, 0.5},
      {"类型", ValueKind::kConceptIsa, 0.9},
      {"发行时间", ValueKind::kDate, 0.8},
      {"出品公司", ValueKind::kOrgRef, 0.4},
  };
  static const auto* org = new std::vector<AttributeSpec>{
      {"中文名", ValueKind::kText, 1.0},
      {"成立时间", ValueKind::kDate, 0.9},
      {"总部地点", ValueKind::kCityRef, 0.8},
      {"创始人", ValueKind::kPersonRef, 0.5},
      {"经营范围", ValueKind::kIndustry, 0.6},
      {"机构类别", ValueKind::kConceptIsa, 0.8},
  };
  static const auto* bio = new std::vector<AttributeSpec>{
      {"中文学名", ValueKind::kText, 1.0},
      {"界", ValueKind::kText, 0.9},
      {"分布区域", ValueKind::kCityRef, 0.7},
      {"分类", ValueKind::kConceptIsa, 0.8},
      {"保护级别", ValueKind::kText, 0.4},
  };
  static const auto* food = new std::vector<AttributeSpec>{
      {"中文名", ValueKind::kText, 1.0},
      {"主要食材", ValueKind::kText, 0.7},
      {"口味", ValueKind::kText, 0.6},
      {"分类", ValueKind::kConceptIsa, 0.85},
      {"发源地", ValueKind::kCityRef, 0.4},
  };
  static const auto* product = new std::vector<AttributeSpec>{
      {"中文名", ValueKind::kText, 1.0},
      {"品牌", ValueKind::kOrgRef, 0.7},
      {"产品类型", ValueKind::kConceptIsa, 0.85},
      {"发布时间", ValueKind::kDate, 0.8},
      {"售价", ValueKind::kNumber, 0.5},
  };
  static const auto* event = new std::vector<AttributeSpec>{
      {"中文名", ValueKind::kText, 1.0},
      {"发生时间", ValueKind::kDate, 0.8},
      {"发生地点", ValueKind::kCityRef, 0.6},
      {"事件类型", ValueKind::kConceptIsa, 0.7},
  };
  static const auto* other = new std::vector<AttributeSpec>{};
  switch (domain) {
    case Domain::kPerson:
      return *person;
    case Domain::kPlace:
      return *place;
    case Domain::kWork:
      return *work;
    case Domain::kOrg:
      return *org;
    case Domain::kBio:
      return *bio;
    case Domain::kFood:
      return *food;
    case Domain::kProduct:
      return *product;
    case Domain::kEvent:
      return *event;
    case Domain::kOther:
      return *other;
  }
  return *other;
}

Ontology Ontology::Build() {
  Ontology onto;
  const std::vector<ConceptRow>& rows = OntologyRows();
  onto.concepts_.reserve(rows.size());
  for (const ConceptRow& row : rows) {
    ConceptInfo info;
    info.name = row.name;
    info.domain = row.domain;
    info.style = row.style;
    info.entity_weight = row.entity_weight;
    info.english = row.english;
    info.pool = row.pool;
    info.title_like = row.title_like;
    const int id = static_cast<int>(onto.concepts_.size());
    const bool inserted = onto.index_.emplace(info.name, id).second;
    CNPB_CHECK(inserted) << "duplicate concept " << info.name;
    onto.concepts_.push_back(std::move(info));
  }
  // Wire parents after all names are registered (rows may forward-reference).
  for (size_t i = 0; i < rows.size(); ++i) {
    for (const char* parent_name : {rows[i].parent1, rows[i].parent2}) {
      if (parent_name[0] == '\0') continue;
      const int parent = onto.Find(parent_name);
      CNPB_CHECK(parent >= 0) << "dangling parent " << parent_name << " of "
                              << rows[i].name;
      onto.concepts_[i].parents.push_back(parent);
      onto.concepts_[parent].children.push_back(static_cast<int>(i));
    }
  }
  // Precompute ancestor sets (the DAG is tiny).
  onto.ancestors_.resize(onto.concepts_.size());
  for (size_t i = 0; i < onto.concepts_.size(); ++i) {
    std::vector<int> frontier = onto.concepts_[i].parents;
    std::unordered_set<int> seen(frontier.begin(), frontier.end());
    while (!frontier.empty()) {
      const int current = frontier.back();
      frontier.pop_back();
      onto.ancestors_[i].push_back(current);
      for (int parent : onto.concepts_[current].parents) {
        if (seen.insert(parent).second) frontier.push_back(parent);
      }
    }
    std::sort(onto.ancestors_[i].begin(), onto.ancestors_[i].end());
  }
  for (size_t i = 0; i < onto.concepts_.size(); ++i) {
    if (onto.concepts_[i].entity_weight > 0) {
      onto.entity_bearing_.push_back(static_cast<int>(i));
    }
  }
  for (const char* word : ThematicWords()) onto.thematic_.insert(word);
  return onto;
}

int Ontology::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

const std::vector<int>& Ontology::Ancestors(int id) const {
  CNPB_CHECK(id >= 0 && static_cast<size_t>(id) < ancestors_.size());
  return ancestors_[id];
}

bool Ontology::IsAncestor(int maybe_ancestor, int id) const {
  const std::vector<int>& anc = Ancestors(id);
  return std::binary_search(anc.begin(), anc.end(), maybe_ancestor);
}

std::vector<std::pair<int, int>> Ontology::AllEdges() const {
  std::vector<std::pair<int, int>> edges;
  for (size_t i = 0; i < concepts_.size(); ++i) {
    for (int parent : concepts_[i].parents) {
      edges.emplace_back(static_cast<int>(i), parent);
    }
  }
  return edges;
}

bool Ontology::IsThematic(std::string_view word) const {
  return thematic_.count(std::string(word)) > 0;
}

}  // namespace cnpb::synth
