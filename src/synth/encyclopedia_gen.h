#ifndef CNPROBASE_SYNTH_ENCYCLOPEDIA_GEN_H_
#define CNPROBASE_SYNTH_ENCYCLOPEDIA_GEN_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/dump.h"
#include "synth/world.h"
#include "util/rng.h"

namespace cnpb::synth {

// Ground truth against which every extracted isA relation can be judged.
// This replaces the paper's manual labeling of 2000 sampled relations.
class GoldTruth {
 public:
  // Registers the correct hypernym words of a disambiguated page name.
  void AddEntity(const std::string& page_name,
                 std::unordered_set<std::string> hypernyms);
  // Registers the correct super-concepts of a concept_name.
  void AddConcept(const std::string& concept_name,
                  std::unordered_set<std::string> supers);

  // True if isA(hypo, hyper) is correct, where hypo may be a page name or a
  // concept_name. Correct means hyper is a gold direct concept_name or any ancestor.
  bool IsCorrect(const std::string& hypo, const std::string& hyper) const;

  bool KnowsHyponym(const std::string& hypo) const;
  size_t num_entities() const { return entity_hypernyms_.size(); }

 private:
  std::unordered_map<std::string, std::unordered_set<std::string>>
      entity_hypernyms_;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      concept_hypernyms_;
};

// Generates the CN-DBpedia-style dump (Figure 1 pages) from the world model,
// with calibrated per-source noise. See DESIGN.md §2 for the substitution
// rationale.
class EncyclopediaGenerator {
 public:
  struct Config {
    uint64_t seed = 7;
    // Per-source sparsity. No single source covers the dump — CN-DBpedia has
    // 19.9M tags over 16M pages and only half the pages carry an abstract or
    // bracket — which is exactly why multi-source extraction wins coverage
    // (the 25x gap of Table I).
    //
    // Fraction of pages that carry a disambiguation bracket (ambiguous
    // mentions always do).
    double bracket_rate = 0.55;
    // Fraction of brackets that are NOT hypernym compounds (place phrases,
    // thematic words); drives the bracket source's ~96% raw precision.
    double bracket_noise_rate = 0.03;
    // Fraction of brackets naming a plausible-but-wrong same-domain concept
    // (mislabelled disambiguators survive every verification heuristic —
    // the residual error mass behind the paper's 95%, not 100%).
    double bracket_wrong_concept_rate = 0.02;
    double abstract_rate = 0.8;
    // Fraction of pages that have a tag section at all.
    double tag_page_rate = 0.5;
    // Tag noise mix (drives the raw tag precision before verification).
    double tag_concept_keep = 0.9;
    double tag_ancestor_rate = 0.7;
    double tag_thematic_rate = 0.12;
    double tag_ne_rate = 0.04;
    double tag_wrong_concept_rate = 0.03;
    // Same-domain wrong tags (a non-singing actor tagged 歌手): compatible
    // with the gold concepts, hence invisible to the verification module.
    double tag_same_domain_wrong_rate = 0.025;
    // Fraction of isA-bearing infobox triples whose value is a wrong concept_name.
    double infobox_wrong_concept_rate = 0.05;
    // Also emit one page per ontology concept (演员 has its own encyclopedia
    // page whose tags name its parents); tag extraction over these pages is
    // what yields subconcept-concept relations.
    bool concept_pages = true;
    // Alias rates: persons get 阿X/小X nicknames, organisations get their
    // suffix-stripped abbreviation (华辰科技 -> 华辰). Aliases feed men2ent.
    double person_alias_rate = 0.15;
    double org_alias_rate = 0.4;
  };

  struct Output {
    kb::EncyclopediaDump dump;
    GoldTruth gold;
    // dump page index -> world entity index.
    std::vector<size_t> page_entity;
  };

  // The world must outlive the call.
  static Output Generate(const WorldModel& world, const Config& config);
};

}  // namespace cnpb::synth

#endif  // CNPROBASE_SYNTH_ENCYCLOPEDIA_GEN_H_
