#include "synth/encyclopedia_gen.h"

#include <algorithm>

#include "text/utf8.h"

#include "util/logging.h"
#include "util/strings.h"

namespace cnpb::synth {

void GoldTruth::AddEntity(const std::string& page_name,
                          std::unordered_set<std::string> hypernyms) {
  entity_hypernyms_[page_name] = std::move(hypernyms);
}

void GoldTruth::AddConcept(const std::string& concept_name,
                           std::unordered_set<std::string> supers) {
  concept_hypernyms_[concept_name] = std::move(supers);
}

bool GoldTruth::IsCorrect(const std::string& hypo,
                          const std::string& hyper) const {
  auto it = entity_hypernyms_.find(hypo);
  if (it != entity_hypernyms_.end()) return it->second.count(hyper) > 0;
  auto jt = concept_hypernyms_.find(hypo);
  if (jt != concept_hypernyms_.end()) return jt->second.count(hyper) > 0;
  return false;
}

bool GoldTruth::KnowsHyponym(const std::string& hypo) const {
  return entity_hypernyms_.count(hypo) > 0 ||
         concept_hypernyms_.count(hypo) > 0;
}

namespace {

// Context used while generating one page.
struct PageContext {
  const WorldModel* world;
  const EncyclopediaGenerator::Config* config;
  util::Rng* rng;
};

// A plausible-but-wrong concept: same domain as the entity, entity-bearing,
// and neither a gold concept nor related to one by ancestry. Returns -1 if
// none can be found.
int SameDomainWrongConcept(const WorldEntity& entity, const Ontology& onto,
                           util::Rng& rng) {
  const std::vector<int>& bearing = onto.EntityBearingConcepts();
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int other = bearing[rng.Uniform(bearing.size())];
    if (onto.ConceptAt(other).domain != entity.domain) continue;
    bool related = false;
    for (int gold : entity.concepts) {
      if (other == gold || onto.IsAncestor(other, gold) ||
          onto.IsAncestor(gold, other)) {
        related = true;
        break;
      }
    }
    if (!related) return other;
  }
  return -1;
}

std::string RandomMentionOf(const WorldModel& world,
                            const std::vector<size_t>& pool, util::Rng& rng,
                            const char* fallback) {
  if (pool.empty()) return fallback;
  return world.entities()[pool[rng.Uniform(pool.size())]].mention;
}

// Builds the disambiguation bracket for an entity. Returns an empty string
// when the entity should have no bracket. `noisy` is set when the bracket is
// deliberately not a hypernym compound.
std::string MakeBracket(const WorldEntity& entity, const PageContext& ctx,
                        bool force, bool* noisy) {
  util::Rng& rng = *ctx.rng;
  const WorldModel& world = *ctx.world;
  const Ontology& onto = world.ontology();
  *noisy = false;
  if (!force && !rng.Bernoulli(ctx.config->bracket_rate)) return "";

  if (rng.Bernoulli(ctx.config->bracket_noise_rate)) {
    *noisy = true;
    // Two flavours of non-hypernym brackets seen in real encyclopedias:
    // a topic word (音乐) or a pure place phrase (中国北京).
    if (rng.Bernoulli(0.5)) return rng.Choice(ThematicWords());
    std::string out = rng.Choice(Countries());
    out += rng.Choice(MajorCities());
    return out;
  }

  // Title-like concepts take an employer modifier: 蚂蚁金服首席战略官.
  for (int concept_id : entity.concepts) {
    if (onto.ConceptAt(concept_id).title_like) {
      std::string out = RandomMentionOf(world, world.Companies(), rng, "华辰科技");
      out += onto.ConceptAt(concept_id).name;
      return out;
    }
  }

  std::string primary = onto.ConceptAt(entity.primary).name;
  if (rng.Bernoulli(ctx.config->bracket_wrong_concept_rate)) {
    const int wrong = SameDomainWrongConcept(entity, onto, rng);
    if (wrong >= 0) {
      *noisy = true;
      primary = onto.ConceptAt(wrong).name;
    }
  }
  std::string out;
  switch (entity.domain) {
    case Domain::kPerson:
      out = rng.Choice(Regions());
      out += primary;
      // Sometimes list a second concept_name: 中国香港男演员、歌手.
      if (entity.concepts.size() > 1 && rng.Bernoulli(0.5)) {
        out += "、";
        out += onto.ConceptAt(entity.concepts[1]).name;
      }
      break;
    case Domain::kPlace:
    case Domain::kBio:
      out = rng.Choice(Countries());
      out += primary;
      break;
    case Domain::kWork:
      if (rng.Bernoulli(0.5)) out = rng.Choice(Regions());
      out += primary;
      break;
    case Domain::kOrg:
      out = RandomMentionOf(world, world.EntitiesOfDomain(Domain::kPlace), rng,
                            "北京");
      out += primary;
      break;
    default:
      out = primary;  // bracket that is just the concept_name itself
      break;
  }
  return out;
}

// Builds the abstract. The primary concept_name word is embedded in the text,
// which is what makes the CopyNet distant-supervision task learnable.
std::string MakeAbstract(const WorldEntity& entity, const PageContext& ctx) {
  util::Rng& rng = *ctx.rng;
  const WorldModel& world = *ctx.world;
  const Ontology& onto = world.ontology();
  const std::string& concept_name = onto.ConceptAt(entity.primary).name;
  const int year = static_cast<int>(rng.UniformInt(1930, 2015));

  std::string out = entity.mention;
  switch (entity.domain) {
    case Domain::kPerson: {
      out += util::StrFormat("，%d年%d月%d日出生于", year,
                             static_cast<int>(rng.UniformInt(1, 12)),
                             static_cast<int>(rng.UniformInt(1, 28)));
      out += RandomMentionOf(world, world.EntitiesOfDomain(Domain::kPlace),
                             rng, "北京");
      out += "，";
      out += rng.Choice(Regions());
      out += concept_name;
      if (entity.concepts.size() > 1) {
        out += "、";
        out += onto.ConceptAt(entity.concepts[1]).name;
      }
      out += "。";
      if (onto.ConceptAt(entity.primary).title_like) {
        out += "现任";
        out += RandomMentionOf(world, world.Companies(), rng, "华辰科技");
        out += concept_name;
        out += "。";
      } else if (rng.Bernoulli(0.6)) {
        out += util::StrFormat("%d年", year + 20);
        out += "主演电影《";
        out += RandomMentionOf(world, world.EntitiesOfDomain(Domain::kWork),
                               rng, "忘情水");
        out += "》。";
      }
      break;
    }
    case Domain::kPlace:
      out += "，位于";
      out += rng.Choice(Countries());
      out += "，是著名";
      out += concept_name;
      out += "。";
      break;
    case Domain::kWork:
      out = "《" + entity.mention + "》";
      out += "是一部";
      out += concept_name;
      out += "，由";
      out += RandomMentionOf(world, world.EntitiesOfDomain(Domain::kPerson),
                             rng, "王伟");
      out += "执导。";
      out += util::StrFormat("%d年发行。", year);
      break;
    case Domain::kOrg:
      out += util::StrFormat("成立于%d年，总部位于", year);
      out += RandomMentionOf(world, world.EntitiesOfDomain(Domain::kPlace),
                             rng, "上海");
      out += "，是一家";
      out += concept_name;
      out += "。";
      break;
    case Domain::kBio:
      out += "是一种";
      out += concept_name;
      out += "，分布于";
      out += RandomMentionOf(world, world.EntitiesOfDomain(Domain::kPlace),
                             rng, "云南");
      out += "等地。";
      break;
    case Domain::kFood:
      out += "是一种";
      out += concept_name;
      out += "，发源于";
      out += RandomMentionOf(world, world.EntitiesOfDomain(Domain::kPlace),
                             rng, "成都");
      out += "。";
      break;
    case Domain::kProduct:
      out += "是";
      out += RandomMentionOf(world, world.Companies(), rng, "星辰科技");
      out += util::StrFormat("%d年发布的", year);
      out += concept_name;
      out += "。";
      break;
    case Domain::kEvent:
      out += util::StrFormat("发生于%d年，是一次", year);
      out += concept_name;
      out += "。";
      break;
    case Domain::kOther:
      out += "是";
      out += concept_name;
      out += "。";
      break;
  }
  return out;
}

std::vector<std::string> MakeTags(const WorldEntity& entity,
                                  const PageContext& ctx) {
  util::Rng& rng = *ctx.rng;
  const Ontology& onto = ctx.world->ontology();
  const EncyclopediaGenerator::Config& config = *ctx.config;
  std::vector<std::string> tags;
  for (int concept_id : entity.concepts) {
    if (rng.Bernoulli(config.tag_concept_keep)) {
      tags.push_back(onto.ConceptAt(concept_id).name);
    }
  }
  // One ancestor tag (e.g. 人物 on an actor page).
  const std::vector<int>& ancestors = onto.Ancestors(entity.primary);
  if (!ancestors.empty() && rng.Bernoulli(config.tag_ancestor_rate)) {
    tags.push_back(onto.ConceptAt(rng.Choice(ancestors)).name);
  }
  if (rng.Bernoulli(config.tag_thematic_rate)) {
    tags.push_back(rng.Choice(ThematicWords()));
  }
  if (rng.Bernoulli(config.tag_ne_rate)) {
    tags.push_back(rng.Bernoulli(0.5)
                       ? std::string(rng.Choice(Countries()))
                       : std::string(rng.Choice(MajorCities())));
  }
  if (rng.Bernoulli(config.tag_wrong_concept_rate)) {
    // A concept_name from a different domain — definitely wrong.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int other = static_cast<int>(rng.Uniform(onto.size()));
      if (onto.ConceptAt(other).domain != entity.domain) {
        tags.push_back(onto.ConceptAt(other).name);
        break;
      }
    }
  }
  if (rng.Bernoulli(config.tag_same_domain_wrong_rate)) {
    const int wrong = SameDomainWrongConcept(entity, onto, rng);
    if (wrong >= 0) tags.push_back(onto.ConceptAt(wrong).name);
  }
  // Dedup while keeping order.
  std::vector<std::string> unique;
  for (std::string& tag : tags) {
    if (std::find(unique.begin(), unique.end(), tag) == unique.end()) {
      unique.push_back(std::move(tag));
    }
  }
  return unique;
}

}  // namespace

EncyclopediaGenerator::Output EncyclopediaGenerator::Generate(
    const WorldModel& world, const Config& config) {
  Output output;
  util::Rng rng(config.seed);
  PageContext ctx{&world, &config, &rng};
  const Ontology& onto = world.ontology();

  // Mentions that occur more than once need a bracket to disambiguate.
  std::unordered_map<std::string, int> mention_count;
  for (const WorldEntity& entity : world.entities()) {
    ++mention_count[entity.mention];
  }

  std::unordered_set<std::string> used_names;
  for (size_t i = 0; i < world.entities().size(); ++i) {
    const WorldEntity& entity = world.entities()[i];
    const bool force_bracket = mention_count[entity.mention] > 1;

    kb::EncyclopediaPage page;
    page.mention = entity.mention;
    bool placed = false;
    for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
      bool noisy = false;
      page.bracket = MakeBracket(entity, ctx, force_bracket, &noisy);
      page.name = page.bracket.empty()
                      ? page.mention
                      : page.mention + "（" + page.bracket + "）";
      if (used_names.insert(page.name).second) placed = true;
    }
    if (!placed) continue;  // unresolvable name collision: drop the page

    if (rng.Bernoulli(config.abstract_rate)) {
      page.abstract = MakeAbstract(entity, ctx);
    }

    for (const auto& [predicate, value] : entity.attributes) {
      std::string object = value;
      // Noise on the implicit-isA predicates only.
      const bool isa_bearing = onto.Contains(value) &&
                               (predicate == "职业" || predicate == "类型" ||
                                predicate == "机构类别" || predicate == "分类" ||
                                predicate == "产品类型" ||
                                predicate == "事件类型" ||
                                predicate == "地理类别");
      if (isa_bearing && rng.Bernoulli(config.infobox_wrong_concept_rate)) {
        const int wrong = SameDomainWrongConcept(entity, onto, rng);
        if (wrong >= 0) object = onto.ConceptAt(wrong).name;
      }
      page.infobox.push_back({page.name, predicate, object});
    }

    if (rng.Bernoulli(config.tag_page_rate)) {
      page.tags = MakeTags(entity, ctx);
    }

    // Aliases: nickname patterns for persons, abbreviations for orgs.
    if (entity.domain == Domain::kPerson &&
        rng.Bernoulli(config.person_alias_rate)) {
      const auto cps = text::CodepointStrings(page.mention);
      if (cps.size() >= 2) {
        std::string alias = rng.Bernoulli(0.5) ? "阿" : "小";
        alias += cps.back();
        page.aliases.push_back(std::move(alias));
      }
    } else if (entity.domain == Domain::kOrg &&
               rng.Bernoulli(config.org_alias_rate)) {
      const auto cps = text::CodepointStrings(page.mention);
      if (cps.size() >= 4) {
        // Strip the two-codepoint industry/type suffix: 华辰科技 -> 华辰.
        std::string alias;
        for (size_t k = 0; k + 2 < cps.size(); ++k) alias += cps[k];
        if (alias != page.mention) page.aliases.push_back(std::move(alias));
      }
    }

    // Gold hypernyms: direct concepts plus all ancestors.
    std::unordered_set<std::string> gold;
    for (int concept_id : entity.concepts) {
      gold.insert(onto.ConceptAt(concept_id).name);
      for (int ancestor : onto.Ancestors(concept_id)) {
        gold.insert(onto.ConceptAt(ancestor).name);
      }
    }
    output.gold.AddEntity(page.name, std::move(gold));

    output.page_entity.push_back(i);
    output.dump.AddPage(std::move(page));
  }

  // Concept pages: the page of 演员 carries tags 娱乐人物 etc. Tag
  // extraction over these pages yields the subconcept-concept relations.
  if (config.concept_pages) {
    for (size_t c = 0; c < onto.size(); ++c) {
      const auto& info = onto.ConceptAt(static_cast<int>(c));
      if (info.parents.empty()) continue;  // domain roots have no hypernym
      kb::EncyclopediaPage page;
      page.mention = info.name;
      page.name = info.name;
      if (!used_names.insert(page.name).second) continue;
      const std::string& parent_name = onto.ConceptAt(info.parents[0]).name;
      page.abstract = info.name + "是一种" + parent_name + "。";
      for (int parent : info.parents) {
        if (rng.Bernoulli(0.95)) {
          page.tags.push_back(onto.ConceptAt(parent).name);
        }
      }
      if (rng.Bernoulli(config.tag_thematic_rate / 2)) {
        page.tags.push_back(rng.Choice(ThematicWords()));
      }
      std::unordered_set<std::string> gold;
      for (int ancestor : onto.Ancestors(static_cast<int>(c))) {
        gold.insert(onto.ConceptAt(ancestor).name);
      }
      output.gold.AddEntity(page.name, std::move(gold));
      output.page_entity.push_back(SIZE_MAX);
      output.dump.AddPage(std::move(page));
    }
  }

  // Concept-level gold: every concept_name's ancestor set.
  for (size_t c = 0; c < onto.size(); ++c) {
    std::unordered_set<std::string> supers;
    for (int ancestor : onto.Ancestors(static_cast<int>(c))) {
      supers.insert(onto.ConceptAt(ancestor).name);
    }
    output.gold.AddConcept(onto.ConceptAt(c).name, std::move(supers));
  }
  return output;
}

}  // namespace cnpb::synth
