#include "synth/site_split.h"

#include "util/rng.h"

namespace cnpb::synth {

std::vector<kb::EncyclopediaDump> SplitIntoSites(
    const kb::EncyclopediaDump& master, const SiteSplitConfig& config) {
  util::Rng rng(config.seed);
  std::vector<kb::EncyclopediaDump> sites(
      static_cast<size_t>(config.num_sites));
  for (const kb::EncyclopediaPage& page : master.pages()) {
    bool placed = false;
    for (int attempt = 0; !placed; ++attempt) {
      for (kb::EncyclopediaDump& site : sites) {
        // Every page must exist somewhere; after the first pass force the
        // last site to take strays.
        const bool covered =
            rng.Bernoulli(config.page_coverage) || (attempt > 0 && !placed);
        if (!covered) continue;
        kb::EncyclopediaPage copy;
        copy.name = page.name;
        copy.mention = page.mention;
        if (rng.Bernoulli(config.keep_bracket)) copy.bracket = page.bracket;
        if (rng.Bernoulli(config.keep_abstract)) copy.abstract = page.abstract;
        if (rng.Bernoulli(config.keep_infobox)) copy.infobox = page.infobox;
        if (rng.Bernoulli(config.keep_tags)) copy.tags = page.tags;
        copy.aliases = page.aliases;
        site.AddPage(std::move(copy));
        placed = true;
      }
    }
  }
  return sites;
}

}  // namespace cnpb::synth
