#include "synth/corpus_gen.h"

#include "text/utf8.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cnpb::synth {

size_t Corpus::NumTokens() const {
  size_t n = 0;
  for (const auto& sentence : sentences) n += sentence.size();
  return n;
}

void Corpus::FillNgrams(text::NgramCounter* counter) const {
  std::vector<std::string> words;
  for (const auto& sentence : sentences) {
    words.clear();
    words.reserve(sentence.size());
    for (const CorpusToken& token : sentence) words.push_back(token.word);
    counter->AddSentence(words);
  }
}

namespace {

// Marks tokens that are proper nouns in the lexicon as gold named entities.
std::vector<CorpusToken> ToTokens(const std::vector<std::string>& words,
                                  const text::Lexicon& lexicon) {
  std::vector<CorpusToken> tokens;
  tokens.reserve(words.size());
  for (const std::string& word : words) {
    CorpusToken token;
    token.word = word;
    token.gold_ne = lexicon.PosOf(word) == text::Pos::kProperNoun;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

std::vector<CorpusToken> PatternSentence(
    std::initializer_list<std::pair<const char*, bool>> parts) {
  std::vector<CorpusToken> tokens;
  for (const auto& [word, ne] : parts) tokens.push_back({word, ne});
  return tokens;
}

}  // namespace

Corpus CorpusGenerator::Generate(const WorldModel& world,
                                 const kb::EncyclopediaDump& dump,
                                 const text::Segmenter& segmenter,
                                 const Config& config) {
  Corpus corpus;
  util::Rng rng(config.seed);
  const Ontology& onto = world.ontology();
  const text::Lexicon& lexicon = world.lexicon();

  // 1. Segmented abstracts: the bulk of the corpus.
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    if (page.abstract.empty()) continue;
    corpus.sentences.push_back(
        ToTokens(segmenter.Segment(page.abstract), lexicon));
  }

  // 2. Title-compound patterns: 他 担任 首席 战略官 。
  for (size_t c = 0; c < onto.size(); ++c) {
    const auto& info = onto.ConceptAt(c);
    if (!info.title_like || !util::StartsWith(info.name, "首席")) continue;
    const std::string suffix = info.name.substr(std::string("首席").size());
    const std::vector<size_t>& holders = world.EntitiesOfConcept(static_cast<int>(c));
    const int reps = config.title_patterns *
                     std::max(1, static_cast<int>(holders.size()));
    for (int i = 0; i < reps; ++i) {
      corpus.sentences.push_back(PatternSentence(
          {{rng.Bernoulli(0.5) ? "他" : "她", false},
           {"担任", false},
           {"首席", false},
           {suffix.c_str(), false},
           {"。", false}}));
    }
  }

  // 3. Organisations in diverse contexts so PMI(org, 首席) stays modest and
  //    the NER supports see org mentions outside NE slots rarely.
  for (size_t idx : world.Companies()) {
    const WorldEntity& org = world.entities()[idx];
    for (int i = 0; i < config.org_context_sentences; ++i) {
      std::vector<CorpusToken> sentence;
      sentence.push_back({org.mention, true});
      switch (rng.Uniform(3)) {
        case 0:
          sentence.push_back({"成立", false});
          sentence.push_back({"于", false});
          sentence.push_back(
              {util::StrFormat("%d", (int)rng.UniformInt(1950, 2015)), false});
          sentence.push_back({"年", false});
          break;
        case 1:
          sentence.push_back({"是", false});
          sentence.push_back({"一家", false});
          sentence.push_back({onto.ConceptAt(org.primary).name, false});
          break;
        default:
          sentence.push_back({"发布", false});
          sentence.push_back({"了", false});
          sentence.push_back({"新品", false});
          break;
      }
      sentence.push_back({"。", false});
      corpus.sentences.push_back(std::move(sentence));
    }
  }

  // 4. NE-after-preposition sentences: {person} 出生 于 {place} 。
  const std::vector<size_t>& persons = world.EntitiesOfDomain(Domain::kPerson);
  const std::vector<size_t>& places = world.EntitiesOfDomain(Domain::kPlace);
  if (!persons.empty() && !places.empty()) {
    const size_t reps = persons.size() / 2;
    for (size_t i = 0; i < reps; ++i) {
      const WorldEntity& person =
          world.entities()[persons[rng.Uniform(persons.size())]];
      const WorldEntity& place =
          world.entities()[places[rng.Uniform(places.size())]];
      corpus.sentences.push_back({{person.mention, true},
                                  {"出生", false},
                                  {"于", false},
                                  {place.mention, true},
                                  {"。", false}});
    }
  }

  return corpus;
}

}  // namespace cnpb::synth
