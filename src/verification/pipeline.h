#ifndef CNPROBASE_VERIFICATION_PIPELINE_H_
#define CNPROBASE_VERIFICATION_PIPELINE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "generation/candidate.h"
#include "kb/dump.h"
#include "text/lexicon.h"
#include "verification/incompatible.h"
#include "verification/ner_filter.h"
#include "verification/syntax_rules.h"

namespace cnpb::verification {

// The verification module (paper §III): a candidate isA relation is dropped
// if ANY of the three heuristic strategies judges it wrong. Strategies run
// cheap-first (syntax, NER, then incompatible concepts) and each rejection
// is attributed, powering the ablation bench.
class VerificationPipeline {
 public:
  struct Config {
    bool use_syntax = true;
    bool use_ner = true;
    bool use_incompatible = true;
    SyntaxRules::Config syntax;
    NerFilter::Config ner;
    IncompatibleConcepts::Config incompatible;
  };

  struct Report {
    size_t input = 0;
    size_t output = 0;
    size_t rejected_syntax = 0;
    size_t rejected_ner = 0;
    size_t rejected_incompatible = 0;
    size_t rejected_total() const {
      return rejected_syntax + rejected_ner + rejected_incompatible;
    }
  };

  // `dump` and `lexicon` must outlive the pipeline. Corpus sentences feed
  // the NER supports and are provided via AddCorpusSentence before Verify.
  VerificationPipeline(const kb::EncyclopediaDump* dump,
                       const text::Lexicon* lexicon, const Config& config);

  void AddCorpusSentence(const std::vector<std::string>& words);

  // Folds one newly-arrived page into the pipeline's corpus statistics (the
  // page-name -> mention table and the attribute distributions backing the
  // incompatible-concepts strategy). The incremental updater calls this per
  // batch page instead of reconstructing the pipeline — which would re-scan
  // the entire accumulated dump — so per-batch verification cost stays
  // proportional to the delta, not the union.
  void AddPage(const kb::EncyclopediaPage& page);

  // Filters the candidate list; fills `report` if non-null.
  generation::CandidateList Verify(const generation::CandidateList& candidates,
                                   Report* report);

  const std::unordered_map<std::string, std::string>& mention_of_page() const {
    return mention_of_page_;
  }

 private:
  Config config_;
  SyntaxRules syntax_;
  NerFilter ner_;
  IncompatibleConcepts incompatible_;
  std::unordered_map<std::string, std::string> mention_of_page_;
};

}  // namespace cnpb::verification

#endif  // CNPROBASE_VERIFICATION_PIPELINE_H_
