#include "verification/syntax_rules.h"

#include <numeric>

#include "text/utf8.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace cnpb::verification {

namespace {

// True for 1994, 1994年, 9月, 28日 and similar date/number fragments.
bool IsNumericOrDate(const std::string& word) {
  if (word.empty()) return false;
  size_t pos = 0;
  bool saw_digit = false;
  while (pos < word.size()) {
    const size_t start = pos;
    const char32_t cp = text::DecodeCodepointAt(word, pos);
    if (text::IsDigitCodepoint(cp)) {
      saw_digit = true;
      continue;
    }
    // A single trailing date unit after digits is still a date fragment.
    if (saw_digit && pos >= word.size() &&
        (cp == U'年' || cp == U'月' || cp == U'日')) {
      return true;
    }
    (void)start;
    return false;
  }
  return saw_digit;
}

}  // namespace

SyntaxRules::SyntaxRules(const Config& config)
    : thematic_(config.thematic_lexicon.begin(),
                config.thematic_lexicon.end()),
      extended_rules_(config.extended_rules) {}

bool SyntaxRules::Rejects(const std::string& hypo_surface,
                          const std::string& hyper) const {
  // Rule 1: thematic words are topics, not classes.
  if (thematic_.count(hyper) > 0) return true;
  // Degenerate case: a term is not its own hypernym.
  if (hypo_surface == hyper) return true;
  if (extended_rules_) {
    if (IsNumericOrDate(hyper)) return true;
    if (util::EndsWith(hyper, "的")) return true;
  }
  // Rule 2: the hypernym head-stem must not sit in a non-head position of
  // the hyponym. The head of a Chinese noun compound is its suffix, so an
  // occurrence of `hyper` inside `hypo` is only legitimate when the hyponym
  // ends with it.
  const size_t pos = hypo_surface.find(hyper);
  if (pos != std::string::npos && !util::EndsWith(hypo_surface, hyper)) {
    return true;
  }
  return false;
}

size_t SyntaxRules::MarkRejections(
    const generation::CandidateList& candidates,
    const std::unordered_map<std::string, std::string>& mention_of_page,
    std::vector<uint8_t>* rejected) const {
  // Each candidate is judged independently against read-only state, so the
  // scan shards over contiguous candidate ranges; slot i is only touched by
  // the shard owning i, and per-shard counts are summed in shard order.
  const std::vector<util::IndexRange> shards =
      util::MakeShards(candidates.size());
  const std::vector<size_t> per_shard =
      util::ParallelMap(shards.size(), [&](size_t s) {
        size_t count = 0;
        for (size_t i = shards[s].first; i < shards[s].second; ++i) {
          if ((*rejected)[i]) continue;
          const generation::Candidate& candidate = candidates[i];
          auto it = mention_of_page.find(candidate.hypo);
          const std::string& surface =
              it == mention_of_page.end() ? candidate.hypo : it->second;
          if (Rejects(surface, candidate.hyper)) {
            (*rejected)[i] = 1;
            ++count;
          }
        }
        return count;
      });
  return std::accumulate(per_shard.begin(), per_shard.end(), size_t{0});
}

}  // namespace cnpb::verification
