#include "verification/incompatible.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace cnpb::verification {

namespace {

// Normalises a count map into a distribution in place.
void Normalise(std::unordered_map<std::string, double>& dist) {
  double total = 0.0;
  for (const auto& [key, value] : dist) total += value;
  if (total <= 0.0) return;
  for (auto& [key, value] : dist) value /= total;
}

}  // namespace

IncompatibleConcepts::IncompatibleConcepts(const kb::EncyclopediaDump* dump,
                                           const Config& config)
    : dump_(dump), config_(config) {
  for (const kb::EncyclopediaPage& page : dump->pages()) IngestPage(page);
}

void IncompatibleConcepts::IngestPage(const kb::EncyclopediaPage& page) {
  if (page.infobox.empty()) return;
  Dist dist;
  for (const kb::SpoTriple& triple : page.infobox) {
    dist[triple.predicate] += 1.0;
  }
  Normalise(dist);
  entity_attrs_[page.name] = std::move(dist);
}

double IncompatibleConcepts::Jaccard(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::unordered_set<std::string> set_a(a.begin(), a.end());
  size_t intersection = 0;
  std::unordered_set<std::string> set_b(b.begin(), b.end());
  for (const std::string& x : set_b) {
    if (set_a.count(x) > 0) ++intersection;
  }
  const size_t uni = set_a.size() + set_b.size() - intersection;
  return uni == 0 ? 0.0 : static_cast<double>(intersection) / uni;
}

double IncompatibleConcepts::Cosine(
    const std::unordered_map<std::string, double>& a,
    const std::unordered_map<std::string, double>& b) {
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (const auto& [key, value] : a) {
    norm_a += value * value;
    auto it = b.find(key);
    if (it != b.end()) dot += value * it->second;
  }
  for (const auto& [key, value] : b) norm_b += value * value;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double IncompatibleConcepts::KlDivergence(
    const std::unordered_map<std::string, double>& entity_dist,
    const std::unordered_map<std::string, double>& concept_dist) {
  // D_KL(e || c) = -sum_x e(x) log(c(x)/e(x)); c is epsilon-smoothed so the
  // divergence stays finite when the concept never saw an attribute.
  const double eps = 1e-6;
  double kl = 0.0;
  for (const auto& [key, pe] : entity_dist) {
    if (pe <= 0.0) continue;
    double pc = eps;
    auto it = concept_dist.find(key);
    if (it != concept_dist.end()) pc = std::max(it->second, eps);
    kl -= pe * std::log(pc / pe);
  }
  return kl;
}

size_t IncompatibleConcepts::MarkRejections(
    const generation::CandidateList& candidates,
    std::vector<uint8_t>* rejected) const {
  // Hyponym sets and attribute distributions per concept, from the
  // not-yet-rejected entity candidates.
  std::unordered_map<std::string, std::vector<std::string>> hyponyms_of;
  std::unordered_map<std::string, Dist> concept_attrs;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if ((*rejected)[i]) continue;
    const generation::Candidate& c = candidates[i];
    auto it = entity_attrs_.find(c.hypo);
    if (it == entity_attrs_.end()) continue;  // concept-level or no infobox
    hyponyms_of[c.hyper].push_back(c.hypo);
    Dist& agg = concept_attrs[c.hyper];
    for (const auto& [predicate, weight] : it->second) {
      agg[predicate] += weight;
    }
  }
  for (auto& [concept_word, dist] : concept_attrs) Normalise(dist);

  // Candidate concept pairs: those co-occurring on at least one entity.
  std::unordered_map<std::string, std::vector<size_t>> entity_candidates;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if ((*rejected)[i]) continue;
    if (entity_attrs_.count(candidates[i].hypo) == 0) continue;
    entity_candidates[candidates[i].hypo].push_back(i);
  }

  // Cache pair verdicts.
  std::unordered_map<std::string, bool> incompatible_cache;
  auto incompatible = [&](const std::string& c1,
                          const std::string& c2) -> bool {
    const std::string key = c1 < c2 ? c1 + "\x01" + c2 : c2 + "\x01" + c1;
    auto it = incompatible_cache.find(key);
    if (it != incompatible_cache.end()) return it->second;
    bool result = false;
    const auto& h1 = hyponyms_of[c1];
    const auto& h2 = hyponyms_of[c2];
    if (h1.size() >= config_.min_hyponyms && h2.size() >= config_.min_hyponyms) {
      if (Jaccard(h1, h2) < config_.jaccard_threshold &&
          Cosine(concept_attrs[c1], concept_attrs[c2]) <
              config_.cosine_threshold) {
        result = true;
      }
    }
    incompatible_cache.emplace(key, result);
    return result;
  };

  size_t num_rejected = 0;
  for (const auto& [entity, indices] : entity_candidates) {
    if (indices.size() < 2) continue;
    const Dist& entity_dist = entity_attrs_.at(entity);
    for (size_t a = 0; a < indices.size(); ++a) {
      for (size_t b = a + 1; b < indices.size(); ++b) {
        const size_t ia = indices[a];
        const size_t ib = indices[b];
        if ((*rejected)[ia] || (*rejected)[ib]) continue;
        const std::string& c1 = candidates[ia].hyper;
        const std::string& c2 = candidates[ib].hyper;
        if (c1 == c2 || !incompatible(c1, c2)) continue;
        const double kl1 = KlDivergence(entity_dist, concept_attrs[c1]);
        const double kl2 = KlDivergence(entity_dist, concept_attrs[c2]);
        const size_t loser = kl1 > kl2 ? ia : ib;
        if (!(*rejected)[loser]) {
          (*rejected)[loser] = 1;
          ++num_rejected;
        }
      }
    }
  }
  return num_rejected;
}

}  // namespace cnpb::verification
