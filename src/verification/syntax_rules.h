#ifndef CNPROBASE_VERIFICATION_SYNTAX_RULES_H_
#define CNPROBASE_VERIFICATION_SYNTAX_RULES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "generation/candidate.h"

namespace cnpb::verification {

// Syntax-based rules (paper §III-C):
//  (1) a valid hypernym is never a thematic (topic) word — 政治, 军事, 音乐
//      — checked against a non-taxonomic lexicon (Li et al. 2015);
//  (2) the stem of the hypernym's lexical head must not occur in a non-head
//      position of the hyponym — kills isA(教育机构, 教育) while keeping
//      isA(男演员, 演员), where the hypernym is the hyponym's head suffix.
class SyntaxRules {
 public:
  struct Config {
    std::vector<std::string> thematic_lexicon;
    // Additional typical rules beyond the paper's two examples (§III-C says
    // "we describe the most typical rules"): reject hypernyms that are pure
    // numbers, date expressions (1994年/9月), or attributive fragments
    // ending in 的.
    bool extended_rules = true;
  };

  explicit SyntaxRules(const Config& config);

  // True if the candidate violates a rule. `hypo_surface` is the bare
  // mention of the hyponym (page names carry brackets that rule 2 must not
  // see).
  bool Rejects(const std::string& hypo_surface, const std::string& hyper) const;

  // Marks rejections; returns the number newly rejected.
  size_t MarkRejections(const generation::CandidateList& candidates,
                        const std::unordered_map<std::string, std::string>&
                            mention_of_page,
                        std::vector<uint8_t>* rejected) const;

 private:
  std::unordered_set<std::string> thematic_;
  bool extended_rules_;
};

}  // namespace cnpb::verification

#endif  // CNPROBASE_VERIFICATION_SYNTAX_RULES_H_
