#include "verification/ner_filter.h"

#include <numeric>

#include "util/logging.h"
#include "util/parallel.h"

namespace cnpb::verification {

NerFilter::NerFilter(const text::Lexicon* lexicon, const Config& config)
    : lexicon_(lexicon), config_(config) {
  CNPB_CHECK(lexicon != nullptr);
}

bool NerFilter::IsNamedEntity(const std::string& word,
                              const std::string& prev) const {
  if (lexicon_->PosOf(word) == text::Pos::kProperNoun) return true;
  return prev == "于" || prev == "位于";
}

void NerFilter::AddCorpusSentence(const std::vector<std::string>& words) {
  std::string prev;
  for (const std::string& word : words) {
    Counts& counts = corpus_counts_[word];
    ++counts.total;
    if (IsNamedEntity(word, prev)) ++counts.ne;
    prev = word;
  }
}

void NerFilter::Prepare(
    const generation::CandidateList& candidates,
    const std::unordered_map<std::string, std::string>& mention_of_page) {
  taxonomy_counts_.clear();
  for (const generation::Candidate& candidate : candidates) {
    // H as hypernym: class-role evidence.
    ++taxonomy_counts_[candidate.hyper].total;
    // H as the mention of a hyponym page: entity-role evidence.
    auto it = mention_of_page.find(candidate.hypo);
    const std::string& mention =
        it == mention_of_page.end() ? candidate.hypo : it->second;
    Counts& counts = taxonomy_counts_[mention];
    ++counts.total;
    ++counts.ne;
  }
}

double NerFilter::S1(const std::string& hyper) const {
  auto it = corpus_counts_.find(hyper);
  if (it == corpus_counts_.end() || it->second.total == 0) return 0.0;
  return static_cast<double>(it->second.ne) / it->second.total;
}

double NerFilter::S2(const std::string& hyper) const {
  auto it = taxonomy_counts_.find(hyper);
  if (it == taxonomy_counts_.end() || it->second.total == 0) return 0.0;
  return static_cast<double>(it->second.ne) / it->second.total;
}

double NerFilter::Support(const std::string& hyper) const {
  const double s1 = S1(hyper);
  const double s2 = S2(hyper);
  return 1.0 - (1.0 - s1) * (1.0 - s2);
}

size_t NerFilter::MarkRejections(const generation::CandidateList& candidates,
                                 std::vector<uint8_t>* rejected) const {
  // Support() only reads the frozen s1/s2 tables, so candidates are judged
  // independently per contiguous shard (slot i is owned by i's shard).
  const std::vector<util::IndexRange> shards =
      util::MakeShards(candidates.size());
  const std::vector<size_t> per_shard =
      util::ParallelMap(shards.size(), [&](size_t s) {
        size_t count = 0;
        for (size_t i = shards[s].first; i < shards[s].second; ++i) {
          if ((*rejected)[i]) continue;
          if (Support(candidates[i].hyper) > config_.threshold) {
            (*rejected)[i] = 1;
            ++count;
          }
        }
        return count;
      });
  return std::accumulate(per_shard.begin(), per_shard.end(), size_t{0});
}

}  // namespace cnpb::verification
