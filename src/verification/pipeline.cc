#include "verification/pipeline.h"

#include "obs/metrics.h"
#include "util/timer.h"

namespace cnpb::verification {

VerificationPipeline::VerificationPipeline(const kb::EncyclopediaDump* dump,
                                           const text::Lexicon* lexicon,
                                           const Config& config)
    : config_(config),
      syntax_(config.syntax),
      ner_(lexicon, config.ner),
      incompatible_(dump, config.incompatible) {
  for (const kb::EncyclopediaPage& page : dump->pages()) {
    mention_of_page_.emplace(page.name, page.mention);
  }
}

void VerificationPipeline::AddCorpusSentence(
    const std::vector<std::string>& words) {
  ner_.AddCorpusSentence(words);
}

void VerificationPipeline::AddPage(const kb::EncyclopediaPage& page) {
  mention_of_page_.emplace(page.name, page.mention);
  incompatible_.IngestPage(page);
}

generation::CandidateList VerificationPipeline::Verify(
    const generation::CandidateList& candidates, Report* report) {
  // Strategies still run in sequence (rejections are attributed to the first
  // strategy that fires), but syntax and NER shard the candidate list and
  // mark their disjoint rejection slots in parallel. Incompatible concepts
  // compares candidates of the same entity against each other and must stay
  // serial — see DESIGN.md §6.
  std::vector<uint8_t> rejected(candidates.size(), 0);
  Report local;
  local.input = candidates.size();

  // Accept/reject outcomes accumulate in the registry across calls (full
  // builds and incremental batches alike); per-strategy wall times are
  // last-call gauges. Revocations are decided downstream by the incremental
  // updater against the previous taxonomy, but the counter is registered
  // here so every verification report carries the full outcome triple.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.counter("verify.candidates.input")->Increment(candidates.size());
  metrics.counter("verify.candidates.revoked");
  util::WallTimer strategy_timer;

  if (config_.use_syntax) {
    local.rejected_syntax =
        syntax_.MarkRejections(candidates, mention_of_page_, &rejected);
    metrics.gauge("verify.stage.syntax_seconds")
        ->Set(strategy_timer.ElapsedSeconds());
  }
  strategy_timer.Restart();
  if (config_.use_ner) {
    ner_.Prepare(candidates, mention_of_page_);
    local.rejected_ner = ner_.MarkRejections(candidates, &rejected);
    metrics.gauge("verify.stage.ner_seconds")
        ->Set(strategy_timer.ElapsedSeconds());
  }
  strategy_timer.Restart();
  if (config_.use_incompatible) {
    local.rejected_incompatible =
        incompatible_.MarkRejections(candidates, &rejected);
    metrics.gauge("verify.stage.incompatible_seconds")
        ->Set(strategy_timer.ElapsedSeconds());
  }

  generation::CandidateList verified;
  verified.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!rejected[i]) verified.push_back(candidates[i]);
  }
  local.output = verified.size();
  metrics.counter("verify.candidates.accepted")->Increment(verified.size());
  metrics.counter("verify.rejected.syntax")->Increment(local.rejected_syntax);
  metrics.counter("verify.rejected.ner")->Increment(local.rejected_ner);
  metrics.counter("verify.rejected.incompatible")
      ->Increment(local.rejected_incompatible);
  if (report != nullptr) *report = local;
  return verified;
}

}  // namespace cnpb::verification
