#ifndef CNPROBASE_VERIFICATION_INCOMPATIBLE_H_
#define CNPROBASE_VERIFICATION_INCOMPATIBLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "generation/candidate.h"
#include "kb/dump.h"

namespace cnpb::verification {

// Incompatible-concepts strategy (paper §III-A).
//
// Step 1 — incompatible pair construction: two concepts are incompatible
// when BOTH the Jaccard similarity of their hyponym sets and the cosine
// similarity of their attribute distributions fall below thresholds
// (singer/actor share entities and attributes; person/book share neither).
//
// Step 2 — wrong-relation detection: when an entity carries two incompatible
// concepts, compute D_KL(v_att(e) || v_att(c)) (Eq. 1) for both and reject
// the relation to the concept with the larger divergence.
class IncompatibleConcepts {
 public:
  struct Config {
    double jaccard_threshold = 0.05;
    double cosine_threshold = 0.30;
    // Concepts with fewer hyponyms than this are too sparse to judge.
    size_t min_hyponyms = 5;
  };

  // `dump` provides the infobox attribute distributions; must outlive this.
  IncompatibleConcepts(const kb::EncyclopediaDump* dump, const Config& config);

  // Folds one page's infobox into the attribute-distribution table, so
  // incrementally-added pages are judged without re-scanning the dump.
  void IngestPage(const kb::EncyclopediaPage& page);

  // Marks rejected[i] = 1 for candidates vetoed by this strategy. Only
  // entity->concept candidates are judged. Returns the number of newly
  // rejected candidates; already-rejected entries are skipped.
  size_t MarkRejections(const generation::CandidateList& candidates,
                        std::vector<uint8_t>* rejected) const;

  // Exposed for tests: pairwise checks on explicit sets/distributions.
  static double Jaccard(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);
  static double Cosine(const std::unordered_map<std::string, double>& a,
                       const std::unordered_map<std::string, double>& b);
  static double KlDivergence(
      const std::unordered_map<std::string, double>& entity_dist,
      const std::unordered_map<std::string, double>& concept_dist);

 private:
  using Dist = std::unordered_map<std::string, double>;

  const kb::EncyclopediaDump* dump_;
  Config config_;
  // page name -> normalised predicate distribution (v_att(e)).
  std::unordered_map<std::string, Dist> entity_attrs_;
};

}  // namespace cnpb::verification

#endif  // CNPROBASE_VERIFICATION_INCOMPATIBLE_H_
