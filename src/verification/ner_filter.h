#ifndef CNPROBASE_VERIFICATION_NER_FILTER_H_
#define CNPROBASE_VERIFICATION_NER_FILTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "generation/candidate.h"
#include "text/lexicon.h"

namespace cnpb::verification {

// Named-entity filter (paper §III-B): a hypernym that is itself a named
// entity (America, 北京) is almost never a valid class, so isA relations
// whose hypernym looks like a NE are rejected.
//
// Two supports are combined with a noisy-or (Eq. 2):
//   s1(H) = NE(H) / total(H) over the text corpus, where our recogniser
//           tags a token as NE when it is a proper noun in the lexicon or
//           directly follows a locative preposition (于 / 位于);
//   s2(H) = taxonomy-internal support: among H's appearances in the
//           candidate set, the fraction where H plays the entity role
//           (as a hyponym mention) rather than the hypernym role.
//   s(H)  = 1 - (1 - s1)(1 - s2);  reject when s(H) > threshold.
class NerFilter {
 public:
  struct Config {
    double threshold = 0.5;
  };

  // `lexicon` backs the proper-noun recogniser; must outlive the filter.
  NerFilter(const text::Lexicon* lexicon, const Config& config);

  // Feeds one corpus sentence into the s1 statistics.
  void AddCorpusSentence(const std::vector<std::string>& words);

  // Builds s2 from the candidate set. `mention_of_page` maps disambiguated
  // page names to their bare mentions.
  void Prepare(const generation::CandidateList& candidates,
               const std::unordered_map<std::string, std::string>&
                   mention_of_page);

  // The recogniser itself (exposed for tests). `prev` is the previous token
  // or empty at sentence start.
  bool IsNamedEntity(const std::string& word, const std::string& prev) const;

  double S1(const std::string& hyper) const;
  double S2(const std::string& hyper) const;
  double Support(const std::string& hyper) const;  // noisy-or of s1, s2

  // Marks rejections; returns the number newly rejected.
  size_t MarkRejections(const generation::CandidateList& candidates,
                        std::vector<uint8_t>* rejected) const;

 private:
  struct Counts {
    uint64_t ne = 0;
    uint64_t total = 0;
  };

  const text::Lexicon* lexicon_;
  Config config_;
  std::unordered_map<std::string, Counts> corpus_counts_;   // s1
  std::unordered_map<std::string, Counts> taxonomy_counts_; // s2
};

}  // namespace cnpb::verification

#endif  // CNPROBASE_VERIFICATION_NER_FILTER_H_
