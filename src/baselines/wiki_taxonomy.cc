#include "baselines/wiki_taxonomy.h"

#include <unordered_map>
#include <unordered_set>

#include "core/builder.h"
#include "generation/direct_extraction.h"

namespace cnpb::baselines {

taxonomy::Taxonomy ChineseWikiTaxonomy::Build(const kb::EncyclopediaDump& dump,
                                              const text::Lexicon& lexicon,
                                              const Config& config) {
  const std::unordered_set<std::string> thematic(
      config.thematic_lexicon.begin(), config.thematic_lexicon.end());

  // Pass 1: how many pages carry each tag.
  std::unordered_map<std::string, size_t> tag_pages;
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    std::unordered_set<std::string> unique(page.tags.begin(), page.tags.end());
    for (const std::string& tag : unique) ++tag_pages[tag];
  }

  // Pass 2: keep only relations with trusted tags. The frequency floor drops
  // tail noise; thematic and proper-noun tags are rejected outright.
  generation::CandidateList kept;
  for (generation::Candidate& candidate :
       generation::ExtractFromTags(dump)) {
    if (thematic.count(candidate.hyper) > 0) continue;
    if (lexicon.PosOf(candidate.hyper) == text::Pos::kProperNoun) continue;
    auto it = tag_pages.find(candidate.hyper);
    if (it == tag_pages.end() || it->second < config.min_tag_pages) continue;
    candidate.source = taxonomy::Source::kImported;
    kept.push_back(std::move(candidate));
  }
  return core::CnProbaseBuilder::Materialise(kept);
}

taxonomy::Taxonomy Bigcilin::Build(
    const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
    const std::vector<std::vector<std::string>>& corpus,
    const Config& config) {
  // Multi-source generation identical to CN-Probase but with the
  // verification module disabled — the comparison Table I isolates.
  core::CnProbaseBuilder::Config builder_config;
  builder_config.enable_verification = false;
  builder_config.neural.seed = config.seed;
  core::CnProbaseBuilder::Report report;
  return core::CnProbaseBuilder::Build(dump, lexicon, corpus, builder_config,
                                       &report);
}

}  // namespace cnpb::baselines
