#ifndef CNPROBASE_BASELINES_WIKI_TAXONOMY_H_
#define CNPROBASE_BASELINES_WIKI_TAXONOMY_H_

#include <string>
#include <vector>

#include "kb/dump.h"
#include "taxonomy/taxonomy.h"
#include "text/lexicon.h"

namespace cnpb::baselines {

// Chinese WikiTaxonomy baseline (Li et al. 2015): built from a single source
// — the tag field — with aggressive conservative filtering. High precision,
// low coverage: exactly the trade-off Table I shows (97.6% precision but 25x
// fewer isA relations than CN-Probase).
class ChineseWikiTaxonomy {
 public:
  struct Config {
    // A tag must label at least this many pages to be trusted as a class.
    size_t min_tag_pages = 8;
    // External resources also used by the original system.
    std::vector<std::string> thematic_lexicon;
  };

  static taxonomy::Taxonomy Build(const kb::EncyclopediaDump& dump,
                                  const text::Lexicon& lexicon,
                                  const Config& config);
};

// Bigcilin baseline (Fu et al. 2013): open-domain hypernym discovery from
// multiple sources, but without CN-Probase's verification module. Large but
// noisier (~90% in Table I).
class Bigcilin {
 public:
  struct Config {
    uint64_t seed = 51;
  };

  static taxonomy::Taxonomy Build(
      const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
      const std::vector<std::vector<std::string>>& corpus,
      const Config& config);
};

}  // namespace cnpb::baselines

#endif  // CNPROBASE_BASELINES_WIKI_TAXONOMY_H_
