#ifndef CNPROBASE_BASELINES_PROBASE_TRAN_H_
#define CNPROBASE_BASELINES_PROBASE_TRAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "synth/bilingual.h"
#include "synth/world.h"
#include "taxonomy/taxonomy.h"

namespace cnpb::baselines {

// Probase-Tran baseline (paper §IV-A): take an English Probase and machine-
// translate it into Chinese, then apply three heuristic filters (meaning,
// transitivity, POS). The paper builds this to show that cross-language
// translation cannot produce a high-quality Chinese taxonomy (54.5%
// precision in Table I).
//
// The English Probase here is synthesised from the world model (with its
// own intrinsic noise, as the real Probase has), and the "Google Translate"
// step is the deterministic noisy dictionary in synth::BilingualDictionary.
class ProbaseTran {
 public:
  struct Config {
    synth::BilingualDictionary::Config dictionary;
    // The real Probase is itself ~92% precise.
    double probase_noise_rate = 0.08;
    uint64_t seed = 61;
    // The paper's three translation-error filters.
    bool filter_meaning = true;       // translator confidence floor
    double min_confidence = 0.35;
    bool filter_pos = true;           // hypernym must come back a noun
    bool filter_transitivity = true;  // drop edges that break the DAG
  };

  struct Result {
    taxonomy::Taxonomy taxonomy;
    size_t english_pairs = 0;
    size_t translated_pairs = 0;
    size_t filtered_meaning = 0;
    size_t filtered_pos = 0;
    size_t filtered_transitivity = 0;
    // Correctness bookkeeping from the generator side (substitutes the
    // paper's manual labeling of this baseline).
    size_t correct_edges = 0;
    size_t total_edges = 0;
    double precision() const {
      return total_edges == 0
                 ? 0.0
                 : static_cast<double>(correct_edges) / total_edges;
    }
  };

  static Result Build(const synth::WorldModel& world, const Config& config);
};

}  // namespace cnpb::baselines

#endif  // CNPROBASE_BASELINES_PROBASE_TRAN_H_
