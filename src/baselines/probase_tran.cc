#include "baselines/probase_tran.h"

#include <algorithm>

#include "util/rng.h"

namespace cnpb::baselines {

namespace {

// One pair of the synthetic English Probase.
struct EnglishPair {
  std::string hypo;   // romanised entity or english concept gloss
  std::string hyper;  // english concept gloss
  bool hypo_is_entity = true;
  bool gold = true;  // whether the English pair itself is correct
};

}  // namespace

ProbaseTran::Result ProbaseTran::Build(const synth::WorldModel& world,
                                       const Config& config) {
  Result result;
  util::Rng rng(config.seed);
  const synth::Ontology& onto = world.ontology();
  const synth::BilingualDictionary dict =
      synth::BilingualDictionary::Build(world, config.dictionary);

  // ---- synthesise the English Probase --------------------------------------
  std::vector<EnglishPair> english;
  for (const synth::WorldEntity& entity : world.entities()) {
    const std::string romanised =
        synth::BilingualDictionary::Romanize(entity.mention);
    for (int concept_id : entity.concepts) {
      EnglishPair pair;
      pair.hypo = romanised;
      pair.hypo_is_entity = true;
      if (rng.Bernoulli(config.probase_noise_rate)) {
        // Probase's own extraction noise: a random unrelated concept.
        const int wrong = static_cast<int>(rng.Uniform(onto.size()));
        pair.hyper = dict.EnglishConcept(wrong);
        pair.gold = onto.IsAncestor(wrong, concept_id) || wrong == concept_id;
      } else {
        pair.hyper = dict.EnglishConcept(concept_id);
        pair.gold = true;
      }
      english.push_back(std::move(pair));
    }
  }
  for (const auto& [child, parent] : onto.AllEdges()) {
    EnglishPair pair;
    pair.hypo = dict.EnglishConcept(child);
    pair.hyper = dict.EnglishConcept(parent);
    pair.hypo_is_entity = false;
    pair.gold = true;
    english.push_back(std::move(pair));
  }
  result.english_pairs = english.size();

  // ---- translate and filter -------------------------------------------------
  for (const EnglishPair& pair : english) {
    const synth::BilingualDictionary::Translation& hyper_t =
        dict.TranslateConcept(pair.hyper);
    const synth::BilingualDictionary::Translation& hypo_t =
        pair.hypo_is_entity ? dict.TranslateEntity(pair.hypo)
                            : dict.TranslateConcept(pair.hypo);
    if (hyper_t.chinese.empty() || hypo_t.chinese.empty()) continue;
    if (hypo_t.chinese == hyper_t.chinese) continue;
    ++result.translated_pairs;

    if (config.filter_meaning &&
        std::min(hypo_t.confidence, hyper_t.confidence) <
            config.min_confidence) {
      ++result.filtered_meaning;
      continue;
    }
    if (config.filter_pos && hyper_t.pos != text::Pos::kNoun) {
      ++result.filtered_pos;
      continue;
    }

    const taxonomy::NodeId hypo_id = result.taxonomy.AddNode(
        hypo_t.chinese, pair.hypo_is_entity ? taxonomy::NodeKind::kEntity
                                            : taxonomy::NodeKind::kConcept);
    const taxonomy::NodeId hyper_id =
        result.taxonomy.AddNode(hyper_t.chinese, taxonomy::NodeKind::kConcept);
    if (config.filter_transitivity &&
        result.taxonomy.WouldCreateCycle(hypo_id, hyper_id)) {
      ++result.filtered_transitivity;
      continue;
    }
    if (result.taxonomy.AddIsa(hypo_id, hyper_id,
                               taxonomy::Source::kTranslation)) {
      ++result.total_edges;
      // The translated pair is correct only when the English pair was gold
      // and both translations kept their meaning.
      if (pair.gold && hypo_t.correct && hyper_t.correct) {
        ++result.correct_edges;
      }
    }
  }
  return result;
}

}  // namespace cnpb::baselines
