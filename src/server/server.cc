#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/fault_injection.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/net.h"

namespace cnpb::server {

namespace {

// Small JSON error body used for responses the service layer never sees
// (parse errors, connection-table 503s, drain 504s).
HttpResponse ProtocolErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":{\"status\":" + util::JsonUInt(status) +
                  ",\"message\":" + util::JsonString(message) + "}}\n";
  response.close = true;
  return response;
}

void SetNoDelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// One accepted connection, owned by exactly one event loop.
struct HttpServer::Connection {
  explicit Connection(const RequestParser::Limits& limits) : parser(limits) {}

  int fd = -1;
  RequestParser parser;
  std::string out;       // serialized responses not yet written
  size_t out_off = 0;
  bool close_after_flush = false;
  std::chrono::steady_clock::time_point last_active;
};

struct HttpServer::Loop {
  int wake_rd = -1;
  int wake_wr = -1;
  std::vector<std::unique_ptr<Connection>> conns;

  ~Loop() {
    for (const auto& conn : conns) util::CloseFd(conn->fd);
    util::CloseFd(wake_rd);
    util::CloseFd(wake_wr);
  }
};

HttpServer::HttpServer(const Config& config, Handler handler)
    : config_(config), handler_(std::move(handler)) {
  CNPB_CHECK(config_.num_threads >= 1);
  CNPB_CHECK(handler_ != nullptr);
}

HttpServer::~HttpServer() {
  Stop();
  Wait();
}

util::Status HttpServer::Start() {
  int expected = kIdle;
  if (!state_.compare_exchange_strong(expected, kRunning)) {
    return util::FailedPreconditionError("server already started");
  }
  util::Result<int> listen =
      util::ListenTcp(config_.host, config_.port, /*backlog=*/511, &port_);
  if (!listen.ok()) {
    state_.store(kStopped);
    return listen.status();
  }
  listen_fd_ = *listen;
  const size_t num_loops = static_cast<size_t>(config_.num_threads);
  for (size_t i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      state_.store(kStopped);
      return util::IoError("pipe() failed for event-loop wakeup");
    }
    loop->wake_rd = pipe_fds[0];
    loop->wake_wr = pipe_fds[1];
    (void)util::SetNonBlocking(loop->wake_rd);
    (void)util::SetNonBlocking(loop->wake_wr);
    loops_.push_back(std::move(loop));
  }
  // The event loops are long-lived tasks: lane 0 runs on the dedicated
  // serve thread (the ParallelFor caller), lanes 1..N-1 on the pool's
  // workers. With n == max_parallelism, ParallelFor's grain is 1, so every
  // lane picks up exactly one loop index.
  pool_ = std::make_unique<util::ThreadPool>(
      static_cast<int>(num_loops) - 1);
  serve_thread_ = std::thread([this, num_loops]() {
    pool_->ParallelFor(num_loops, static_cast<int>(num_loops),
                       [this](size_t i) { RunLoop(i); });
  });
  return util::Status::Ok();
}

void HttpServer::Stop() {
  // Serialised so drain_started_ is written exactly once, before the
  // release store of kDraining that the loops acquire.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (state_.load(std::memory_order_acquire) != kRunning) return;
  drain_started_ = std::chrono::steady_clock::now();
  state_.store(kDraining, std::memory_order_release);
  // Refuse new connections immediately. Loops stop polling the listening
  // fd once they observe kDraining; a loop mid-poll may see one spurious
  // event on the stale fd, which the accept error path tolerates.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  util::CloseFd(fd);
  for (const auto& loop : loops_) {
    const char byte = 'w';
    ssize_t rc;
    do {
      rc = ::write(loop->wake_wr, &byte, 1);
    } while (rc < 0 && errno == EINTR);
  }
}

void HttpServer::Wait() {
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  util::CloseFd(fd);
  state_.store(kStopped, std::memory_order_release);
}

HttpServer::Stats HttpServer::stats() const {
  Stats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected = rejected_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  stats.io_errors = io_errors_.load(std::memory_order_relaxed);
  return stats;
}

void HttpServer::CloseConnection(Loop* loop, size_t slot) {
  util::CloseFd(loop->conns[slot]->fd);
  loop->conns.erase(loop->conns.begin() +
                    static_cast<std::ptrdiff_t>(slot));
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  m_closed_->Increment();
}

bool HttpServer::FlushWrites(Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    if (const util::Status fault = util::CheckFault("server.write");
        !fault.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    const util::Result<size_t> sent = util::SendSome(
        conn->fd, conn->out.data() + conn->out_off,
        conn->out.size() - conn->out_off);
    if (!sent.ok()) {
      // EPIPE/ECONNRESET from a peer that went away mid-response: an
      // orderly close of this connection, never a process-level signal.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    if (*sent == 0) return true;  // would block; poll for POLLOUT
    conn->out_off += *sent;
    conn->last_active = std::chrono::steady_clock::now();
  }
  conn->out.clear();
  conn->out_off = 0;
  return !conn->close_after_flush;
}

void HttpServer::HandleParsed(Connection* conn) {
  const HttpRequest& request = conn->parser.request();
  requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests_->Increment();
  const HttpResponse response = handler_(request);
  // During drain every response announces the close; clients re-resolve.
  const bool draining =
      state_.load(std::memory_order_acquire) != kRunning;
  const bool keep_alive = request.keep_alive && !response.close && !draining;
  conn->out += SerializeResponse(response, keep_alive,
                                 /*head_only=*/request.method == "HEAD");
  if (!keep_alive) conn->close_after_flush = true;
}

bool HttpServer::ServiceRead(Connection* conn) {
  char buf[16384];
  for (;;) {
    if (const util::Status fault = util::CheckFault("server.read");
        !fault.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    bool would_block = false;
    const util::Result<size_t> got =
        util::RecvSome(conn->fd, buf, sizeof(buf), &would_block);
    if (!got.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    if (would_block) break;
    if (*got == 0) return false;  // peer closed
    conn->last_active = std::chrono::steady_clock::now();
    RequestParser::State state =
        conn->parser.Feed(std::string_view(buf, *got));
    while (state == RequestParser::State::kComplete) {
      HandleParsed(conn);
      if (conn->close_after_flush) break;
      conn->parser.Reset();
      state = conn->parser.Poll();  // pipelined request already buffered?
    }
    if (state == RequestParser::State::kError) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      m_parse_errors_->Increment();
      const HttpResponse error = ProtocolErrorResponse(
          conn->parser.error_status(), conn->parser.error_message());
      conn->out += SerializeResponse(error, /*keep_alive=*/false,
                                     /*head_only=*/false);
      conn->close_after_flush = true;
      break;
    }
    if (conn->close_after_flush) break;
    if (*got < sizeof(buf)) break;  // socket very likely drained
  }
  return FlushWrites(conn);
}

void HttpServer::RunLoop(size_t index) {
  Loop* loop = loops_[index].get();
  std::vector<pollfd> pfds;
  for (;;) {
    const int state = state_.load(std::memory_order_acquire);
    if (state == kStopped) break;
    const bool draining = state == kDraining;
    const auto now = std::chrono::steady_clock::now();

    if (draining) {
      // Idle keep-alive connections owe nothing; close them right away.
      for (size_t i = loop->conns.size(); i-- > 0;) {
        Connection* conn = loop->conns[i].get();
        if (conn->out.empty() && !conn->parser.HasPartialRequest()) {
          CloseConnection(loop, i);
        }
      }
      if (loop->conns.empty()) break;
      if (now - drain_started_ > config_.drain_deadline) {
        // Past the deadline: half-read requests get a best-effort 504,
        // everything still unflushed is dropped.
        for (size_t i = loop->conns.size(); i-- > 0;) {
          Connection* conn = loop->conns[i].get();
          if (conn->parser.HasPartialRequest()) {
            const std::string bytes = SerializeResponse(
                ProtocolErrorResponse(504, "server draining"),
                /*keep_alive=*/false, /*head_only=*/false);
            (void)util::SendSome(conn->fd, bytes.data(), bytes.size());
          }
          CloseConnection(loop, i);
        }
        break;
      }
    }

    pfds.clear();
    pfds.push_back({loop->wake_rd, POLLIN, 0});
    const int listen_fd =
        draining ? -1 : listen_fd_.load(std::memory_order_relaxed);
    if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
    const size_t conns_base = pfds.size();
    for (const auto& conn : loop->conns) {
      short events = POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
    }

    const int timeout_ms = draining ? 10 : 100;
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      CNPB_LOG(Error) << "poll failed: " << std::strerror(errno);
      break;
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      char drain_buf[64];
      while (::read(loop->wake_rd, drain_buf, sizeof(drain_buf)) > 0) {
      }
    }

    if (listen_fd >= 0 && pfds.size() > 1 && pfds[1].fd == listen_fd &&
        (pfds[1].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR || errno == ECONNABORTED) continue;
          break;  // EAGAIN, or the fd was closed/reused under drain
        }
        if (const util::Status fault = util::CheckFault("server.accept");
            !fault.ok()) {
          io_errors_.fetch_add(1, std::memory_order_relaxed);
          m_io_errors_->Increment();
          util::CloseFd(fd);
          continue;
        }
        if (open_connections_.fetch_add(1, std::memory_order_relaxed) + 1 >
            config_.max_connections) {
          open_connections_.fetch_sub(1, std::memory_order_relaxed);
          rejected_.fetch_add(1, std::memory_order_relaxed);
          m_rejected_->Increment();
          const std::string bytes = SerializeResponse(
              ProtocolErrorResponse(503, "connection table full"),
              /*keep_alive=*/false, /*head_only=*/false);
          (void)util::SendSome(fd, bytes.data(), bytes.size());
          util::CloseFd(fd);
          continue;
        }
        (void)util::SetNonBlocking(fd);
        SetNoDelay(fd);
        auto conn = std::make_unique<Connection>(config_.parser_limits);
        conn->fd = fd;
        conn->last_active = now;
        loop->conns.push_back(std::move(conn));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        m_accepted_->Increment();
      }
    }

    // Service connections back-to-front so CloseConnection's erase never
    // shifts a slot we have yet to visit. Only the snapshot prefix has a
    // pollfd — connections accepted above wait for the next iteration.
    const size_t snapshot_conns = pfds.size() - conns_base;
    for (size_t i = snapshot_conns; i-- > 0;) {
      const pollfd& pfd = pfds[conns_base + i];
      Connection* conn = loop->conns[i].get();
      CNPB_CHECK(pfd.fd == conn->fd);
      bool alive = true;
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        alive = false;
      } else if ((pfd.revents & (POLLIN | POLLHUP)) != 0) {
        // After a protocol error we stop reading and only flush the 4xx.
        alive = conn->close_after_flush ? FlushWrites(conn)
                                        : ServiceRead(conn);
      } else if ((pfd.revents & POLLOUT) != 0) {
        alive = FlushWrites(conn);
      } else if (config_.idle_timeout.count() > 0 &&
                 now - conn->last_active > config_.idle_timeout &&
                 conn->out.empty() && !conn->parser.HasPartialRequest()) {
        alive = false;  // reclaim idle keep-alive connections
      }
      if (!alive) CloseConnection(loop, i);
    }
  }
}

}  // namespace cnpb::server
