#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "util/fault_injection.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/net.h"

namespace cnpb::server {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

// Cap on the iovec batch one FlushWrites round hands to writev; deeper
// response queues simply take another round.
constexpr int kMaxIov = 64;

// Small JSON error body used for responses the service layer never sees
// (parse errors, connection-table 503s, idle 408s, drain 504s).
HttpResponse ProtocolErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":{\"status\":" + util::JsonUInt(status) +
                  ",\"message\":" + util::JsonString(message) + "}}\n";
  response.close = true;
  return response;
}

void SetNoDelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Hashed timer wheel with lazy deadlines. Entries are (fd, generation id)
// pairs, never pointers, so an entry that outlives its connection — or
// lands on a reused fd number — is detected and dropped by the expiry
// callback. A connection is inserted once at accept and stays in the wheel
// until it is closed: when its slot comes up the callback re-computes the
// real deadline from current connection state and either reclaims the
// connection or reschedules the entry, so activity never has to touch the
// wheel on the hot path (lazy cancellation, cf. kernel timer wheels).
class TimerWheel {
 public:
  struct Entry {
    int fd = -1;
    uint64_t id = 0;
    // The deadline this entry was scheduled for. A connection records the
    // deadline of its live entry (wheel_deadline); entries that fire with a
    // different value were superseded by a tighter reschedule and are
    // dropped without consulting the connection's timeout state.
    TimePoint deadline;
  };

  void Init(std::chrono::milliseconds granularity, TimePoint now) {
    granularity_ = granularity;
    cursor_time_ = now;
  }

  void Schedule(int fd, uint64_t id, TimePoint deadline) {
    size_t ticks = 1;
    if (deadline > cursor_time_) {
      const auto delta = deadline - cursor_time_;
      ticks = static_cast<size_t>(delta / granularity_) + 1;
      // Beyond the horizon: park in the furthest slot; the expiry callback
      // reschedules anything whose deadline has not actually arrived.
      if (ticks >= kSlots) ticks = kSlots - 1;
    }
    slots_[(cursor_ + ticks) % kSlots].push_back(Entry{fd, id, deadline});
  }

  // Advances the cursor to `now`, invoking `on_due` for every entry in the
  // slots passed. `on_due` owns the verdict: drop, reclaim, or Schedule()
  // the entry again.
  template <typename Fn>
  void Advance(TimePoint now, Fn&& on_due) {
    while (now - cursor_time_ >= granularity_) {
      cursor_ = (cursor_ + 1) % kSlots;
      cursor_time_ += granularity_;
      std::vector<Entry> due;
      due.swap(slots_[cursor_]);
      for (const Entry& entry : due) on_due(entry);
    }
  }

 private:
  static constexpr size_t kSlots = 256;
  std::chrono::milliseconds granularity_{100};
  TimePoint cursor_time_;
  size_t cursor_ = 0;
  std::vector<Entry> slots_[kSlots];
};

// Wheel tick size: fine enough that the shortest armed timeout fires within
// ~25% of its nominal value, bounded so a disabled/huge timeout does not
// spin the cursor.
std::chrono::milliseconds TimerGranularity(
    const HttpServer::Config& config) {
  int64_t shortest_ms = 0;
  for (const auto timeout :
       {config.idle_timeout, config.write_stall_timeout}) {
    if (timeout.count() > 0 &&
        (shortest_ms == 0 || timeout.count() < shortest_ms)) {
      shortest_ms = timeout.count();
    }
  }
  if (shortest_ms == 0) return std::chrono::milliseconds(250);
  const int64_t tick = shortest_ms / 4;
  return std::chrono::milliseconds(std::clamp<int64_t>(tick, 5, 250));
}

}  // namespace

// One accepted connection, owned by exactly one event loop. `id` is a
// per-loop generation counter: timer-wheel entries name connections as
// (fd, id) so a stale entry for a recycled fd never fires on its successor.
struct HttpServer::Connection {
  explicit Connection(const RequestParser::Limits& limits) : parser(limits) {}

  int fd = -1;
  uint64_t id = 0;
  RequestParser parser;
  // Serialized responses not yet written, flushed with writev; `front_off`
  // is the already-sent prefix of out.front(), `out_bytes` the queue total.
  std::deque<std::string> out;
  size_t front_off = 0;
  size_t out_bytes = 0;
  bool close_after_flush = false;
  TimePoint last_active;    // last byte read from the peer
  TimePoint last_progress;  // last write progress while output was queued
  // Deadline of this connection's live wheel entry. The wheel is lazy, so
  // an entry parked at a far idle deadline would never notice the state
  // flipping to the (much shorter) write-stall class; TightenDeadline
  // inserts a closer entry and this field marks the old one as superseded.
  TimePoint wheel_deadline;

  void Queue(std::string bytes) {
    out_bytes += bytes.size();
    out.push_back(std::move(bytes));
  }
};

struct HttpServer::Loop {
  int wake_rd = -1;
  int wake_wr = -1;
#ifdef __linux__
  int epfd = -1;
#endif
  std::unordered_map<int, std::unique_ptr<Connection>> conns;  // by fd
  TimerWheel wheel;
  uint64_t next_id = 1;
  // Scratch for the poll(2) backend (kept across iterations to avoid
  // reallocating the poll set every 100ms).
  std::vector<pollfd> pfds;
  std::vector<Connection*> polled;

  ~Loop() {
    for (const auto& [fd, conn] : conns) util::CloseFd(fd);
    util::CloseFd(wake_rd);
    util::CloseFd(wake_wr);
#ifdef __linux__
    util::CloseFd(epfd);
#endif
  }
};

HttpServer::HttpServer(const Config& config, Handler handler)
    : config_(config), handler_(std::move(handler)) {
  CNPB_CHECK(config_.num_threads >= 1);
  CNPB_CHECK(handler_ != nullptr);
#ifdef __linux__
  use_epoll_ = config_.poller != Poller::kPoll;
#else
  use_epoll_ = false;
#endif
}

HttpServer::~HttpServer() {
  Stop();
  Wait();
}

const char* HttpServer::poller_name() const {
  return use_epoll_ ? "epoll" : "poll";
}

util::Status HttpServer::Start() {
#ifndef __linux__
  if (config_.poller == Poller::kEpoll) {
    return util::FailedPreconditionError("epoll backend requires Linux");
  }
#endif
  int expected = kIdle;
  if (!state_.compare_exchange_strong(expected, kRunning)) {
    return util::FailedPreconditionError("server already started");
  }
  // The backlog must absorb a connect burst as large as the connection
  // table, or excess SYNs are dropped and those clients stall on the ~1s
  // retransmit timer before the loops ever see them (the kernel clamps to
  // net.core.somaxconn).
  const int backlog = static_cast<int>(std::min(config_.max_connections,
                                                size_t{65535}));
  util::Result<int> listen =
      util::ListenTcp(config_.host, config_.port, backlog, &port_);
  if (!listen.ok()) {
    state_.store(kStopped);
    return listen.status();
  }
  listen_fd_ = *listen;
  const size_t num_loops = static_cast<size_t>(config_.num_threads);
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      state_.store(kStopped);
      return util::IoError("pipe() failed for event-loop wakeup");
    }
    loop->wake_rd = pipe_fds[0];
    loop->wake_wr = pipe_fds[1];
    (void)util::SetNonBlocking(loop->wake_rd);
    (void)util::SetNonBlocking(loop->wake_wr);
    loop->wheel.Init(TimerGranularity(config_), now);
#ifdef __linux__
    if (use_epoll_) {
      if (util::Status status = SetupEpoll(loop.get()); !status.ok()) {
        state_.store(kStopped);
        return status;
      }
    }
#endif
    loops_.push_back(std::move(loop));
  }
  // The event loops are long-lived tasks: lane 0 runs on the dedicated
  // serve thread (the ParallelFor caller), lanes 1..N-1 on the pool's
  // workers. With n == max_parallelism, ParallelFor's grain is 1, so every
  // lane picks up exactly one loop index.
  pool_ = std::make_unique<util::ThreadPool>(
      static_cast<int>(num_loops) - 1);
  serve_thread_ = std::thread([this, num_loops]() {
    pool_->ParallelFor(num_loops, static_cast<int>(num_loops),
                       [this](size_t i) { RunLoop(i); });
  });
  return util::Status::Ok();
}

void HttpServer::Stop() {
  // Serialised so drain_started_ is written exactly once, before the
  // release store of kDraining that the loops acquire.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (state_.load(std::memory_order_acquire) != kRunning) return;
  drain_started_ = std::chrono::steady_clock::now();
  state_.store(kDraining, std::memory_order_release);
  // Refuse new connections immediately. Loops stop watching the listening
  // fd once they observe kDraining; a loop mid-wait may see one spurious
  // event on the stale fd, which the accept error path tolerates.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  util::CloseFd(fd);
  for (const auto& loop : loops_) {
    const char byte = 'w';
    ssize_t rc;
    do {
      rc = ::write(loop->wake_wr, &byte, 1);
    } while (rc < 0 && errno == EINTR);
  }
}

void HttpServer::Wait() {
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  util::CloseFd(fd);
  state_.store(kStopped, std::memory_order_release);
}

HttpServer::Stats HttpServer::stats() const {
  Stats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected = rejected_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  stats.io_errors = io_errors_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.write_stall_timeouts =
      stall_timeouts_.load(std::memory_order_relaxed);
  stats.open_connections = open_connections_.load(std::memory_order_relaxed);
  return stats;
}

void HttpServer::CloseConnection(Loop* loop, Connection* conn) {
  // close() drops the fd from the loop's epoll interest list implicitly.
  const int fd = conn->fd;
  util::CloseFd(fd);
  loop->conns.erase(fd);  // frees `conn`
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  m_closed_->Increment();
}

TimePoint HttpServer::DeadlineFor(const Connection& conn,
                                  TimePoint now) const {
  if (conn.out_bytes > 0) {
    if (config_.write_stall_timeout.count() > 0) {
      return conn.last_progress + config_.write_stall_timeout;
    }
  } else if (config_.idle_timeout.count() > 0) {
    return conn.last_active + config_.idle_timeout;
  }
  // The timeout covering the connection's current state is disabled; check
  // back later in case the state (queued output vs idle) flips.
  return now + std::chrono::seconds(1);
}

void HttpServer::TightenDeadline(Loop* loop, Connection* conn,
                                 TimePoint now) {
  const TimePoint deadline = DeadlineFor(*conn, now);
  if (deadline < conn->wheel_deadline) {
    loop->wheel.Schedule(conn->fd, conn->id, deadline);
    conn->wheel_deadline = deadline;
  }
}

void HttpServer::ExpireTimers(Loop* loop, TimePoint now) {
  loop->wheel.Advance(now, [&](const TimerWheel::Entry& entry) {
    const auto it = loop->conns.find(entry.fd);
    if (it == loop->conns.end() || it->second->id != entry.id) {
      return;  // closed since scheduling (possibly a recycled fd) — drop
    }
    Connection* conn = it->second.get();
    if (entry.deadline != conn->wheel_deadline) {
      return;  // superseded by a tighter reschedule — drop
    }
    const TimePoint deadline = DeadlineFor(*conn, now);
    if (deadline > now) {
      loop->wheel.Schedule(entry.fd, entry.id, deadline);
      conn->wheel_deadline = deadline;
      return;
    }
    if (conn->out_bytes > 0) {
      // Write stall: the peer has not accepted a byte of the queued output
      // for the whole window. Nothing more we owe it.
      stall_timeouts_.fetch_add(1, std::memory_order_relaxed);
      m_stall_timeouts_->Increment();
    } else {
      idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
      m_idle_timeouts_->Increment();
      if (conn->parser.HasPartialRequest()) {
        // Slow-loris read side: a request trickling in for a whole idle
        // window gets a best-effort 408 before the close.
        const std::string bytes = SerializeResponse(
            ProtocolErrorResponse(408, "request timed out"),
            /*keep_alive=*/false, /*head_only=*/false);
        (void)util::SendSome(conn->fd, bytes.data(), bytes.size());
      }
    }
    CloseConnection(loop, conn);
  });
}

bool HttpServer::FlushWrites(Connection* conn) {
  while (conn->out_bytes > 0) {
    if (const util::Status fault = util::CheckFault("server.write");
        !fault.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    size_t off = conn->front_off;
    for (const std::string& chunk : conn->out) {
      iov[iovcnt].iov_base =
          const_cast<char*>(chunk.data()) + off;
      iov[iovcnt].iov_len = chunk.size() - off;
      off = 0;
      if (++iovcnt == kMaxIov) break;
    }
    const util::Result<size_t> sent =
        util::WritevSome(conn->fd, iov, iovcnt);
    if (!sent.ok()) {
      // EPIPE/ECONNRESET from a peer that went away mid-response: an
      // orderly close of this connection, never a process-level signal.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    if (*sent == 0) return true;  // would block; wait for writability
    conn->out_bytes -= *sent;
    conn->last_progress = std::chrono::steady_clock::now();
    size_t consumed = *sent;
    while (consumed > 0) {
      const size_t front_left = conn->out.front().size() - conn->front_off;
      if (consumed >= front_left) {
        consumed -= front_left;
        conn->front_off = 0;
        conn->out.pop_front();
      } else {
        conn->front_off += consumed;
        consumed = 0;
      }
    }
  }
  // Fully flushed: the idle clock restarts now, not at the last read, so a
  // legitimately slow reader is not charged its own drain time as idle.
  conn->last_active = std::chrono::steady_clock::now();
  return !conn->close_after_flush;
}

void HttpServer::HandleParsed(Connection* conn) {
  const HttpRequest& request = conn->parser.request();
  requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests_->Increment();
  const HttpResponse response = handler_(request);
  // During drain every response announces the close; clients re-resolve.
  const bool draining =
      state_.load(std::memory_order_acquire) != kRunning;
  const bool keep_alive = request.keep_alive && !response.close && !draining;
  conn->Queue(SerializeResponse(response, keep_alive,
                                /*head_only=*/request.method == "HEAD"));
  if (!keep_alive) conn->close_after_flush = true;
}

bool HttpServer::ServiceRead(Connection* conn) {
  char buf[16384];
  for (;;) {
    if (const util::Status fault = util::CheckFault("server.read");
        !fault.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    bool would_block = false;
    const util::Result<size_t> got =
        util::RecvSome(conn->fd, buf, sizeof(buf), &would_block);
    if (!got.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      return false;
    }
    // Edge-triggered epoll only re-arms once the socket is drained, so the
    // read loop must run to EAGAIN — a short read is not proof the buffer
    // is empty and must not end the loop.
    if (would_block) break;
    if (*got == 0) return false;  // peer closed
    conn->last_active = std::chrono::steady_clock::now();
    RequestParser::State state =
        conn->parser.Feed(std::string_view(buf, *got));
    while (state == RequestParser::State::kComplete) {
      HandleParsed(conn);
      if (conn->close_after_flush) break;
      conn->parser.Reset();
      state = conn->parser.Poll();  // pipelined request already buffered?
    }
    if (state == RequestParser::State::kError) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      m_parse_errors_->Increment();
      const HttpResponse error = ProtocolErrorResponse(
          conn->parser.error_status(), conn->parser.error_message());
      conn->Queue(SerializeResponse(error, /*keep_alive=*/false,
                                    /*head_only=*/false));
      conn->close_after_flush = true;
      break;
    }
    if (conn->close_after_flush) break;
  }
  return FlushWrites(conn);
}

bool HttpServer::ServiceConnection(Connection* conn, bool readable,
                                   bool writable) {
  if (readable) {
    // After a protocol error we stop reading and only flush the 4xx.
    return conn->close_after_flush ? FlushWrites(conn) : ServiceRead(conn);
  }
  if (writable) return FlushWrites(conn);
  return true;
}

void HttpServer::AcceptPending(Loop* loop, TimePoint now) {
  const int listen_fd = listen_fd_.load(std::memory_order_relaxed);
  if (listen_fd < 0) return;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN, or the fd was closed/reused under drain
    }
    if (const util::Status fault = util::CheckFault("server.accept");
        !fault.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_->Increment();
      util::CloseFd(fd);
      continue;
    }
    if (open_connections_.fetch_add(1, std::memory_order_relaxed) + 1 >
        config_.max_connections) {
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->Increment();
      const std::string bytes = SerializeResponse(
          ProtocolErrorResponse(503, "connection table full"),
          /*keep_alive=*/false, /*head_only=*/false);
      (void)util::SendSome(fd, bytes.data(), bytes.size());
      util::CloseFd(fd);
      continue;
    }
    (void)util::SetNonBlocking(fd);
    SetNoDelay(fd);
    (void)util::SetSendBufferSize(fd, config_.so_sndbuf);
    auto conn = std::make_unique<Connection>(config_.parser_limits);
    conn->fd = fd;
    conn->id = loop->next_id++;
    conn->last_active = now;
    conn->last_progress = now;
    conn->wheel_deadline = DeadlineFor(*conn, now);
    loop->wheel.Schedule(fd, conn->id, conn->wheel_deadline);
#ifdef __linux__
    if (use_epoll_) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
      ev.data.fd = fd;
      if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        CNPB_LOG(Error) << "epoll_ctl(ADD) failed: " << std::strerror(errno);
        open_connections_.fetch_sub(1, std::memory_order_relaxed);
        util::CloseFd(fd);
        continue;
      }
    }
#endif
    loop->conns.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    m_accepted_->Increment();
  }
}

bool HttpServer::DrainPass(Loop* loop, TimePoint now) {
  // Idle keep-alive connections owe nothing; close them right away.
  for (auto it = loop->conns.begin(); it != loop->conns.end();) {
    Connection* conn = it->second.get();
    ++it;  // CloseConnection erases by fd; advance first
    if (conn->out_bytes == 0 && !conn->parser.HasPartialRequest()) {
      CloseConnection(loop, conn);
    }
  }
  if (loop->conns.empty()) return true;
  if (now - drain_started_ > config_.drain_deadline) {
    // Past the deadline: half-read requests get a best-effort 504,
    // everything still unflushed is dropped.
    for (auto it = loop->conns.begin(); it != loop->conns.end();) {
      Connection* conn = it->second.get();
      ++it;
      if (conn->parser.HasPartialRequest()) {
        const std::string bytes = SerializeResponse(
            ProtocolErrorResponse(504, "server draining"),
            /*keep_alive=*/false, /*head_only=*/false);
        (void)util::SendSome(conn->fd, bytes.data(), bytes.size());
      }
      CloseConnection(loop, conn);
    }
    return true;
  }
  return false;
}

void HttpServer::RunLoop(size_t index) {
  Loop* loop = loops_[index].get();
#ifdef __linux__
  if (use_epoll_) {
    RunEpollLoop(loop);
    return;
  }
#endif
  RunPollLoop(loop);
}

#ifdef __linux__

// EPOLLEXCLUSIVE landed in Linux 4.5; guard for older toolchain headers.
#ifndef EPOLLEXCLUSIVE
#define EPOLLEXCLUSIVE 0
#endif

// Creates the loop's epoll instance and registers the wake pipe and the
// listening socket. Runs on the thread calling Start(), not the loop
// thread: Stop() may close the listener the moment Start() returns, and a
// loop thread racing its initial EPOLL_CTL_ADD against that close could
// end up watching a recycled descriptor. Registering before Start()
// returns closes the window — Stop() is only legal afterwards.
util::Status HttpServer::SetupEpoll(Loop* loop) {
  loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (loop->epfd < 0) {
    return util::IoError(std::string("epoll_create1 failed: ") +
                         std::strerror(errno));
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_rd;
    CNPB_CHECK(::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_rd, &ev) ==
               0);
  }
  // Every loop has its own epoll instance watching the one listening
  // socket; EPOLLEXCLUSIVE stops a single inbound connection from waking
  // all of them (thundering herd). Level-triggered on purpose: with ET a
  // burst that one loop only partially drains would go unannounced.
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  if (listen_fd >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = listen_fd;
    if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, listen_fd, &ev) != 0 &&
        errno == EINVAL) {
      ev.events = EPOLLIN;  // pre-4.5 kernel: plain level-triggered watch
      (void)::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, listen_fd, &ev);
    }
  }
  return util::Status::Ok();
}

void HttpServer::RunEpollLoop(Loop* loop) {
  if (loop->epfd < 0) return;  // Start() failed; nothing to run
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);

  epoll_event events[256];
  for (;;) {
    const int state = state_.load(std::memory_order_acquire);
    if (state == kStopped) break;
    const bool draining = state == kDraining;
    const auto now = std::chrono::steady_clock::now();
    if (draining && DrainPass(loop, now)) break;
    ExpireTimers(loop, now);

    const int timeout_ms = draining ? 10 : 100;
    const int ready = ::epoll_wait(loop->epfd, events,
                                   static_cast<int>(std::size(events)),
                                   timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      CNPB_LOG(Error) << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    const auto wake = std::chrono::steady_clock::now();
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == loop->wake_rd) {
        char drain_buf[64];
        while (::read(loop->wake_rd, drain_buf, sizeof(drain_buf)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd) {
        if (!draining) AcceptPending(loop, wake);
        continue;
      }
      const auto it = loop->conns.find(fd);
      if (it == loop->conns.end()) continue;  // already closed this batch
      Connection* conn = it->second.get();
      bool alive;
      if ((mask & EPOLLERR) != 0) {
        alive = false;
      } else {
        // EPOLLRDHUP/EPOLLHUP surface through the read path: recv drains
        // whatever the peer sent before its FIN, then reports the close.
        const bool readable =
            (mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0;
        const bool writable = (mask & EPOLLOUT) != 0;
        alive = ServiceConnection(conn, readable, writable);
      }
      if (!alive) {
        CloseConnection(loop, conn);
      } else {
        // Queued output switches the connection to the (typically much
        // shorter) write-stall timeout; make sure the wheel looks that soon.
        TightenDeadline(loop, conn, wake);
      }
    }
  }
}

#endif  // __linux__

void HttpServer::RunPollLoop(Loop* loop) {
  for (;;) {
    const int state = state_.load(std::memory_order_acquire);
    if (state == kStopped) break;
    const bool draining = state == kDraining;
    const auto now = std::chrono::steady_clock::now();
    if (draining && DrainPass(loop, now)) break;
    ExpireTimers(loop, now);

    loop->pfds.clear();
    loop->polled.clear();
    loop->pfds.push_back({loop->wake_rd, POLLIN, 0});
    const int listen_fd =
        draining ? -1 : listen_fd_.load(std::memory_order_relaxed);
    if (listen_fd >= 0) loop->pfds.push_back({listen_fd, POLLIN, 0});
    const size_t conns_base = loop->pfds.size();
    for (const auto& [fd, conn] : loop->conns) {
      short events = POLLIN;
      if (conn->out_bytes > 0) events |= POLLOUT;
      loop->pfds.push_back({fd, events, 0});
      loop->polled.push_back(conn.get());
    }

    const int timeout_ms = draining ? 10 : 100;
    const int ready =
        ::poll(loop->pfds.data(), loop->pfds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      CNPB_LOG(Error) << "poll failed: " << std::strerror(errno);
      break;
    }
    const auto wake = std::chrono::steady_clock::now();

    if ((loop->pfds[0].revents & POLLIN) != 0) {
      char drain_buf[64];
      while (::read(loop->wake_rd, drain_buf, sizeof(drain_buf)) > 0) {
      }
    }
    if (listen_fd >= 0 && loop->pfds.size() > 1 &&
        loop->pfds[1].fd == listen_fd &&
        (loop->pfds[1].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) !=
            0) {
      AcceptPending(loop, wake);
    }

    // Connections accepted above are not in this poll set; they are
    // serviced next iteration. Ones closed here are closed exactly at their
    // own dispatch, so every `polled` pointer stays valid until visited.
    for (size_t i = 0; i < loop->polled.size(); ++i) {
      const pollfd& pfd = loop->pfds[conns_base + i];
      Connection* conn = loop->polled[i];
      CNPB_CHECK(pfd.fd == conn->fd);
      bool alive = true;
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        alive = false;
      } else {
        const bool readable = (pfd.revents & (POLLIN | POLLHUP)) != 0;
        const bool writable = (pfd.revents & POLLOUT) != 0;
        alive = ServiceConnection(conn, readable, writable);
      }
      if (!alive) {
        CloseConnection(loop, conn);
      } else {
        TightenDeadline(loop, conn, wake);
      }
    }
  }
}

}  // namespace cnpb::server
