#include "server/result_cache.h"

#include <algorithm>
#include <functional>

namespace cnpb::server {

namespace {

// Fixed per-entry overhead charged against the byte budget on top of the
// key and body payloads (map node, list node, Entry bookkeeping).
constexpr size_t kEntryOverheadBytes = 64;

}  // namespace

ResultCache::ResultCache(const Config& config)
    : shard_budget_(std::max<size_t>(1, config.max_bytes) /
                    std::max<size_t>(1, config.num_shards)),
      shards_(std::max<size_t>(1, config.num_shards)) {}

std::string ResultCache::Key(std::string_view endpoint, std::string_view arg,
                             std::string_view options) {
  std::string key;
  key.reserve(endpoint.size() + arg.size() + options.size() + 24);
  key += endpoint;
  key += '\0';
  key += std::to_string(arg.size());
  key += '\0';
  key += arg;
  key += options;
  return key;
}

ResultCache::Shard& ResultCache::ShardFor(std::string_view key) {
  const size_t h = std::hash<std::string_view>{}(key);
  return shards_[h % shards_.size()];
}

size_t ResultCache::EntryBytes(std::string_view key, std::string_view body) {
  return key.size() + body.size() + kEntryOverheadBytes;
}

void ResultCache::EraseLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  shard.bytes -= EntryBytes(it->first, it->second.body);
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
}

bool ResultCache::Lookup(std::string_view key, uint64_t version,
                         CachedResponse* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(std::string(key));
  if (it == shard.map.end()) {
    ++shard.misses;
    m_misses_->Increment();
    return false;
  }
  if (it->second.version != version) {
    // Publish bumped the version; this entry can never hit again.
    EraseLocked(shard, it);
    ++shard.misses;
    ++shard.stale_drops;
    m_misses_->Increment();
    m_stale_drops_->Increment();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  out->status = it->second.status;
  out->body = it->second.body;
  out->version = it->second.version;
  ++shard.hits;
  m_hits_->Increment();
  return true;
}

void ResultCache::Insert(std::string_view key, uint64_t version, int status,
                         std::string_view body) {
  if (EntryBytes(key, body) > shard_budget_) return;  // would evict everything
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::string key_str(key);
  if (const auto it = shard.map.find(key_str); it != shard.map.end()) {
    EraseLocked(shard, it);
  }
  shard.lru.push_front(key_str);
  Entry entry;
  entry.version = version;
  entry.status = status;
  entry.body = std::string(body);
  entry.lru_it = shard.lru.begin();
  shard.bytes += EntryBytes(key_str, entry.body);
  shard.map.emplace(std::move(key_str), std::move(entry));
  ++shard.insertions;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const auto victim = shard.map.find(shard.lru.back());
    EraseLocked(shard, victim);
    ++shard.evictions;
    m_evictions_->Increment();
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.stale_drops += shard.stale_drops;
    total.entries += shard.map.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace cnpb::server
