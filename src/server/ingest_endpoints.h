#ifndef CNPROBASE_SERVER_INGEST_ENDPOINTS_H_
#define CNPROBASE_SERVER_INGEST_ENDPOINTS_H_

#include <string_view>

#include "ingest/daemon.h"
#include "server/http.h"
#include "server/server.h"

namespace cnpb::server {

// HTTP face of the ingestion daemon (DESIGN.md §13) — the write-side
// counterpart of ApiEndpoints, composed in front of it:
//
//   POST /v1/ingest?priority=P     one operation per body line:
//                                    u <TAB> name [<TAB> mention <TAB>
//                                      bracket <TAB> abstract <TAB>
//                                      p=o;p=o <TAB> tag;tag <TAB>
//                                      alias;alias]
//                                    d <TAB> name
//                                  Trailing fields may be omitted. All
//                                  lines are appended, then acked under one
//                                  fsync (group commit); the response
//                                  carries the last LSN.
//   GET  /v1/ingest_status         daemon stats as JSON
//
// A 200 means every operation in the body is durable in the WAL. A 5xx
// means the batch must be retried — a retry that duplicates a durable line
// is harmless because apply dedups pages by name. Responses:
//
//   200 {"accepted":N,"last_lsn":L}
//   400 malformed line / empty body / bad priority
//   405 /v1/ingest without POST
//   503 WAL append or fsync failed (body carries the status)
//
// Every other path is delegated to the fallback handler (the query API).
class IngestEndpoints {
 public:
  // Neither pointer is owned. `fallback` answers non-ingest paths; pass the
  // ApiEndpoints handler (or any Handler) — it must outlive this object.
  IngestEndpoints(ingest::IngestDaemon* daemon, HttpServer::Handler fallback);

  HttpResponse Handle(const HttpRequest& request);
  HttpServer::Handler AsHandler();

 private:
  HttpResponse Ingest(const HttpRequest& request);
  HttpResponse Status();

  ingest::IngestDaemon* daemon_;
  HttpServer::Handler fallback_;
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_INGEST_ENDPOINTS_H_
