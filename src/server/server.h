#ifndef CNPROBASE_SERVER_SERVER_H_
#define CNPROBASE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/http.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cnpb::server {

// A portable poll(2)-based HTTP/1.1 server. N event loops run as
// long-lived tasks on a server-owned util::ThreadPool; every loop polls the
// shared non-blocking listening socket (the kernel load-balances accepts)
// and owns the connections it accepted outright, so the steady state needs
// no cross-thread handoff per request: read -> parse -> handle -> write all
// happen on one loop. Handlers therefore must be fast and non-blocking —
// the ApiService lookups they wrap are sub-microsecond in-memory reads,
// which is exactly the workload this layout is built for (DESIGN.md §9).
//
// Overload and failure map onto the protocol instead of hiding behind it:
// the handler surfaces util::Status codes that the service layer renders as
// 429/503/504 JSON (see service.h), oversized or malformed requests get
// 400/431/413 from the parser, and a full connection table answers 503
// before closing. Fault points server.accept / server.read / server.write
// let the chaos tests inject failures at each socket boundary.
//
// Shutdown is a graceful drain: Stop() (or the SIGTERM handler in
// cnprobase_serve calling it) closes the listening socket, lets in-flight
// requests finish and their responses flush within `drain_deadline`, then
// closes everything that remains (half-read requests get a best-effort
// 504). Stop() only initiates the drain; Wait() joins it.
class HttpServer {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; see port() after Start()
    int num_threads = 4;
    size_t max_connections = 4096;  // over this, accept + answer 503 + close
    RequestParser::Limits parser_limits;
    std::chrono::milliseconds idle_timeout{60000};
    std::chrono::milliseconds drain_deadline{5000};
  };

  // Counters are cumulative since Start(); exposed for tests and the bench
  // without going through the metrics registry.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  // 503: connection table full
    uint64_t requests = 0;              // complete requests handled
    uint64_t parse_errors = 0;          // 4xx answered by the parser
    uint64_t io_errors = 0;             // read/write failures (EPIPE, faults)
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(const Config& config, Handler handler);
  ~HttpServer();  // implies Stop() + Wait()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and launches the event loops. After an ok() return,
  // port() is the bound port and the server is accepting.
  util::Status Start();

  // Initiates graceful drain (idempotent, safe from a signal-watcher
  // thread): stop accepting, finish in-flight work within drain_deadline.
  void Stop();

  // Blocks until every event loop has exited. Safe to call once.
  void Wait();

  uint16_t port() const { return port_; }
  bool running() const { return state_.load() == kRunning; }
  Stats stats() const;

 private:
  enum State : int { kIdle, kRunning, kDraining, kStopped };

  struct Connection;
  struct Loop;

  void RunLoop(size_t index);
  // Reads whatever is available; parses and answers every complete request.
  // Returns false when the connection must be closed.
  bool ServiceRead(Connection* conn);
  bool FlushWrites(Connection* conn);
  void HandleParsed(Connection* conn);
  void CloseConnection(Loop* loop, size_t slot);

  Config config_;
  Handler handler_;
  // Atomic: Stop() closes it while event loops are still reading it for
  // their poll sets (see the drain protocol in DESIGN.md §9).
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<int> state_{kIdle};
  std::mutex stop_mu_;  // serialises Stop(); guards drain_started_ write
  std::chrono::steady_clock::time_point drain_started_;

  // One pool lane per event loop; the dedicated serve thread contributes
  // the remaining lane via ParallelFor (see Start()).
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread serve_thread_;
  std::vector<std::unique_ptr<Loop>> loops_;

  std::atomic<size_t> open_connections_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> io_errors_{0};

  // Registry instruments (looked up once; written on the serving path).
  obs::Counter* const m_accepted_ =
      obs::MetricsRegistry::Global().counter("http.connections.accepted");
  obs::Counter* const m_closed_ =
      obs::MetricsRegistry::Global().counter("http.connections.closed");
  obs::Counter* const m_rejected_ =
      obs::MetricsRegistry::Global().counter("http.connections.rejected");
  obs::Counter* const m_requests_ =
      obs::MetricsRegistry::Global().counter("http.requests");
  obs::Counter* const m_parse_errors_ =
      obs::MetricsRegistry::Global().counter("http.parse_errors");
  obs::Counter* const m_io_errors_ =
      obs::MetricsRegistry::Global().counter("http.io_errors");
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_SERVER_H_
