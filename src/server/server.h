#ifndef CNPROBASE_SERVER_SERVER_H_
#define CNPROBASE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/http.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cnpb::server {

// An HTTP/1.1 server built on epoll edge-triggered event loops (Linux),
// with a portable poll(2) fallback. N event loops run as long-lived tasks
// on a server-owned util::ThreadPool; every loop waits on the shared
// non-blocking listening socket (the kernel load-balances accepts, via
// EPOLLEXCLUSIVE where available) and owns the connections it accepted
// outright, so the steady state needs no cross-thread handoff per request:
// read -> parse -> handle -> write all happen on one loop. Handlers
// therefore must be fast and non-blocking — the ApiService lookups they
// wrap are sub-microsecond in-memory reads, which is exactly the workload
// this layout is built for (DESIGN.md §11).
//
// Each loop keeps a hashed timer wheel over its connections. The wheel
// enforces two independent timeouts: `idle_timeout` for connections with
// nothing queued (keep-alive peers that went quiet, half-sent requests),
// and `write_stall_timeout` for connections with unflushed output whose
// peer stopped reading — the slow-loris reader that would otherwise pin an
// fd forever. Queued responses are flushed with writev scatter-gather, one
// syscall per batch of pipelined responses.
//
// Overload and failure map onto the protocol instead of hiding behind it:
// the handler surfaces util::Status codes that the service layer renders as
// 429/503/504 JSON (see service.h), oversized or malformed requests get
// 400/431/413 from the parser, a full connection table answers 503 before
// closing, and an idle half-read request gets a best-effort 408. Fault
// points server.accept / server.read / server.write let the chaos tests
// inject failures at each socket boundary.
//
// Shutdown is a graceful drain: Stop() (or the SIGTERM handler in
// cnprobase_serve calling it) closes the listening socket, lets in-flight
// requests finish and their responses flush within `drain_deadline`, then
// closes everything that remains (half-read requests get a best-effort
// 504). Stop() only initiates the drain; Wait() joins it.
class HttpServer {
 public:
  // Event notification backend. kAuto picks epoll on Linux and poll
  // elsewhere; forcing kPoll keeps the portable path testable (and gives
  // the bench its baseline) on Linux too.
  enum class Poller { kAuto, kEpoll, kPoll };

  struct Config {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; see port() after Start()
    int num_threads = 4;
    size_t max_connections = 4096;  // over this, accept + answer 503 + close
    RequestParser::Limits parser_limits;
    Poller poller = Poller::kAuto;
    // Reclaim connections with no queued output that have been silent this
    // long (0 disables). Half-read requests get a best-effort 408.
    std::chrono::milliseconds idle_timeout{60000};
    // Reclaim connections whose queued output has made no write progress
    // this long — the peer stopped reading (0 disables).
    std::chrono::milliseconds write_stall_timeout{10000};
    std::chrono::milliseconds drain_deadline{5000};
    // When > 0, SO_SNDBUF for accepted sockets. A test/bench hook: a tiny
    // send buffer makes write stalls reproducible on loopback.
    int so_sndbuf = 0;
  };

  // Counters are cumulative since Start() (open_connections is a gauge);
  // exposed for tests and the bench without going through the registry.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  // 503: connection table full
    uint64_t requests = 0;              // complete requests handled
    uint64_t parse_errors = 0;          // 4xx answered by the parser
    uint64_t io_errors = 0;             // read/write failures (EPIPE, faults)
    uint64_t idle_timeouts = 0;         // reclaimed by the wheel: silent
    uint64_t write_stall_timeouts = 0;  // reclaimed by the wheel: stalled
    size_t open_connections = 0;        // currently open, across all loops
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(const Config& config, Handler handler);
  ~HttpServer();  // implies Stop() + Wait()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and launches the event loops. After an ok() return,
  // port() is the bound port and the server is accepting. Fails with
  // FailedPrecondition when Poller::kEpoll is forced on a non-Linux build.
  util::Status Start();

  // Initiates graceful drain (idempotent, safe from a signal-watcher
  // thread): stop accepting, finish in-flight work within drain_deadline.
  void Stop();

  // Blocks until every event loop has exited. Safe to call once.
  void Wait();

  uint16_t port() const { return port_; }
  bool running() const { return state_.load() == kRunning; }
  // "epoll" or "poll"; resolved from Config::poller at construction.
  const char* poller_name() const;
  Stats stats() const;

 private:
  enum State : int { kIdle, kRunning, kDraining, kStopped };

  struct Connection;
  struct Loop;

  void RunLoop(size_t index);
  void RunPollLoop(Loop* loop);
#ifdef __linux__
  void RunEpollLoop(Loop* loop);
  util::Status SetupEpoll(Loop* loop);
#endif

  // Drains the kernel accept queue into `loop`. Safe when the listening
  // socket has already been closed by Stop().
  void AcceptPending(Loop* loop, std::chrono::steady_clock::time_point now);
  // One drain-state pass; returns true when the loop should exit.
  bool DrainPass(Loop* loop, std::chrono::steady_clock::time_point now);
  // The instant the timer wheel must reclaim `conn` if nothing changes.
  std::chrono::steady_clock::time_point DeadlineFor(
      const Connection& conn,
      std::chrono::steady_clock::time_point now) const;
  // Advances the wheel to `now`: expired connections are reclaimed, still-
  // live ones are rescheduled at their current deadline.
  void ExpireTimers(Loop* loop, std::chrono::steady_clock::time_point now);
  // Re-schedules `conn` in the wheel when its effective deadline moved
  // earlier than the entry the wheel holds (e.g. output was just queued, so
  // the short write-stall timeout now governs instead of idle_timeout).
  void TightenDeadline(Loop* loop, Connection* conn,
                       std::chrono::steady_clock::time_point now);
  // Dispatches one readiness notification. Returns false when the
  // connection must be closed.
  bool ServiceConnection(Connection* conn, bool readable, bool writable);
  // Reads until the socket drains (mandatory under edge-triggered epoll);
  // parses and answers every complete request.
  bool ServiceRead(Connection* conn);
  // writev-flushes the queued responses until done or the socket is full.
  bool FlushWrites(Connection* conn);
  void HandleParsed(Connection* conn);
  void CloseConnection(Loop* loop, Connection* conn);

  Config config_;
  Handler handler_;
  bool use_epoll_ = false;
  // Atomic: Stop() closes it while event loops are still reading it for
  // their wait sets (see the drain protocol in DESIGN.md §9/§11).
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<int> state_{kIdle};
  std::mutex stop_mu_;  // serialises Stop(); guards drain_started_ write
  std::chrono::steady_clock::time_point drain_started_;

  // One pool lane per event loop; the dedicated serve thread contributes
  // the remaining lane via ParallelFor (see Start()).
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread serve_thread_;
  std::vector<std::unique_ptr<Loop>> loops_;

  std::atomic<size_t> open_connections_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> stall_timeouts_{0};

  // Registry instruments (looked up once; written on the serving path).
  obs::Counter* const m_accepted_ =
      obs::MetricsRegistry::Global().counter("http.connections.accepted");
  obs::Counter* const m_closed_ =
      obs::MetricsRegistry::Global().counter("http.connections.closed");
  obs::Counter* const m_rejected_ =
      obs::MetricsRegistry::Global().counter("http.connections.rejected");
  obs::Counter* const m_requests_ =
      obs::MetricsRegistry::Global().counter("http.requests");
  obs::Counter* const m_parse_errors_ =
      obs::MetricsRegistry::Global().counter("http.parse_errors");
  obs::Counter* const m_io_errors_ =
      obs::MetricsRegistry::Global().counter("http.io_errors");
  obs::Counter* const m_idle_timeouts_ =
      obs::MetricsRegistry::Global().counter("http.connections.idle_timeout");
  obs::Counter* const m_stall_timeouts_ = obs::MetricsRegistry::Global()
      .counter("http.connections.write_stall_timeout");
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_SERVER_H_
