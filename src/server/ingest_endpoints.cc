#include "server/ingest_endpoints.h"

#include <algorithm>
#include <string>
#include <vector>

#include "kb/page.h"
#include "server/service.h"
#include "util/json.h"
#include "util/strings.h"

namespace cnpb::server {

namespace {

HttpResponse ErrorResponse(int status, util::StatusCode code,
                           const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = std::string("{\"error\":{\"code\":\"") +
                  util::StatusCodeName(code) +
                  "\",\"message\":" + util::JsonString(message) + "}}\n";
  return response;
}

// One "k=v;k=v"-style cell into parts; empty cell -> no parts.
std::vector<std::string> SplitCell(std::string_view cell) {
  if (cell.empty()) return {};
  return util::Split(cell, ';');
}

// Parses one body line into an operation. Returns false with *error set on
// malformed input.
bool ParseLine(std::string_view line, size_t line_number, bool* is_delete,
               kb::EncyclopediaPage* page, std::string* name,
               HttpResponse* error) {
  const std::vector<std::string> fields = util::Split(line, '\t');
  auto fail = [&](const std::string& what) {
    *error = ErrorResponse(400, util::StatusCode::kInvalidArgument,
                           "line " + std::to_string(line_number) + ": " + what);
    return false;
  };
  if (fields.empty() || fields[0].empty()) return fail("missing op");
  if (fields[0] == "d") {
    if (fields.size() < 2 || fields[1].empty()) {
      return fail("delete needs a name");
    }
    if (fields.size() > 2) return fail("delete takes exactly one field");
    *is_delete = true;
    *name = fields[1];
    return true;
  }
  if (fields[0] != "u") return fail("unknown op '" + fields[0] + "'");
  if (fields.size() < 2 || fields[1].empty()) {
    return fail("upsert needs a name");
  }
  if (fields.size() > 8) return fail("too many fields");
  *is_delete = false;
  page->name = fields[1];
  page->mention = fields.size() > 2 ? fields[2] : "";
  page->bracket = fields.size() > 3 ? fields[3] : "";
  page->abstract = fields.size() > 4 ? fields[4] : "";
  if (fields.size() > 5) {
    for (const std::string& pair : SplitCell(fields[5])) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("infobox cell needs p=o pairs");
      }
      kb::SpoTriple triple;
      triple.subject = page->name;
      triple.predicate = pair.substr(0, eq);
      triple.object = pair.substr(eq + 1);
      page->infobox.push_back(std::move(triple));
    }
  }
  if (fields.size() > 6) page->tags = SplitCell(fields[6]);
  if (fields.size() > 7) page->aliases = SplitCell(fields[7]);
  return true;
}

}  // namespace

IngestEndpoints::IngestEndpoints(ingest::IngestDaemon* daemon,
                                 HttpServer::Handler fallback)
    : daemon_(daemon), fallback_(std::move(fallback)) {}

HttpResponse IngestEndpoints::Handle(const HttpRequest& request) {
  if (request.path == "/v1/ingest") {
    if (request.method != "POST") {
      HttpResponse response = ErrorResponse(
          405, util::StatusCode::kInvalidArgument, "POST required");
      response.headers.emplace_back("Allow", "POST");
      return response;
    }
    return Ingest(request);
  }
  if (request.path == "/v1/ingest_status") return Status();
  return fallback_(request);
}

HttpServer::Handler IngestEndpoints::AsHandler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

HttpResponse IngestEndpoints::Ingest(const HttpRequest& request) {
  uint64_t priority = 1;
  if (request.HasParam("priority")) {
    if (!util::ParseUint64(request.Param("priority"), &priority) ||
        priority > 255) {
      return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                           "priority must be 0..255");
    }
  }

  // Parse the whole body before touching the WAL: a malformed line rejects
  // the request without a partial append, so 400 always means "nothing was
  // recorded" and the client can fix and resend the whole batch.
  struct Op {
    bool is_delete = false;
    kb::EncyclopediaPage page;
    std::string name;
  };
  std::vector<Op> ops;
  size_t line_number = 0;
  for (std::string_view body = request.body; !body.empty();) {
    const size_t eol = body.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? body : body.substr(0, eol);
    body = eol == std::string_view::npos ? std::string_view()
                                         : body.substr(eol + 1);
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    Op op;
    HttpResponse error;
    if (!ParseLine(line, line_number, &op.is_delete, &op.page, &op.name,
                   &error)) {
      return error;
    }
    ops.push_back(std::move(op));
  }
  if (ops.empty()) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "empty ingest body");
  }

  const auto pri = static_cast<uint8_t>(priority);
  uint64_t last_lsn = 0;
  util::Status status;

  const bool upserts_only =
      std::none_of(ops.begin(), ops.end(),
                   [](const Op& op) { return op.is_delete; });
  if (upserts_only) {
    // The common case shares one fsync across the whole body.
    std::vector<kb::EncyclopediaPage> pages;
    pages.reserve(ops.size());
    for (Op& op : ops) pages.push_back(std::move(op.page));
    auto lsn = daemon_->SubmitBatch(pages, pri);
    status = lsn.status();
    if (lsn.ok()) last_lsn = *lsn;
  } else {
    for (Op& op : ops) {
      auto lsn = op.is_delete ? daemon_->SubmitDelete(op.name, pri)
                              : daemon_->Submit(op.page, pri);
      if (!lsn.ok()) {
        status = lsn.status();
        break;
      }
      last_lsn = *lsn;
    }
  }
  if (!status.ok()) {
    return ErrorResponse(ApiEndpoints::HttpStatusForCode(status.code()),
                         status.code(), status.message());
  }

  HttpResponse response;
  response.body = "{\"accepted\":" + std::to_string(ops.size()) +
                  ",\"last_lsn\":" + std::to_string(last_lsn) + "}\n";
  return response;
}

HttpResponse IngestEndpoints::Status() {
  const ingest::IngestDaemon::Stats s = daemon_->stats();
  HttpResponse response;
  response.body =
      "{\"submitted\":" + std::to_string(s.submitted) +
      ",\"acked\":" + std::to_string(s.acked) +
      ",\"applied\":" + std::to_string(s.applied) +
      ",\"batches\":" + std::to_string(s.batches) +
      ",\"publishes\":" + std::to_string(s.publishes) +
      ",\"compactions\":" + std::to_string(s.compactions) +
      ",\"tombstoned\":" + std::to_string(s.tombstoned) +
      ",\"next_lsn\":" + std::to_string(s.next_lsn) +
      ",\"durable_lsn\":" + std::to_string(s.durable_lsn) +
      ",\"cursor_lsn\":" + std::to_string(s.cursor_lsn) +
      ",\"resolved_lsn\":" + std::to_string(s.resolved_lsn) +
      ",\"generation\":" + std::to_string(s.generation) +
      ",\"served_version\":" + std::to_string(s.served_version) +
      ",\"pending\":" + std::to_string(s.pending) +
      ",\"unpublished_pages\":" + std::to_string(s.unpublished_pages) +
      ",\"draining\":" + (s.draining ? "true" : "false") + "}\n";
  return response;
}

}  // namespace cnpb::server
