#ifndef CNPROBASE_SERVER_HTTP_H_
#define CNPROBASE_SERVER_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cnpb::server {

// HTTP/1.1 message types and an incremental request parser. The parser is
// the only component that touches untrusted bytes, so it is written to a
// strict contract: hard limits on request-line / header / body size, no
// recursion, no unbounded buffering, and every malformed input is answered
// with a definite 4xx status — never a crash, never a hang (the
// malformed-request corpus in tests/http_parser_test.cc enforces this).

// One parsed request. Strings are owned copies — the parser's buffer is
// recycled across keep-alive requests.
struct HttpRequest {
  std::string method;   // "GET", "HEAD", ... (verbatim token)
  std::string target;   // raw request target, e.g. "/v1/men2ent?mention=x"
  std::string path;     // percent-decoded path component
  // Percent-decoded query parameters, in order of appearance.
  std::vector<std::pair<std::string, std::string>> params;
  int version_minor = 1;  // HTTP/1.<minor>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  // First value of header `name` (ASCII case-insensitive), or "" if absent.
  std::string_view Header(std::string_view name) const;
  // First value of query parameter `key`, or `fallback` if absent.
  std::string_view Param(std::string_view key,
                         std::string_view fallback = "") const;
  bool HasParam(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  // Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  // Force "Connection: close" regardless of what the client asked for.
  bool close = false;
};

// Standard reason phrase for `status` ("OK", "Too Many Requests", ...).
const char* ReasonPhrase(int status);

// Serializes `response` to wire format. `keep_alive` reflects what the
// connection will actually do (it is ANDed with !response.close);
// `head_only` omits the body (HEAD requests) but keeps Content-Length.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive,
                              bool head_only);

// Percent-decodes `in` into `*out` ('+' becomes a space, %XX must be two
// hex digits). Returns false on a malformed escape — the caller answers 400.
bool PercentDecode(std::string_view in, std::string* out);

// Percent-encodes everything outside the RFC 3986 unreserved set, so any
// byte string (e.g. a UTF-8 Chinese mention) survives a query parameter.
std::string PercentEncode(std::string_view s);

// Incremental HTTP/1.1 request parser. Feed() bytes as they arrive off the
// socket (any split, byte-at-a-time included); once it returns kComplete,
// request() is valid and the unconsumed remainder (pipelined requests) stays
// buffered — Reset() starts parsing the next request from it. On kError,
// error_status() is the 4xx to answer before closing the connection.
class RequestParser {
 public:
  struct Limits {
    size_t max_request_line = 8192;   // bytes, incl. CRLF -> 431 when over
    size_t max_header_bytes = 16384;  // all header lines together -> 431
    size_t max_headers = 100;         // header count -> 431
    size_t max_body_bytes = 65536;    // Content-Length cap -> 413
  };

  enum class State { kNeedMore, kComplete, kError };

  RequestParser();
  explicit RequestParser(const Limits& limits);

  // Appends `data` to the internal buffer and advances the parse.
  State Feed(std::string_view data);

  // Re-examines the buffer without new input (used after Reset to surface
  // an already-buffered pipelined request).
  State Poll();

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  // Discards the completed request and starts parsing the next one from any
  // buffered remainder. Only meaningful in kComplete.
  void Reset();

  // True when a request is mid-parse (bytes buffered but not complete) —
  // drain uses this to distinguish idle keep-alive connections from
  // connections owed a response.
  bool HasPartialRequest() const {
    return state_ == State::kNeedMore && !buffer_.empty();
  }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody, kDone };

  State Advance();
  State Fail(int status, std::string message);
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  // Validates headers once they are all in (Host, Content-Length, ...).
  bool FinishHeaders();

  Limits limits_;
  std::string buffer_;
  size_t pos_ = 0;  // parse cursor into buffer_
  Phase phase_ = Phase::kRequestLine;
  State state_ = State::kNeedMore;
  HttpRequest request_;
  size_t header_bytes_ = 0;
  size_t body_length_ = 0;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_HTTP_H_
