#include "server/service.h"

#include <string>
#include <utility>

#include "obs/export.h"
#include "util/json.h"
#include "util/strings.h"

namespace cnpb::server {

namespace {

using util::JsonString;
using util::JsonUInt;

// Query latency at the HTTP layer is sampled like the ApiService's own
// (1-in-64 here: wire requests are ~1000x rarer than in-process calls in
// the benches, so a denser sample still costs nothing measurable).
constexpr uint32_t kLatencySampleMask = 63;

// Upper bound on items per batch request: bounds per-request work and
// response size the same way parser limits bound the request itself.
constexpr size_t kMaxBatchItems = 256;

bool SampleLatency() {
  thread_local uint32_t tick = 0;
  return (++tick & kLatencySampleMask) == 0;
}

// Strict limit=N parse shared by /v1/getEntity and its batch form: an
// integer in [1, 100000], digits only — "+5" and "%205" (leading space) are
// 400s, per the documented contract.
bool ParseLimit(std::string_view raw, size_t* limit) {
  uint64_t parsed = 0;
  if (!util::ParseUint64(raw, &parsed) || parsed == 0 || parsed > 100000) {
    return false;
  }
  *limit = static_cast<size_t>(parsed);
  return true;
}

bool ParseTransitive(const HttpRequest& request) {
  const std::string_view raw = request.Param("transitive", "0");
  return raw == "1" || raw == "true";
}

bool HasVersionHeader(const HttpResponse& response) {
  for (const auto& [name, value] : response.headers) {
    if (name == ApiEndpoints::kVersionHeader) return true;
  }
  return false;
}

void StampVersion(HttpResponse* response, uint64_t version) {
  response->headers.emplace_back(ApiEndpoints::kVersionHeader,
                                 std::to_string(version));
}

}  // namespace

ApiEndpoints::ApiEndpoints(taxonomy::ApiService* api)
    : api_(api), started_(std::chrono::steady_clock::now()) {}

ApiEndpoints::ApiEndpoints(taxonomy::ApiService* api,
                           const ResultCache::Config& cache_config)
    : api_(api),
      cache_(std::make_unique<ResultCache>(cache_config)),
      started_(std::chrono::steady_clock::now()) {}

HttpServer::Handler ApiEndpoints::AsHandler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

int ApiEndpoints::HttpStatusForCode(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk:                return 200;
    case util::StatusCode::kInvalidArgument:   return 400;
    case util::StatusCode::kNotFound:          return 404;
    case util::StatusCode::kResourceExhausted: return 429;
    case util::StatusCode::kDeadlineExceeded:  return 504;
    case util::StatusCode::kIoError:           return 503;
    case util::StatusCode::kDataLoss:          return 503;
    default:                                   return 500;
  }
}

HttpResponse ApiEndpoints::ErrorResponse(int status, util::StatusCode code,
                                         const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = std::string("{\"error\":{\"code\":") +
                  JsonString(util::StatusCodeName(code)) +
                  ",\"message\":" + JsonString(message) + "}}\n";
  if (status == 429) {
    // Shed load is transient by construction (in-flight cap); tell clients
    // when to come back instead of letting them hammer the retry loop.
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

HttpResponse ApiEndpoints::StatusResponse(const util::Status& status) {
  return ErrorResponse(HttpStatusForCode(status.code()), status.code(),
                       status.message());
}

template <typename Compute>
HttpResponse ApiEndpoints::Cached(std::string_view endpoint,
                                  std::string_view arg,
                                  std::string_view options,
                                  Compute&& compute) {
  if (cache_ == nullptr) {
    uint64_t resolved_version = 0;
    HttpResponse response = compute(&resolved_version);
    if (resolved_version != 0) StampVersion(&response, resolved_version);
    return response;
  }
  const std::string key = ResultCache::Key(endpoint, arg, options);
  ResultCache::CachedResponse hit;
  if (cache_->Lookup(key, api_->version(), &hit)) {
    // Serving a version-V body while V is (or moments ago was) current is
    // indistinguishable from the request having arrived earlier: the stamp
    // inside the body still names the snapshot the data came from.
    HttpResponse response;
    response.status = hit.status;
    response.body = std::move(hit.body);
    response.headers.emplace_back("X-Cache", "hit");
    StampVersion(&response, hit.version);
    return response;
  }
  uint64_t resolved_version = 0;
  HttpResponse response = compute(&resolved_version);
  if (resolved_version != 0) {
    // Only snapshot-derived answers are cacheable (compute signals that by
    // setting the version): transient errors (429/503/504) and malformed
    // arguments must be re-evaluated per request.
    cache_->Insert(key, resolved_version, response.status, response.body);
    response.headers.emplace_back("X-Cache", "miss");
    StampVersion(&response, resolved_version);
  }
  return response;
}

HttpResponse ApiEndpoints::Handle(const HttpRequest& request) {
  const bool is_batch = request.path == "/v1/men2ent_batch" ||
                        request.path == "/v1/getConcept_batch" ||
                        request.path == "/v1/getEntity_batch";
  const bool method_ok =
      request.method == "GET" || request.method == "HEAD" ||
      (is_batch && request.method == "POST");
  if (!method_ok) {
    req_other_->Increment();
    resp_4xx_->Increment();
    HttpResponse response = ErrorResponse(
        405, util::StatusCode::kInvalidArgument,
        "method not allowed: " + request.method);
    response.headers.emplace_back("Allow",
                                  is_batch ? "GET, HEAD, POST" : "GET, HEAD");
    return response;
  }
  HttpResponse response;
  if (request.path == "/v1/men2ent") {
    req_men2ent_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_men2ent_ : nullptr);
    response = Men2Ent(request);
  } else if (request.path == "/v1/getConcept") {
    req_get_concept_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_concept_ : nullptr);
    response = GetConcept(request);
  } else if (request.path == "/v1/getEntity") {
    req_get_entity_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_entity_ : nullptr);
    response = GetEntity(request);
  } else if (request.path == "/v1/men2ent_batch") {
    req_men2ent_batch_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_men2ent_ : nullptr);
    response = Men2EntBatch(request);
  } else if (request.path == "/v1/getConcept_batch") {
    req_get_concept_batch_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_concept_ : nullptr);
    response = GetConceptBatch(request);
  } else if (request.path == "/v1/getEntity_batch") {
    req_get_entity_batch_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_entity_ : nullptr);
    response = GetEntityBatch(request);
  } else if (request.path == "/healthz") {
    req_healthz_->Increment();
    response = Healthz();
  } else if (request.path == "/metrics") {
    req_metrics_->Increment();
    response = Metrics();
  } else {
    req_other_->Increment();
    response = ErrorResponse(404, util::StatusCode::kNotFound,
                             "no such endpoint: " + request.path);
  }
  if (response.status >= 500) {
    resp_5xx_->Increment();
  } else if (response.status >= 400) {
    resp_4xx_->Increment();
    if (response.status == 429) resp_429_->Increment();
  } else {
    resp_2xx_->Increment();
  }
  // Snapshot-derived answers stamped their pinned version above; everything
  // else (errors, health, metrics, 400s) reports the currently-served one,
  // so the router always has a generation to reason about.
  if (!HasVersionHeader(response)) StampVersion(&response, api_->version());
  return response;
}

HttpResponse ApiEndpoints::Men2Ent(const HttpRequest& request) {
  if (!request.HasParam("mention")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: mention");
  }
  const std::string_view mention = request.Param("mention");
  return Cached("men2ent", mention, {}, [&](uint64_t* resolved_version) {
    const util::Result<taxonomy::ApiService::Men2EntResolved> result =
        api_->TryMen2EntResolved(mention);
    if (!result.ok()) return StatusResponse(result.status());
    *resolved_version = result->version;
    if (result->entities.empty()) {
      // Unlike getConcept/getEntity (where a known term can legitimately
      // have an empty answer), a mention resolving to nothing means the
      // mention itself is unknown. Still snapshot-derived, still cacheable.
      return ErrorResponse(404, util::StatusCode::kNotFound,
                           "unknown mention: " + std::string(mention));
    }
    std::string body = "{\"mention\":" + JsonString(mention) +
                       ",\"version\":" + JsonUInt(result->version) +
                       ",\"entities\":[";
    bool first = true;
    for (const auto& entity : result->entities) {
      if (!first) body += ',';
      first = false;
      body += "{\"id\":" + JsonUInt(entity.id) +
              ",\"name\":" + JsonString(entity.name) +
              ",\"num_hypernyms\":" + JsonUInt(entity.num_hypernyms) + "}";
    }
    body += "]}\n";
    HttpResponse response;
    response.body = std::move(body);
    return response;
  });
}

HttpResponse ApiEndpoints::GetConcept(const HttpRequest& request) {
  if (!request.HasParam("entity")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: entity");
  }
  const std::string_view entity = request.Param("entity");
  const bool transitive = ParseTransitive(request);
  return Cached("getConcept", entity, transitive ? "|t1" : "|t0",
                [&](uint64_t* resolved_version) {
    const util::Result<taxonomy::ApiService::NamesResolved> result =
        api_->TryGetConceptResolved(entity, transitive);
    if (!result.ok()) return StatusResponse(result.status());
    *resolved_version = result->version;
    // The stamp comes from the snapshot that resolved the names — reading
    // api_->version() here instead would race a concurrent publish and
    // claim a version this data was never resolved against.
    std::string body = "{\"entity\":" + JsonString(entity) +
                       ",\"version\":" + JsonUInt(result->version) +
                       ",\"transitive\":" +
                       (transitive ? "true" : "false") + ",\"concepts\":[";
    bool first = true;
    for (const std::string& name : result->names) {
      if (!first) body += ',';
      first = false;
      body += JsonString(name);
    }
    body += "]}\n";
    HttpResponse response;
    response.body = std::move(body);
    return response;
  });
}

HttpResponse ApiEndpoints::GetEntity(const HttpRequest& request) {
  if (!request.HasParam("concept")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: concept");
  }
  const std::string_view concept_name = request.Param("concept");
  size_t limit = 100;
  if (request.HasParam("limit") &&
      !ParseLimit(request.Param("limit"), &limit)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "limit must be an integer in [1, 100000]");
  }
  return Cached("getEntity", concept_name, "|l" + std::to_string(limit),
                [&](uint64_t* resolved_version) {
    const util::Result<taxonomy::ApiService::NamesResolved> result =
        api_->TryGetEntityResolved(concept_name, limit);
    if (!result.ok()) return StatusResponse(result.status());
    *resolved_version = result->version;
    std::string body = "{\"concept\":" + JsonString(concept_name) +
                       ",\"version\":" + JsonUInt(result->version) +
                       ",\"entities\":[";
    bool first = true;
    for (const std::string& name : result->names) {
      if (!first) body += ',';
      first = false;
      body += JsonString(name);
    }
    body += "]}\n";
    HttpResponse response;
    response.body = std::move(body);
    return response;
  });
}

bool ApiEndpoints::BatchItems(const HttpRequest& request,
                              std::string_view param,
                              std::vector<std::string>* items,
                              HttpResponse* error) {
  if (request.method == "POST") {
    // One term per line, raw UTF-8, no escaping; blank lines are skipped.
    for (const std::string& line : util::Split(request.body, '\n')) {
      std::string_view term = line;
      if (!term.empty() && term.back() == '\r') term.remove_suffix(1);
      if (!term.empty()) items->emplace_back(term);
    }
  } else {
    for (const auto& [key, value] : request.params) {
      if (key == param) items->push_back(value);
    }
  }
  if (items->empty()) {
    *error = ErrorResponse(
        400, util::StatusCode::kInvalidArgument,
        "no " + std::string(param) + " given (repeat ?" + std::string(param) +
            "= or POST one per line)");
    return false;
  }
  if (items->size() > kMaxBatchItems) {
    *error = ErrorResponse(
        400, util::StatusCode::kInvalidArgument,
        "batch too large: " + std::to_string(items->size()) + " items (max " +
            std::to_string(kMaxBatchItems) + ")");
    return false;
  }
  batch_items_->Increment(items->size());
  return true;
}

HttpResponse ApiEndpoints::Men2EntBatch(const HttpRequest& request) {
  std::vector<std::string> mentions;
  HttpResponse error;
  if (!BatchItems(request, "mention", &mentions, &error)) return error;
  const util::Result<taxonomy::ApiService::Men2EntBatchResolved> result =
      api_->TryMen2EntBatchResolved(mentions);
  if (!result.ok()) return StatusResponse(result.status());
  std::string body = "{\"version\":" + JsonUInt(result->version) +
                     ",\"count\":" + JsonUInt(mentions.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < mentions.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"mention\":" + JsonString(mentions[i]) + ",\"entities\":[";
    bool first = true;
    for (const auto& entity : result->results[i]) {
      if (!first) body += ',';
      first = false;
      body += "{\"id\":" + JsonUInt(entity.id) +
              ",\"name\":" + JsonString(entity.name) +
              ",\"num_hypernyms\":" + JsonUInt(entity.num_hypernyms) + "}";
    }
    body += "]}";
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  StampVersion(&response, result->version);
  return response;
}

HttpResponse ApiEndpoints::GetConceptBatch(const HttpRequest& request) {
  std::vector<std::string> entities;
  HttpResponse error;
  if (!BatchItems(request, "entity", &entities, &error)) return error;
  const bool transitive = ParseTransitive(request);
  const util::Result<taxonomy::ApiService::NamesBatchResolved> result =
      api_->TryGetConceptBatchResolved(entities, transitive);
  if (!result.ok()) return StatusResponse(result.status());
  std::string body = "{\"version\":" + JsonUInt(result->version) +
                     ",\"transitive\":" + (transitive ? "true" : "false") +
                     ",\"count\":" + JsonUInt(entities.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < entities.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"entity\":" + JsonString(entities[i]) + ",\"concepts\":[";
    bool first = true;
    for (const std::string& name : result->results[i]) {
      if (!first) body += ',';
      first = false;
      body += JsonString(name);
    }
    body += "]}";
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  StampVersion(&response, result->version);
  return response;
}

HttpResponse ApiEndpoints::GetEntityBatch(const HttpRequest& request) {
  std::vector<std::string> concepts;
  HttpResponse error;
  if (!BatchItems(request, "concept", &concepts, &error)) return error;
  size_t limit = 100;
  if (request.HasParam("limit") &&
      !ParseLimit(request.Param("limit"), &limit)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "limit must be an integer in [1, 100000]");
  }
  const util::Result<taxonomy::ApiService::NamesBatchResolved> result =
      api_->TryGetEntityBatchResolved(concepts, limit);
  if (!result.ok()) return StatusResponse(result.status());
  std::string body = "{\"version\":" + JsonUInt(result->version) +
                     ",\"limit\":" + JsonUInt(limit) +
                     ",\"count\":" + JsonUInt(concepts.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < concepts.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"concept\":" + JsonString(concepts[i]) + ",\"entities\":[";
    bool first = true;
    for (const std::string& name : result->results[i]) {
      if (!first) body += ',';
      first = false;
      body += JsonString(name);
    }
    body += "]}";
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  StampVersion(&response, result->version);
  return response;
}

HttpResponse ApiEndpoints::Healthz() {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  HttpResponse response;
  response.body = "{\"status\":\"ok\",\"version\":" +
                  JsonUInt(api_->version()) +
                  ",\"uptime_seconds\":" + util::JsonNumber(uptime) + "}\n";
  return response;
}

HttpResponse ApiEndpoints::Metrics() {
  // Serving-side gauges (per-version QPS, snapshot age) only exist at
  // export time; sync them before rendering.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  api_->ExportMetrics(&registry);
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::ToPrometheusText(registry);
  return response;
}

}  // namespace cnpb::server
