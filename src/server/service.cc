#include "server/service.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "obs/export.h"
#include "util/json.h"
#include "util/strings.h"

namespace cnpb::server {

namespace {

using util::JsonString;
using util::JsonUInt;

// Query latency at the HTTP layer is sampled like the ApiService's own
// (1-in-64 here: wire requests are ~1000x rarer than in-process calls in
// the benches, so a denser sample still costs nothing measurable).
constexpr uint32_t kLatencySampleMask = 63;

bool SampleLatency() {
  thread_local uint32_t tick = 0;
  return (++tick & kLatencySampleMask) == 0;
}

}  // namespace

ApiEndpoints::ApiEndpoints(taxonomy::ApiService* api)
    : api_(api), started_(std::chrono::steady_clock::now()) {}

HttpServer::Handler ApiEndpoints::AsHandler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

int ApiEndpoints::HttpStatusForCode(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk:                return 200;
    case util::StatusCode::kInvalidArgument:   return 400;
    case util::StatusCode::kNotFound:          return 404;
    case util::StatusCode::kResourceExhausted: return 429;
    case util::StatusCode::kDeadlineExceeded:  return 504;
    case util::StatusCode::kIoError:           return 503;
    case util::StatusCode::kDataLoss:          return 503;
    default:                                   return 500;
  }
}

HttpResponse ApiEndpoints::ErrorResponse(int status, util::StatusCode code,
                                         const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = std::string("{\"error\":{\"code\":") +
                  JsonString(util::StatusCodeName(code)) +
                  ",\"message\":" + JsonString(message) + "}}\n";
  if (status == 429) {
    // Shed load is transient by construction (in-flight cap); tell clients
    // when to come back instead of letting them hammer the retry loop.
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

HttpResponse ApiEndpoints::StatusResponse(const util::Status& status) {
  return ErrorResponse(HttpStatusForCode(status.code()), status.code(),
                       status.message());
}

HttpResponse ApiEndpoints::Handle(const HttpRequest& request) {
  if (request.method != "GET" && request.method != "HEAD") {
    req_other_->Increment();
    resp_4xx_->Increment();
    HttpResponse response = ErrorResponse(
        405, util::StatusCode::kInvalidArgument,
        "method not allowed: " + request.method);
    response.headers.emplace_back("Allow", "GET, HEAD");
    return response;
  }
  HttpResponse response;
  if (request.path == "/v1/men2ent") {
    req_men2ent_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_men2ent_ : nullptr);
    response = Men2Ent(request);
  } else if (request.path == "/v1/getConcept") {
    req_get_concept_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_concept_ : nullptr);
    response = GetConcept(request);
  } else if (request.path == "/v1/getEntity") {
    req_get_entity_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_entity_ : nullptr);
    response = GetEntity(request);
  } else if (request.path == "/healthz") {
    req_healthz_->Increment();
    response = Healthz();
  } else if (request.path == "/metrics") {
    req_metrics_->Increment();
    response = Metrics();
  } else {
    req_other_->Increment();
    response = ErrorResponse(404, util::StatusCode::kNotFound,
                             "no such endpoint: " + request.path);
  }
  if (response.status >= 500) {
    resp_5xx_->Increment();
  } else if (response.status >= 400) {
    resp_4xx_->Increment();
    if (response.status == 429) resp_429_->Increment();
  } else {
    resp_2xx_->Increment();
  }
  return response;
}

HttpResponse ApiEndpoints::Men2Ent(const HttpRequest& request) {
  if (!request.HasParam("mention")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: mention");
  }
  const std::string_view mention = request.Param("mention");
  const util::Result<taxonomy::ApiService::Men2EntResolved> result =
      api_->TryMen2EntResolved(mention);
  if (!result.ok()) return StatusResponse(result.status());
  if (result->entities.empty()) {
    // Unlike getConcept/getEntity (where a known term can legitimately have
    // an empty answer), a mention resolving to nothing means the mention
    // itself is unknown.
    return ErrorResponse(404, util::StatusCode::kNotFound,
                         "unknown mention: " + std::string(mention));
  }
  std::string body = "{\"mention\":" + JsonString(mention) +
                     ",\"version\":" + JsonUInt(result->version) +
                     ",\"entities\":[";
  bool first = true;
  for (const auto& entity : result->entities) {
    if (!first) body += ',';
    first = false;
    body += "{\"id\":" + JsonUInt(entity.id) +
            ",\"name\":" + JsonString(entity.name) +
            ",\"num_hypernyms\":" + JsonUInt(entity.num_hypernyms) + "}";
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse ApiEndpoints::GetConcept(const HttpRequest& request) {
  if (!request.HasParam("entity")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: entity");
  }
  const std::string_view entity = request.Param("entity");
  const std::string_view transitive_raw = request.Param("transitive", "0");
  const bool transitive = transitive_raw == "1" || transitive_raw == "true";
  const util::Result<std::vector<std::string>> result =
      api_->TryGetConcept(entity, transitive);
  if (!result.ok()) return StatusResponse(result.status());
  std::string body = "{\"entity\":" + JsonString(entity) +
                     ",\"version\":" + JsonUInt(api_->version()) +
                     ",\"transitive\":" +
                     (transitive ? "true" : "false") + ",\"concepts\":[";
  bool first = true;
  for (const std::string& name : *result) {
    if (!first) body += ',';
    first = false;
    body += JsonString(name);
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse ApiEndpoints::GetEntity(const HttpRequest& request) {
  if (!request.HasParam("concept")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: concept");
  }
  const std::string_view concept_name = request.Param("concept");
  size_t limit = 100;
  if (request.HasParam("limit")) {
    const std::string limit_raw(request.Param("limit"));
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(limit_raw.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || limit_raw.empty() ||
        parsed == 0 || parsed > 100000) {
      return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                           "limit must be an integer in [1, 100000]");
    }
    limit = static_cast<size_t>(parsed);
  }
  const util::Result<std::vector<std::string>> result =
      api_->TryGetEntity(concept_name, limit);
  if (!result.ok()) return StatusResponse(result.status());
  std::string body = "{\"concept\":" + JsonString(concept_name) +
                     ",\"version\":" + JsonUInt(api_->version()) +
                     ",\"entities\":[";
  bool first = true;
  for (const std::string& name : *result) {
    if (!first) body += ',';
    first = false;
    body += JsonString(name);
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse ApiEndpoints::Healthz() {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  HttpResponse response;
  response.body = "{\"status\":\"ok\",\"version\":" +
                  JsonUInt(api_->version()) +
                  ",\"uptime_seconds\":" + util::JsonNumber(uptime) + "}\n";
  return response;
}

HttpResponse ApiEndpoints::Metrics() {
  // Serving-side gauges (per-version QPS, snapshot age) only exist at
  // export time; sync them before rendering.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  api_->ExportMetrics(&registry);
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::ToPrometheusText(registry);
  return response;
}

}  // namespace cnpb::server
