#include "server/service.h"

#include <string>
#include <utility>

#include "obs/export.h"
#include "util/json.h"
#include "util/strings.h"

namespace cnpb::server {

namespace {

using util::JsonString;
using util::JsonUInt;

// Query latency at the HTTP layer is sampled like the ApiService's own
// (1-in-64 here: wire requests are ~1000x rarer than in-process calls in
// the benches, so a denser sample still costs nothing measurable).
constexpr uint32_t kLatencySampleMask = 63;

// Upper bound on items per batch request: bounds per-request work and
// response size the same way parser limits bound the request itself.
constexpr size_t kMaxBatchItems = 256;

bool SampleLatency() {
  thread_local uint32_t tick = 0;
  return (++tick & kLatencySampleMask) == 0;
}

// Strict limit=N parse shared by /v1/getEntity and its batch form: an
// integer in [1, 100000], digits only — "+5" and "%205" (leading space) are
// 400s, per the documented contract.
bool ParseLimit(std::string_view raw, size_t* limit) {
  uint64_t parsed = 0;
  if (!util::ParseUint64(raw, &parsed) || parsed == 0 || parsed > 100000) {
    return false;
  }
  *limit = static_cast<size_t>(parsed);
  return true;
}

bool ParseTransitive(const HttpRequest& request) {
  const std::string_view raw = request.Param("transitive", "0");
  return raw == "1" || raw == "true";
}

// Reasoning knobs, strict like ParseLimit: max_depth in [1, 16], k in
// [1, 100] (the ReasonService limits' ceilings).
bool ParseMaxDepth(std::string_view raw, size_t* depth) {
  uint64_t parsed = 0;
  if (!util::ParseUint64(raw, &parsed) || parsed == 0 || parsed > 16) {
    return false;
  }
  *depth = static_cast<size_t>(parsed);
  return true;
}

bool ParseTopK(std::string_view raw, size_t* k) {
  uint64_t parsed = 0;
  if (!util::ParseUint64(raw, &parsed) || parsed == 0 || parsed > 100) {
    return false;
  }
  *k = static_cast<size_t>(parsed);
  return true;
}

// Length-prefixes a second query argument for use inside a cache-key
// options string, so no two (arg2, trailing-options) pairs collide.
std::string PackArg(std::string_view arg) {
  return std::to_string(arg.size()) + ":" + std::string(arg);
}

// The shared per-item fragments (see ItemFragment in service.h): the inner
// JSON array both the single-shot envelope and the batch item envelope
// splice in, byte-identical between the two paths.
std::string Men2EntFragment(
    const std::vector<taxonomy::ApiService::ResolvedEntity>& entities) {
  std::string out = "[";
  bool first = true;
  for (const auto& entity : entities) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + JsonUInt(entity.id) +
           ",\"name\":" + JsonString(entity.name) +
           ",\"num_hypernyms\":" + JsonUInt(entity.num_hypernyms) + "}";
  }
  out += "]";
  return out;
}

std::string NamesFragment(const std::vector<std::string>& names) {
  std::string out = "[";
  bool first = true;
  for (const std::string& name : names) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name);
  }
  out += "]";
  return out;
}

std::string ScoredNamesFragment(
    const std::vector<cnpb::reason::ReasonService::ScoredName>& results) {
  std::string out = "[";
  bool first = true;
  for (const auto& result : results) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + JsonString(result.name) +
           ",\"score\":" + util::JsonNumber(result.score) +
           ",\"tie\":" + util::JsonNumber(result.tie) + "}";
  }
  out += "]";
  return out;
}

bool HasVersionHeader(const HttpResponse& response) {
  for (const auto& [name, value] : response.headers) {
    if (name == ApiEndpoints::kVersionHeader) return true;
  }
  return false;
}

void StampVersion(HttpResponse* response, uint64_t version) {
  response->headers.emplace_back(ApiEndpoints::kVersionHeader,
                                 std::to_string(version));
}

}  // namespace

ApiEndpoints::ApiEndpoints(taxonomy::ApiService* api)
    : api_(api), reason_(api), started_(std::chrono::steady_clock::now()) {}

ApiEndpoints::ApiEndpoints(taxonomy::ApiService* api,
                           const ResultCache::Config& cache_config)
    : api_(api),
      reason_(api),
      cache_(std::make_unique<ResultCache>(cache_config)),
      started_(std::chrono::steady_clock::now()) {}

HttpServer::Handler ApiEndpoints::AsHandler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

int ApiEndpoints::HttpStatusForCode(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk:                return 200;
    case util::StatusCode::kInvalidArgument:   return 400;
    case util::StatusCode::kNotFound:          return 404;
    case util::StatusCode::kResourceExhausted: return 429;
    case util::StatusCode::kDeadlineExceeded:  return 504;
    case util::StatusCode::kIoError:           return 503;
    case util::StatusCode::kDataLoss:          return 503;
    default:                                   return 500;
  }
}

HttpResponse ApiEndpoints::ErrorResponse(int status, util::StatusCode code,
                                         const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = std::string("{\"error\":{\"code\":") +
                  JsonString(util::StatusCodeName(code)) +
                  ",\"message\":" + JsonString(message) + "}}\n";
  if (status == 429) {
    // Shed load is transient by construction (in-flight cap); tell clients
    // when to come back instead of letting them hammer the retry loop.
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

HttpResponse ApiEndpoints::StatusResponse(const util::Status& status) {
  return ErrorResponse(HttpStatusForCode(status.code()), status.code(),
                       status.message());
}

template <typename Compute>
HttpResponse ApiEndpoints::Cached(std::string_view endpoint,
                                  std::string_view arg,
                                  std::string_view options,
                                  Compute&& compute) {
  if (cache_ == nullptr) {
    uint64_t resolved_version = 0;
    HttpResponse response = compute(&resolved_version);
    if (resolved_version != 0) StampVersion(&response, resolved_version);
    return response;
  }
  const std::string key = ResultCache::Key(endpoint, arg, options);
  ResultCache::CachedResponse hit;
  if (cache_->Lookup(key, api_->version(), &hit)) {
    // Serving a version-V body while V is (or moments ago was) current is
    // indistinguishable from the request having arrived earlier: the stamp
    // inside the body still names the snapshot the data came from.
    HttpResponse response;
    response.status = hit.status;
    response.body = std::move(hit.body);
    response.headers.emplace_back("X-Cache", "hit");
    StampVersion(&response, hit.version);
    return response;
  }
  uint64_t resolved_version = 0;
  HttpResponse response = compute(&resolved_version);
  if (resolved_version != 0) {
    // Only snapshot-derived answers are cacheable (compute signals that by
    // setting the version): transient errors (429/503/504) and malformed
    // arguments must be re-evaluated per request.
    cache_->Insert(key, resolved_version, response.status, response.body);
    response.headers.emplace_back("X-Cache", "miss");
    StampVersion(&response, resolved_version);
  }
  return response;
}

template <typename Resolve>
ApiEndpoints::BatchOutcome ApiEndpoints::ResolveBatchCached(
    const std::vector<std::string>& items, std::string_view endpoint,
    std::string_view options, Resolve&& resolve) {
  BatchOutcome out;
  out.fragments.resize(items.size());
  std::vector<char> have(items.size(), 0);
  uint64_t hit_version = 0;
  if (cache_ != nullptr) {
    // One version read for the whole sweep: every hit carries exactly this
    // version (Lookup only hits on equality), so the hits are mutually
    // coherent by construction.
    const uint64_t lookup_version = api_->version();
    for (size_t i = 0; i < items.size(); ++i) {
      ResultCache::CachedResponse hit;
      if (cache_->Lookup(ResultCache::Key(endpoint, items[i], options),
                         lookup_version, &hit)) {
        out.fragments[i] = std::move(hit.body);
        have[i] = 1;
        ++out.hits;
        hit_version = hit.version;
      }
    }
  }
  std::vector<std::string> misses;
  std::vector<size_t> miss_index;
  for (size_t i = 0; i < items.size(); ++i) {
    if (have[i] == 0) {
      misses.push_back(items[i]);
      miss_index.push_back(i);
    }
  }
  if (misses.empty()) {
    out.version = hit_version;
    return out;
  }
  auto result = resolve(misses);
  if (!result.ok()) {
    out.failed = true;
    out.error = StatusResponse(result.status());
    return out;
  }
  if (out.hits > 0 && result->first != hit_version) {
    // A publish landed between the cache sweep and the resolve: the hits
    // are stamped with the retired version, the misses with the new one.
    // Re-resolve the whole batch against the current snapshot so the
    // response keeps its single-version contract (rare — publish-frequency
    // rare — so the double resolve does not matter).
    auto redo = resolve(items);
    if (!redo.ok()) {
      out.failed = true;
      out.error = StatusResponse(redo.status());
      return out;
    }
    out.hits = 0;
    out.version = redo->first;
    for (size_t i = 0; i < items.size(); ++i) {
      ItemFragment& item = redo->second[i];
      if (cache_ != nullptr) {
        cache_->Insert(ResultCache::Key(endpoint, items[i], options),
                       out.version, item.status, item.fragment);
      }
      out.fragments[i] = std::move(item.fragment);
    }
    return out;
  }
  out.version = result->first;
  for (size_t j = 0; j < miss_index.size(); ++j) {
    ItemFragment& item = result->second[j];
    if (cache_ != nullptr) {
      cache_->Insert(ResultCache::Key(endpoint, misses[j], options),
                     out.version, item.status, item.fragment);
    }
    out.fragments[miss_index[j]] = std::move(item.fragment);
  }
  return out;
}

HttpResponse ApiEndpoints::Handle(const HttpRequest& request) {
  const bool is_batch = request.path == "/v1/men2ent_batch" ||
                        request.path == "/v1/getConcept_batch" ||
                        request.path == "/v1/getEntity_batch";
  const bool method_ok =
      request.method == "GET" || request.method == "HEAD" ||
      (is_batch && request.method == "POST");
  if (!method_ok) {
    req_other_->Increment();
    resp_4xx_->Increment();
    HttpResponse response = ErrorResponse(
        405, util::StatusCode::kInvalidArgument,
        "method not allowed: " + request.method);
    response.headers.emplace_back("Allow",
                                  is_batch ? "GET, HEAD, POST" : "GET, HEAD");
    return response;
  }
  HttpResponse response;
  if (request.path == "/v1/men2ent") {
    req_men2ent_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_men2ent_ : nullptr);
    response = Men2Ent(request);
  } else if (request.path == "/v1/getConcept") {
    req_get_concept_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_concept_ : nullptr);
    response = GetConcept(request);
  } else if (request.path == "/v1/getEntity") {
    req_get_entity_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_entity_ : nullptr);
    response = GetEntity(request);
  } else if (request.path == "/v1/men2ent_batch") {
    req_men2ent_batch_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_men2ent_ : nullptr);
    response = Men2EntBatch(request);
  } else if (request.path == "/v1/getConcept_batch") {
    req_get_concept_batch_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_concept_ : nullptr);
    response = GetConceptBatch(request);
  } else if (request.path == "/v1/getEntity_batch") {
    req_get_entity_batch_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_get_entity_ : nullptr);
    response = GetEntityBatch(request);
  } else if (request.path == "/v1/isa") {
    req_isa_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_reason_ : nullptr);
    response = Isa(request);
  } else if (request.path == "/v1/lca") {
    req_lca_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_reason_ : nullptr);
    response = Lca(request);
  } else if (request.path == "/v1/similar") {
    req_similar_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_reason_ : nullptr);
    response = Similar(request);
  } else if (request.path == "/v1/expand") {
    req_expand_->Increment();
    obs::ScopedTimer timer(SampleLatency() ? lat_reason_ : nullptr);
    response = Expand(request);
  } else if (request.path == "/healthz") {
    req_healthz_->Increment();
    response = Healthz();
  } else if (request.path == "/metrics") {
    req_metrics_->Increment();
    response = Metrics();
  } else {
    req_other_->Increment();
    response = ErrorResponse(404, util::StatusCode::kNotFound,
                             "no such endpoint: " + request.path);
  }
  if (response.status >= 500) {
    resp_5xx_->Increment();
  } else if (response.status >= 400) {
    resp_4xx_->Increment();
    if (response.status == 429) resp_429_->Increment();
  } else {
    resp_2xx_->Increment();
  }
  // Snapshot-derived answers stamped their pinned version above; everything
  // else (errors, health, metrics, 400s) reports the currently-served one,
  // so the router always has a generation to reason about.
  if (!HasVersionHeader(response)) StampVersion(&response, api_->version());
  return response;
}

HttpResponse ApiEndpoints::Men2Ent(const HttpRequest& request) {
  if (!request.HasParam("mention")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: mention");
  }
  const std::string_view mention = request.Param("mention");
  // The cache entry is the per-item *fragment* (plus the single-shot
  // status), not the whole body, so batch requests for the same mention at
  // the same version hit this entry and vice versa.
  const auto envelope = [&](uint64_t version, int status,
                            const std::string& fragment) {
    if (status == 404) {
      // Unlike getConcept/getEntity (where a known term can legitimately
      // have an empty answer), a mention resolving to nothing means the
      // mention itself is unknown. Still snapshot-derived, still cacheable.
      return ErrorResponse(404, util::StatusCode::kNotFound,
                           "unknown mention: " + std::string(mention));
    }
    HttpResponse response;
    response.body = "{\"mention\":" + JsonString(mention) +
                    ",\"version\":" + JsonUInt(version) +
                    ",\"entities\":" + fragment + "}\n";
    return response;
  };
  if (cache_ != nullptr) {
    ResultCache::CachedResponse hit;
    if (cache_->Lookup(ResultCache::Key("men2ent", mention, {}),
                       api_->version(), &hit)) {
      HttpResponse response = envelope(hit.version, hit.status, hit.body);
      response.headers.emplace_back("X-Cache", "hit");
      StampVersion(&response, hit.version);
      return response;
    }
  }
  const util::Result<taxonomy::ApiService::Men2EntResolved> result =
      api_->TryMen2EntResolved(mention);
  if (!result.ok()) return StatusResponse(result.status());
  const int status = result->entities.empty() ? 404 : 200;
  const std::string fragment = Men2EntFragment(result->entities);
  if (cache_ != nullptr) {
    cache_->Insert(ResultCache::Key("men2ent", mention, {}), result->version,
                   status, fragment);
  }
  HttpResponse response = envelope(result->version, status, fragment);
  if (cache_ != nullptr) response.headers.emplace_back("X-Cache", "miss");
  StampVersion(&response, result->version);
  return response;
}

HttpResponse ApiEndpoints::GetConcept(const HttpRequest& request) {
  if (!request.HasParam("entity")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: entity");
  }
  const std::string_view entity = request.Param("entity");
  const bool transitive = ParseTransitive(request);
  const std::string options = transitive ? "|t1" : "|t0";
  const auto envelope = [&](uint64_t version, const std::string& fragment) {
    HttpResponse response;
    // The stamp comes from the snapshot that resolved the names — reading
    // api_->version() here instead would race a concurrent publish and
    // claim a version this data was never resolved against.
    response.body = "{\"entity\":" + JsonString(entity) +
                    ",\"version\":" + JsonUInt(version) +
                    ",\"transitive\":" +
                    std::string(transitive ? "true" : "false") +
                    ",\"concepts\":" + fragment + "}\n";
    return response;
  };
  if (cache_ != nullptr) {
    ResultCache::CachedResponse hit;
    if (cache_->Lookup(ResultCache::Key("getConcept", entity, options),
                       api_->version(), &hit)) {
      HttpResponse response = envelope(hit.version, hit.body);
      response.headers.emplace_back("X-Cache", "hit");
      StampVersion(&response, hit.version);
      return response;
    }
  }
  const util::Result<taxonomy::ApiService::NamesResolved> result =
      api_->TryGetConceptResolved(entity, transitive);
  if (!result.ok()) return StatusResponse(result.status());
  const std::string fragment = NamesFragment(result->names);
  if (cache_ != nullptr) {
    cache_->Insert(ResultCache::Key("getConcept", entity, options),
                   result->version, 200, fragment);
  }
  HttpResponse response = envelope(result->version, fragment);
  if (cache_ != nullptr) response.headers.emplace_back("X-Cache", "miss");
  StampVersion(&response, result->version);
  return response;
}

HttpResponse ApiEndpoints::GetEntity(const HttpRequest& request) {
  if (!request.HasParam("concept")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: concept");
  }
  const std::string_view concept_name = request.Param("concept");
  size_t limit = 100;
  if (request.HasParam("limit") &&
      !ParseLimit(request.Param("limit"), &limit)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "limit must be an integer in [1, 100000]");
  }
  const std::string options = "|l" + std::to_string(limit);
  const auto envelope = [&](uint64_t version, const std::string& fragment) {
    HttpResponse response;
    response.body = "{\"concept\":" + JsonString(concept_name) +
                    ",\"version\":" + JsonUInt(version) +
                    ",\"entities\":" + fragment + "}\n";
    return response;
  };
  if (cache_ != nullptr) {
    ResultCache::CachedResponse hit;
    if (cache_->Lookup(ResultCache::Key("getEntity", concept_name, options),
                       api_->version(), &hit)) {
      HttpResponse response = envelope(hit.version, hit.body);
      response.headers.emplace_back("X-Cache", "hit");
      StampVersion(&response, hit.version);
      return response;
    }
  }
  const util::Result<taxonomy::ApiService::NamesResolved> result =
      api_->TryGetEntityResolved(concept_name, limit);
  if (!result.ok()) return StatusResponse(result.status());
  const std::string fragment = NamesFragment(result->names);
  if (cache_ != nullptr) {
    cache_->Insert(ResultCache::Key("getEntity", concept_name, options),
                   result->version, 200, fragment);
  }
  HttpResponse response = envelope(result->version, fragment);
  if (cache_ != nullptr) response.headers.emplace_back("X-Cache", "miss");
  StampVersion(&response, result->version);
  return response;
}

bool ApiEndpoints::BatchItems(const HttpRequest& request,
                              std::string_view param,
                              std::vector<std::string>* items,
                              HttpResponse* error) {
  if (request.method == "POST") {
    // One term per line, raw UTF-8, no escaping; blank lines are skipped.
    for (const std::string& line : util::Split(request.body, '\n')) {
      std::string_view term = line;
      if (!term.empty() && term.back() == '\r') term.remove_suffix(1);
      if (!term.empty()) items->emplace_back(term);
    }
  } else {
    for (const auto& [key, value] : request.params) {
      if (key == param) items->push_back(value);
    }
  }
  if (items->empty()) {
    *error = ErrorResponse(
        400, util::StatusCode::kInvalidArgument,
        "no " + std::string(param) + " given (repeat ?" + std::string(param) +
            "= or POST one per line)");
    return false;
  }
  if (items->size() > kMaxBatchItems) {
    *error = ErrorResponse(
        400, util::StatusCode::kInvalidArgument,
        "batch too large: " + std::to_string(items->size()) + " items (max " +
            std::to_string(kMaxBatchItems) + ")");
    return false;
  }
  batch_items_->Increment(items->size());
  return true;
}

HttpResponse ApiEndpoints::Men2EntBatch(const HttpRequest& request) {
  std::vector<std::string> mentions;
  HttpResponse error;
  if (!BatchItems(request, "mention", &mentions, &error)) return error;
  BatchOutcome outcome = ResolveBatchCached(
      mentions, "men2ent", {},
      [&](const std::vector<std::string>& subset)
          -> util::Result<std::pair<uint64_t, std::vector<ItemFragment>>> {
        const util::Result<taxonomy::ApiService::Men2EntBatchResolved>
            result = api_->TryMen2EntBatchResolved(subset);
        if (!result.ok()) return result.status();
        std::vector<ItemFragment> fragments;
        fragments.reserve(subset.size());
        for (const auto& entities : result->results) {
          // The single-shot form 404s an unknown mention; record that in
          // the shared entry so it can serve that path too. The batch
          // envelope ignores the status and splices the empty list.
          fragments.push_back(
              {entities.empty() ? 404 : 200, Men2EntFragment(entities)});
        }
        return std::make_pair(result->version, std::move(fragments));
      });
  if (outcome.failed) return outcome.error;
  std::string body = "{\"version\":" + JsonUInt(outcome.version) +
                     ",\"count\":" + JsonUInt(mentions.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < mentions.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"mention\":" + JsonString(mentions[i]) +
            ",\"entities\":" + outcome.fragments[i] + "}";
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  if (cache_ != nullptr) {
    response.headers.emplace_back("X-Cache-Hits",
                                  std::to_string(outcome.hits));
  }
  StampVersion(&response, outcome.version);
  return response;
}

HttpResponse ApiEndpoints::GetConceptBatch(const HttpRequest& request) {
  std::vector<std::string> entities;
  HttpResponse error;
  if (!BatchItems(request, "entity", &entities, &error)) return error;
  const bool transitive = ParseTransitive(request);
  BatchOutcome outcome = ResolveBatchCached(
      entities, "getConcept", transitive ? "|t1" : "|t0",
      [&](const std::vector<std::string>& subset)
          -> util::Result<std::pair<uint64_t, std::vector<ItemFragment>>> {
        const util::Result<taxonomy::ApiService::NamesBatchResolved> result =
            api_->TryGetConceptBatchResolved(subset, transitive);
        if (!result.ok()) return result.status();
        std::vector<ItemFragment> fragments;
        fragments.reserve(subset.size());
        for (const auto& names : result->results) {
          fragments.push_back({200, NamesFragment(names)});
        }
        return std::make_pair(result->version, std::move(fragments));
      });
  if (outcome.failed) return outcome.error;
  std::string body = "{\"version\":" + JsonUInt(outcome.version) +
                     ",\"transitive\":" + (transitive ? "true" : "false") +
                     ",\"count\":" + JsonUInt(entities.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < entities.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"entity\":" + JsonString(entities[i]) +
            ",\"concepts\":" + outcome.fragments[i] + "}";
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  if (cache_ != nullptr) {
    response.headers.emplace_back("X-Cache-Hits",
                                  std::to_string(outcome.hits));
  }
  StampVersion(&response, outcome.version);
  return response;
}

HttpResponse ApiEndpoints::GetEntityBatch(const HttpRequest& request) {
  std::vector<std::string> concepts;
  HttpResponse error;
  if (!BatchItems(request, "concept", &concepts, &error)) return error;
  size_t limit = 100;
  if (request.HasParam("limit") &&
      !ParseLimit(request.Param("limit"), &limit)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "limit must be an integer in [1, 100000]");
  }
  BatchOutcome outcome = ResolveBatchCached(
      concepts, "getEntity", "|l" + std::to_string(limit),
      [&](const std::vector<std::string>& subset)
          -> util::Result<std::pair<uint64_t, std::vector<ItemFragment>>> {
        const util::Result<taxonomy::ApiService::NamesBatchResolved> result =
            api_->TryGetEntityBatchResolved(subset, limit);
        if (!result.ok()) return result.status();
        std::vector<ItemFragment> fragments;
        fragments.reserve(subset.size());
        for (const auto& names : result->results) {
          fragments.push_back({200, NamesFragment(names)});
        }
        return std::make_pair(result->version, std::move(fragments));
      });
  if (outcome.failed) return outcome.error;
  std::string body = "{\"version\":" + JsonUInt(outcome.version) +
                     ",\"limit\":" + JsonUInt(limit) +
                     ",\"count\":" + JsonUInt(concepts.size()) +
                     ",\"results\":[";
  for (size_t i = 0; i < concepts.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"concept\":" + JsonString(concepts[i]) +
            ",\"entities\":" + outcome.fragments[i] + "}";
  }
  body += "]}\n";
  HttpResponse response;
  response.body = std::move(body);
  if (cache_ != nullptr) {
    response.headers.emplace_back("X-Cache-Hits",
                                  std::to_string(outcome.hits));
  }
  StampVersion(&response, outcome.version);
  return response;
}

HttpResponse ApiEndpoints::Isa(const HttpRequest& request) {
  if (!request.HasParam("entity")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: entity");
  }
  if (!request.HasParam("concept")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: concept");
  }
  const std::string_view entity = request.Param("entity");
  const std::string_view concept_name = request.Param("concept");
  size_t max_depth = 4;
  if (request.HasParam("max_depth") &&
      !ParseMaxDepth(request.Param("max_depth"), &max_depth)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "max_depth must be an integer in [1, 16]");
  }
  return Cached(
      "isa", entity,
      PackArg(concept_name) + "|d" + std::to_string(max_depth),
      [&](uint64_t* resolved_version) {
        const util::Result<reason::ReasonService::IsaResolved> result =
            reason_.TryIsa(entity, concept_name, max_depth);
        if (!result.ok()) return StatusResponse(result.status());
        *resolved_version = result->version;
        if (!result->entity_known) {
          return ErrorResponse(404, util::StatusCode::kNotFound,
                               "unknown entity: " + std::string(entity));
        }
        if (!result->concept_known) {
          return ErrorResponse(
              404, util::StatusCode::kNotFound,
              "unknown concept: " + std::string(concept_name));
        }
        HttpResponse response;
        response.body = "{\"entity\":" + JsonString(entity) +
                        ",\"concept\":" + JsonString(concept_name) +
                        ",\"version\":" + JsonUInt(result->version) +
                        ",\"max_depth\":" + JsonUInt(max_depth) +
                        ",\"isa\":" +
                        std::string(result->isa ? "true" : "false") +
                        ",\"depth\":" + std::to_string(result->depth) +
                        ",\"path\":" + NamesFragment(result->path) + "}\n";
        return response;
      });
}

HttpResponse ApiEndpoints::Lca(const HttpRequest& request) {
  if (!request.HasParam("a")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: a");
  }
  if (!request.HasParam("b")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: b");
  }
  const std::string_view a = request.Param("a");
  const std::string_view b = request.Param("b");
  size_t max_depth = 8;
  if (request.HasParam("max_depth") &&
      !ParseMaxDepth(request.Param("max_depth"), &max_depth)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "max_depth must be an integer in [1, 16]");
  }
  return Cached(
      "lca", a, PackArg(b) + "|d" + std::to_string(max_depth),
      [&](uint64_t* resolved_version) {
        const util::Result<reason::ReasonService::LcaResolved> result =
            reason_.TryLca(a, b, max_depth);
        if (!result.ok()) return StatusResponse(result.status());
        *resolved_version = result->version;
        if (!result->a_known || !result->b_known) {
          return ErrorResponse(
              404, util::StatusCode::kNotFound,
              "unknown name: " +
                  std::string(result->a_known ? b : a));
        }
        std::string body = "{\"a\":" + JsonString(a) +
                           ",\"b\":" + JsonString(b) +
                           ",\"version\":" + JsonUInt(result->version) +
                           ",\"max_depth\":" + JsonUInt(max_depth) +
                           ",\"found\":" +
                           std::string(result->found ? "true" : "false");
        if (result->found) {
          body += ",\"lca\":" + JsonString(result->lca) +
                  ",\"depth_a\":" + JsonUInt(result->depth_a) +
                  ",\"depth_b\":" + JsonUInt(result->depth_b);
        }
        body += "}\n";
        HttpResponse response;
        response.body = std::move(body);
        return response;
      });
}

HttpResponse ApiEndpoints::Similar(const HttpRequest& request) {
  if (!request.HasParam("entity")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: entity");
  }
  const std::string_view entity = request.Param("entity");
  size_t k = 10;
  if (request.HasParam("k") && !ParseTopK(request.Param("k"), &k)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "k must be an integer in [1, 100]");
  }
  return Cached(
      "similar", entity, "|k" + std::to_string(k),
      [&](uint64_t* resolved_version) {
        const util::Result<reason::ReasonService::RankedResolved> result =
            reason_.TrySimilar(entity, k);
        if (!result.ok()) return StatusResponse(result.status());
        *resolved_version = result->version;
        if (!result->known) {
          return ErrorResponse(404, util::StatusCode::kNotFound,
                               "unknown entity: " + std::string(entity));
        }
        HttpResponse response;
        response.body = "{\"entity\":" + JsonString(entity) +
                        ",\"version\":" + JsonUInt(result->version) +
                        ",\"k\":" + JsonUInt(k) + ",\"results\":" +
                        ScoredNamesFragment(result->results) + "}\n";
        return response;
      });
}

HttpResponse ApiEndpoints::Expand(const HttpRequest& request) {
  if (!request.HasParam("concept")) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "missing required parameter: concept");
  }
  const std::string_view concept_name = request.Param("concept");
  size_t k = 10;
  if (request.HasParam("k") && !ParseTopK(request.Param("k"), &k)) {
    return ErrorResponse(400, util::StatusCode::kInvalidArgument,
                         "k must be an integer in [1, 100]");
  }
  return Cached(
      "expand", concept_name, "|k" + std::to_string(k),
      [&](uint64_t* resolved_version) {
        const util::Result<reason::ReasonService::RankedResolved> result =
            reason_.TryExpand(concept_name, k);
        if (!result.ok()) return StatusResponse(result.status());
        *resolved_version = result->version;
        if (!result->known) {
          return ErrorResponse(
              404, util::StatusCode::kNotFound,
              "unknown concept: " + std::string(concept_name));
        }
        HttpResponse response;
        response.body = "{\"concept\":" + JsonString(concept_name) +
                        ",\"version\":" + JsonUInt(result->version) +
                        ",\"k\":" + JsonUInt(k) + ",\"children\":" +
                        ScoredNamesFragment(result->results) + "}\n";
        return response;
      });
}

HttpResponse ApiEndpoints::Healthz() {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  HttpResponse response;
  response.body = "{\"status\":\"ok\",\"version\":" +
                  JsonUInt(api_->version()) +
                  ",\"uptime_seconds\":" + util::JsonNumber(uptime) + "}\n";
  return response;
}

HttpResponse ApiEndpoints::Metrics() {
  // Serving-side gauges (per-version QPS, snapshot age) only exist at
  // export time; sync them before rendering.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  api_->ExportMetrics(&registry);
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::ToPrometheusText(registry);
  return response;
}

}  // namespace cnpb::server
