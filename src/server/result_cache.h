#ifndef CNPROBASE_SERVER_RESULT_CACHE_H_
#define CNPROBASE_SERVER_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace cnpb::server {

// Version-keyed query-result cache for the wire endpoints (cf. gigablast's
// RdbCache): entries are keyed by (endpoint, decoded argument) and stamped
// with the snapshot version their body was resolved against. A lookup only
// hits when the cached version equals the caller's current version, so a
// publish invalidates every stale entry wholesale — no invalidation
// protocol, no coherence window. Serving a version-V body after V was
// retired is indistinguishable from the request having arrived a moment
// earlier; the stamp inside the body still matches the data (which is why
// the version-stamp bugfix in service.cc is a prerequisite for this cache).
//
// Sharded LRU: the key hash picks a shard, each shard holds its own mutex,
// recency list, and byte budget (max_bytes / num_shards). Stale entries are
// dropped on touch; memory pressure evicts least-recently-used entries.
// All operations are safe to call concurrently from the server's event
// loops while publishes bump the version.
class ResultCache {
 public:
  struct Config {
    size_t max_bytes = 16u << 20;  // total budget across all shards
    size_t num_shards = 8;
  };

  // Aggregated over shards; each counter is exact, the snapshot as a whole
  // is not a cross-shard atomic cut.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;    // LRU evictions under the byte budget
    uint64_t stale_drops = 0;  // version-mismatched entries dropped on touch
    size_t entries = 0;
    size_t bytes = 0;
    double hit_ratio() const {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  struct CachedResponse {
    int status = 0;
    std::string body;
    // The snapshot version the body was resolved against (equals the
    // version passed to Lookup on a hit; kept explicit so callers can stamp
    // response headers without re-reading the live version, which may have
    // moved since).
    uint64_t version = 0;
  };

  explicit ResultCache(const Config& config);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Builds the canonical cache key. The endpoint tag keeps the three APIs'
  // keyspaces disjoint; `arg` is the percent-decoded query argument and
  // `options` folds in anything else that changes the answer (transitive
  // flag, limit) — both are length-prefixed so no two (arg, options) pairs
  // collide by concatenation.
  static std::string Key(std::string_view endpoint, std::string_view arg,
                         std::string_view options = {});

  // True (and fills *out) when `key` is cached at exactly `version`. An
  // entry at any other version is a miss and is dropped on the spot.
  bool Lookup(std::string_view key, uint64_t version, CachedResponse* out);

  // Caches (status, body) for `key` at `version`, replacing any previous
  // entry. Entries larger than a shard's whole budget are not cached.
  void Insert(std::string_view key, uint64_t version, int status,
              std::string_view body);

  Stats stats() const;

 private:
  struct Entry {
    uint64_t version = 0;
    int status = 0;
    std::string body;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;  // front = most recently used; values = keys
    std::unordered_map<std::string, Entry> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t stale_drops = 0;
  };

  Shard& ShardFor(std::string_view key);
  // Removes `it` from `shard`, adjusting byte accounting. Caller holds mu.
  void EraseLocked(Shard& shard,
                   std::unordered_map<std::string, Entry>::iterator it);
  static size_t EntryBytes(std::string_view key, std::string_view body);

  const size_t shard_budget_;
  std::vector<Shard> shards_;

  obs::Counter* const m_hits_ =
      obs::MetricsRegistry::Global().counter("http.cache.hits");
  obs::Counter* const m_misses_ =
      obs::MetricsRegistry::Global().counter("http.cache.misses");
  obs::Counter* const m_evictions_ =
      obs::MetricsRegistry::Global().counter("http.cache.evictions");
  obs::Counter* const m_stale_drops_ =
      obs::MetricsRegistry::Global().counter("http.cache.stale_drops");
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_RESULT_CACHE_H_
