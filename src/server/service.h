#ifndef CNPROBASE_SERVER_SERVICE_H_
#define CNPROBASE_SERVER_SERVICE_H_

#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "reason/service.h"
#include "server/http.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "taxonomy/api_service.h"
#include "util/status.h"

namespace cnpb::server {

// Maps HTTP requests onto the ApiService Try* APIs — the wire form of the
// paper's three public endpoints (Table II), plus batch forms, health and
// metrics:
//
//   GET /v1/men2ent?mention=M                mention -> entities (id+name)
//   GET /v1/getConcept?entity=E[&transitive=1]   entity -> hypernym names
//   GET /v1/getEntity?concept=C[&limit=N]        concept -> hyponym names
//   GET/POST /v1/men2ent_batch               N mentions, one snapshot
//   GET/POST /v1/getConcept_batch            N entities, one snapshot
//   GET/POST /v1/getEntity_batch             N concepts, one snapshot
//   GET /healthz                             liveness + served version
//   GET /metrics                             Prometheus text exposition
//
// plus the reasoning endpoints (DESIGN.md §14), served by the ReasonService
// over the same pinned-snapshot contract:
//
//   GET /v1/isa?entity=E&concept=C[&max_depth=D]   bounded transitive isA
//   GET /v1/lca?a=X&b=Y[&max_depth=D]              lowest common ancestor
//   GET /v1/similar?entity=E[&k=K]                 shared-hypernym siblings
//   GET /v1/expand?concept=C[&k=K]                 ranked candidate children
//
// Batch endpoints take their inputs either as repeated query parameters
// (GET ?mention=a&mention=b) or as a POST body with one term per line, and
// resolve every item against ONE pinned snapshot, so the response carries a
// single version stamp. Unknown items come back with an empty result list
// (partial answers are the point of batching) — unlike single-shot
// /v1/men2ent, which 404s an unknown mention.
//
// Every version stamp is taken from the pinned snapshot that resolved the
// data (the *Resolved ApiService variants), never from api->version() after
// the fact — a concurrent publish between query and stamp must not make a
// response claim a version its data did not come from.
//
// Responses are JSON (UTF-8). Failure is part of the contract
// (DESIGN.md §9 has the full table):
//
//   ResourceExhausted -> 429 + Retry-After      (load shed)
//   DeadlineExceeded  -> 504                    (query budget elapsed)
//   IoError           -> 503                    (injected fault / backend)
//   missing parameter -> 400, unknown path -> 404, bad method -> 405
class ApiEndpoints {
 public:
  // Every response carries this header with the snapshot version that
  // produced it (snapshot-derived answers stamp their pinned version;
  // errors and health/metrics stamp the currently-served version). The
  // router tier reads it to enforce cross-shard generation coherence.
  static constexpr const char kVersionHeader[] = "X-Taxonomy-Version";

  // `api` must outlive the endpoints (and the server using them). This
  // constructor serves uncached.
  explicit ApiEndpoints(taxonomy::ApiService* api);

  // With a result cache (DESIGN.md §11): single-shot answers derived purely
  // from a snapshot (200s, and men2ent's unknown-mention 404) are cached
  // keyed by (endpoint, argument) and stamped with the snapshot version; a
  // publish invalidates everything wholesale by bumping the version. Cached
  // responses carry "X-Cache: hit", freshly inserted ones "X-Cache: miss".
  //
  // The three paper endpoints cache per-item JSON *fragments* (the inner
  // entities/concepts array) rather than whole bodies, and their batch
  // forms consult and populate the very same entries under the batch's one
  // pinned version — a hot mention warmed by single-shot traffic is a
  // batch-item hit and vice versa. Batch responses report the per-item tally
  // in an "X-Cache-Hits: N" header. Reasoning endpoints cache whole bodies
  // (they have no batch form to share fragments with).
  ApiEndpoints(taxonomy::ApiService* api,
               const ResultCache::Config& cache_config);

  // Null when constructed without a cache.
  const ResultCache* cache() const { return cache_.get(); }

  // The HttpServer handler; safe to call concurrently from every event
  // loop (ApiService queries, the cache, and the instruments are all
  // thread-safe).
  HttpResponse Handle(const HttpRequest& request);

  // Convenience: a Handler bound to this instance.
  HttpServer::Handler AsHandler();

  // Translates a non-OK Status into the wire contract above.
  static int HttpStatusForCode(util::StatusCode code);

  // The reasoning-side usage counters (for benches / examples).
  const reason::ReasonService& reason_service() const { return reason_; }

 private:
  HttpResponse Men2Ent(const HttpRequest& request);
  HttpResponse GetConcept(const HttpRequest& request);
  HttpResponse GetEntity(const HttpRequest& request);
  HttpResponse Men2EntBatch(const HttpRequest& request);
  HttpResponse GetConceptBatch(const HttpRequest& request);
  HttpResponse GetEntityBatch(const HttpRequest& request);
  HttpResponse Isa(const HttpRequest& request);
  HttpResponse Lca(const HttpRequest& request);
  HttpResponse Similar(const HttpRequest& request);
  HttpResponse Expand(const HttpRequest& request);
  HttpResponse Healthz();
  HttpResponse Metrics();

  // Collects batch inputs: every `param` query value (GET) or one term per
  // POST body line. False (with *error filled) when empty or over the batch
  // size cap.
  bool BatchItems(const HttpRequest& request, std::string_view param,
                  std::vector<std::string>* items, HttpResponse* error);

  // Cache plumbing around a single-shot endpoint: Lookup at the current
  // version, else run `compute` and Insert the response at the version its
  // data was resolved against (`*resolved_version`, set by compute). Whole
  // bodies; used by the reasoning endpoints.
  template <typename Compute>
  HttpResponse Cached(std::string_view endpoint, std::string_view arg,
                      std::string_view options, Compute&& compute);

  // One cacheable per-item unit shared by the single-shot and batch forms
  // of a paper endpoint: `status` is the single-shot HTTP status (200, or
  // 404 for men2ent's unknown mention — batch forms ignore it and splice
  // the empty list) and `fragment` the inner JSON array both envelopes
  // splice in.
  struct ItemFragment {
    int status = 200;
    std::string fragment;
  };

  // The cache-aware batch core: per-item Lookup under one version, one
  // batch resolve for the misses via `resolve`, per-item Insert at the
  // resolved version. If a publish lands between the cache sweep and the
  // resolve (hit and miss versions disagree), the whole batch is re-resolved
  // at the new snapshot so the response keeps its single-version contract.
  struct BatchOutcome {
    bool failed = false;
    HttpResponse error;               // set when failed
    uint64_t version = 0;
    size_t hits = 0;                  // items served from the cache
    std::vector<std::string> fragments;  // one per input item
  };
  template <typename Resolve>
  BatchOutcome ResolveBatchCached(const std::vector<std::string>& items,
                                  std::string_view endpoint,
                                  std::string_view options,
                                  Resolve&& resolve);

  static HttpResponse ErrorResponse(int status, util::StatusCode code,
                                    const std::string& message);
  static HttpResponse StatusResponse(const util::Status& status);

  taxonomy::ApiService* api_;
  reason::ReasonService reason_;
  std::unique_ptr<ResultCache> cache_;
  const std::chrono::steady_clock::time_point started_;

  // Per-endpoint wire-level instruments (the ApiService keeps its own
  // in-process query metrics; these measure the HTTP layer around it).
  obs::Counter* const req_men2ent_ =
      obs::MetricsRegistry::Global().counter("http.requests.men2ent");
  obs::Counter* const req_get_concept_ =
      obs::MetricsRegistry::Global().counter("http.requests.get_concept");
  obs::Counter* const req_get_entity_ =
      obs::MetricsRegistry::Global().counter("http.requests.get_entity");
  obs::Counter* const req_men2ent_batch_ =
      obs::MetricsRegistry::Global().counter("http.requests.men2ent_batch");
  obs::Counter* const req_get_concept_batch_ = obs::MetricsRegistry::Global()
      .counter("http.requests.get_concept_batch");
  obs::Counter* const req_get_entity_batch_ = obs::MetricsRegistry::Global()
      .counter("http.requests.get_entity_batch");
  obs::Counter* const batch_items_ =
      obs::MetricsRegistry::Global().counter("http.batch.items");
  obs::Counter* const req_isa_ =
      obs::MetricsRegistry::Global().counter("http.requests.isa");
  obs::Counter* const req_lca_ =
      obs::MetricsRegistry::Global().counter("http.requests.lca");
  obs::Counter* const req_similar_ =
      obs::MetricsRegistry::Global().counter("http.requests.similar");
  obs::Counter* const req_expand_ =
      obs::MetricsRegistry::Global().counter("http.requests.expand");
  obs::Counter* const req_healthz_ =
      obs::MetricsRegistry::Global().counter("http.requests.healthz");
  obs::Counter* const req_metrics_ =
      obs::MetricsRegistry::Global().counter("http.requests.metrics");
  obs::Counter* const req_other_ =
      obs::MetricsRegistry::Global().counter("http.requests.other");
  obs::Counter* const resp_2xx_ =
      obs::MetricsRegistry::Global().counter("http.responses.2xx");
  obs::Counter* const resp_4xx_ =
      obs::MetricsRegistry::Global().counter("http.responses.4xx");
  obs::Counter* const resp_5xx_ =
      obs::MetricsRegistry::Global().counter("http.responses.5xx");
  obs::Counter* const resp_429_ =
      obs::MetricsRegistry::Global().counter("http.responses.429");
  obs::BucketHistogram* const lat_men2ent_ = obs::MetricsRegistry::Global()
      .histogram("http.latency.men2ent_seconds");
  obs::BucketHistogram* const lat_get_concept_ = obs::MetricsRegistry::Global()
      .histogram("http.latency.get_concept_seconds");
  obs::BucketHistogram* const lat_get_entity_ = obs::MetricsRegistry::Global()
      .histogram("http.latency.get_entity_seconds");
  obs::BucketHistogram* const lat_reason_ = obs::MetricsRegistry::Global()
      .histogram("http.latency.reason_seconds");
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_SERVICE_H_
