#ifndef CNPROBASE_SERVER_SERVICE_H_
#define CNPROBASE_SERVER_SERVICE_H_

#include <chrono>

#include "obs/metrics.h"
#include "server/http.h"
#include "server/server.h"
#include "taxonomy/api_service.h"
#include "util/status.h"

namespace cnpb::server {

// Maps HTTP requests onto the ApiService Try* APIs — the wire form of the
// paper's three public endpoints (Table II), plus health and metrics:
//
//   GET /v1/men2ent?mention=M                mention -> entities (id+name)
//   GET /v1/getConcept?entity=E[&transitive=1]   entity -> hypernym names
//   GET /v1/getEntity?concept=C[&limit=N]        concept -> hyponym names
//   GET /healthz                             liveness + served version
//   GET /metrics                             Prometheus text exposition
//
// Responses are JSON (UTF-8). Failure is part of the contract
// (DESIGN.md §9 has the full table):
//
//   ResourceExhausted -> 429 + Retry-After      (load shed)
//   DeadlineExceeded  -> 504                    (query budget elapsed)
//   IoError           -> 503                    (injected fault / backend)
//   missing parameter -> 400, unknown path -> 404, non-GET/HEAD -> 405
class ApiEndpoints {
 public:
  // `api` must outlive the endpoints (and the server using them).
  explicit ApiEndpoints(taxonomy::ApiService* api);

  // The HttpServer handler; safe to call concurrently from every event
  // loop (ApiService queries are thread-safe, instruments are atomics).
  HttpResponse Handle(const HttpRequest& request);

  // Convenience: a Handler bound to this instance.
  HttpServer::Handler AsHandler();

  // Translates a non-OK Status into the wire contract above.
  static int HttpStatusForCode(util::StatusCode code);

 private:
  HttpResponse Men2Ent(const HttpRequest& request);
  HttpResponse GetConcept(const HttpRequest& request);
  HttpResponse GetEntity(const HttpRequest& request);
  HttpResponse Healthz();
  HttpResponse Metrics();

  static HttpResponse ErrorResponse(int status, util::StatusCode code,
                                    const std::string& message);
  static HttpResponse StatusResponse(const util::Status& status);

  taxonomy::ApiService* api_;
  const std::chrono::steady_clock::time_point started_;

  // Per-endpoint wire-level instruments (the ApiService keeps its own
  // in-process query metrics; these measure the HTTP layer around it).
  obs::Counter* const req_men2ent_ =
      obs::MetricsRegistry::Global().counter("http.requests.men2ent");
  obs::Counter* const req_get_concept_ =
      obs::MetricsRegistry::Global().counter("http.requests.get_concept");
  obs::Counter* const req_get_entity_ =
      obs::MetricsRegistry::Global().counter("http.requests.get_entity");
  obs::Counter* const req_healthz_ =
      obs::MetricsRegistry::Global().counter("http.requests.healthz");
  obs::Counter* const req_metrics_ =
      obs::MetricsRegistry::Global().counter("http.requests.metrics");
  obs::Counter* const req_other_ =
      obs::MetricsRegistry::Global().counter("http.requests.other");
  obs::Counter* const resp_2xx_ =
      obs::MetricsRegistry::Global().counter("http.responses.2xx");
  obs::Counter* const resp_4xx_ =
      obs::MetricsRegistry::Global().counter("http.responses.4xx");
  obs::Counter* const resp_5xx_ =
      obs::MetricsRegistry::Global().counter("http.responses.5xx");
  obs::Counter* const resp_429_ =
      obs::MetricsRegistry::Global().counter("http.responses.429");
  obs::BucketHistogram* const lat_men2ent_ = obs::MetricsRegistry::Global()
      .histogram("http.latency.men2ent_seconds");
  obs::BucketHistogram* const lat_get_concept_ = obs::MetricsRegistry::Global()
      .histogram("http.latency.get_concept_seconds");
  obs::BucketHistogram* const lat_get_entity_ = obs::MetricsRegistry::Global()
      .histogram("http.latency.get_entity_seconds");
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_SERVICE_H_
