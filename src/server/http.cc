#include "server/http.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace cnpb::server {

namespace {

bool AsciiIEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// RFC 7230 token characters, the legal alphabet for methods and header
// names. Anything else in those positions is a malformed request.
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), IsTokenChar);
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiIEquals(key, name)) return value;
  }
  return {};
}

std::string_view HttpRequest::Param(std::string_view key,
                                    std::string_view fallback) const {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

bool HttpRequest::HasParam(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return true;
  }
  return false;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive,
                              bool head_only) {
  const bool alive = keep_alive && !response.close;
  std::string out = util::StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                                    ReasonPhrase(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::StrFormat(
      "Content-Length: %zu\r\n", response.body.size());
  out += alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  if (!head_only) out += response.body;
  return out;
}

bool PercentDecode(std::string_view in, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out->push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = HexDigit(in[i + 1]);
      const int lo = HexDigit(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out->push_back(c);
    }
  }
  return true;
}

std::string PercentEncode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool unreserved = std::isalnum(static_cast<unsigned char>(c)) ||
                            c == '-' || c == '_' || c == '.' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out += util::StrFormat("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

RequestParser::RequestParser() : RequestParser(Limits()) {}

RequestParser::RequestParser(const Limits& limits) : limits_(limits) {}

RequestParser::State RequestParser::Feed(std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data.data(), data.size());
  return Advance();
}

RequestParser::State RequestParser::Poll() {
  if (state_ == State::kError) return state_;
  return Advance();
}

void RequestParser::Reset() {
  // Drop the consumed prefix; a pipelined request may already be buffered.
  buffer_.erase(0, pos_);
  pos_ = 0;
  phase_ = Phase::kRequestLine;
  state_ = State::kNeedMore;
  request_ = HttpRequest();
  header_bytes_ = 0;
  body_length_ = 0;
  error_status_ = 0;
  error_message_.clear();
}

RequestParser::State RequestParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  return state_;
}

RequestParser::State RequestParser::Advance() {
  if (state_ == State::kComplete) return state_;
  while (phase_ == Phase::kRequestLine || phase_ == Phase::kHeaders) {
    const size_t eol = buffer_.find('\n', pos_);
    if (eol == std::string::npos) {
      // No complete line yet — but an over-limit partial line is already a
      // definite error; reject it now instead of buffering forever.
      const size_t pending = buffer_.size() - pos_;
      if (phase_ == Phase::kRequestLine && pending > limits_.max_request_line) {
        return Fail(431, "request line too long");
      }
      if (phase_ == Phase::kHeaders &&
          header_bytes_ + pending > limits_.max_header_bytes) {
        return Fail(431, "headers too large");
      }
      return state_;  // kNeedMore
    }
    // Accept both CRLF and bare LF line endings.
    std::string_view line(buffer_.data() + pos_, eol - pos_);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const size_t line_bytes = eol - pos_ + 1;
    pos_ = eol + 1;
    if (phase_ == Phase::kRequestLine) {
      if (line.empty()) continue;  // RFC 7230 §3.5: skip leading empty lines
      if (line_bytes > limits_.max_request_line) {
        return Fail(431, "request line too long");
      }
      if (!ParseRequestLine(line)) return state_;
      phase_ = Phase::kHeaders;
    } else {
      header_bytes_ += line_bytes;
      if (header_bytes_ > limits_.max_header_bytes) {
        return Fail(431, "headers too large");
      }
      if (line.empty()) {
        if (!FinishHeaders()) return state_;
        phase_ = Phase::kBody;
        break;
      }
      if (request_.headers.size() >= limits_.max_headers) {
        return Fail(431, "too many headers");
      }
      if (!ParseHeaderLine(line)) return state_;
    }
  }
  if (phase_ == Phase::kBody) {
    if (buffer_.size() - pos_ < body_length_) return state_;  // kNeedMore
    request_.body.assign(buffer_, pos_, body_length_);
    pos_ += body_length_;
    phase_ = Phase::kDone;
    state_ = State::kComplete;
  }
  return state_;
}

bool RequestParser::ParseRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(request_.method)) {
    Fail(400, "malformed method");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else {
    Fail(400, "unsupported HTTP version");
    return false;
  }
  if (request_.target.empty() || request_.target.find(' ') != std::string::npos ||
      request_.target[0] != '/') {
    Fail(400, "malformed request target");
    return false;
  }
  // Split target into path and query, percent-decoding both.
  const std::string& target = request_.target;
  const size_t q = target.find('?');
  const std::string_view raw_path =
      std::string_view(target).substr(0, q == std::string::npos ? target.size()
                                                                : q);
  if (!PercentDecode(raw_path, &request_.path)) {
    Fail(400, "bad percent-encoding in path");
    return false;
  }
  if (q != std::string::npos) {
    const std::string_view query = std::string_view(target).substr(q + 1);
    for (std::string_view piece : util::Split(query, '&')) {
      if (piece.empty()) continue;
      const size_t eq = piece.find('=');
      std::string key;
      std::string value;
      const std::string_view raw_key =
          eq == std::string_view::npos ? piece : piece.substr(0, eq);
      const std::string_view raw_value =
          eq == std::string_view::npos ? std::string_view()
                                       : piece.substr(eq + 1);
      if (!PercentDecode(raw_key, &key) || !PercentDecode(raw_value, &value)) {
        Fail(400, "bad percent-encoding in query parameter");
        return false;
      }
      request_.params.emplace_back(std::move(key), std::move(value));
    }
  }
  return true;
}

bool RequestParser::ParseHeaderLine(std::string_view line) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    Fail(400, "malformed header line");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Covers obsolete line folding (leading whitespace) too.
    Fail(400, "malformed header name");
    return false;
  }
  const std::string_view value =
      util::StripAsciiWhitespace(line.substr(colon + 1));
  request_.headers.emplace_back(std::string(name), std::string(value));
  return true;
}

bool RequestParser::FinishHeaders() {
  if (request_.version_minor >= 1 && request_.Header("Host").empty()) {
    Fail(400, "missing Host header");
    return false;
  }
  if (!request_.Header("Transfer-Encoding").empty()) {
    Fail(400, "Transfer-Encoding not supported");
    return false;
  }
  // Connection is a comma-separated token list (RFC 9110 §7.6.1); "close"
  // and "keep-alive" may appear anywhere in it ("keep-alive, TE"), in any
  // case, with optional whitespace around each token. "close" wins if both
  // appear; unrecognized tokens are ignored.
  const std::string_view connection = request_.Header("Connection");
  bool saw_close = false;
  bool saw_keep_alive = false;
  size_t start = 0;
  while (start <= connection.size()) {
    size_t comma = connection.find(',', start);
    if (comma == std::string_view::npos) comma = connection.size();
    const std::string_view token =
        util::StripAsciiWhitespace(connection.substr(start, comma - start));
    if (AsciiIEquals(token, "close")) saw_close = true;
    if (AsciiIEquals(token, "keep-alive")) saw_keep_alive = true;
    start = comma + 1;
  }
  if (saw_close) {
    request_.keep_alive = false;
  } else if (saw_keep_alive) {
    request_.keep_alive = true;
  }
  body_length_ = 0;
  const std::string_view content_length = request_.Header("Content-Length");
  if (!content_length.empty()) {
    uint64_t length = 0;
    for (const char c : content_length) {
      if (c < '0' || c > '9') {
        Fail(400, "malformed Content-Length");
        return false;
      }
      length = length * 10 + static_cast<uint64_t>(c - '0');
      if (length > limits_.max_body_bytes) {
        Fail(413, "request body too large");
        return false;
      }
    }
    body_length_ = static_cast<size_t>(length);
  }
  return true;
}

}  // namespace cnpb::server
