#include "server/client.h"

#include <cctype>
#include <cstdlib>

#include "util/net.h"
#include "util/strings.h"

namespace cnpb::server {

namespace {

bool AsciiIEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view HttpClient::Response::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiIEquals(key, name)) return value;
  }
  return {};
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

util::Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  util::Result<int> fd = util::ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  host_ = util::StrFormat("%s:%u", host.c_str(), unsigned{port});
  buffer_.clear();
  return util::Status::Ok();
}

void HttpClient::Close() {
  util::CloseFd(fd_);
  fd_ = -1;
  buffer_.clear();
}

util::Status HttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return util::FailedPreconditionError("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const util::Result<size_t> sent =
        util::SendSome(fd_, bytes.data() + off, bytes.size() - off);
    if (!sent.ok()) {
      Close();
      return sent.status();
    }
    // Blocking socket: a zero return only happens on a (unused) non-
    // blocking fd; treat it as an error rather than spinning.
    if (*sent == 0) {
      Close();
      return util::IoError("send made no progress");
    }
    off += *sent;
  }
  return util::Status::Ok();
}

util::Result<HttpClient::Response> HttpClient::Get(std::string_view target) {
  const std::string request = util::StrFormat(
      "GET %.*s HTTP/1.1\r\nHost: %s\r\n\r\n",
      static_cast<int>(target.size()), target.data(), host_.c_str());
  CNPB_RETURN_IF_ERROR(SendRaw(request));
  return ReadResponse();
}

util::Result<HttpClient::Response> HttpClient::Post(std::string_view target,
                                                    std::string_view body,
                                                    std::string_view
                                                        content_type) {
  std::string request = util::StrFormat(
      "POST %.*s HTTP/1.1\r\nHost: %s\r\nContent-Type: %.*s\r\n"
      "Content-Length: %zu\r\n\r\n",
      static_cast<int>(target.size()), target.data(), host_.c_str(),
      static_cast<int>(content_type.size()), content_type.data(),
      body.size());
  request.append(body);
  CNPB_RETURN_IF_ERROR(SendRaw(request));
  return ReadResponse();
}

util::Result<HttpClient::Response> HttpClient::ReadResponse() {
  if (fd_ < 0) return util::FailedPreconditionError("not connected");
  // Read until the header block is complete, then until the body is.
  const auto fail = [this](util::Status status) -> util::Status {
    Close();
    return status;
  };
  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer_.size() > (1u << 20)) {
      return fail(util::IoError("response headers never terminated"));
    }
    char chunk[16384];
    const util::Result<size_t> got =
        util::RecvSome(fd_, chunk, sizeof(chunk), nullptr);
    if (!got.ok()) return fail(got.status());
    if (*got == 0) {
      return fail(util::IoError("connection closed before response"));
    }
    buffer_.append(chunk, *got);
  }

  Response response;
  const std::string head = buffer_.substr(0, header_end);
  std::vector<std::string> lines = util::Split(head, '\n');
  if (lines.empty()) return fail(util::IoError("empty response head"));
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  // Status line: HTTP/1.1 NNN Reason
  {
    const std::vector<std::string> parts = util::Split(lines[0], ' ');
    if (parts.size() < 2 || !util::StartsWith(parts[0], "HTTP/1.")) {
      return fail(util::IoError("malformed status line: " + lines[0]));
    }
    response.status = std::atoi(parts[1].c_str());
    if (response.status < 100 || response.status > 599) {
      return fail(util::IoError("malformed status code: " + parts[1]));
    }
  }
  size_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;
    std::string name = lines[i].substr(0, colon);
    std::string value(util::StripAsciiWhitespace(
        std::string_view(lines[i]).substr(colon + 1)));
    if (AsciiIEquals(name, "Content-Length")) {
      content_length = static_cast<size_t>(std::atoll(value.c_str()));
    }
    response.headers.emplace_back(std::move(name), std::move(value));
  }

  const size_t body_start = header_end + 4;
  while (buffer_.size() - body_start < content_length) {
    char chunk[16384];
    const util::Result<size_t> got =
        util::RecvSome(fd_, chunk, sizeof(chunk), nullptr);
    if (!got.ok()) return fail(got.status());
    if (*got == 0) {
      return fail(util::IoError("connection closed mid-body"));
    }
    buffer_.append(chunk, *got);
  }
  response.body = buffer_.substr(body_start, content_length);
  // Keep-alive: preserve any bytes past this response for the next one.
  buffer_.erase(0, body_start + content_length);
  return response;
}

}  // namespace cnpb::server
