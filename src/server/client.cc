#include "server/client.h"

#include <cctype>

#include "util/net.h"
#include "util/strings.h"

namespace cnpb::server {

namespace {

bool AsciiIEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view HttpClient::Response::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiIEquals(key, name)) return value;
  }
  return {};
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : options_(other.options_),
      fd_(other.fd_),
      host_(std::move(other.host_)),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    options_ = other.options_;
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

util::Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  util::Result<int> fd = options_.connect_deadline.count() > 0
                             ? util::ConnectTcp(host, port,
                                                options_.connect_deadline)
                             : util::ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  host_ = util::StrFormat("%s:%u", host.c_str(), unsigned{port});
  buffer_.clear();
  return util::Status::Ok();
}

void HttpClient::Close() {
  util::CloseFd(fd_);
  fd_ = -1;
  buffer_.clear();
}

util::Status HttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return util::FailedPreconditionError("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const util::Result<size_t> sent =
        util::SendSome(fd_, bytes.data() + off, bytes.size() - off);
    if (!sent.ok()) {
      Close();
      return sent.status();
    }
    // Blocking socket: a zero return only happens on a (unused) non-
    // blocking fd; treat it as an error rather than spinning.
    if (*sent == 0) {
      Close();
      return util::IoError("send made no progress");
    }
    off += *sent;
  }
  return util::Status::Ok();
}

std::string HttpClient::FormatGet(std::string_view target) const {
  return util::StrFormat("GET %.*s HTTP/1.1\r\nHost: %s\r\n\r\n",
                         static_cast<int>(target.size()), target.data(),
                         host_.c_str());
}

std::string HttpClient::FormatPost(std::string_view target,
                                   std::string_view body,
                                   std::string_view content_type) const {
  std::string request = util::StrFormat(
      "POST %.*s HTTP/1.1\r\nHost: %s\r\nContent-Type: %.*s\r\n"
      "Content-Length: %zu\r\n\r\n",
      static_cast<int>(target.size()), target.data(), host_.c_str(),
      static_cast<int>(content_type.size()), content_type.data(),
      body.size());
  request.append(body);
  return request;
}

util::Result<HttpClient::Response> HttpClient::Get(std::string_view target) {
  CNPB_RETURN_IF_ERROR(SendRaw(FormatGet(target)));
  return ReadResponse();
}

util::Result<HttpClient::Response> HttpClient::Post(std::string_view target,
                                                    std::string_view body,
                                                    std::string_view
                                                        content_type) {
  CNPB_RETURN_IF_ERROR(SendRaw(FormatPost(target, body, content_type)));
  return ReadResponse();
}

util::Result<HttpClient::Response> HttpClient::ReadResponse() {
  if (fd_ < 0) return util::FailedPreconditionError("not connected");
  // Read until the header block is complete, then until the body is.
  const auto fail = [this](util::Status status) -> util::Status {
    Close();
    return status;
  };
  // One deadline covers the whole response; each recv is preceded by a
  // poll against the remaining budget so a stalled backend cannot block
  // the caller past recv_deadline.
  const bool deadline_enabled = options_.recv_deadline.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        options_.recv_deadline;
  const auto recv_more = [&](util::Result<size_t>* got) -> util::Status {
    if (deadline_enabled) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      bool ready = false;
      if (remaining.count() > 0) {
        CNPB_RETURN_IF_ERROR(util::WaitReadable(fd_, remaining, &ready));
      }
      if (!ready) {
        return util::DeadlineExceededError(util::StrFormat(
            "no response from %s within %lld ms", host_.c_str(),
            static_cast<long long>(options_.recv_deadline.count())));
      }
    }
    char chunk[16384];
    *got = util::RecvSome(fd_, chunk, sizeof(chunk), nullptr);
    if (got->ok() && **got > 0) buffer_.append(chunk, **got);
    return util::Status::Ok();
  };

  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer_.size() > (1u << 20)) {
      return fail(util::IoError("response headers never terminated"));
    }
    util::Result<size_t> got = 0;
    if (util::Status s = recv_more(&got); !s.ok()) return fail(std::move(s));
    if (!got.ok()) return fail(got.status());
    if (*got == 0) {
      return fail(util::IoError("connection closed before response"));
    }
  }

  Response response;
  const std::string head = buffer_.substr(0, header_end);
  std::vector<std::string> lines = util::Split(head, '\n');
  if (lines.empty()) return fail(util::IoError("empty response head"));
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  // Status line: HTTP/1.1 NNN Reason. The code field must be all digits —
  // atoi would quietly take "20x" as 20 or "  404" with whatever junk
  // follows, and a garbage status corrupts every keep-alive decision that
  // depends on it.
  {
    const std::vector<std::string> parts = util::Split(lines[0], ' ');
    if (parts.size() < 2 || !util::StartsWith(parts[0], "HTTP/1.")) {
      return fail(util::IoError("malformed status line: " + lines[0]));
    }
    uint64_t code = 0;
    if (!util::ParseUint64(parts[1], &code) || code < 100 || code > 599) {
      return fail(util::IoError("malformed status code: " + parts[1]));
    }
    response.status = static_cast<int>(code);
  }
  // Content-Length must be a digit-only full-field parse. atoll silently
  // mapped garbage to 0 (desyncing the keep-alive stream: the next
  // response is parsed starting mid-body) and negatives to huge sizes
  // (hanging until peer close). Conflicting duplicates are an attack/bug
  // smuggling vector — reject; byte-identical duplicates are harmless.
  bool have_content_length = false;
  size_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;
    std::string name = lines[i].substr(0, colon);
    std::string value(util::StripAsciiWhitespace(
        std::string_view(lines[i]).substr(colon + 1)));
    if (AsciiIEquals(name, "Content-Length")) {
      uint64_t parsed = 0;
      if (!util::ParseUint64(value, &parsed)) {
        return fail(util::IoError("malformed Content-Length: " + value));
      }
      if (parsed > options_.max_body_bytes) {
        return fail(util::IoError(util::StrFormat(
            "Content-Length %llu exceeds limit %zu",
            static_cast<unsigned long long>(parsed),
            options_.max_body_bytes)));
      }
      if (have_content_length && parsed != content_length) {
        return fail(util::IoError("conflicting Content-Length headers"));
      }
      have_content_length = true;
      content_length = static_cast<size_t>(parsed);
    }
    response.headers.emplace_back(std::move(name), std::move(value));
  }

  const size_t body_start = header_end + 4;
  while (buffer_.size() - body_start < content_length) {
    util::Result<size_t> got = 0;
    if (util::Status s = recv_more(&got); !s.ok()) return fail(std::move(s));
    if (!got.ok()) return fail(got.status());
    if (*got == 0) {
      return fail(util::IoError("connection closed mid-body"));
    }
  }
  response.body = buffer_.substr(body_start, content_length);
  // Keep-alive: preserve any bytes past this response for the next one.
  buffer_.erase(0, body_start + content_length);
  return response;
}

}  // namespace cnpb::server
