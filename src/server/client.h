#ifndef CNPROBASE_SERVER_CLIENT_H_
#define CNPROBASE_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cnpb::server {

// A deliberately small blocking HTTP/1.1 client: one keep-alive connection,
// sequential request/response. It exists for the loopback load generator,
// the --live bench mode, the router tier's backend pools, and the server
// tests — it is not a general client (no TLS, no redirects, no chunked
// encoding, IPv4 only).
class HttpClient {
 public:
  struct Options {
    // Deadline for establishing the TCP connection; 0 disables (blocking
    // connect with the kernel's SYN retry budget).
    std::chrono::milliseconds connect_deadline{10000};
    // Per-ReadResponse deadline covering the whole response (headers +
    // body): each recv is preceded by a poll against the remaining budget,
    // so a backend that accepts but never answers yields kDeadlineExceeded
    // instead of blocking the caller forever. 0 disables.
    std::chrono::milliseconds recv_deadline{30000};
    // Responses advertising a Content-Length above this are rejected with
    // kIoError before any body bytes are buffered.
    size_t max_body_bytes = 64u << 20;
  };

  struct Response {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    // First value of header `name` (ASCII case-insensitive), "" if absent.
    std::string_view Header(std::string_view name) const;
  };

  HttpClient() = default;
  explicit HttpClient(const Options& options) : options_(options) {}
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  const Options& options() const { return options_; }
  void set_options(const Options& options) { options_ = options; }

  util::Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // The connected socket, -1 when closed. The router polls this to race two
  // in-flight backends (hedged requests) without extra threads; callers
  // must not read or close it directly.
  int fd() const { return fd_; }

  // GET `target` (path + already-encoded query) over the open connection.
  // Reconnects are the caller's job: after any error Status the connection
  // is closed and the next Get must be preceded by Connect.
  util::Result<Response> Get(std::string_view target);

  // POST `body` to `target` (the batch endpoints take one term per line).
  util::Result<Response> Post(std::string_view target, std::string_view body,
                              std::string_view content_type =
                                  "text/plain; charset=utf-8");

  // Sends raw bytes and reads one response — lets tests speak malformed
  // HTTP (bad encodings, split writes) straight at the server, and lets
  // the router pipeline a request without blocking on the response.
  util::Status SendRaw(std::string_view bytes);
  util::Result<Response> ReadResponse();

  // Builds the exact request bytes Get/Post would send, for callers that
  // SendRaw on several connections before reading any response.
  std::string FormatGet(std::string_view target) const;
  std::string FormatPost(std::string_view target, std::string_view body,
                         std::string_view content_type =
                             "text/plain; charset=utf-8") const;

 private:
  Options options_;
  int fd_ = -1;
  std::string host_;
  std::string buffer_;  // bytes read past the previous response
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_CLIENT_H_
