#ifndef CNPROBASE_SERVER_CLIENT_H_
#define CNPROBASE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cnpb::server {

// A deliberately small blocking HTTP/1.1 client: one keep-alive connection,
// sequential request/response. It exists for the loopback load generator,
// the --live bench mode, and the server tests — it is not a general client
// (no TLS, no redirects, no chunked encoding, IPv4 only).
class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    // First value of header `name` (ASCII case-insensitive), "" if absent.
    std::string_view Header(std::string_view name) const;
  };

  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  util::Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // GET `target` (path + already-encoded query) over the open connection.
  // Reconnects are the caller's job: after any error Status the connection
  // is closed and the next Get must be preceded by Connect.
  util::Result<Response> Get(std::string_view target);

  // POST `body` to `target` (the batch endpoints take one term per line).
  util::Result<Response> Post(std::string_view target, std::string_view body,
                              std::string_view content_type =
                                  "text/plain; charset=utf-8");

  // Sends raw bytes and reads one response — lets tests speak malformed
  // HTTP (bad encodings, split writes) straight at the server.
  util::Status SendRaw(std::string_view bytes);
  util::Result<Response> ReadResponse();

 private:
  int fd_ = -1;
  std::string host_;
  std::string buffer_;  // bytes read past the previous response
};

}  // namespace cnpb::server

#endif  // CNPROBASE_SERVER_CLIENT_H_
