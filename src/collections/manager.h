#ifndef CNPROBASE_COLLECTIONS_MANAGER_H_
#define CNPROBASE_COLLECTIONS_MANAGER_H_

#include <chrono>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/incremental.h"
#include "ingest/daemon.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "server/ingest_endpoints.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "util/status.h"

namespace cnpb::collections {

using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;

// Multi-collection tenancy (DESIGN.md §14): several independent taxonomies
// served by one process, each with its own ApiService (and therefore its
// own RCU snapshot chain, version counter, serving limits and optional
// ingest daemon). Nothing is shared between collections except the process:
// a publish into collection A cannot perturb collection B's version stamps,
// and a quota exhausted in A sheds only A's queries — per-collection
// failure isolation falls out of per-collection ownership rather than
// being enforced after the fact.
//
// HTTP routing:
//
//   /v1/collections              list registered collections (JSON)
//   /v1/c/<name>                 one collection's info (version, quotas)
//   /v1/c/<name>/<endpoint>      any ApiEndpoints / ingest endpoint of
//                                <name>: men2ent, getConcept_batch, isa,
//                                ingest, healthz, metrics, ... — the path
//                                is rewritten to its bare form and handled
//                                by the collection's own endpoint stack.
//   anything else                the default collection, byte-compatible
//                                with a single-tenant server: a process
//                                hosting only "default" answers exactly
//                                like one built from ApiEndpoints alone.
//
// Each collection's ApiEndpoints owns its own ResultCache (when caching is
// enabled), so cache keys are collection-scoped by construction — there is
// no shared keyspace for one tenant's entries to collide with another's.
// Per-collection metrics embed the collection in the metric name
// (coll.<name>.http.requests / coll.<name>.http.errors): that is this
// codebase's "collection label", since the Prometheus exporter flattens
// every name into [a-z0-9_] and real labels cannot survive it.
//
// Persistence: with a root_dir, the manager keeps a registry file
// (root_dir/collections.reg, checksummed TSV) and one snapshot per
// snapshot-backed collection (root_dir/<name>/snapshot.bin, written via
// taxonomy::WriteSnapshot). Open() restores every snapshot-backed entry
// with mmap-backed views. Ingest-backed collections need their updater
// wired by the caller (an IncrementalUpdater cannot be reconstructed from
// the registry alone); their registry rows survive Open()/persist cycles
// untouched until AddIngestCollection re-attaches them.
class CollectionManager {
 public:
  // Per-collection overload policy, applied to the collection's ApiService
  // as taxonomy::ApiService::ServingLimits. Zero means unlimited.
  struct Quotas {
    size_t max_in_flight = 0;
    std::chrono::microseconds deadline{0};
  };

  struct Options {
    // Registry + per-collection state live under root_dir/<name>/. Empty
    // disables persistence (in-memory collections only).
    std::string root_dir;
    // The collection bare (un-prefixed) paths route to.
    std::string default_collection = "default";
    // When true, every collection's endpoints run a private ResultCache
    // built from cache_config.
    bool enable_cache = false;
    server::ResultCache::Config cache_config;
  };

  explicit CollectionManager(Options options);
  ~CollectionManager();  // StopAll()

  CollectionManager(const CollectionManager&) = delete;
  CollectionManager& operator=(const CollectionManager&) = delete;

  // Restores snapshot-backed collections registered in root_dir (no-op
  // without a root_dir or registry file). Ingest-backed registry rows are
  // remembered for re-attachment but not restored here.
  util::Status Open();

  // Registers a read-only collection served from `view`. With a root_dir
  // the view is persisted to root_dir/<name>/snapshot.bin so Open() can
  // restore it mmap-backed. Fails on duplicate or invalid names
  // ([A-Za-z0-9_.-], max 64 chars).
  util::Status AddCollection(const std::string& name,
                             std::shared_ptr<const taxonomy::ServingView> view,
                             Quotas quotas);
  util::Status AddCollection(
      const std::string& name,
      std::shared_ptr<const taxonomy::ServingView> view);

  // Registers an ingest-enabled collection: a fresh ApiService over the
  // updater's current state, an IngestDaemon (owned by the manager;
  // daemon_options.wal_dir defaults to root_dir/<name>/wal) started here —
  // so WAL recovery runs before the first request — and ingest endpoints
  // layered in front of the query endpoints. `updater` is not owned and
  // must outlive the manager.
  util::Status AddIngestCollection(const std::string& name,
                                   core::IncrementalUpdater* updater,
                                   ingest::IngestDaemon::Options daemon_options,
                                   Quotas quotas);
  util::Status AddIngestCollection(
      const std::string& name, core::IncrementalUpdater* updater,
      ingest::IngestDaemon::Options daemon_options);

  // Drains (for ingest collections) and deregisters. The default
  // collection cannot be dropped. On-disk snapshots are left in place;
  // only the registry row is removed.
  util::Status DropCollection(const std::string& name);

  // Drains every ingest daemon. Collections stay queryable afterwards.
  util::Status StopAll();

  // The process-wide handler implementing the routing table above.
  HttpResponse Handle(const HttpRequest& request);
  HttpServer::Handler AsHandler();

  // Introspection (for tests / examples). The returned pointers stay valid
  // until the collection is dropped or the manager destroyed.
  std::vector<std::string> names() const;
  taxonomy::ApiService* service(std::string_view name) const;
  ingest::IngestDaemon* daemon(std::string_view name) const;
  size_t size() const;
  const Options& options() const { return options_; }

 private:
  struct Collection {
    std::string name;
    bool ingest = false;
    Quotas quotas;
    // Restored mmap views are owned here; the ApiService pins what it
    // serves, but the initial shared_ptr must live somewhere.
    std::shared_ptr<const taxonomy::ServingView> keepalive;
    std::unique_ptr<taxonomy::ApiService> service;
    std::unique_ptr<server::ApiEndpoints> endpoints;
    std::unique_ptr<ingest::IngestDaemon> daemon;
    std::unique_ptr<server::IngestEndpoints> ingest_endpoints;
    obs::Counter* requests = nullptr;  // coll.<name>.http.requests
    obs::Counter* errors = nullptr;    // coll.<name>.http.errors

    HttpResponse Handle(const HttpRequest& request);
  };

  util::Status ValidateName(const std::string& name) const;
  std::shared_ptr<Collection> Find(std::string_view name) const;
  std::shared_ptr<Collection> MakeCollection(const std::string& name,
                                             Quotas quotas);
  // Serialises + atomically rewrites the registry. Caller holds mu_.
  util::Status PersistRegistryLocked();
  HttpResponse ListCollections();
  HttpResponse CollectionInfo(const Collection& collection);

  const Options options_;

  mutable std::shared_mutex mu_;
  // Insertion order preserved for deterministic /v1/collections listings.
  std::vector<std::shared_ptr<Collection>> collections_;
  // Registry rows for ingest collections seen by Open() but not yet
  // re-attached: preserved verbatim by PersistRegistryLocked so a restart
  // that never re-attaches them does not silently drop their registration.
  std::vector<std::string> detached_rows_;
};

}  // namespace cnpb::collections

#endif  // CNPROBASE_COLLECTIONS_MANAGER_H_
