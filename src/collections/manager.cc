#include "collections/manager.h"

#include <algorithm>
#include <utility>

#include "ingest/wal.h"
#include "taxonomy/snapshot.h"
#include "util/atomic_file.h"
#include "util/json.h"
#include "util/strings.h"

namespace cnpb::collections {

namespace {

using util::JsonString;
using util::JsonUInt;

constexpr char kRegistryFile[] = "collections.reg";
constexpr char kSnapshotFile[] = "snapshot.bin";
constexpr size_t kMaxNameLength = 64;

// Same wire error shape as ApiEndpoints (DESIGN.md §9), built locally so
// the routing layer does not need a friend handle into the server library.
HttpResponse ErrorResponse(int status, util::StatusCode code,
                           const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = std::string("{\"error\":{\"code\":") +
                  JsonString(util::StatusCodeName(code)) +
                  ",\"message\":" + JsonString(message) + "}}\n";
  return response;
}

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

std::string CollectionDir(const std::string& root, const std::string& name) {
  return root + "/" + name;
}

}  // namespace

HttpResponse CollectionManager::Collection::Handle(
    const HttpRequest& request) {
  requests->Increment();
  HttpResponse response = ingest_endpoints != nullptr
                              ? ingest_endpoints->Handle(request)
                              : endpoints->Handle(request);
  if (response.status >= 400) errors->Increment();
  return response;
}

CollectionManager::CollectionManager(Options options)
    : options_(std::move(options)) {}

util::Status CollectionManager::AddCollection(
    const std::string& name,
    std::shared_ptr<const taxonomy::ServingView> view) {
  return AddCollection(name, std::move(view), Quotas());
}

util::Status CollectionManager::AddIngestCollection(
    const std::string& name, core::IncrementalUpdater* updater,
    ingest::IngestDaemon::Options daemon_options) {
  return AddIngestCollection(name, updater, std::move(daemon_options),
                             Quotas());
}

CollectionManager::~CollectionManager() { (void)StopAll(); }

util::Status CollectionManager::ValidateName(const std::string& name) const {
  if (name.empty() || name.size() > kMaxNameLength) {
    return util::InvalidArgumentError(
        "collection name must be 1..64 characters: '" + name + "'");
  }
  for (const char c : name) {
    if (!ValidNameChar(c)) {
      return util::InvalidArgumentError(
          "collection name may only contain [A-Za-z0-9_.-]: '" + name + "'");
    }
  }
  return util::Status::Ok();
}

std::shared_ptr<CollectionManager::Collection> CollectionManager::Find(
    std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& collection : collections_) {
    if (collection->name == name) return collection;
  }
  return nullptr;
}

std::shared_ptr<CollectionManager::Collection>
CollectionManager::MakeCollection(const std::string& name, Quotas quotas) {
  auto collection = std::make_shared<Collection>();
  collection->name = name;
  collection->quotas = quotas;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  collection->requests =
      registry.counter("coll." + name + ".http.requests");
  collection->errors = registry.counter("coll." + name + ".http.errors");
  return collection;
}

util::Status CollectionManager::AddCollection(
    const std::string& name, std::shared_ptr<const taxonomy::ServingView> view,
    Quotas quotas) {
  CNPB_RETURN_IF_ERROR(ValidateName(name));
  if (view == nullptr) {
    return util::InvalidArgumentError("collection '" + name +
                                         "' needs a serving view");
  }
  if (Find(name) != nullptr) {
    return util::InvalidArgumentError("collection already exists: " + name);
  }
  if (!options_.root_dir.empty()) {
    const std::string dir = CollectionDir(options_.root_dir, name);
    CNPB_RETURN_IF_ERROR(ingest::EnsureDir(options_.root_dir));
    CNPB_RETURN_IF_ERROR(ingest::EnsureDir(dir));
    CNPB_RETURN_IF_ERROR(
        taxonomy::WriteSnapshot(*view, dir + "/" + kSnapshotFile));
  }
  std::shared_ptr<Collection> collection = MakeCollection(name, quotas);
  collection->keepalive = view;
  collection->service = std::make_unique<taxonomy::ApiService>(view);
  collection->service->SetServingLimits(
      {quotas.max_in_flight, quotas.deadline});
  collection->endpoints =
      options_.enable_cache
          ? std::make_unique<server::ApiEndpoints>(collection->service.get(),
                                                   options_.cache_config)
          : std::make_unique<server::ApiEndpoints>(collection->service.get());
  std::unique_lock<std::shared_mutex> lock(mu_);
  collections_.push_back(std::move(collection));
  return PersistRegistryLocked();
}

util::Status CollectionManager::AddIngestCollection(
    const std::string& name, core::IncrementalUpdater* updater,
    ingest::IngestDaemon::Options daemon_options, Quotas quotas) {
  CNPB_RETURN_IF_ERROR(ValidateName(name));
  if (updater == nullptr) {
    return util::InvalidArgumentError("collection '" + name +
                                         "' needs an updater");
  }
  if (Find(name) != nullptr) {
    return util::InvalidArgumentError("collection already exists: " + name);
  }
  if (daemon_options.wal_dir.empty()) {
    if (options_.root_dir.empty()) {
      return util::InvalidArgumentError(
          "ingest collection '" + name +
          "' needs a wal_dir (no manager root_dir to derive one from)");
    }
    // EnsureDir creates one level: build root/<name>/wal piecewise.
    CNPB_RETURN_IF_ERROR(ingest::EnsureDir(options_.root_dir));
    CNPB_RETURN_IF_ERROR(
        ingest::EnsureDir(CollectionDir(options_.root_dir, name)));
    daemon_options.wal_dir =
        CollectionDir(options_.root_dir, name) + "/wal";
  }
  CNPB_RETURN_IF_ERROR(ingest::EnsureDir(daemon_options.wal_dir));
  std::shared_ptr<Collection> collection = MakeCollection(name, quotas);
  collection->ingest = true;
  collection->service =
      std::make_unique<taxonomy::ApiService>(updater->snapshot());
  collection->service->SetServingLimits(
      {quotas.max_in_flight, quotas.deadline});
  collection->endpoints =
      options_.enable_cache
          ? std::make_unique<server::ApiEndpoints>(collection->service.get(),
                                                   options_.cache_config)
          : std::make_unique<server::ApiEndpoints>(collection->service.get());
  collection->daemon = std::make_unique<ingest::IngestDaemon>(
      updater, collection->service.get(), std::move(daemon_options));
  // Recovery before registration: the collection only becomes routable
  // with its WAL suffix already replayed and republished.
  CNPB_RETURN_IF_ERROR(collection->daemon->Start());
  collection->ingest_endpoints = std::make_unique<server::IngestEndpoints>(
      collection->daemon.get(), collection->endpoints->AsHandler());
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-attaching a registry row Open() preserved: drop the detached copy.
  const std::string prefix = name + "\t";
  detached_rows_.erase(
      std::remove_if(detached_rows_.begin(), detached_rows_.end(),
                     [&](const std::string& row) {
                       return util::StartsWith(row, prefix);
                     }),
      detached_rows_.end());
  collections_.push_back(std::move(collection));
  return PersistRegistryLocked();
}

util::Status CollectionManager::DropCollection(const std::string& name) {
  if (name == options_.default_collection) {
    return util::InvalidArgumentError(
        "the default collection cannot be dropped: " + name);
  }
  std::shared_ptr<Collection> victim;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (auto it = collections_.begin(); it != collections_.end(); ++it) {
      if ((*it)->name == name) {
        victim = *it;
        collections_.erase(it);
        break;
      }
    }
    if (victim == nullptr) {
      return util::NotFoundError("no such collection: " + name);
    }
    CNPB_RETURN_IF_ERROR(PersistRegistryLocked());
  }
  // Drain outside the lock: in-flight requests holding the shared_ptr can
  // finish, and the daemon flushes acked operations before the drop
  // completes. On-disk state is left for a future re-attach.
  if (victim->daemon != nullptr && victim->daemon->running()) {
    return victim->daemon->Stop(ingest::IngestDaemon::StopMode::kDrain);
  }
  return util::Status::Ok();
}

util::Status CollectionManager::StopAll() {
  std::vector<std::shared_ptr<Collection>> snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    snapshot = collections_;
  }
  util::Status first_error = util::Status::Ok();
  for (const auto& collection : snapshot) {
    if (collection->daemon != nullptr && collection->daemon->running()) {
      const util::Status status =
          collection->daemon->Stop(ingest::IngestDaemon::StopMode::kDrain);
      if (!status.ok() && first_error.ok()) first_error = status;
    }
  }
  return first_error;
}

util::Status CollectionManager::Open() {
  if (options_.root_dir.empty()) return util::Status::Ok();
  const std::string path = options_.root_dir + "/" + kRegistryFile;
  util::Result<std::string> raw = util::ReadFileToString(path);
  if (!raw.ok()) return util::Status::Ok();  // no registry yet
  util::Result<std::string> payload =
      util::StripVerifyChecksumFooter(std::move(*raw), path);
  CNPB_RETURN_IF_ERROR(payload.status());
  for (const std::string& line : util::Split(*payload, '\n')) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() != 4) {
      return util::DataLossError("malformed registry row in " + path +
                                    ": '" + line + "'");
    }
    Quotas quotas;
    uint64_t max_in_flight = 0, deadline_us = 0;
    if (!util::ParseUint64(fields[1], &max_in_flight) ||
        !util::ParseUint64(fields[2], &deadline_us) ||
        (fields[3] != "0" && fields[3] != "1")) {
      return util::DataLossError("malformed registry row in " + path +
                                    ": '" + line + "'");
    }
    quotas.max_in_flight = static_cast<size_t>(max_in_flight);
    quotas.deadline = std::chrono::microseconds(deadline_us);
    if (fields[3] == "1") {
      // Ingest collections need their updater re-wired by the caller;
      // keep the row so persistence does not drop the registration.
      std::unique_lock<std::shared_mutex> lock(mu_);
      detached_rows_.push_back(line);
      continue;
    }
    const std::string snapshot_path =
        CollectionDir(options_.root_dir, fields[0]) + "/" + kSnapshotFile;
    util::Result<std::shared_ptr<const taxonomy::Snapshot>> snapshot =
        taxonomy::Snapshot::Load(snapshot_path);
    CNPB_RETURN_IF_ERROR(snapshot.status());
    std::shared_ptr<Collection> collection =
        MakeCollection(fields[0], quotas);
    collection->keepalive = *snapshot;
    collection->service =
        std::make_unique<taxonomy::ApiService>(collection->keepalive);
    collection->service->SetServingLimits(
        {quotas.max_in_flight, quotas.deadline});
    collection->endpoints =
        options_.enable_cache
            ? std::make_unique<server::ApiEndpoints>(
                  collection->service.get(), options_.cache_config)
            : std::make_unique<server::ApiEndpoints>(
                  collection->service.get());
    std::unique_lock<std::shared_mutex> lock(mu_);
    collections_.push_back(std::move(collection));
  }
  return util::Status::Ok();
}

util::Status CollectionManager::PersistRegistryLocked() {
  if (options_.root_dir.empty()) return util::Status::Ok();
  CNPB_RETURN_IF_ERROR(ingest::EnsureDir(options_.root_dir));
  std::string payload;
  for (const auto& collection : collections_) {
    payload += collection->name + "\t" +
               std::to_string(collection->quotas.max_in_flight) + "\t" +
               std::to_string(collection->quotas.deadline.count()) + "\t" +
               (collection->ingest ? "1" : "0") + "\n";
  }
  for (const std::string& row : detached_rows_) payload += row + "\n";
  util::AtomicWriteOptions write_options;
  write_options.checksum_footer = true;
  write_options.fault_prefix = "collections.registry";
  return util::WriteFileAtomic(options_.root_dir + "/" + kRegistryFile,
                               payload, write_options);
}

HttpResponse CollectionManager::ListCollections() {
  std::vector<std::shared_ptr<Collection>> snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    snapshot = collections_;
  }
  HttpResponse response;
  std::string body =
      "{\"count\":" + JsonUInt(snapshot.size()) + ",\"collections\":[";
  bool first = true;
  for (const auto& collection : snapshot) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":" + JsonString(collection->name) +
            ",\"version\":" + JsonUInt(collection->service->version()) +
            ",\"ingest\":" + (collection->ingest ? "true" : "false") + "}";
  }
  body += "]}\n";
  response.body = std::move(body);
  return response;
}

HttpResponse CollectionManager::CollectionInfo(const Collection& collection) {
  HttpResponse response;
  response.body =
      "{\"collection\":" + JsonString(collection.name) +
      ",\"version\":" + JsonUInt(collection.service->version()) +
      ",\"ingest\":" + (collection.ingest ? "true" : "false") +
      ",\"quotas\":{\"max_in_flight\":" +
      JsonUInt(collection.quotas.max_in_flight) + ",\"deadline_us\":" +
      JsonUInt(static_cast<uint64_t>(collection.quotas.deadline.count())) +
      "}}\n";
  response.headers.emplace_back(server::ApiEndpoints::kVersionHeader,
                                std::to_string(collection.service->version()));
  return response;
}

HttpResponse CollectionManager::Handle(const HttpRequest& request) {
  const std::string_view path = request.path;
  if (path == "/v1/collections") {
    if (request.method != "GET" && request.method != "HEAD") {
      HttpResponse response =
          ErrorResponse(405, util::StatusCode::kInvalidArgument,
                        "method not allowed: " + request.method);
      response.headers.emplace_back("Allow", "GET, HEAD");
      return response;
    }
    return ListCollections();
  }
  if (util::StartsWith(path, "/v1/c/")) {
    const std::string_view rest = path.substr(6);
    const size_t slash = rest.find('/');
    const std::string_view name =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    const std::shared_ptr<Collection> collection = Find(name);
    if (collection == nullptr) {
      return ErrorResponse(404, util::StatusCode::kNotFound,
                           "no such collection: " + std::string(name));
    }
    const std::string_view suffix =
        slash == std::string_view::npos ? std::string_view()
                                        : rest.substr(slash);
    if (suffix.empty() || suffix == "/") return CollectionInfo(*collection);
    // Rewrite to the bare path the collection's endpoint stack speaks;
    // params/body/method pass through untouched.
    HttpRequest rewritten = request;
    if (suffix == "/healthz" || suffix == "/metrics") {
      rewritten.path = std::string(suffix);
    } else {
      rewritten.path = "/v1" + std::string(suffix);
    }
    return collection->Handle(rewritten);
  }
  // Bare paths serve the default collection byte-compatibly with a
  // single-tenant server.
  const std::shared_ptr<Collection> fallback =
      Find(options_.default_collection);
  if (fallback == nullptr) {
    return ErrorResponse(503, util::StatusCode::kIoError,
                         "default collection not registered: " +
                             options_.default_collection);
  }
  return fallback->Handle(request);
}

HttpServer::Handler CollectionManager::AsHandler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

std::vector<std::string> CollectionManager::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& collection : collections_) out.push_back(collection->name);
  return out;
}

taxonomy::ApiService* CollectionManager::service(std::string_view name) const {
  const std::shared_ptr<Collection> collection = Find(name);
  return collection == nullptr ? nullptr : collection->service.get();
}

ingest::IngestDaemon* CollectionManager::daemon(std::string_view name) const {
  const std::shared_ptr<Collection> collection = Find(name);
  return collection == nullptr ? nullptr : collection->daemon.get();
}

size_t CollectionManager::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return collections_.size();
}

}  // namespace cnpb::collections
