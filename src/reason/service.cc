#include "reason/service.h"

#include <algorithm>
#include <utility>

#include "taxonomy/view.h"

namespace cnpb::reason {

namespace {

using taxonomy::NodeId;
using taxonomy::ServingView;
using taxonomy::kInvalidNode;

// Same 1-in-64 per-thread latency sample as the ApiService query path, for
// the same reason: two steady_clock reads per call would be measurable.
bool SampleLatency() {
  thread_local uint32_t tick = 0;
  return (++tick & 63u) == 0;
}

}  // namespace

ReasonService::ReasonService(taxonomy::ApiService* api)
    : ReasonService(api, Limits()) {}

ReasonService::ReasonService(taxonomy::ApiService* api, Limits limits)
    : api_(api), limits_(limits) {}

util::Result<ReasonService::IsaResolved> ReasonService::TryIsa(
    std::string_view entity, std::string_view concept_name,
    size_t max_depth) const {
  isa_calls_.fetch_add(1, std::memory_order_relaxed);
  calls_isa_->Increment();
  obs::ScopedTimer timer(SampleLatency() ? latency_isa_ : nullptr);
  const size_t depth = std::min(max_depth, limits_.max_depth_cap);
  IsaResolved out;
  CNPB_RETURN_IF_ERROR(api_->TryQuery(
      "isa", [&](const ServingView& view, uint64_t version) {
        out.version = version;
        const NodeId e = view.Find(entity);
        const NodeId c = view.Find(concept_name);
        out.entity_known = e != kInvalidNode;
        out.concept_known = c != kInvalidNode;
        if (!out.entity_known || !out.concept_known) {
          return util::Status::Ok();
        }
        const IsaResult result = IsaClosure(view, e, c, depth);
        out.isa = result.reached;
        out.depth = result.depth;
        out.path.reserve(result.path.size());
        for (const NodeId id : result.path) {
          out.path.emplace_back(view.Name(id));
        }
        return util::Status::Ok();
      }));
  return out;
}

util::Result<ReasonService::LcaResolved> ReasonService::TryLca(
    std::string_view a, std::string_view b, size_t max_depth) const {
  lca_calls_.fetch_add(1, std::memory_order_relaxed);
  calls_lca_->Increment();
  obs::ScopedTimer timer(SampleLatency() ? latency_lca_ : nullptr);
  const size_t depth = std::min(max_depth, limits_.max_depth_cap);
  LcaResolved out;
  CNPB_RETURN_IF_ERROR(api_->TryQuery(
      "lca", [&](const ServingView& view, uint64_t version) {
        out.version = version;
        const NodeId na = view.Find(a);
        const NodeId nb = view.Find(b);
        out.a_known = na != kInvalidNode;
        out.b_known = nb != kInvalidNode;
        if (!out.a_known || !out.b_known) return util::Status::Ok();
        const LcaResult result = LowestCommonAncestor(view, na, nb, depth);
        if (result.node != kInvalidNode) {
          out.found = true;
          out.lca = std::string(view.Name(result.node));
          out.depth_a = result.depth_a;
          out.depth_b = result.depth_b;
        }
        return util::Status::Ok();
      }));
  return out;
}

util::Result<ReasonService::RankedResolved> ReasonService::TrySimilar(
    std::string_view entity, size_t k) const {
  similar_calls_.fetch_add(1, std::memory_order_relaxed);
  calls_similar_->Increment();
  obs::ScopedTimer timer(SampleLatency() ? latency_similar_ : nullptr);
  const size_t capped_k = std::min(k, limits_.max_k);
  RankedResolved out;
  CNPB_RETURN_IF_ERROR(api_->TryQuery(
      "similar", [&](const ServingView& view, uint64_t version) {
        out.version = version;
        const NodeId id = view.Find(entity);
        out.known = id != kInvalidNode;
        if (!out.known) return util::Status::Ok();
        for (const Scored& s :
             SimilarEntities(view, id, capped_k, limits_.max_candidates)) {
          out.results.push_back(
              {std::string(view.Name(s.node)), s.score, s.tie});
        }
        return util::Status::Ok();
      }));
  return out;
}

util::Result<ReasonService::RankedResolved> ReasonService::TryExpand(
    std::string_view concept_name, size_t k) const {
  expand_calls_.fetch_add(1, std::memory_order_relaxed);
  calls_expand_->Increment();
  obs::ScopedTimer timer(SampleLatency() ? latency_expand_ : nullptr);
  const size_t capped_k = std::min(k, limits_.max_k);
  RankedResolved out;
  CNPB_RETURN_IF_ERROR(api_->TryQuery(
      "expand", [&](const ServingView& view, uint64_t version) {
        out.version = version;
        const NodeId id = view.Find(concept_name);
        out.known = id != kInvalidNode;
        if (!out.known) return util::Status::Ok();
        for (const Scored& s :
             ExpandConcept(view, id, capped_k, limits_.max_candidates)) {
          out.results.push_back(
              {std::string(view.Name(s.node)), s.score, s.tie});
        }
        return util::Status::Ok();
      }));
  return out;
}

ReasonService::UsageStats ReasonService::usage() const {
  UsageStats stats;
  stats.isa_calls = isa_calls_.load(std::memory_order_relaxed);
  stats.lca_calls = lca_calls_.load(std::memory_order_relaxed);
  stats.similar_calls = similar_calls_.load(std::memory_order_relaxed);
  stats.expand_calls = expand_calls_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cnpb::reason
