#ifndef CNPROBASE_REASON_ENGINE_H_
#define CNPROBASE_REASON_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "taxonomy/view.h"

namespace cnpb::reason {

// Pure graph reasoning over one pinned ServingView (DESIGN.md §14). Every
// function here is stateless and reads only the view it is handed, so the
// caller owns version coherence: pin a view, run the query, stamp the
// result with that view's version.
//
// Cycle-safety contract: every traversal in this file carries an explicit
// visited set and terminates on arbitrary isA graphs. Taxonomy::AddIsa only
// rejects self-loops — multi-node cycles can and do reach serving (synth
// worlds emit them via merge), so termination must never rely on the graph
// being a DAG. A node is expanded at most once per traversal; BFS order
// makes the first touch the minimal isA distance, which is what the depth
// tags below mean even on cyclic graphs.
//
// Determinism contract: discovery follows the view's canonical edge order
// (see view.h) and every ranking is totally ordered — score, then
// tie-break score, then node id — so heap- and mmap-backed views return
// bit-identical results (tests/reason_equivalence_test.cc holds both
// backends to this). Node ids are identical across backends by the
// snapshot round-trip contract, which is what makes id a valid final
// tie-break.

struct IsaResult {
  bool reached = false;
  // Minimal number of isA steps from entity to concept when reached
  // (0 == same node), -1 otherwise.
  int depth = -1;
  // Witness path entity..concept inclusive when reached, empty otherwise.
  std::vector<taxonomy::NodeId> path;
};

// Bounded transitive isA: is `concept_id` reachable from `entity_id` by at
// most `max_depth` upward (hypernym) steps? Iterative BFS; the visited map
// doubles as the parent map for witness-path reconstruction, so cost is
// proportional to the explored subgraph, not the taxonomy.
IsaResult IsaClosure(const taxonomy::ServingView& view,
                     taxonomy::NodeId entity_id, taxonomy::NodeId concept_id,
                     size_t max_depth);

struct Ancestor {
  taxonomy::NodeId node = taxonomy::kInvalidNode;
  uint32_t depth = 0;  // minimal isA distance from the start node
};

// Every ancestor reachable in [1, max_depth] steps, depth-tagged, in BFS
// level order (canonical edge order within a level), excluding the start
// node. Capped at `limit` nodes.
std::vector<Ancestor> Ancestors(const taxonomy::ServingView& view,
                                taxonomy::NodeId id, size_t max_depth,
                                size_t limit = 10000);

struct LcaResult {
  taxonomy::NodeId node = taxonomy::kInvalidNode;  // kInvalidNode: none
  uint32_t depth_a = 0;  // minimal isA distance from a
  uint32_t depth_b = 0;  // minimal isA distance from b
};

// Lowest common ancestor via two depth-tagged upward sweeps bounded by
// `max_depth` each. A node is its own ancestor at depth 0, so
// LCA(x, x) == x and LCA(child, parent) == parent. Tie-breaking among
// common ancestors: minimal depth_a + depth_b, then minimal
// max(depth_a, depth_b), then smallest node id.
LcaResult LowestCommonAncestor(const taxonomy::ServingView& view,
                               taxonomy::NodeId a, taxonomy::NodeId b,
                               size_t max_depth);

struct Scored {
  taxonomy::NodeId node = taxonomy::kInvalidNode;
  double score = 0.0;  // Jaccard / weighted overlap, in (0, 1]
  float tie = 0.0f;    // best shared-edge (CopyNet) score, the tie-breaker
};

// Sibling / similar-entity query: candidates are co-hyponyms (nodes
// sharing at least one direct hypernym with `id`), ranked by Jaccard
// overlap of direct-hypernym sets; ties broken by the candidate's best
// edge score to a shared hypernym (CopyNet confidence where the edge came
// from the generation stage), then node id. At most `max_candidates`
// distinct candidates are examined, in canonical discovery order.
std::vector<Scored> SimilarEntities(const taxonomy::ServingView& view,
                                    taxonomy::NodeId id, size_t k,
                                    size_t max_candidates = 4096);

// Concept expansion: ranks candidate children for seed concept `id`
// (HiExpan-style tree growth). A hypernym profile is built from the seed's
// existing children — each co-occurring hypernym weighted by the fraction
// of children carrying it — and candidates (hyponyms of profile concepts,
// minus the seed and its existing children) are scored by the weighted
// overlap between their own hypernym set and the profile, normalised
// Jaccard-style by the union size. Childless seeds fall back to a profile
// of the seed's own hypernyms, which ranks the seed's siblings' style of
// node instead of returning nothing.
std::vector<Scored> ExpandConcept(const taxonomy::ServingView& view,
                                  taxonomy::NodeId id, size_t k,
                                  size_t max_candidates = 4096);

}  // namespace cnpb::reason

#endif  // CNPROBASE_REASON_ENGINE_H_
