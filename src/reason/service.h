#ifndef CNPROBASE_REASON_SERVICE_H_
#define CNPROBASE_REASON_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "reason/engine.h"
#include "taxonomy/api_service.h"
#include "util/status.h"

namespace cnpb::reason {

// Version-stamped reasoning queries over an ApiService's pinned snapshots —
// the serving face of engine.h, shaped like the ApiService Try* variants so
// the HTTP layer maps it onto the same wire contract (DESIGN.md §14).
//
// Every call runs under the host service's admission/deadline policy via
// ApiService::TryQuery: it can be shed (ResourceExhausted), timed out
// (DeadlineExceeded), or fault-injected (IoError at api.query/api.resolve),
// and it resolves names entirely against the one view it pinned. Unknown
// names are NOT errors at this layer: the result structs carry *_known
// flags plus the pinned version, so the HTTP layer can emit a cacheable,
// version-stamped 404 — only transient outcomes surface as Status errors,
// which is exactly the cacheable/uncacheable split the ResultCache needs.
class ReasonService {
 public:
  struct Limits {
    size_t max_depth_cap = 16;    // isa/lca max_depth ceiling
    size_t max_k = 100;           // similar/expand k ceiling
    size_t max_candidates = 4096; // candidate scan bound per ranking query
  };

  // `api` is not owned and must outlive the service.
  explicit ReasonService(taxonomy::ApiService* api);
  ReasonService(taxonomy::ApiService* api, Limits limits);

  struct IsaResolved {
    uint64_t version = 0;
    bool entity_known = false;
    bool concept_known = false;
    bool isa = false;
    int depth = -1;                  // minimal isA steps when isa
    std::vector<std::string> path;   // names entity..concept when isa
  };
  util::Result<IsaResolved> TryIsa(std::string_view entity,
                                   std::string_view concept_name,
                                   size_t max_depth) const;

  struct LcaResolved {
    uint64_t version = 0;
    bool a_known = false;
    bool b_known = false;
    bool found = false;
    std::string lca;                 // name, when found
    uint32_t depth_a = 0;
    uint32_t depth_b = 0;
  };
  util::Result<LcaResolved> TryLca(std::string_view a, std::string_view b,
                                   size_t max_depth) const;

  struct ScoredName {
    std::string name;
    double score = 0.0;
    float tie = 0.0f;
  };
  struct RankedResolved {
    uint64_t version = 0;
    bool known = false;              // the query term resolved to a node
    std::vector<ScoredName> results;
  };
  util::Result<RankedResolved> TrySimilar(std::string_view entity,
                                          size_t k) const;
  util::Result<RankedResolved> TryExpand(std::string_view concept_name,
                                         size_t k) const;

  struct UsageStats {
    uint64_t isa_calls = 0;
    uint64_t lca_calls = 0;
    uint64_t similar_calls = 0;
    uint64_t expand_calls = 0;
    uint64_t total() const {
      return isa_calls + lca_calls + similar_calls + expand_calls;
    }
  };
  UsageStats usage() const;

  const Limits& limits() const { return limits_; }

 private:
  taxonomy::ApiService* const api_;
  const Limits limits_;

  mutable std::atomic<uint64_t> isa_calls_{0};
  mutable std::atomic<uint64_t> lca_calls_{0};
  mutable std::atomic<uint64_t> similar_calls_{0};
  mutable std::atomic<uint64_t> expand_calls_{0};

  obs::Counter* const calls_isa_ =
      obs::MetricsRegistry::Global().counter("reason.calls.isa");
  obs::Counter* const calls_lca_ =
      obs::MetricsRegistry::Global().counter("reason.calls.lca");
  obs::Counter* const calls_similar_ =
      obs::MetricsRegistry::Global().counter("reason.calls.similar");
  obs::Counter* const calls_expand_ =
      obs::MetricsRegistry::Global().counter("reason.calls.expand");
  obs::BucketHistogram* const latency_isa_ =
      obs::MetricsRegistry::Global().histogram("reason.latency.isa_seconds");
  obs::BucketHistogram* const latency_lca_ =
      obs::MetricsRegistry::Global().histogram("reason.latency.lca_seconds");
  obs::BucketHistogram* const latency_similar_ =
      obs::MetricsRegistry::Global().histogram(
          "reason.latency.similar_seconds");
  obs::BucketHistogram* const latency_expand_ =
      obs::MetricsRegistry::Global().histogram(
          "reason.latency.expand_seconds");
};

}  // namespace cnpb::reason

#endif  // CNPROBASE_REASON_SERVICE_H_
