#include "reason/engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace cnpb::reason {

namespace {

using taxonomy::HalfEdge;
using taxonomy::NodeId;
using taxonomy::ServingView;
using taxonomy::kInvalidNode;

// Sorts by (score desc, tie desc, id asc) and keeps the top k. The id leg
// makes the order total, which the cross-backend equivalence contract
// requires.
void RankTopK(std::vector<Scored>* scored, size_t k) {
  std::sort(scored->begin(), scored->end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.tie != b.tie) return a.tie > b.tie;
              return a.node < b.node;
            });
  if (scored->size() > k) scored->resize(k);
}

// Upward BFS from `start` (depth 0) through at most `max_depth` hypernym
// steps. Calls fn(node, minimal depth) once per distinct node in BFS order;
// fn returns false to stop the sweep. The visited set is the depth map —
// the explicit cycle guard every sweep in this file shares.
template <typename Fn>
void SweepUp(const ServingView& view, NodeId start, size_t max_depth,
             Fn&& fn) {
  const size_t n = view.num_nodes();
  if (start >= n) return;
  std::unordered_map<NodeId, uint32_t> depth;
  depth.emplace(start, 0);
  if (!fn(start, uint32_t{0})) return;
  std::vector<NodeId> cur{start};
  std::vector<NodeId> next;
  for (uint32_t d = 1; d <= max_depth && !cur.empty(); ++d) {
    next.clear();
    bool stopped = false;
    for (const NodeId u : cur) {
      view.VisitHypernyms(u, [&](const HalfEdge& edge) {
        const NodeId v = edge.node;
        if (v >= n || !depth.emplace(v, d).second) return true;
        if (!fn(v, d)) {
          stopped = true;
          return false;
        }
        next.push_back(v);
        return true;
      });
      if (stopped) return;
    }
    cur.swap(next);
  }
}

}  // namespace

IsaResult IsaClosure(const ServingView& view, NodeId entity_id,
                     NodeId concept_id, size_t max_depth) {
  IsaResult out;
  const size_t n = view.num_nodes();
  if (entity_id >= n || concept_id >= n) return out;
  if (entity_id == concept_id) {
    out.reached = true;
    out.depth = 0;
    out.path = {entity_id};
    return out;
  }
  // parent[v] = node v was first reached from; doubles as the visited set
  // (the cycle guard) and the witness-path back-chain.
  std::unordered_map<NodeId, NodeId> parent;
  parent.emplace(entity_id, entity_id);
  std::vector<NodeId> cur{entity_id};
  std::vector<NodeId> next;
  for (size_t d = 1; d <= max_depth && !cur.empty(); ++d) {
    next.clear();
    for (const NodeId u : cur) {
      bool found = false;
      view.VisitHypernyms(u, [&](const HalfEdge& edge) {
        const NodeId v = edge.node;
        if (v >= n || !parent.emplace(v, u).second) return true;
        if (v == concept_id) {
          found = true;
          return false;
        }
        next.push_back(v);
        return true;
      });
      if (found) {
        out.reached = true;
        out.depth = static_cast<int>(d);
        for (NodeId v = concept_id;; v = parent.at(v)) {
          out.path.push_back(v);
          if (v == entity_id) break;
        }
        std::reverse(out.path.begin(), out.path.end());
        return out;
      }
    }
    cur.swap(next);
  }
  return out;
}

std::vector<Ancestor> Ancestors(const ServingView& view, NodeId id,
                                size_t max_depth, size_t limit) {
  std::vector<Ancestor> out;
  SweepUp(view, id, max_depth, [&](NodeId node, uint32_t depth) {
    if (depth == 0) return true;  // the start node is not its own ancestor here
    out.push_back({node, depth});
    return out.size() < limit;
  });
  return out;
}

LcaResult LowestCommonAncestor(const ServingView& view, NodeId a, NodeId b,
                               size_t max_depth) {
  LcaResult best;
  const size_t n = view.num_nodes();
  if (a >= n || b >= n) return best;
  std::unordered_map<NodeId, uint32_t> depth_a;
  SweepUp(view, a, max_depth, [&](NodeId node, uint32_t depth) {
    depth_a.emplace(node, depth);
    return true;
  });
  bool have = false;
  SweepUp(view, b, max_depth, [&](NodeId node, uint32_t depth) {
    const auto it = depth_a.find(node);
    if (it == depth_a.end()) return true;
    const uint32_t da = it->second;
    const uint32_t db = depth;
    const uint64_t total = uint64_t{da} + db;
    const uint32_t worst = std::max(da, db);
    const uint64_t best_total = uint64_t{best.depth_a} + best.depth_b;
    const uint32_t best_worst = std::max(best.depth_a, best.depth_b);
    if (!have || total < best_total ||
        (total == best_total &&
         (worst < best_worst ||
          (worst == best_worst && node < best.node)))) {
      best.node = node;
      best.depth_a = da;
      best.depth_b = db;
      have = true;
    }
    return true;
  });
  return best;
}

std::vector<Scored> SimilarEntities(const ServingView& view, NodeId id,
                                    size_t k, size_t max_candidates) {
  std::vector<Scored> scored;
  const size_t n = view.num_nodes();
  if (id >= n || k == 0) return scored;
  std::vector<NodeId> hypers;
  std::unordered_set<NodeId> hyper_set;
  view.VisitHypernyms(id, [&](const HalfEdge& edge) {
    if (edge.node < n && hyper_set.insert(edge.node).second) {
      hypers.push_back(edge.node);
    }
    return true;
  });
  if (hypers.empty()) return scored;
  // Candidates in canonical discovery order: hyponyms of each direct
  // hypernym, first shared parent first. The cap bounds the scan, not the
  // result quality past it — discovery order is deterministic, so both
  // backends truncate identically.
  std::vector<NodeId> candidates;
  std::unordered_set<NodeId> cand_seen;
  for (const NodeId h : hypers) {
    if (candidates.size() >= max_candidates) break;
    view.VisitHyponyms(h, [&](const HalfEdge& edge) {
      if (candidates.size() >= max_candidates) return false;
      const NodeId c = edge.node;
      if (c < n && c != id && cand_seen.insert(c).second) {
        candidates.push_back(c);
      }
      return true;
    });
  }
  for (const NodeId c : candidates) {
    size_t total = 0;
    size_t shared = 0;
    float tie = 0.0f;
    std::unordered_set<NodeId> seen;
    view.VisitHypernyms(c, [&](const HalfEdge& edge) {
      if (edge.node >= n || !seen.insert(edge.node).second) return true;
      ++total;
      if (hyper_set.count(edge.node) > 0) {
        ++shared;
        tie = std::max(tie, edge.score);
      }
      return true;
    });
    if (shared == 0) continue;  // unreachable by construction, kept defensive
    const double unions =
        static_cast<double>(hypers.size() + total - shared);
    scored.push_back({c, static_cast<double>(shared) / unions, tie});
  }
  RankTopK(&scored, k);
  return scored;
}

std::vector<Scored> ExpandConcept(const ServingView& view, NodeId id,
                                  size_t k, size_t max_candidates) {
  std::vector<Scored> scored;
  const size_t n = view.num_nodes();
  if (id >= n || k == 0) return scored;
  std::vector<NodeId> children;
  std::unordered_set<NodeId> child_set;
  view.VisitHyponyms(id, [&](const HalfEdge& edge) {
    if (edge.node < n && edge.node != id &&
        child_set.insert(edge.node).second) {
      children.push_back(edge.node);
    }
    return true;
  });
  // The profile: hypernym -> weight. With children, weight is the fraction
  // of children carrying that hypernym (the seed itself excluded — every
  // child trivially has it). Without children, the seed's own hypernyms at
  // weight 1 describe what its siblings look like.
  std::unordered_map<NodeId, double> profile;
  std::vector<NodeId> profile_order;
  if (!children.empty()) {
    for (const NodeId c : children) {
      view.VisitHypernyms(c, [&](const HalfEdge& edge) {
        const NodeId h = edge.node;
        if (h >= n || h == id) return true;
        const auto [it, inserted] = profile.emplace(h, 0.0);
        if (inserted) profile_order.push_back(h);
        it->second += 1.0;
        return true;
      });
    }
    for (auto& [h, weight] : profile) {
      weight /= static_cast<double>(children.size());
    }
  } else {
    view.VisitHypernyms(id, [&](const HalfEdge& edge) {
      if (edge.node < n && profile.emplace(edge.node, 1.0).second) {
        profile_order.push_back(edge.node);
      }
      return true;
    });
  }
  if (profile.empty()) return scored;
  std::vector<NodeId> candidates;
  std::unordered_set<NodeId> cand_seen;
  for (const NodeId h : profile_order) {
    if (candidates.size() >= max_candidates) break;
    view.VisitHyponyms(h, [&](const HalfEdge& edge) {
      if (candidates.size() >= max_candidates) return false;
      const NodeId c = edge.node;
      if (c < n && c != id && child_set.count(c) == 0 &&
          cand_seen.insert(c).second) {
        candidates.push_back(c);
      }
      return true;
    });
  }
  for (const NodeId c : candidates) {
    size_t total = 0;
    size_t matched = 0;
    double weight_sum = 0.0;
    float tie = 0.0f;
    std::unordered_set<NodeId> seen;
    view.VisitHypernyms(c, [&](const HalfEdge& edge) {
      const NodeId h = edge.node;
      if (h >= n || h == id || !seen.insert(h).second) return true;
      ++total;
      const auto it = profile.find(h);
      if (it != profile.end()) {
        ++matched;
        weight_sum += it->second;
        tie = std::max(tie, edge.score);
      }
      return true;
    });
    if (matched == 0) continue;
    const double unions =
        static_cast<double>(profile.size() + total - matched);
    scored.push_back({c, weight_sum / unions, tie});
  }
  RankTopK(&scored, k);
  return scored;
}

}  // namespace cnpb::reason
