#include "taxonomy/prune.h"

#include <unordered_set>
#include <vector>

namespace cnpb::taxonomy {

size_t TransitiveReduceConcepts(Taxonomy* taxonomy) {
  // An edge u->v is redundant iff v is reachable from u via a path of
  // length >= 2 through concept nodes. The concept layer is small, so a
  // per-node BFS over the other parents is affordable.
  std::vector<std::pair<NodeId, NodeId>> redundant;
  for (NodeId u = 0; u < taxonomy->num_nodes(); ++u) {
    if (taxonomy->Kind(u) != NodeKind::kConcept) continue;
    const std::vector<IsaEdge> edges = taxonomy->Hypernyms(u);
    if (edges.size() < 2 && edges.size() < 1) continue;
    for (const IsaEdge& edge : edges) {
      // Reachable from u without using the direct edge u->target?
      const NodeId target = edge.hyper;
      std::unordered_set<NodeId> seen = {u};
      std::vector<NodeId> frontier;
      for (const IsaEdge& other : edges) {
        if (other.hyper != target && seen.insert(other.hyper).second) {
          frontier.push_back(other.hyper);
        }
      }
      bool reachable = false;
      while (!frontier.empty() && !reachable) {
        const NodeId current = frontier.back();
        frontier.pop_back();
        for (const IsaEdge& up : taxonomy->Hypernyms(current)) {
          if (up.hyper == target) {
            reachable = true;
            break;
          }
          if (seen.insert(up.hyper).second) frontier.push_back(up.hyper);
        }
      }
      if (reachable) redundant.emplace_back(u, target);
    }
  }
  for (const auto& [u, v] : redundant) taxonomy->RemoveIsa(u, v);
  return redundant.size();
}

size_t PruneRareConcepts(Taxonomy* taxonomy, size_t min_hyponyms) {
  std::vector<std::pair<NodeId, NodeId>> to_remove;
  for (NodeId c = 0; c < taxonomy->num_nodes(); ++c) {
    if (taxonomy->Kind(c) != NodeKind::kConcept) continue;
    if (taxonomy->Hyponyms(c).size() >= min_hyponyms) continue;
    for (const IsaEdge& in : taxonomy->Hyponyms(c)) {
      to_remove.emplace_back(in.hypo, c);
    }
    for (const IsaEdge& out : taxonomy->Hypernyms(c)) {
      to_remove.emplace_back(c, out.hyper);
    }
  }
  size_t removed = 0;
  for (const auto& [hypo, hyper] : to_remove) {
    if (taxonomy->RemoveIsa(hypo, hyper)) ++removed;
  }
  return removed;
}

}  // namespace cnpb::taxonomy
