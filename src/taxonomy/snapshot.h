#ifndef CNPROBASE_TAXONOMY_SNAPSHOT_H_
#define CNPROBASE_TAXONOMY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace cnpb::taxonomy {

// Zero-copy binary snapshot of one taxonomy version (DESIGN.md §10).
//
// A snapshot is an immutable on-disk image of a ServingView: node kinds, an
// offset-indexed string arena, structure-of-arrays CSR adjacency for both
// edge directions, and a sorted offset-array mention index. Loading is one
// mmap plus header/CRC validation — no per-row parsing, no hash-map
// rebuild — so a server cold-starts in milliseconds and queries run by
// binary search and array indexing straight off the mapped pages.
//
// On-disk layout (all integers in host byte order; a foreign-endian file
// fails the format-version check):
//
//   [0,48)    fixed header: magic "CNPBSNP1", format version, section
//             count, num_nodes, num_mentions, num_edges, total file size,
//             header CRC-32C (computed with the CRC field zeroed, covering
//             header + section table)
//   [48,432)  section table: 16 entries of {id u32, crc32c u32, offset u64,
//             size u64}, in id order
//   [432,..)  sections, each at an 8-byte-aligned offset, zero-padded
//             between, laid out in id order:
//
//   id  section             contents
//    0  kinds               u8[num_nodes]            NodeKind per node
//    1  name offsets        u64[num_nodes+1]         into the name arena
//    2  name bytes          string arena (node names, id order)
//    3  name-sorted ids     u32[num_nodes]           node ids by name bytes
//    4  hypernym rows       u64[num_nodes+1]         CSR row starts
//    5  hypernym targets    u32[num_edges]
//    6  hypernym sources    u8[num_edges]
//    7  hypernym scores     f32[num_edges]
//    8  hyponym rows        u64[num_nodes+1]
//    9  hyponym targets     u32[num_edges]
//   10  hyponym sources     u8[num_edges]
//   11  hyponym scores      f32[num_edges]
//   12  mention offsets     u64[num_mentions+1]      into the mention arena
//   13  mention bytes       string arena (mentions, sorted byte order)
//   14  mention rows        u64[num_mentions+1]      CSR into candidate ids
//   15  mention ids         u32[total candidates]
//
// Edges are stored in canonical serialization order: the global sequence is
// hypernym rows in node-id order with per-row order preserved, and the
// hyponym CSR replays that same sequence bucketed by hypernym — exactly the
// structure LoadTaxonomy produces from a TSV file, so heap- and
// snapshot-backed services answer identically (including result order).
//
// Integrity: a load validates magic/version/counts, the header CRC (which
// seals the section table, so a corrupted offset or stored section CRC is
// caught), per-section CRC-32C over every payload, and full structural
// bounds (monotonic offset arrays, edge targets < num_nodes, sources <
// kNumSources, sorted unique names/mentions). Verdicts: kInvalidArgument
// for files that are not structurally a snapshot (bad magic/version/
// layout), kDataLoss for integrity failures (truncation, trailing bytes,
// CRC mismatch). A corrupt snapshot is never served and never read out of
// bounds (tests/snapshot_robustness_test.cc holds every corruption to
// that).

inline constexpr std::string_view kSnapshotMagic = "CNPBSNP1";
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr uint32_t kSnapshotSectionCount = 16;
inline constexpr size_t kSnapshotHeaderSize = 48;
inline constexpr size_t kSnapshotSectionEntrySize = 24;

// Header + section table bytes (sections start here, 8-aligned).
constexpr size_t SnapshotPreludeSize() {
  return kSnapshotHeaderSize +
         kSnapshotSectionCount * kSnapshotSectionEntrySize;
}

// One parsed section-table entry (format tooling / corruption tests).
struct SnapshotSectionInfo {
  uint32_t id = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
};

// Serializes `view` into snapshot bytes (the writer's in-memory half).
std::string SerializeSnapshot(const ServingView& view);

// Writes `view` as a snapshot via util::AtomicFileWriter: the destination
// only ever holds a previous complete snapshot or the new complete one,
// never a torn prefix. Fault points: snapshot.write / snapshot.fsync /
// snapshot.rename.
util::Status WriteSnapshot(const ServingView& view, const std::string& path);

// Convenience writer from a frozen Taxonomy plus its mention index.
util::Status WriteSnapshot(const Taxonomy& taxonomy, MentionIndex mentions,
                           const std::string& path);

// An mmap-backed snapshot, directly usable as a published serving version
// (ApiService::Publish accepts it as a ServingView). All queries read the
// mapped pages; the file must not be modified while mapped (writers always
// replace via rename, never write in place).
class Snapshot final : public ServingView {
 public:
  // mmaps `path` and validates it (see integrity notes above). Errors:
  //   kIoError          unreadable/unmappable file (or injected
  //                     snapshot.load.read fault)
  //   kInvalidArgument  not structurally a snapshot
  //   kDataLoss         integrity failure (truncated, corrupt, trailing
  //                     bytes)
  static util::Result<std::shared_ptr<const Snapshot>> Load(
      const std::string& path);

  size_t num_nodes() const override { return num_nodes_; }
  size_t num_edges() const override { return num_edges_; }
  NodeId Find(std::string_view name) const override;
  std::string_view Name(NodeId id) const override;
  NodeKind Kind(NodeId id) const override;
  size_t NumHypernyms(NodeId id) const override;
  size_t NumHyponyms(NodeId id) const override;
  void VisitHypernyms(
      NodeId id,
      const std::function<bool(const HalfEdge&)>& fn) const override;
  void VisitHyponyms(
      NodeId id,
      const std::function<bool(const HalfEdge&)>& fn) const override;

  size_t num_mentions() const override { return num_mentions_; }
  bool HasMention(std::string_view mention) const override;
  std::vector<NodeId> MentionCandidates(
      std::string_view mention) const override;
  void VisitMentions(
      const std::function<bool(std::string_view, const NodeId*, size_t)>& fn)
      const override;

  const std::string& path() const { return file_.path(); }
  size_t file_bytes() const { return file_.size(); }

 private:
  struct Csr {
    const uint64_t* rows = nullptr;     // num rows + 1 entries
    const uint32_t* targets = nullptr;
    const uint8_t* sources = nullptr;
    const float* scores = nullptr;
  };

  Snapshot() = default;

  // Validates the mapped bytes and resolves the section pointers.
  util::Status Init();
  std::string_view NameAt(NodeId id) const;
  std::string_view MentionAt(uint32_t index) const;
  // Index into the mention arrays, or num_mentions_ when absent.
  uint32_t FindMentionIndex(std::string_view mention) const;
  void VisitAdjacent(const Csr& csr, NodeId id,
                     const std::function<bool(const HalfEdge&)>& fn) const;

  util::MmapFile file_;
  uint32_t num_nodes_ = 0;
  uint32_t num_mentions_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t num_mention_ids_ = 0;
  const uint8_t* kinds_ = nullptr;
  const uint64_t* name_offsets_ = nullptr;
  const char* name_bytes_ = nullptr;
  const uint32_t* name_sorted_ = nullptr;
  Csr hyper_;
  Csr hypo_;
  const uint64_t* mention_offsets_ = nullptr;
  const char* mention_bytes_ = nullptr;
  const uint64_t* mention_rows_ = nullptr;
  const uint32_t* mention_ids_ = nullptr;
};

// Rebuilds a mutable Taxonomy from any serving view (snapshot -> heap
// compatibility path: stats tooling, TSV re-export). The result is
// structurally identical to LoadTaxonomy of the equivalent TSV file.
util::Result<Taxonomy> MaterializeTaxonomy(const ServingView& view);

// --- Format tooling (used by the corruption tests and snapshot tools) ---

// Parses the section table without verifying checksums. Fails only when
// `bytes` is too short to contain a prelude or the magic is wrong.
util::Result<std::vector<SnapshotSectionInfo>> ReadSnapshotSections(
    std::string_view bytes);

// Recomputes the header CRC over the (possibly patched) header + section
// table. Stored section CRCs are left untouched.
util::Status ResealSnapshotHeader(std::string* bytes);

// Recomputes section `id`'s stored CRC from its current payload bytes, then
// reseals the header. Lets a test patch payload bytes and keep the file
// checksum-consistent so structural validation is what rejects it.
util::Status ResealSnapshotSection(std::string* bytes, uint32_t id);

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_SNAPSHOT_H_
