#ifndef CNPROBASE_TAXONOMY_PRUNE_H_
#define CNPROBASE_TAXONOMY_PRUNE_H_

#include <cstddef>

#include "taxonomy/taxonomy.h"

namespace cnpb::taxonomy {

// Post-processing passes over a built taxonomy.

// Removes concept-concept edges that are implied by a longer path
// (transitive reduction of the concept layer): if 男演员→演员→人物 exist,
// a direct 男演员→人物 edge is redundant. Entity→concept edges are left
// untouched — an entity's direct concept list is the API payload.
// Returns the number of edges removed. Requires an acyclic concept layer.
size_t TransitiveReduceConcepts(Taxonomy* taxonomy);

// Removes concepts whose hyponym count is below `min_hyponyms` (dropping
// their edges in both directions). Long-tail junk concepts extracted once
// are usually noise. Returns the number of edges removed.
size_t PruneRareConcepts(Taxonomy* taxonomy, size_t min_hyponyms);

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_PRUNE_H_
