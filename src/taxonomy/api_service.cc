#include "taxonomy/api_service.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace cnpb::taxonomy {

namespace {

// Query latency is sampled 1-in-256 per thread: the histogram write is
// cheap but the two steady_clock reads around a ~100ns lookup are not, and
// sampling keeps the instrumented service within the <2% overhead budget
// (enforced by bench_scaling) without losing percentile fidelity at
// realistic call volumes.
constexpr uint32_t kLatencySampleMask = 255;

bool SampleQueryLatency() {
  thread_local uint32_t tick = 0;
  return (++tick & kLatencySampleMask) == 0;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

ApiService::ApiService(const Taxonomy* taxonomy) {
  CNPB_CHECK(taxonomy != nullptr);
  Publish(util::UnownedSnapshot(taxonomy), MentionIndex());
}

ApiService::ApiService(std::shared_ptr<const Taxonomy> taxonomy,
                       MentionIndex mentions) {
  Publish(std::move(taxonomy), std::move(mentions));
}

uint64_t ApiService::Publish(std::shared_ptr<const Taxonomy> taxonomy,
                             MentionIndex mentions) {
  CNPB_CHECK(taxonomy != nullptr);
  // The publish-swap latency covers the whole critical path a reader could
  // be affected by: version assembly, overlay clear, and the pointer swap.
  obs::ScopedTimer publish_timer(publish_latency_);
  publishes_->Increment();
  // Build the whole version entry off to the side; readers keep serving the
  // previous version until the single release-ordered swap below.
  auto next = std::make_shared<Version>();
  next->taxonomy = std::move(taxonomy);
  next->mentions = std::move(mentions);
  next->queries = std::make_shared<std::atomic<uint64_t>>(0);

  std::lock_guard<std::mutex> lock(publish_mu_);
  const auto now = std::chrono::steady_clock::now();
  next->version = next_version_++;
  next->published_at = now;
  if (!history_.empty() && !history_.back().retired) {
    history_.back().retired_at = now;
    history_.back().retired = true;
  }
  VersionRecord record;
  record.version = next->version;
  record.num_edges = next->taxonomy->num_edges();
  record.num_mentions = next->mentions.size();
  record.queries = next->queries;
  record.published_at = now;
  history_.push_back(std::move(record));
  {
    // The rebuilt index supersedes the live overlay. Clearing before the
    // swap keeps every interleaving coherent: readers see either (old
    // version, overlay or empty) or (new version, empty) — never new-version
    // results mixed with old-version overlay ids.
    std::unique_lock<std::shared_mutex> overlay_lock(overlay_mu_);
    overlay_.clear();
  }
  const uint64_t version = next->version;
  snapshot_.Publish(std::move(next));
  return version;
}

std::shared_ptr<const ApiService::Version> ApiService::PinForQuery() const {
  std::shared_ptr<const Version> snap = snapshot_.Acquire();
  snap->queries->fetch_add(1, std::memory_order_relaxed);
  return snap;
}

void ApiService::RegisterMention(std::string_view mention, NodeId entity) {
  std::unique_lock<std::shared_mutex> lock(overlay_mu_);
  auto& candidates = overlay_[std::string(mention)];
  if (std::find(candidates.begin(), candidates.end(), entity) ==
      candidates.end()) {
    candidates.push_back(entity);
  }
}

std::vector<NodeId> ApiService::Men2Ent(std::string_view mention) const {
  men2ent_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_men2ent_ : nullptr);
  const std::shared_ptr<const Version> snap = PinForQuery();
  const std::string key(mention);
  std::vector<NodeId> out;
  if (auto it = snap->mentions.find(key); it != snap->mentions.end()) {
    out = it->second;
  }
  {
    std::shared_lock<std::shared_mutex> lock(overlay_mu_);
    auto it = overlay_.find(key);
    if (it != overlay_.end()) {
      for (const NodeId id : it->second) {
        if (std::find(out.begin(), out.end(), id) == out.end()) {
          out.push_back(id);
        }
      }
    }
  }
  if (out.empty()) return out;
  // Ranking reads only the pinned snapshot (ids unknown to it rank last
  // with zero hypernyms), outside any lock.
  const Taxonomy& taxonomy = *snap->taxonomy;
  std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    return taxonomy.Hypernyms(a).size() > taxonomy.Hypernyms(b).size();
  });
  return out;
}

std::vector<std::string> ApiService::GetConcept(std::string_view entity_name,
                                                bool transitive) const {
  get_concept_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_concept_
                                                : nullptr);
  const std::shared_ptr<const Version> snap = PinForQuery();
  const Taxonomy& taxonomy = *snap->taxonomy;
  const NodeId id = taxonomy.Find(entity_name);
  if (id == kInvalidNode) return {};
  // Rank by edge confidence (source prior), most trustworthy first.
  std::vector<IsaEdge> edges = taxonomy.Hypernyms(id);
  std::stable_sort(edges.begin(), edges.end(),
                   [](const IsaEdge& a, const IsaEdge& b) {
                     return a.score > b.score;
                   });
  std::vector<std::string> out;
  out.reserve(edges.size());
  std::unordered_set<NodeId> direct;
  for (const IsaEdge& edge : edges) {
    out.push_back(taxonomy.Name(edge.hyper));
    direct.insert(edge.hyper);
  }
  if (transitive) {
    for (const NodeId ancestor : taxonomy.TransitiveHypernyms(id)) {
      if (direct.count(ancestor) == 0) {
        out.push_back(taxonomy.Name(ancestor));
      }
    }
  }
  return out;
}

std::vector<std::string> ApiService::GetEntity(std::string_view concept_name,
                                               size_t limit) const {
  get_entity_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_entity_
                                                : nullptr);
  const std::shared_ptr<const Version> snap = PinForQuery();
  const Taxonomy& taxonomy = *snap->taxonomy;
  const NodeId id = taxonomy.Find(concept_name);
  if (id == kInvalidNode) return {};
  std::vector<std::string> out;
  for (const IsaEdge& edge : taxonomy.Hyponyms(id)) {
    if (out.size() >= limit) break;
    out.push_back(taxonomy.Name(edge.hypo));
  }
  return out;
}

std::shared_ptr<const Taxonomy> ApiService::CurrentTaxonomy() const {
  return snapshot_.Acquire()->taxonomy;
}

uint64_t ApiService::version() const { return snapshot_.Acquire()->version; }

std::vector<ApiService::VersionStats> ApiService::AllVersionStats() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::vector<VersionStats> out;
  out.reserve(history_.size());
  for (const VersionRecord& record : history_) {
    VersionStats stats;
    stats.version = record.version;
    stats.num_edges = record.num_edges;
    stats.num_mentions = record.num_mentions;
    stats.queries = record.queries->load(std::memory_order_relaxed);
    stats.seconds_serving = SecondsBetween(
        record.published_at, record.retired ? record.retired_at : now);
    out.push_back(stats);
  }
  return out;
}

void ApiService::ExportMetrics(obs::MetricsRegistry* registry) const {
  const auto now = std::chrono::steady_clock::now();
  // Fold this service's call totals into the registry counters as deltas
  // since the last export. Doing it here rather than per call keeps the
  // query paths at one relaxed fetch_add; several services sharing a
  // process simply sum into the same counters.
  const UsageStats current = usage();
  const auto sync = [](obs::Counter* counter, uint64_t total,
                       std::atomic<uint64_t>& exported) {
    const uint64_t previous =
        exported.exchange(total, std::memory_order_relaxed);
    if (total > previous) counter->Increment(total - previous);
  };
  sync(calls_men2ent_, current.men2ent_calls, exported_men2ent_calls_);
  sync(calls_get_concept_, current.get_concept_calls,
       exported_get_concept_calls_);
  sync(calls_get_entity_, current.get_entity_calls,
       exported_get_entity_calls_);
  // Pin the snapshot before taking publish_mu_; SnapshotHolder never takes
  // the publish lock, but keeping the two acquisitions unnested is simpler
  // to reason about.
  const std::shared_ptr<const Version> snap = snapshot_.Acquire();
  registry->gauge("api.snapshot_age_seconds")
      ->Set(SecondsBetween(snap->published_at, now));
  for (const VersionStats& stats : AllVersionStats()) {
    const std::string prefix =
        util::StrFormat("api.version.%llu.",
                        static_cast<unsigned long long>(stats.version));
    registry->gauge(prefix + "queries")
        ->Set(static_cast<double>(stats.queries));
    registry->gauge(prefix + "serving_seconds")->Set(stats.seconds_serving);
    registry->gauge(prefix + "qps")
        ->Set(stats.seconds_serving > 0.0
                  ? static_cast<double>(stats.queries) / stats.seconds_serving
                  : 0.0);
  }
}

ApiService::UsageStats ApiService::usage() const {
  UsageStats stats;
  stats.men2ent_calls = men2ent_calls_.load(std::memory_order_relaxed);
  stats.get_concept_calls = get_concept_calls_.load(std::memory_order_relaxed);
  stats.get_entity_calls = get_entity_calls_.load(std::memory_order_relaxed);
  return stats;
}

void ApiService::ResetUsage() {
  men2ent_calls_.store(0, std::memory_order_relaxed);
  get_concept_calls_.store(0, std::memory_order_relaxed);
  get_entity_calls_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(publish_mu_);
  for (const VersionRecord& record : history_) {
    record.queries->store(0, std::memory_order_relaxed);
  }
}

size_t ApiService::num_mentions() const {
  const std::shared_ptr<const Version> snap = snapshot_.Acquire();
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  size_t count = snap->mentions.size();
  for (const auto& [mention, ids] : overlay_) {
    if (snap->mentions.find(mention) == snap->mentions.end()) ++count;
  }
  return count;
}

}  // namespace cnpb::taxonomy
