#include "taxonomy/api_service.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "util/logging.h"

namespace cnpb::taxonomy {

ApiService::ApiService(const Taxonomy* taxonomy) : taxonomy_(taxonomy) {
  CNPB_CHECK(taxonomy != nullptr);
}

void ApiService::RegisterMention(std::string_view mention, NodeId entity) {
  std::unique_lock<std::shared_mutex> lock(mention_mu_);
  auto& candidates = mention_index_[std::string(mention)];
  if (std::find(candidates.begin(), candidates.end(), entity) ==
      candidates.end()) {
    candidates.push_back(entity);
  }
}

std::vector<NodeId> ApiService::Men2Ent(std::string_view mention) const {
  men2ent_calls_.fetch_add(1, std::memory_order_relaxed);
  std::vector<NodeId> out;
  {
    std::shared_lock<std::shared_mutex> lock(mention_mu_);
    auto it = mention_index_.find(std::string(mention));
    if (it == mention_index_.end()) return {};
    out = it->second;  // copy, so ranking happens outside the lock
  }
  std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    return taxonomy_->Hypernyms(a).size() > taxonomy_->Hypernyms(b).size();
  });
  return out;
}

std::vector<std::string> ApiService::GetConcept(std::string_view entity_name,
                                                bool transitive) const {
  get_concept_calls_.fetch_add(1, std::memory_order_relaxed);
  const NodeId id = taxonomy_->Find(entity_name);
  if (id == kInvalidNode) return {};
  // Rank by edge confidence (source prior), most trustworthy first.
  std::vector<IsaEdge> edges = taxonomy_->Hypernyms(id);
  std::stable_sort(edges.begin(), edges.end(),
                   [](const IsaEdge& a, const IsaEdge& b) {
                     return a.score > b.score;
                   });
  std::vector<std::string> out;
  out.reserve(edges.size());
  std::unordered_set<NodeId> direct;
  for (const IsaEdge& edge : edges) {
    out.push_back(taxonomy_->Name(edge.hyper));
    direct.insert(edge.hyper);
  }
  if (transitive) {
    for (const NodeId ancestor : taxonomy_->TransitiveHypernyms(id)) {
      if (direct.count(ancestor) == 0) {
        out.push_back(taxonomy_->Name(ancestor));
      }
    }
  }
  return out;
}

std::vector<std::string> ApiService::GetEntity(std::string_view concept_name,
                                               size_t limit) const {
  get_entity_calls_.fetch_add(1, std::memory_order_relaxed);
  const NodeId id = taxonomy_->Find(concept_name);
  if (id == kInvalidNode) return {};
  std::vector<std::string> out;
  for (const IsaEdge& edge : taxonomy_->Hyponyms(id)) {
    if (out.size() >= limit) break;
    out.push_back(taxonomy_->Name(edge.hypo));
  }
  return out;
}

ApiService::UsageStats ApiService::usage() const {
  UsageStats stats;
  stats.men2ent_calls = men2ent_calls_.load(std::memory_order_relaxed);
  stats.get_concept_calls = get_concept_calls_.load(std::memory_order_relaxed);
  stats.get_entity_calls = get_entity_calls_.load(std::memory_order_relaxed);
  return stats;
}

void ApiService::ResetUsage() {
  men2ent_calls_.store(0, std::memory_order_relaxed);
  get_concept_calls_.store(0, std::memory_order_relaxed);
  get_entity_calls_.store(0, std::memory_order_relaxed);
}

size_t ApiService::num_mentions() const {
  std::shared_lock<std::shared_mutex> lock(mention_mu_);
  return mention_index_.size();
}

}  // namespace cnpb::taxonomy
