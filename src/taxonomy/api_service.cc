#include "taxonomy/api_service.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace cnpb::taxonomy {

ApiService::ApiService(const Taxonomy* taxonomy) : taxonomy_(taxonomy) {
  CNPB_CHECK(taxonomy != nullptr);
}

void ApiService::RegisterMention(std::string_view mention, NodeId entity) {
  auto& candidates = mention_index_[std::string(mention)];
  if (std::find(candidates.begin(), candidates.end(), entity) ==
      candidates.end()) {
    candidates.push_back(entity);
  }
}

std::vector<NodeId> ApiService::Men2Ent(std::string_view mention) {
  ++usage_.men2ent_calls;
  auto it = mention_index_.find(std::string(mention));
  if (it == mention_index_.end()) return {};
  std::vector<NodeId> out = it->second;
  std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    return taxonomy_->Hypernyms(a).size() > taxonomy_->Hypernyms(b).size();
  });
  return out;
}

std::vector<std::string> ApiService::GetConcept(std::string_view entity_name,
                                                bool transitive) {
  ++usage_.get_concept_calls;
  const NodeId id = taxonomy_->Find(entity_name);
  if (id == kInvalidNode) return {};
  // Rank by edge confidence (source prior), most trustworthy first.
  std::vector<IsaEdge> edges = taxonomy_->Hypernyms(id);
  std::stable_sort(edges.begin(), edges.end(),
                   [](const IsaEdge& a, const IsaEdge& b) {
                     return a.score > b.score;
                   });
  std::vector<std::string> out;
  out.reserve(edges.size());
  std::unordered_set<NodeId> direct;
  for (const IsaEdge& edge : edges) {
    out.push_back(taxonomy_->Name(edge.hyper));
    direct.insert(edge.hyper);
  }
  if (transitive) {
    for (const NodeId ancestor : taxonomy_->TransitiveHypernyms(id)) {
      if (direct.count(ancestor) == 0) {
        out.push_back(taxonomy_->Name(ancestor));
      }
    }
  }
  return out;
}

std::vector<std::string> ApiService::GetEntity(std::string_view concept_name,
                                               size_t limit) {
  ++usage_.get_entity_calls;
  const NodeId id = taxonomy_->Find(concept_name);
  if (id == kInvalidNode) return {};
  std::vector<std::string> out;
  for (const IsaEdge& edge : taxonomy_->Hyponyms(id)) {
    if (out.size() >= limit) break;
    out.push_back(taxonomy_->Name(edge.hypo));
  }
  return out;
}

}  // namespace cnpb::taxonomy
