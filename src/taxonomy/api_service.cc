#include "taxonomy/api_service.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/strings.h"

namespace cnpb::taxonomy {

namespace {

// Query latency is sampled 1-in-256 per thread: the histogram write is
// cheap but the two steady_clock reads around a ~100ns lookup are not, and
// sampling keeps the instrumented service within the <2% overhead budget
// (enforced by bench_scaling) without losing percentile fidelity at
// realistic call volumes.
constexpr uint32_t kLatencySampleMask = 255;

bool SampleQueryLatency() {
  thread_local uint32_t tick = 0;
  return (++tick & kLatencySampleMask) == 0;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

// Admission + deadline bookkeeping for one query. Construction charges the
// in-flight gauge when a cap is armed; destruction releases it. When both
// knobs are off (the default) the whole guard is two relaxed loads.
class QueryGuard {
 public:
  explicit QueryGuard(const ApiService& service) : service_(service) {
    const size_t cap = service.max_in_flight_.load(std::memory_order_relaxed);
    if (cap > 0) {
      counted_ = true;
      if (service.in_flight_.fetch_add(1, std::memory_order_relaxed) + 1 >
          cap) {
        shed_ = true;
        service.shed_->Increment();
        return;
      }
    }
    const int64_t deadline_ns =
        service.deadline_ns_.load(std::memory_order_relaxed);
    if (deadline_ns > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(deadline_ns);
      armed_deadline_ = true;
    }
  }
  ~QueryGuard() {
    if (counted_) {
      service_.in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  // Non-OK when the call must be shed before doing any work.
  util::Status Admission(const char* api) const {
    if (!shed_) return util::Status::Ok();
    return util::ResourceExhaustedError(
        util::StrFormat("%s shed: in-flight cap reached", api));
  }

  // Non-OK once the per-query budget has elapsed.
  util::Status Deadline(const char* api) const {
    if (!armed_deadline_ || std::chrono::steady_clock::now() <= deadline_) {
      return util::Status::Ok();
    }
    service_.deadline_exceeded_->Increment();
    return util::DeadlineExceededError(
        util::StrFormat("%s: query deadline exceeded", api));
  }

 private:
  const ApiService& service_;
  std::chrono::steady_clock::time_point deadline_;
  bool counted_ = false;
  bool shed_ = false;
  bool armed_deadline_ = false;
};

ApiService::ApiService(const Taxonomy* taxonomy) {
  CNPB_CHECK(taxonomy != nullptr);
  Publish(std::make_shared<HeapServingView>(util::UnownedSnapshot(taxonomy),
                                            MentionIndex()));
}

ApiService::ApiService(std::shared_ptr<const Taxonomy> taxonomy,
                       MentionIndex mentions) {
  Publish(std::move(taxonomy), std::move(mentions));
}

ApiService::ApiService(std::shared_ptr<const ServingView> view) {
  Publish(std::move(view));
}

uint64_t ApiService::Publish(std::shared_ptr<const ServingView> view) {
  CNPB_CHECK(view != nullptr);
  // Publish contention (real or injected at the api.publish fault point) is
  // transient by definition: back off and retry rather than drop an update.
  // The argument is only consumed on the successful attempt.
  util::RetryOptions options;
  options.max_attempts = 16;
  uint64_t version = 0;
  const util::RetryResult result =
      util::RetryWithBackoff(options, [&]() -> util::Status {
        const util::Status fault = util::CheckFault("api.publish");
        if (!fault.ok()) {
          return util::ResourceExhaustedError("publish contention: " +
                                              fault.message());
        }
        version = PublishInternal(std::move(view));
        return util::Status::Ok();
      });
  if (result.attempts > 1) {
    publish_retries_->Increment(static_cast<uint64_t>(result.attempts - 1));
  }
  CNPB_CHECK(result.status.ok())
      << "publish failed after " << result.attempts
      << " attempts: " << result.status.ToString();
  return version;
}

uint64_t ApiService::Publish(std::shared_ptr<const Taxonomy> taxonomy,
                             MentionIndex mentions) {
  CNPB_CHECK(taxonomy != nullptr);
  return Publish(std::make_shared<HeapServingView>(std::move(taxonomy),
                                                   std::move(mentions)));
}

util::Result<uint64_t> ApiService::TryPublish(
    std::shared_ptr<const ServingView> view) {
  CNPB_CHECK(view != nullptr);
  const util::Status fault = util::CheckFault("api.publish");
  if (!fault.ok()) {
    return util::ResourceExhaustedError("publish contention: " +
                                        fault.message());
  }
  return PublishInternal(std::move(view));
}

util::Result<uint64_t> ApiService::TryPublish(
    std::shared_ptr<const Taxonomy> taxonomy, MentionIndex mentions) {
  CNPB_CHECK(taxonomy != nullptr);
  return TryPublish(std::make_shared<HeapServingView>(std::move(taxonomy),
                                                      std::move(mentions)));
}

void ApiService::SetServingLimits(const ServingLimits& limits) {
  max_in_flight_.store(limits.max_in_flight, std::memory_order_relaxed);
  deadline_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(limits.deadline)
          .count(),
      std::memory_order_relaxed);
}

ApiService::ServingLimits ApiService::serving_limits() const {
  ServingLimits limits;
  limits.max_in_flight = max_in_flight_.load(std::memory_order_relaxed);
  limits.deadline = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::nanoseconds(deadline_ns_.load(std::memory_order_relaxed)));
  return limits;
}

uint64_t ApiService::PublishInternal(std::shared_ptr<const ServingView> view) {
  // The publish-swap latency covers the whole critical path a reader could
  // be affected by: version assembly, overlay clear, and the pointer swap.
  obs::ScopedTimer publish_timer(publish_latency_);
  publishes_->Increment();
  // Build the whole version entry off to the side; readers keep serving the
  // previous version until the single release-ordered swap below.
  auto next = std::make_shared<Version>();
  next->view = std::move(view);
  next->queries = std::make_shared<std::atomic<uint64_t>>(0);

  std::lock_guard<std::mutex> lock(publish_mu_);
  const auto now = std::chrono::steady_clock::now();
  next->version = next_version_++;
  next->published_at = now;
  if (!history_.empty() && !history_.back().retired) {
    history_.back().retired_at = now;
    history_.back().retired = true;
  }
  VersionRecord record;
  record.version = next->version;
  record.num_edges = next->view->num_edges();
  record.num_mentions = next->view->num_mentions();
  record.queries = next->queries;
  record.published_at = now;
  history_.push_back(std::move(record));
  {
    // The rebuilt index supersedes the live overlay. Clearing before the
    // swap keeps every interleaving coherent: readers see either (old
    // version, overlay or empty) or (new version, empty) — never new-version
    // results mixed with old-version overlay ids.
    std::unique_lock<std::shared_mutex> overlay_lock(overlay_mu_);
    overlay_.clear();
  }
  const uint64_t version = next->version;
  snapshot_.Publish(std::move(next));
  return version;
}

std::shared_ptr<const ApiService::Version> ApiService::PinForQuery() const {
  std::shared_ptr<const Version> snap = snapshot_.Acquire();
  snap->queries->fetch_add(1, std::memory_order_relaxed);
  return snap;
}

void ApiService::RegisterMention(std::string_view mention, NodeId entity) {
  std::unique_lock<std::shared_mutex> lock(overlay_mu_);
  auto& candidates = overlay_[std::string(mention)];
  if (std::find(candidates.begin(), candidates.end(), entity) ==
      candidates.end()) {
    candidates.push_back(entity);
  }
}

std::vector<NodeId> ApiService::LookupMention(const Version& snap,
                                              std::string_view mention) const {
  std::vector<NodeId> out = snap.view->MentionCandidates(mention);
  {
    std::shared_lock<std::shared_mutex> lock(overlay_mu_);
    auto it = overlay_.find(std::string(mention));
    if (it != overlay_.end()) {
      for (const NodeId id : it->second) {
        if (std::find(out.begin(), out.end(), id) == out.end()) {
          out.push_back(id);
        }
      }
    }
  }
  if (!out.empty()) {
    // Ranking reads only the pinned snapshot (ids unknown to it rank last
    // with zero hypernyms), outside any lock.
    const ServingView& view = *snap.view;
    std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
      return view.NumHypernyms(a) > view.NumHypernyms(b);
    });
  }
  return out;
}

util::Result<std::vector<NodeId>> ApiService::TryMen2Ent(
    std::string_view mention) const {
  men2ent_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_men2ent_ : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("men2ent"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  std::vector<NodeId> out = LookupMention(*snap, mention);
  CNPB_RETURN_IF_ERROR(guard.Deadline("men2ent"));
  return out;
}

util::Result<ApiService::Men2EntResolved> ApiService::TryMen2EntResolved(
    std::string_view mention) const {
  men2ent_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_men2ent_ : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("men2ent"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  // Fires between pinning the snapshot and resolving against it — a delay
  // fault here holds the pin across concurrent publishes, which is how the
  // version-stamp coherence regression test widens the race window.
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.resolve"));
  Men2EntResolved out;
  out.version = snap->version;
  out.entities = ResolveMention(*snap, mention);
  CNPB_RETURN_IF_ERROR(guard.Deadline("men2ent"));
  return out;
}

util::Status ApiService::TryQuery(
    const char* api,
    const std::function<util::Status(const ServingView&, uint64_t)>& fn)
    const {
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission(api));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.resolve"));
  CNPB_RETURN_IF_ERROR(fn(*snap->view, snap->version));
  return guard.Deadline(api);
}

std::vector<ApiService::ResolvedEntity> ApiService::ResolveMention(
    const Version& snap, std::string_view mention) const {
  const ServingView& view = *snap.view;
  std::vector<ResolvedEntity> out;
  for (const NodeId id : LookupMention(snap, mention)) {
    // Overlay entries registered against a later live taxonomy can carry
    // ids this snapshot does not know; they have no name here and are
    // dropped rather than returned half-resolved.
    if (id >= view.num_nodes()) continue;
    ResolvedEntity entity;
    entity.id = id;
    entity.name = std::string(view.Name(id));
    entity.num_hypernyms = view.NumHypernyms(id);
    out.push_back(std::move(entity));
  }
  return out;
}

std::vector<NodeId> ApiService::Men2Ent(std::string_view mention) const {
  auto result = TryMen2Ent(mention);
  if (!result.ok()) {
    degraded_->Increment();
    return {};
  }
  return *std::move(result);
}

util::Result<std::vector<std::string>> ApiService::TryGetConcept(
    std::string_view entity_name, bool transitive) const {
  get_concept_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_concept_
                                                : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("get_concept"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  std::vector<std::string> out = ConceptNames(*snap->view, entity_name,
                                              transitive);
  CNPB_RETURN_IF_ERROR(guard.Deadline("get_concept"));
  return out;
}

std::vector<std::string> ApiService::ConceptNames(const ServingView& view,
                                                  std::string_view entity_name,
                                                  bool transitive) {
  const NodeId id = view.Find(entity_name);
  if (id == kInvalidNode) return {};
  // Rank by edge confidence (source prior), most trustworthy first.
  std::vector<HalfEdge> edges;
  edges.reserve(view.NumHypernyms(id));
  view.VisitHypernyms(id, [&](const HalfEdge& edge) {
    edges.push_back(edge);
    return true;
  });
  std::stable_sort(edges.begin(), edges.end(),
                   [](const HalfEdge& a, const HalfEdge& b) {
                     return a.score > b.score;
                   });
  std::vector<std::string> out;
  out.reserve(edges.size());
  std::unordered_set<NodeId> direct;
  for (const HalfEdge& edge : edges) {
    out.push_back(std::string(view.Name(edge.node)));
    direct.insert(edge.node);
  }
  if (transitive) {
    for (const NodeId ancestor : view.TransitiveHypernyms(id)) {
      if (direct.count(ancestor) == 0) {
        out.push_back(std::string(view.Name(ancestor)));
      }
    }
  }
  return out;
}

std::vector<std::string> ApiService::GetConcept(std::string_view entity_name,
                                                bool transitive) const {
  auto result = TryGetConcept(entity_name, transitive);
  if (!result.ok()) {
    degraded_->Increment();
    return {};
  }
  return *std::move(result);
}

util::Result<std::vector<std::string>> ApiService::TryGetEntity(
    std::string_view concept_name, size_t limit) const {
  get_entity_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_entity_
                                                : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("get_entity"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  std::vector<std::string> out = EntityNames(*snap->view, concept_name, limit);
  CNPB_RETURN_IF_ERROR(guard.Deadline("get_entity"));
  return out;
}

std::vector<std::string> ApiService::EntityNames(const ServingView& view,
                                                 std::string_view concept_name,
                                                 size_t limit) {
  const NodeId id = view.Find(concept_name);
  std::vector<std::string> out;
  if (id != kInvalidNode) {
    view.VisitHyponyms(id, [&](const HalfEdge& edge) {
      if (out.size() >= limit) return false;
      out.push_back(std::string(view.Name(edge.node)));
      return out.size() < limit;
    });
  }
  return out;
}

util::Result<ApiService::NamesResolved> ApiService::TryGetConceptResolved(
    std::string_view entity_name, bool transitive) const {
  get_concept_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_concept_
                                                : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("get_concept"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.resolve"));
  NamesResolved out;
  out.version = snap->version;
  out.names = ConceptNames(*snap->view, entity_name, transitive);
  CNPB_RETURN_IF_ERROR(guard.Deadline("get_concept"));
  return out;
}

util::Result<ApiService::NamesResolved> ApiService::TryGetEntityResolved(
    std::string_view concept_name, size_t limit) const {
  get_entity_calls_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_entity_
                                                : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("get_entity"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.resolve"));
  NamesResolved out;
  out.version = snap->version;
  out.names = EntityNames(*snap->view, concept_name, limit);
  CNPB_RETURN_IF_ERROR(guard.Deadline("get_entity"));
  return out;
}

util::Result<ApiService::Men2EntBatchResolved>
ApiService::TryMen2EntBatchResolved(
    const std::vector<std::string>& mentions) const {
  men2ent_calls_.fetch_add(mentions.size(), std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_men2ent_ : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("men2ent_batch"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  if (mentions.size() > 1) {
    // PinForQuery charged one query; attribute the rest of the batch too so
    // per-version QPS keeps counting logical lookups.
    snap->queries->fetch_add(mentions.size() - 1, std::memory_order_relaxed);
  }
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.resolve"));
  Men2EntBatchResolved out;
  out.version = snap->version;
  out.results.reserve(mentions.size());
  for (const std::string& mention : mentions) {
    out.results.push_back(ResolveMention(*snap, mention));
    CNPB_RETURN_IF_ERROR(guard.Deadline("men2ent_batch"));
  }
  return out;
}

util::Result<ApiService::NamesBatchResolved>
ApiService::TryGetConceptBatchResolved(const std::vector<std::string>& entities,
                                       bool transitive) const {
  get_concept_calls_.fetch_add(entities.size(), std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_concept_
                                                : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("get_concept_batch"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  if (entities.size() > 1) {
    snap->queries->fetch_add(entities.size() - 1, std::memory_order_relaxed);
  }
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.resolve"));
  NamesBatchResolved out;
  out.version = snap->version;
  out.results.reserve(entities.size());
  for (const std::string& entity : entities) {
    out.results.push_back(ConceptNames(*snap->view, entity, transitive));
    CNPB_RETURN_IF_ERROR(guard.Deadline("get_concept_batch"));
  }
  return out;
}

util::Result<ApiService::NamesBatchResolved>
ApiService::TryGetEntityBatchResolved(const std::vector<std::string>& concepts,
                                      size_t limit) const {
  get_entity_calls_.fetch_add(concepts.size(), std::memory_order_relaxed);
  obs::ScopedTimer latency(SampleQueryLatency() ? latency_get_entity_
                                                : nullptr);
  QueryGuard guard(*this);
  CNPB_RETURN_IF_ERROR(guard.Admission("get_entity_batch"));
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.query"));
  const std::shared_ptr<const Version> snap = PinForQuery();
  if (concepts.size() > 1) {
    snap->queries->fetch_add(concepts.size() - 1, std::memory_order_relaxed);
  }
  CNPB_RETURN_IF_ERROR(util::CheckFault("api.resolve"));
  NamesBatchResolved out;
  out.version = snap->version;
  out.results.reserve(concepts.size());
  for (const std::string& concept_name : concepts) {
    out.results.push_back(EntityNames(*snap->view, concept_name, limit));
    CNPB_RETURN_IF_ERROR(guard.Deadline("get_entity_batch"));
  }
  return out;
}

std::vector<std::string> ApiService::GetEntity(std::string_view concept_name,
                                               size_t limit) const {
  auto result = TryGetEntity(concept_name, limit);
  if (!result.ok()) {
    degraded_->Increment();
    return {};
  }
  return *std::move(result);
}

std::shared_ptr<const ServingView> ApiService::CurrentView() const {
  return snapshot_.Acquire()->view;
}

std::shared_ptr<const Taxonomy> ApiService::CurrentTaxonomy() const {
  return snapshot_.Acquire()->view->AsTaxonomy();
}

uint64_t ApiService::version() const { return snapshot_.Acquire()->version; }

std::vector<ApiService::VersionStats> ApiService::AllVersionStats() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::vector<VersionStats> out;
  out.reserve(history_.size());
  for (const VersionRecord& record : history_) {
    VersionStats stats;
    stats.version = record.version;
    stats.num_edges = record.num_edges;
    stats.num_mentions = record.num_mentions;
    stats.queries = record.queries->load(std::memory_order_relaxed);
    stats.seconds_serving = SecondsBetween(
        record.published_at, record.retired ? record.retired_at : now);
    out.push_back(stats);
  }
  return out;
}

void ApiService::ExportMetrics(obs::MetricsRegistry* registry) const {
  const auto now = std::chrono::steady_clock::now();
  // Fold this service's call totals into the registry counters as deltas
  // since the last export. Doing it here rather than per call keeps the
  // query paths at one relaxed fetch_add; several services sharing a
  // process simply sum into the same counters.
  const UsageStats current = usage();
  const auto sync = [](obs::Counter* counter, uint64_t total,
                       std::atomic<uint64_t>& exported) {
    const uint64_t previous =
        exported.exchange(total, std::memory_order_relaxed);
    if (total > previous) counter->Increment(total - previous);
  };
  sync(calls_men2ent_, current.men2ent_calls, exported_men2ent_calls_);
  sync(calls_get_concept_, current.get_concept_calls,
       exported_get_concept_calls_);
  sync(calls_get_entity_, current.get_entity_calls,
       exported_get_entity_calls_);
  // Pin the snapshot before taking publish_mu_; SnapshotHolder never takes
  // the publish lock, but keeping the two acquisitions unnested is simpler
  // to reason about.
  const std::shared_ptr<const Version> snap = snapshot_.Acquire();
  registry->gauge("api.snapshot_age_seconds")
      ->Set(SecondsBetween(snap->published_at, now));
  for (const VersionStats& stats : AllVersionStats()) {
    const std::string prefix =
        util::StrFormat("api.version.%llu.",
                        static_cast<unsigned long long>(stats.version));
    registry->gauge(prefix + "queries")
        ->Set(static_cast<double>(stats.queries));
    registry->gauge(prefix + "serving_seconds")->Set(stats.seconds_serving);
    registry->gauge(prefix + "qps")
        ->Set(stats.seconds_serving > 0.0
                  ? static_cast<double>(stats.queries) / stats.seconds_serving
                  : 0.0);
  }
}

ApiService::UsageStats ApiService::usage() const {
  UsageStats stats;
  stats.men2ent_calls = men2ent_calls_.load(std::memory_order_relaxed);
  stats.get_concept_calls = get_concept_calls_.load(std::memory_order_relaxed);
  stats.get_entity_calls = get_entity_calls_.load(std::memory_order_relaxed);
  return stats;
}

void ApiService::ResetUsage() {
  men2ent_calls_.store(0, std::memory_order_relaxed);
  get_concept_calls_.store(0, std::memory_order_relaxed);
  get_entity_calls_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(publish_mu_);
  for (const VersionRecord& record : history_) {
    record.queries->store(0, std::memory_order_relaxed);
  }
}

size_t ApiService::num_mentions() const {
  const std::shared_ptr<const Version> snap = snapshot_.Acquire();
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  size_t count = snap->view->num_mentions();
  for (const auto& [mention, ids] : overlay_) {
    if (!snap->view->HasMention(mention)) ++count;
  }
  return count;
}

}  // namespace cnpb::taxonomy
