#include "taxonomy/view.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace cnpb::taxonomy {

std::vector<NodeId> ServingView::TransitiveHypernyms(NodeId id,
                                                     size_t limit) const {
  std::vector<NodeId> result;
  if (id >= num_nodes()) return result;
  std::vector<bool> seen(num_nodes(), false);
  std::vector<NodeId> frontier = {id};
  seen[id] = true;
  while (!frontier.empty() && result.size() < limit) {
    const NodeId current = frontier.back();
    frontier.pop_back();
    VisitHypernyms(current, [&](const HalfEdge& edge) {
      if (!seen[edge.node]) {
        seen[edge.node] = true;
        result.push_back(edge.node);
        frontier.push_back(edge.node);
      }
      return true;
    });
  }
  return result;
}

HeapServingView::HeapServingView(std::shared_ptr<const Taxonomy> taxonomy,
                                 MentionIndex mentions)
    : taxonomy_(std::move(taxonomy)), mentions_(std::move(mentions)) {
  CNPB_CHECK(taxonomy_ != nullptr);
}

void HeapServingView::VisitHypernyms(
    NodeId id, const std::function<bool(const HalfEdge&)>& fn) const {
  if (id >= taxonomy_->num_nodes()) return;
  for (const IsaEdge& edge : taxonomy_->Hypernyms(id)) {
    if (!fn(HalfEdge{edge.hyper, edge.source, edge.score})) return;
  }
}

void HeapServingView::VisitHyponyms(
    NodeId id, const std::function<bool(const HalfEdge&)>& fn) const {
  if (id >= taxonomy_->num_nodes()) return;
  for (const IsaEdge& edge : taxonomy_->Hyponyms(id)) {
    if (!fn(HalfEdge{edge.hypo, edge.source, edge.score})) return;
  }
}

bool HeapServingView::HasMention(std::string_view mention) const {
  return mentions_.find(std::string(mention)) != mentions_.end();
}

std::vector<NodeId> HeapServingView::MentionCandidates(
    std::string_view mention) const {
  auto it = mentions_.find(std::string(mention));
  return it == mentions_.end() ? std::vector<NodeId>() : it->second;
}

void HeapServingView::VisitMentions(
    const std::function<bool(std::string_view, const NodeId*, size_t)>& fn)
    const {
  // The hash map has no stable order; sort keys so iteration (and therefore
  // the snapshot writer's mention section) is deterministic.
  std::vector<const std::string*> keys;
  keys.reserve(mentions_.size());
  for (const auto& [mention, ids] : mentions_) keys.push_back(&mention);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) {
    const std::vector<NodeId>& ids = mentions_.at(*key);
    if (!fn(*key, ids.data(), ids.size())) return;
  }
}

}  // namespace cnpb::taxonomy
