#include "taxonomy/stats.h"

#include <algorithm>

#include "util/strings.h"

namespace cnpb::taxonomy {

TaxonomyStats ComputeStats(const Taxonomy& taxonomy) {
  TaxonomyStats stats;
  stats.num_entities = taxonomy.NumEntities();
  stats.num_concepts = taxonomy.NumConcepts();
  stats.num_entity_concept_edges = taxonomy.NumEntityConceptEdges();
  stats.num_subconcept_edges = taxonomy.NumSubconceptEdges();
  for (int s = 0; s < kNumSources; ++s) {
    stats.edges_by_source[s] =
        taxonomy.NumEdgesFromSource(static_cast<Source>(s));
  }

  size_t entity_hypernym_sum = 0;
  size_t concept_hyponym_sum = 0;
  for (NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    const size_t out_degree = taxonomy.Hypernyms(id).size();
    const size_t in_degree = taxonomy.Hyponyms(id).size();
    if (taxonomy.Kind(id) == NodeKind::kEntity) {
      entity_hypernym_sum += out_degree;
    } else {
      concept_hyponym_sum += in_degree;
      if (out_degree == 0) ++stats.num_root_concepts;
      if (in_degree == 0) ++stats.num_leaf_concepts;
      if (in_degree > stats.max_concept_fanout) {
        stats.max_concept_fanout = in_degree;
        stats.max_fanout_concept = taxonomy.Name(id);
      }
    }
  }
  if (stats.num_entities > 0) {
    stats.avg_hypernyms_per_entity =
        static_cast<double>(entity_hypernym_sum) / stats.num_entities;
  }
  if (stats.num_concepts > 0) {
    stats.avg_hyponyms_per_concept =
        static_cast<double>(concept_hyponym_sum) / stats.num_concepts;
  }

  // Depth via memoised DFS over the hypernym edges. The visiting mark caps
  // depth on (unexpected) cycles instead of recursing forever.
  constexpr int kUnvisited = -1;
  constexpr int kVisiting = -2;
  std::vector<int> depth(taxonomy.num_nodes(), kUnvisited);
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId start = 0; start < taxonomy.num_nodes(); ++start) {
    if (depth[start] != kUnvisited) continue;
    stack.emplace_back(start, 0);
    depth[start] = kVisiting;
    while (!stack.empty()) {
      auto& [node, edge_index] = stack.back();
      const auto& edges = taxonomy.Hypernyms(node);
      if (edge_index < edges.size()) {
        const NodeId parent = edges[edge_index].hyper;
        ++edge_index;
        if (depth[parent] == kUnvisited) {
          depth[parent] = kVisiting;
          stack.emplace_back(parent, 0);
        }
      } else {
        int best = 0;
        for (const IsaEdge& edge : edges) {
          if (depth[edge.hyper] >= 0) {
            best = std::max(best, depth[edge.hyper] + 1);
          }
        }
        depth[node] = best;
        stack.pop_back();
      }
    }
  }
  for (NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    const size_t d = depth[id] < 0 ? 0 : static_cast<size_t>(depth[id]);
    if (d >= stats.depth_histogram.size()) {
      stats.depth_histogram.resize(d + 1, 0);
    }
    ++stats.depth_histogram[d];
    stats.max_depth = std::max(stats.max_depth, d);
  }
  return stats;
}

std::string FormatStats(const TaxonomyStats& stats) {
  std::string out;
  out += util::StrFormat("entities:               %s\n",
                         util::CommaSeparated(stats.num_entities).c_str());
  out += util::StrFormat("concepts:               %s (%zu roots, %zu leaves)\n",
                         util::CommaSeparated(stats.num_concepts).c_str(),
                         stats.num_root_concepts, stats.num_leaf_concepts);
  out += util::StrFormat(
      "entity-concept edges:   %s\n",
      util::CommaSeparated(stats.num_entity_concept_edges).c_str());
  out += util::StrFormat(
      "subconcept edges:       %s\n",
      util::CommaSeparated(stats.num_subconcept_edges).c_str());
  out += util::StrFormat("avg hypernyms/entity:   %.2f\n",
                         stats.avg_hypernyms_per_entity);
  out += util::StrFormat("avg hyponyms/concept:   %.2f\n",
                         stats.avg_hyponyms_per_concept);
  out += util::StrFormat("largest concept:        %s (%zu hyponyms)\n",
                         stats.max_fanout_concept.c_str(),
                         stats.max_concept_fanout);
  out += util::StrFormat("max hypernym depth:     %zu\n", stats.max_depth);
  out += "depth histogram:        ";
  for (size_t d = 0; d < stats.depth_histogram.size(); ++d) {
    out += util::StrFormat("%zu:%zu ", d, stats.depth_histogram[d]);
  }
  out += "\nedges by source:        ";
  for (int s = 0; s < kNumSources; ++s) {
    if (stats.edges_by_source[s] == 0) continue;
    out += util::StrFormat("%s:%zu ", SourceName(static_cast<Source>(s)),
                           stats.edges_by_source[s]);
  }
  out += "\n";
  return out;
}

}  // namespace cnpb::taxonomy
