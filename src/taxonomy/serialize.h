#ifndef CNPROBASE_TAXONOMY_SERIALIZE_H_
#define CNPROBASE_TAXONOMY_SERIALIZE_H_

#include <string>

#include "taxonomy/taxonomy.h"
#include "util/status.h"

namespace cnpb::taxonomy {

// Saves the taxonomy as two TSV sections in one file:
//   N <name> <kind>
//   E <hypo_id> <hyper_id> <source> <score>
// The write is atomic (temp + fsync + rename) with a CRC32 footer, so a
// crashed or fault-injected save leaves the previous file intact.
util::Status SaveTaxonomy(const Taxonomy& taxonomy, const std::string& path);

// Like SaveTaxonomy, but first preserves the current file (when present and
// readable) as `path`.bak — the last-good snapshot LoadTaxonomyWithFallback
// recovers from. The .bak copy is also written atomically.
util::Status SaveTaxonomyDurable(const Taxonomy& taxonomy,
                                 const std::string& path);

// Strict load: checksum-invalid or structurally malformed files fail
// (kDataLoss / kInvalidArgument) — a corrupt taxonomy is never served.
util::Result<Taxonomy> LoadTaxonomy(const std::string& path);

// Load with last-good fallback: when `path` is corrupt (not merely absent),
// falls back to `path`.bak and logs the recovery. Absent primary is still
// an error — missing data is not corruption.
util::Result<Taxonomy> LoadTaxonomyWithFallback(const std::string& path);

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_SERIALIZE_H_
