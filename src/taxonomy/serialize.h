#ifndef CNPROBASE_TAXONOMY_SERIALIZE_H_
#define CNPROBASE_TAXONOMY_SERIALIZE_H_

#include <string>

#include "taxonomy/taxonomy.h"
#include "util/status.h"

namespace cnpb::taxonomy {

// Saves the taxonomy as two TSV sections in one file:
//   N <name> <kind>
//   E <hypo_id> <hyper_id> <source> <score>
util::Status SaveTaxonomy(const Taxonomy& taxonomy, const std::string& path);

util::Result<Taxonomy> LoadTaxonomy(const std::string& path);

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_SERIALIZE_H_
