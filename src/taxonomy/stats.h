#ifndef CNPROBASE_TAXONOMY_STATS_H_
#define CNPROBASE_TAXONOMY_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "taxonomy/taxonomy.h"

namespace cnpb::taxonomy {

// Structural summary of a taxonomy: the numbers a release notes / dataset
// card would report alongside Table I.
struct TaxonomyStats {
  size_t num_entities = 0;
  size_t num_concepts = 0;
  size_t num_entity_concept_edges = 0;
  size_t num_subconcept_edges = 0;

  // Concepts with no hypernym edge (taxonomy roots).
  size_t num_root_concepts = 0;
  // Concepts with no hyponyms (leaves of the concept layer).
  size_t num_leaf_concepts = 0;

  double avg_hypernyms_per_entity = 0.0;
  double avg_hyponyms_per_concept = 0.0;
  size_t max_concept_fanout = 0;          // largest hyponym set
  std::string max_fanout_concept;

  // Depth = longest hypernym chain from a node to a root; histogram indexed
  // by depth (entities included).
  std::vector<size_t> depth_histogram;
  size_t max_depth = 0;

  // Edge counts per provenance source, indexed by Source.
  size_t edges_by_source[kNumSources] = {0, 0, 0, 0, 0, 0};
};

// Computes the summary. Depth computation requires an acyclic concept layer
// (cyclic inputs get depth capped instead of hanging).
TaxonomyStats ComputeStats(const Taxonomy& taxonomy);

// Multi-line human-readable report.
std::string FormatStats(const TaxonomyStats& stats);

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_STATS_H_
