#ifndef CNPROBASE_TAXONOMY_VIEW_H_
#define CNPROBASE_TAXONOMY_VIEW_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "taxonomy/taxonomy.h"

namespace cnpb::taxonomy {

// mention -> candidate entity nodes, as built for one taxonomy version.
// (Alias kept on ApiService for existing callers.)
using MentionIndex = std::unordered_map<std::string, std::vector<NodeId>>;

// One isA edge as seen from a fixed endpoint: `node` is the other endpoint
// (the hypernym when visiting hypernyms, the hyponym when visiting
// hyponyms).
struct HalfEdge {
  NodeId node = kInvalidNode;
  Source source = Source::kImported;
  float score = 1.0f;
};

// The read surface one published ApiService version serves from: node and
// edge queries plus mention resolution, over an immutable taxonomy. Two
// implementations exist — HeapServingView (a frozen Taxonomy plus a
// MentionIndex hash map, the classic TSV-loaded path) and Snapshot (the
// zero-copy mmap-backed binary format, see snapshot.h). ApiService queries
// are written against this interface so the two are interchangeable and
// must answer identically (tests/snapshot_test.cc holds them to that).
//
// Everything reachable from a ServingView must be immutable once the view
// is published: all methods are const and safe from any number of threads.
//
// Determinism contract: edge visitation order is the canonical
// serialization order — hypernym rows in node-id order with per-row
// insertion order preserved, hyponym rows replaying that same global edge
// sequence — and VisitMentions iterates mentions in lexicographic byte
// order. This is what makes snapshot round-trips byte-identical and
// query results order-stable across backends.
class ServingView {
 public:
  virtual ~ServingView() = default;

  virtual size_t num_nodes() const = 0;
  virtual size_t num_edges() const = 0;

  // kInvalidNode when absent.
  virtual NodeId Find(std::string_view name) const = 0;
  // `id` must be < num_nodes(). The view owns the bytes.
  virtual std::string_view Name(NodeId id) const = 0;
  virtual NodeKind Kind(NodeId id) const = 0;

  // Out-of-range ids (e.g. stale overlay entries registered against a newer
  // live taxonomy) report zero edges rather than failing.
  virtual size_t NumHypernyms(NodeId id) const = 0;
  virtual size_t NumHyponyms(NodeId id) const = 0;
  // Visits edges adjacent to `id` in canonical order; `fn` returns false to
  // stop early.
  virtual void VisitHypernyms(
      NodeId id, const std::function<bool(const HalfEdge&)>& fn) const = 0;
  virtual void VisitHyponyms(
      NodeId id, const std::function<bool(const HalfEdge&)>& fn) const = 0;

  virtual size_t num_mentions() const = 0;
  virtual bool HasMention(std::string_view mention) const = 0;
  // Candidate entities for `mention` in index order (empty when unknown).
  virtual std::vector<NodeId> MentionCandidates(
      std::string_view mention) const = 0;
  // Visits (mention, candidate ids) pairs in lexicographic mention order;
  // `fn` returns false to stop early.
  virtual void VisitMentions(
      const std::function<bool(std::string_view, const NodeId* ids,
                               size_t num_ids)>& fn) const = 0;

  // All hypernyms reachable by >= 1 isA step. Shared BFS over
  // VisitHypernyms so every backend yields the same order (mirrors
  // Taxonomy::TransitiveHypernyms).
  std::vector<NodeId> TransitiveHypernyms(NodeId id,
                                          size_t limit = 10000) const;

  // Heap-backed views expose their underlying Taxonomy for in-process
  // callers (ApiService::CurrentTaxonomy); mmap-backed views return null.
  virtual std::shared_ptr<const Taxonomy> AsTaxonomy() const {
    return nullptr;
  }
};

// The classic serving backend: a frozen Taxonomy plus its rebuilt mention
// index, both heap-owned.
class HeapServingView final : public ServingView {
 public:
  HeapServingView(std::shared_ptr<const Taxonomy> taxonomy,
                  MentionIndex mentions);

  size_t num_nodes() const override { return taxonomy_->num_nodes(); }
  size_t num_edges() const override { return taxonomy_->num_edges(); }
  NodeId Find(std::string_view name) const override {
    return taxonomy_->Find(name);
  }
  std::string_view Name(NodeId id) const override {
    return taxonomy_->Name(id);
  }
  NodeKind Kind(NodeId id) const override { return taxonomy_->Kind(id); }
  size_t NumHypernyms(NodeId id) const override {
    return taxonomy_->Hypernyms(id).size();
  }
  size_t NumHyponyms(NodeId id) const override {
    return taxonomy_->Hyponyms(id).size();
  }
  void VisitHypernyms(
      NodeId id,
      const std::function<bool(const HalfEdge&)>& fn) const override;
  void VisitHyponyms(
      NodeId id,
      const std::function<bool(const HalfEdge&)>& fn) const override;

  size_t num_mentions() const override { return mentions_.size(); }
  bool HasMention(std::string_view mention) const override;
  std::vector<NodeId> MentionCandidates(
      std::string_view mention) const override;
  void VisitMentions(
      const std::function<bool(std::string_view, const NodeId*, size_t)>& fn)
      const override;

  std::shared_ptr<const Taxonomy> AsTaxonomy() const override {
    return taxonomy_;
  }

 private:
  std::shared_ptr<const Taxonomy> taxonomy_;
  MentionIndex mentions_;
};

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_VIEW_H_
