#ifndef CNPROBASE_TAXONOMY_TAXONOMY_H_
#define CNPROBASE_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cnpb::taxonomy {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

// Where an isA relation came from; drives the per-source precision
// experiment and provenance-aware verification.
enum class Source : uint8_t {
  kBracket = 0,   // separation algorithm on the disambiguation bracket
  kAbstract,      // neural generation (CopyNet) over the abstract
  kInfobox,       // predicate discovery over SPO triples
  kTag,           // direct extraction from tags
  kTranslation,   // Probase-Tran baseline
  kImported,      // other baselines / gold
};
inline constexpr int kNumSources = 6;

const char* SourceName(Source source);

enum class NodeKind : uint8_t {
  kEntity = 0,  // disambiguated instance, e.g. 刘德华（中国香港男演员、歌手）
  kConcept,     // hypernym word/phrase, e.g. 演员
};

// One hypernym-hyponym edge: isA(hypo, hyper).
struct IsaEdge {
  NodeId hypo = kInvalidNode;
  NodeId hyper = kInvalidNode;
  Source source = Source::kImported;
  float score = 1.0f;
};

// The conceptual taxonomy: interned nodes (entities and concepts) plus isA
// edges with bidirectional adjacency indexes. This is the structure the
// paper reports sizes for (15M entities / 270k concepts / 33M isA) and that
// backs the three public APIs.
class Taxonomy {
 public:
  Taxonomy() = default;

  // Moves are fine; copies are expensive and deleted to avoid accidents.
  Taxonomy(const Taxonomy&) = delete;
  Taxonomy& operator=(const Taxonomy&) = delete;
  Taxonomy(Taxonomy&&) = default;
  Taxonomy& operator=(Taxonomy&&) = default;

  // Freezes a fully-built taxonomy into an immutable, shareable snapshot.
  // After freezing, nothing may mutate the object: all const queries are
  // then safe from any number of threads, and the snapshot can be published
  // to a live ApiService (see util::SnapshotHolder and DESIGN.md §6).
  static std::shared_ptr<const Taxonomy> Freeze(Taxonomy&& taxonomy) {
    return std::make_shared<const Taxonomy>(std::move(taxonomy));
  }

  // Interns a node; returns the existing id when (name) is already present.
  // A name keeps the kind it was first added with; adding the same name with
  // a different kind returns the existing node unchanged (entities and
  // concepts live in one namespace, as in the paper where a concept string
  // can also be an encyclopedia entity).
  NodeId AddNode(std::string_view name, NodeKind kind);

  // Adds isA(hypo, hyper); deduplicates exact (hypo, hyper) pairs. Returns
  // true if the edge was new. Self-loops are rejected (returns false).
  bool AddIsa(NodeId hypo, NodeId hyper, Source source, float score = 1.0f);

  // Convenience: interns both names and adds the edge. `hypo_kind` defaults
  // to entity and the hypernym side is always a concept.
  bool AddIsa(std::string_view hypo, std::string_view hyper, Source source,
              float score = 1.0f, NodeKind hypo_kind = NodeKind::kEntity);

  // Removes an edge; returns true if it existed.
  bool RemoveIsa(NodeId hypo, NodeId hyper);

  NodeId Find(std::string_view name) const;  // kInvalidNode if absent
  bool HasNode(std::string_view name) const { return Find(name) != kInvalidNode; }
  bool HasIsa(NodeId hypo, NodeId hyper) const;

  const std::string& Name(NodeId id) const;
  NodeKind Kind(NodeId id) const;

  size_t num_nodes() const { return names_.size(); }
  size_t num_edges() const { return num_edges_; }
  size_t NumEntities() const;
  size_t NumConcepts() const;
  // Entity->concept edge count vs concept->concept edge count.
  size_t NumEntityConceptEdges() const;
  size_t NumSubconceptEdges() const;
  size_t NumEdgesFromSource(Source source) const;

  // Direct hypernyms of `id` (edges id -> hyper).
  const std::vector<IsaEdge>& Hypernyms(NodeId id) const;
  // Direct hyponyms of `id` (edges hypo -> id).
  const std::vector<IsaEdge>& Hyponyms(NodeId id) const;

  // All hypernyms reachable by >= 1 isA step (BFS; capped at `limit`).
  std::vector<NodeId> TransitiveHypernyms(NodeId id, size_t limit = 10000) const;

  // True if adding hypo->hyper would create a cycle through existing edges.
  bool WouldCreateCycle(NodeId hypo, NodeId hyper) const;

  // Verifies no directed cycle exists among concept-concept edges.
  bool IsAcyclic() const;

  // Iterates every edge (by value snapshot order: grouped by hyponym).
  void ForEachEdge(const std::function<void(const IsaEdge&)>& fn) const;

  // All node ids of the given kind.
  std::vector<NodeId> NodesOfKind(NodeKind kind) const;

 private:
  static const std::vector<IsaEdge>& EmptyEdges();

  // deque gives stable element addresses, so index_ can key string_views
  // into names_ without copies.
  std::deque<std::string> names_;
  std::vector<NodeKind> kinds_;
  std::unordered_map<std::string_view, NodeId> index_;  // views into names_
  // Adjacency: per-node outgoing (hypernyms) and incoming (hyponyms) edges.
  std::unordered_map<NodeId, std::vector<IsaEdge>> hypernyms_;
  std::unordered_map<NodeId, std::vector<IsaEdge>> hyponyms_;
  size_t num_edges_ = 0;
  size_t source_counts_[kNumSources] = {0, 0, 0, 0, 0, 0};
};

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_TAXONOMY_H_
