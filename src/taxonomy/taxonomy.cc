#include "taxonomy/taxonomy.h"

#include <algorithm>

#include "util/logging.h"

namespace cnpb::taxonomy {

const char* SourceName(Source source) {
  switch (source) {
    case Source::kBracket:
      return "bracket";
    case Source::kAbstract:
      return "abstract";
    case Source::kInfobox:
      return "infobox";
    case Source::kTag:
      return "tag";
    case Source::kTranslation:
      return "translation";
    case Source::kImported:
      return "imported";
  }
  return "unknown";
}

const std::vector<IsaEdge>& Taxonomy::EmptyEdges() {
  static const std::vector<IsaEdge>* empty = new std::vector<IsaEdge>();
  return *empty;
}

NodeId Taxonomy::AddNode(std::string_view name, NodeKind kind) {
  CNPB_CHECK(!name.empty());
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

bool Taxonomy::AddIsa(NodeId hypo, NodeId hyper, Source source, float score) {
  CNPB_CHECK(hypo < names_.size() && hyper < names_.size());
  if (hypo == hyper) return false;
  if (HasIsa(hypo, hyper)) return false;
  IsaEdge edge;
  edge.hypo = hypo;
  edge.hyper = hyper;
  edge.source = source;
  edge.score = score;
  hypernyms_[hypo].push_back(edge);
  hyponyms_[hyper].push_back(edge);
  ++num_edges_;
  ++source_counts_[static_cast<int>(source)];
  return true;
}

bool Taxonomy::AddIsa(std::string_view hypo, std::string_view hyper,
                      Source source, float score, NodeKind hypo_kind) {
  const NodeId h1 = AddNode(hypo, hypo_kind);
  const NodeId h2 = AddNode(hyper, NodeKind::kConcept);
  return AddIsa(h1, h2, source, score);
}

bool Taxonomy::RemoveIsa(NodeId hypo, NodeId hyper) {
  auto it = hypernyms_.find(hypo);
  if (it == hypernyms_.end()) return false;
  auto& out_edges = it->second;
  auto pos = std::find_if(out_edges.begin(), out_edges.end(),
                          [&](const IsaEdge& e) { return e.hyper == hyper; });
  if (pos == out_edges.end()) return false;
  const Source source = pos->source;
  out_edges.erase(pos);

  auto& in_edges = hyponyms_[hyper];
  auto in_pos = std::find_if(in_edges.begin(), in_edges.end(),
                             [&](const IsaEdge& e) { return e.hypo == hypo; });
  CNPB_CHECK(in_pos != in_edges.end());
  in_edges.erase(in_pos);

  --num_edges_;
  --source_counts_[static_cast<int>(source)];
  return true;
}

NodeId Taxonomy::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidNode : it->second;
}

bool Taxonomy::HasIsa(NodeId hypo, NodeId hyper) const {
  auto it = hypernyms_.find(hypo);
  if (it == hypernyms_.end()) return false;
  for (const IsaEdge& e : it->second) {
    if (e.hyper == hyper) return true;
  }
  return false;
}

const std::string& Taxonomy::Name(NodeId id) const {
  CNPB_CHECK(id < names_.size());
  return names_[id];
}

NodeKind Taxonomy::Kind(NodeId id) const {
  CNPB_CHECK(id < kinds_.size());
  return kinds_[id];
}

size_t Taxonomy::NumEntities() const {
  size_t n = 0;
  for (NodeKind kind : kinds_) {
    if (kind == NodeKind::kEntity) ++n;
  }
  return n;
}

size_t Taxonomy::NumConcepts() const { return names_.size() - NumEntities(); }

size_t Taxonomy::NumEntityConceptEdges() const {
  size_t n = 0;
  for (const auto& [node, edges] : hypernyms_) {
    if (kinds_[node] == NodeKind::kEntity) n += edges.size();
  }
  return n;
}

size_t Taxonomy::NumSubconceptEdges() const {
  return num_edges_ - NumEntityConceptEdges();
}

size_t Taxonomy::NumEdgesFromSource(Source source) const {
  return source_counts_[static_cast<int>(source)];
}

const std::vector<IsaEdge>& Taxonomy::Hypernyms(NodeId id) const {
  auto it = hypernyms_.find(id);
  return it == hypernyms_.end() ? EmptyEdges() : it->second;
}

const std::vector<IsaEdge>& Taxonomy::Hyponyms(NodeId id) const {
  auto it = hyponyms_.find(id);
  return it == hyponyms_.end() ? EmptyEdges() : it->second;
}

std::vector<NodeId> Taxonomy::TransitiveHypernyms(NodeId id,
                                                  size_t limit) const {
  std::vector<NodeId> result;
  std::vector<bool> seen(names_.size(), false);
  std::vector<NodeId> frontier = {id};
  seen[id] = true;
  while (!frontier.empty() && result.size() < limit) {
    const NodeId current = frontier.back();
    frontier.pop_back();
    for (const IsaEdge& edge : Hypernyms(current)) {
      if (!seen[edge.hyper]) {
        seen[edge.hyper] = true;
        result.push_back(edge.hyper);
        frontier.push_back(edge.hyper);
      }
    }
  }
  return result;
}

bool Taxonomy::WouldCreateCycle(NodeId hypo, NodeId hyper) const {
  if (hypo == hyper) return true;
  // Cycle iff hypo is reachable upward from hyper.
  std::vector<bool> seen(names_.size(), false);
  std::vector<NodeId> frontier = {hyper};
  seen[hyper] = true;
  while (!frontier.empty()) {
    const NodeId current = frontier.back();
    frontier.pop_back();
    for (const IsaEdge& edge : Hypernyms(current)) {
      if (edge.hyper == hypo) return true;
      if (!seen[edge.hyper]) {
        seen[edge.hyper] = true;
        frontier.push_back(edge.hyper);
      }
    }
  }
  return false;
}

bool Taxonomy::IsAcyclic() const {
  // Iterative three-colour DFS over all nodes.
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(names_.size(), kWhite);
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId start = 0; start < names_.size(); ++start) {
    if (color[start] != kWhite) continue;
    stack.emplace_back(start, 0);
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [node, edge_index] = stack.back();
      const auto& edges = Hypernyms(node);
      if (edge_index < edges.size()) {
        const NodeId next = edges[edge_index].hyper;
        ++edge_index;
        if (color[next] == kGray) return false;
        if (color[next] == kWhite) {
          color[next] = kGray;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return true;
}

void Taxonomy::ForEachEdge(
    const std::function<void(const IsaEdge&)>& fn) const {
  for (NodeId id = 0; id < names_.size(); ++id) {
    auto it = hypernyms_.find(id);
    if (it == hypernyms_.end()) continue;
    for (const IsaEdge& edge : it->second) fn(edge);
  }
}

std::vector<NodeId> Taxonomy::NodesOfKind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < names_.size(); ++id) {
    if (kinds_[id] == kind) out.push_back(id);
  }
  return out;
}

}  // namespace cnpb::taxonomy
