#ifndef CNPROBASE_TAXONOMY_API_SERVICE_H_
#define CNPROBASE_TAXONOMY_API_SERVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "taxonomy/taxonomy.h"

namespace cnpb::taxonomy {

// In-process equivalent of the three web APIs the paper deploys on Aliyun
// (Table II):
//   men2ent    — mention  -> disambiguated entities
//   getConcept — entity   -> hypernym (concept) list
//   getEntity  — concept  -> hyponym (entity) list
// Every call is counted so the Table II workload bench can report the mix.
class ApiService {
 public:
  struct UsageStats {
    uint64_t men2ent_calls = 0;
    uint64_t get_concept_calls = 0;
    uint64_t get_entity_calls = 0;
    uint64_t total() const {
      return men2ent_calls + get_concept_calls + get_entity_calls;
    }
  };

  // The taxonomy must outlive the service.
  explicit ApiService(const Taxonomy* taxonomy);

  // Registers `mention` as a surface form of entity node `entity`.
  // (Built by the pipeline from page mentions; entities keep their
  // disambiguated names as node names.)
  void RegisterMention(std::string_view mention, NodeId entity);

  // men2ent: candidate entities for a mention, most-popular first
  // (popularity = number of hypernyms, a proxy for page richness).
  std::vector<NodeId> Men2Ent(std::string_view mention);

  // getConcept: hypernym names of an entity (or concept) name, ranked by
  // edge confidence. With `transitive`, inherited hypernyms (ancestors of
  // the direct ones) are appended after the direct list.
  std::vector<std::string> GetConcept(std::string_view entity_name,
                                      bool transitive = false);

  // getEntity: direct hyponym names of a concept, capped at `limit`.
  std::vector<std::string> GetEntity(std::string_view concept_name,
                                     size_t limit = 100);

  const UsageStats& usage() const { return usage_; }
  void ResetUsage() { usage_ = UsageStats(); }

  size_t num_mentions() const { return mention_index_.size(); }

 private:
  const Taxonomy* taxonomy_;
  std::unordered_map<std::string, std::vector<NodeId>> mention_index_;
  UsageStats usage_;
};

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_API_SERVICE_H_
