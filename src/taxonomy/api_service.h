#ifndef CNPROBASE_TAXONOMY_API_SERVICE_H_
#define CNPROBASE_TAXONOMY_API_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "taxonomy/taxonomy.h"

namespace cnpb::taxonomy {

// In-process equivalent of the three web APIs the paper deploys on Aliyun
// (Table II):
//   men2ent    — mention  -> disambiguated entities
//   getConcept — entity   -> hypernym (concept) list
//   getEntity  — concept  -> hyponym (entity) list
// Every call is counted so the Table II workload bench can report the mix.
//
// Thread safety: the three query APIs may be called concurrently from any
// number of threads, including while RegisterMention runs (the mention
// index is guarded by a shared_mutex; queries take the shared side, the
// registration writer the exclusive side). Call counters are relaxed
// atomics, so usage().total() is exact under concurrency. The underlying
// Taxonomy is read-only here and must not be mutated while the service is
// in use.
class ApiService {
 public:
  // A plain snapshot of the call counters (see usage()).
  struct UsageStats {
    uint64_t men2ent_calls = 0;
    uint64_t get_concept_calls = 0;
    uint64_t get_entity_calls = 0;
    uint64_t total() const {
      return men2ent_calls + get_concept_calls + get_entity_calls;
    }
  };

  // The taxonomy must outlive the service.
  explicit ApiService(const Taxonomy* taxonomy);

  // Registers `mention` as a surface form of entity node `entity`.
  // (Built by the pipeline from page mentions; entities keep their
  // disambiguated names as node names.) Exclusive writer: safe to call
  // while queries are in flight.
  void RegisterMention(std::string_view mention, NodeId entity);

  // men2ent: candidate entities for a mention, most-popular first
  // (popularity = number of hypernyms, a proxy for page richness).
  std::vector<NodeId> Men2Ent(std::string_view mention) const;

  // getConcept: hypernym names of an entity (or concept) name, ranked by
  // edge confidence. With `transitive`, inherited hypernyms (ancestors of
  // the direct ones) are appended after the direct list.
  std::vector<std::string> GetConcept(std::string_view entity_name,
                                      bool transitive = false) const;

  // getEntity: direct hyponym names of a concept, capped at `limit`.
  std::vector<std::string> GetEntity(std::string_view concept_name,
                                     size_t limit = 100) const;

  // Snapshot of the call counters. Each counter is read atomically; the
  // snapshot as a whole is not a cross-counter atomic cut, but once all
  // callers have joined it is exact.
  UsageStats usage() const;
  void ResetUsage();

  size_t num_mentions() const;

 private:
  const Taxonomy* taxonomy_;
  mutable std::shared_mutex mention_mu_;
  std::unordered_map<std::string, std::vector<NodeId>> mention_index_;
  mutable std::atomic<uint64_t> men2ent_calls_{0};
  mutable std::atomic<uint64_t> get_concept_calls_{0};
  mutable std::atomic<uint64_t> get_entity_calls_{0};
};

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_API_SERVICE_H_
