#ifndef CNPROBASE_TAXONOMY_API_SERVICE_H_
#define CNPROBASE_TAXONOMY_API_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"
#include "util/snapshot.h"

namespace cnpb::taxonomy {

// In-process equivalent of the three web APIs the paper deploys on Aliyun
// (Table II):
//   men2ent    — mention  -> disambiguated entities
//   getConcept — entity   -> hypernym (concept) list
//   getEntity  — concept  -> hyponym (entity) list
// Every call is counted so the Table II workload bench can report the mix.
//
// Versioned serving: CN-Probase sits on a never-ending extraction system
// (CN-DBpedia), so updates and queries are concurrent by design. The service
// holds an RCU-style snapshot — one swappable shared_ptr to an immutable
// {taxonomy, mention index, version} triple. Each query pins the current
// snapshot (a release/acquire-ordered refcount bump) and answers entirely
// against it, so queries never block on, and never observe a half-applied,
// update. Publish installs a fully-built replacement with one release-ordered
// pointer swap; retired versions are freed when the last in-flight query
// releases them.
//
// Thread safety: the query APIs may be called concurrently from any number
// of threads, including while RegisterMention or Publish runs.
// RegisterMention writes a live overlay on top of the current version
// (guarded by a shared_mutex: queries take the shared side, registration the
// exclusive side); Publish supersedes and clears the overlay, since a
// published mention index is rebuilt for its taxonomy version. Call
// counters are relaxed atomics, so usage().total() is exact once all
// callers have joined.
//
// Graceful degradation (DESIGN.md §8): SetServingLimits arms an in-flight
// concurrency cap and a per-query deadline. The Try* variants report
// ResourceExhausted when admission sheds the call and DeadlineExceeded when
// the budget elapses mid-query — fail fast rather than queue unboundedly.
// The legacy vector APIs degrade to an empty result on those errors (and
// count them in api.degraded), so existing callers keep working. With no
// limits configured both checks cost one relaxed load each.
// Serving backends: each published version wraps one immutable ServingView
// (see view.h) — either a HeapServingView (frozen Taxonomy + mention index)
// or an mmap-backed Snapshot (snapshot.h). All query paths read only the
// view interface, so the two backends answer identically.
class ApiService {
 public:
  // mention -> candidate entity nodes, as built for one taxonomy version.
  // (Alias of taxonomy::MentionIndex, kept for existing callers.)
  using MentionIndex = ::cnpb::taxonomy::MentionIndex;

  // A plain snapshot of the call counters (see usage()).
  struct UsageStats {
    uint64_t men2ent_calls = 0;
    uint64_t get_concept_calls = 0;
    uint64_t get_entity_calls = 0;
    uint64_t total() const {
      return men2ent_calls + get_concept_calls + get_entity_calls;
    }
  };

  // Per-published-version serving statistics; `queries` counts the calls
  // answered while that version was the pinned snapshot, so benches can
  // attribute QPS to taxonomy versions.
  struct VersionStats {
    uint64_t version = 0;
    size_t num_edges = 0;
    size_t num_mentions = 0;
    uint64_t queries = 0;
    // Wall time the version spent (or has spent so far) as the live
    // snapshot; queries / seconds_serving is the per-version QPS.
    double seconds_serving = 0.0;
  };

  // Overload policy. Zero means "no limit"; both knobs default off.
  struct ServingLimits {
    // Maximum queries allowed in flight at once; excess calls are shed
    // immediately with ResourceExhausted (counted in api.shed).
    size_t max_in_flight = 0;
    // Per-query time budget; exceeded queries return DeadlineExceeded
    // (counted in api.deadline_exceeded).
    std::chrono::microseconds deadline{0};
  };

  // Non-owning: `taxonomy` must outlive the service. Published as version 1
  // with an empty mention index (fill it via RegisterMention / Publish).
  explicit ApiService(const Taxonomy* taxonomy);

  // Owning: the service pins the snapshot; `mentions` must be the index
  // built for exactly this taxonomy.
  explicit ApiService(std::shared_ptr<const Taxonomy> taxonomy,
                      MentionIndex mentions = MentionIndex());

  // Serves directly from any backend — typically a Snapshot freshly
  // mmap-loaded from disk (zero-copy cold start), or a HeapServingView.
  explicit ApiService(std::shared_ptr<const ServingView> view);

  // Atomically publishes a new serving version: builds the version entry
  // off to the side, then installs it with one release-ordered swap.
  // In-flight queries keep whichever they pinned; later queries observe the
  // new one. The live RegisterMention overlay is cleared (the published
  // view supersedes it). Returns the new version number (monotonically
  // increasing from 1). Safe to call concurrently with queries; concurrent
  // publishers are serialised.
  uint64_t Publish(std::shared_ptr<const ServingView> view);

  // Convenience: wraps (taxonomy, mentions) in a HeapServingView.
  uint64_t Publish(std::shared_ptr<const Taxonomy> taxonomy,
                   MentionIndex mentions);

  // Fallible publish: fails with ResourceExhausted under (injected)
  // contention on the `api.publish` fault point. Publish() wraps this in a
  // util::Retry exponential backoff, which is what callers normally want.
  util::Result<uint64_t> TryPublish(std::shared_ptr<const ServingView> view);
  util::Result<uint64_t> TryPublish(std::shared_ptr<const Taxonomy> taxonomy,
                                    MentionIndex mentions);

  // Installs the overload policy; takes effect for subsequent queries.
  // Safe to call while queries are in flight.
  void SetServingLimits(const ServingLimits& limits);
  ServingLimits serving_limits() const;

  // Registers `mention` as a surface form of entity node `entity` in the
  // live overlay on top of the current version. Visible to queries
  // immediately; superseded by the next Publish. Exclusive writer: safe to
  // call while queries are in flight.
  void RegisterMention(std::string_view mention, NodeId entity);

  // men2ent answer with entity names resolved against the same pinned
  // snapshot that produced the ids — the wire-format variant. A remote
  // client cannot pin our snapshot between two calls the way in-process
  // callers use CurrentTaxonomy(), so ids, names, and the version stamp
  // must come from one coherent version (the serve-while-update chaos test
  // relies on this).
  struct ResolvedEntity {
    NodeId id = kInvalidNode;
    std::string name;
    // Ranking key (see Men2Ent): hypernym count as a popularity proxy.
    size_t num_hypernyms = 0;
  };
  struct Men2EntResolved {
    uint64_t version = 0;  // the version every entry was resolved against
    std::vector<ResolvedEntity> entities;
  };

  // getConcept / getEntity answers carrying the version of the snapshot the
  // names were resolved against — the wire-format variants. The HTTP layer
  // must stamp the version the data actually came from; reading version()
  // after the query returns races a concurrent publish and can stamp a
  // version the data was never resolved against.
  struct NamesResolved {
    uint64_t version = 0;  // the version every name was resolved against
    std::vector<std::string> names;
  };

  // Batch answers: N inputs resolved against ONE pinned snapshot, so every
  // item shares a single coherent version stamp.
  struct Men2EntBatchResolved {
    uint64_t version = 0;
    std::vector<std::vector<ResolvedEntity>> results;  // one per input
  };
  struct NamesBatchResolved {
    uint64_t version = 0;
    std::vector<std::vector<std::string>> results;  // one per input
  };

  // Fallible query variants — the overload-aware API. Errors:
  //   ResourceExhausted  shed by the in-flight cap
  //   DeadlineExceeded   per-query budget elapsed
  //   IoError            injected fault at api.query (chaos testing)
  util::Result<std::vector<NodeId>> TryMen2Ent(std::string_view mention) const;
  util::Result<Men2EntResolved> TryMen2EntResolved(
      std::string_view mention) const;
  util::Result<std::vector<std::string>> TryGetConcept(
      std::string_view entity_name, bool transitive = false) const;
  util::Result<std::vector<std::string>> TryGetEntity(
      std::string_view concept_name, size_t limit = 100) const;
  util::Result<NamesResolved> TryGetConceptResolved(
      std::string_view entity_name, bool transitive = false) const;
  util::Result<NamesResolved> TryGetEntityResolved(
      std::string_view concept_name, size_t limit = 100) const;

  // Extension point for derived query engines (src/reason/): runs `fn`
  // against one pinned snapshot under the same serving contract as the
  // built-in queries — admission by the in-flight cap (ResourceExhausted),
  // the api.query / api.resolve fault points, one query charged to the
  // pinned version's totals, and the per-query deadline checked after `fn`
  // returns (reasoning traversals are bounded, so a post-check suffices
  // exactly as it does for the built-in resolvers). `fn` must answer
  // entirely from the view it is handed; the paired version number is the
  // only stamp its results may carry. `api` names the call in error
  // messages. `fn` is not called when the query is shed.
  util::Status TryQuery(
      const char* api,
      const std::function<util::Status(const ServingView& view,
                                       uint64_t version)>& fn) const;

  // Batch variants: one admission slot, one snapshot pin, one version stamp
  // for the whole request; each item still counts as one logical call in
  // usage() and the per-version query totals. The per-query deadline is
  // checked between items; exceeding it mid-batch fails the whole batch.
  util::Result<Men2EntBatchResolved> TryMen2EntBatchResolved(
      const std::vector<std::string>& mentions) const;
  util::Result<NamesBatchResolved> TryGetConceptBatchResolved(
      const std::vector<std::string>& entities, bool transitive = false) const;
  util::Result<NamesBatchResolved> TryGetEntityBatchResolved(
      const std::vector<std::string>& concepts, size_t limit = 100) const;

  // men2ent: candidate entities for a mention, most-popular first
  // (popularity = number of hypernyms, a proxy for page richness). Node ids
  // are relative to the version pinned by this call (see CurrentTaxonomy).
  std::vector<NodeId> Men2Ent(std::string_view mention) const;

  // getConcept: hypernym names of an entity (or concept) name, ranked by
  // edge confidence. With `transitive`, inherited hypernyms (ancestors of
  // the direct ones) are appended after the direct list.
  std::vector<std::string> GetConcept(std::string_view entity_name,
                                      bool transitive = false) const;

  // getEntity: direct hyponym names of a concept, capped at `limit`.
  std::vector<std::string> GetEntity(std::string_view concept_name,
                                     size_t limit = 100) const;

  // Pins and returns the currently served view (clients that need several
  // coherent lookups should query this snapshot directly).
  std::shared_ptr<const ServingView> CurrentView() const;

  // Pins the current version and returns its heap Taxonomy — null when the
  // served backend is an mmap snapshot (use CurrentView there).
  std::shared_ptr<const Taxonomy> CurrentTaxonomy() const;

  // Version number of the currently served snapshot.
  uint64_t version() const;

  // Stats for every version published so far (including retired ones), in
  // publish order. Each query is attributed to exactly one version.
  std::vector<VersionStats> AllVersionStats() const;

  // Snapshot of the call counters. Each counter is read atomically; the
  // snapshot as a whole is not a cross-counter atomic cut, but once all
  // callers have joined it is exact.
  UsageStats usage() const;
  void ResetUsage();  // also zeroes the per-version query counters

  // Mentions resolvable right now: the pinned version's index plus overlay
  // entries not shadowed by it.
  size_t num_mentions() const;

  // Writes the serving-side gauges that only make sense at export time into
  // `registry`: per-version query totals / serving seconds / QPS
  // (api.version.<N>.*) and the age of the currently pinned snapshot
  // (api.snapshot_age_seconds). Call right before exporting the registry.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  friend class QueryGuard;

  // One published, immutable serving version. `queries` is shared with the
  // stats history so counts survive the version being retired.
  struct Version {
    std::shared_ptr<const ServingView> view;
    uint64_t version = 0;
    std::shared_ptr<std::atomic<uint64_t>> queries;
    std::chrono::steady_clock::time_point published_at;
  };

  struct VersionRecord {
    uint64_t version = 0;
    size_t num_edges = 0;
    size_t num_mentions = 0;
    std::shared_ptr<std::atomic<uint64_t>> queries;
    std::chrono::steady_clock::time_point published_at;
    // Set by the publish that superseded this version (publishers are
    // serialised, so the last history_ entry is the only live one).
    std::chrono::steady_clock::time_point retired_at;
    bool retired = false;
  };

  // Pins the current version (never null) and counts the query against it.
  std::shared_ptr<const Version> PinForQuery() const;

  // Shared men2ent body: candidate ids from `snap`'s index plus the live
  // overlay, ranked most-popular first. Ranking reads only `snap`.
  std::vector<NodeId> LookupMention(const Version& snap,
                                    std::string_view mention) const;

  // Single-item query bodies against an already-pinned snapshot; shared by
  // the single-shot and batch Try* variants.
  std::vector<ResolvedEntity> ResolveMention(const Version& snap,
                                             std::string_view mention) const;
  static std::vector<std::string> ConceptNames(const ServingView& view,
                                               std::string_view entity_name,
                                               bool transitive);
  static std::vector<std::string> EntityNames(const ServingView& view,
                                              std::string_view concept_name,
                                              size_t limit);

  // The actual swap (old Publish body); assumes admission already passed.
  uint64_t PublishInternal(std::shared_ptr<const ServingView> view);

  util::SnapshotHolder<Version> snapshot_;

  // Live overlay of RegisterMention calls since the last publish.
  mutable std::shared_mutex overlay_mu_;
  MentionIndex overlay_;

  mutable std::mutex publish_mu_;  // serialises Publish; guards history_
  std::vector<VersionRecord> history_;
  uint64_t next_version_ = 1;

  // Overload policy + in-flight gauge. Relaxed atomics: admission is a
  // heuristic cap, not a strict semaphore, so a momentary overshoot under
  // contention is acceptable and keeps the admission check lock-free.
  std::atomic<size_t> max_in_flight_{0};
  std::atomic<int64_t> deadline_ns_{0};
  mutable std::atomic<size_t> in_flight_{0};

  mutable std::atomic<uint64_t> men2ent_calls_{0};
  mutable std::atomic<uint64_t> get_concept_calls_{0};
  mutable std::atomic<uint64_t> get_entity_calls_{0};

  // Portion of the call atomics already folded into the registry counters
  // by ExportMetrics (counters sync as deltas at export time, not per call).
  mutable std::atomic<uint64_t> exported_men2ent_calls_{0};
  mutable std::atomic<uint64_t> exported_get_concept_calls_{0};
  mutable std::atomic<uint64_t> exported_get_entity_calls_{0};

  // Registry instruments, resolved once per service. Call counters are
  // synced from the atomics above at export time; latency histograms are
  // fed by a 1-in-64 per-thread sample of queries (see DESIGN.md §7) so the
  // two steady_clock reads stay off the common query path.
  obs::Counter* const calls_men2ent_ =
      obs::MetricsRegistry::Global().counter("api.calls.men2ent");
  obs::Counter* const calls_get_concept_ =
      obs::MetricsRegistry::Global().counter("api.calls.get_concept");
  obs::Counter* const calls_get_entity_ =
      obs::MetricsRegistry::Global().counter("api.calls.get_entity");
  obs::BucketHistogram* const latency_men2ent_ =
      obs::MetricsRegistry::Global().histogram("api.latency.men2ent_seconds");
  obs::BucketHistogram* const latency_get_concept_ =
      obs::MetricsRegistry::Global().histogram(
          "api.latency.get_concept_seconds");
  obs::BucketHistogram* const latency_get_entity_ =
      obs::MetricsRegistry::Global().histogram(
          "api.latency.get_entity_seconds");
  obs::BucketHistogram* const publish_latency_ =
      obs::MetricsRegistry::Global().histogram("api.publish.latency_seconds");
  obs::Counter* const publishes_ =
      obs::MetricsRegistry::Global().counter("api.publishes");
  // Degradation accounting (DESIGN.md §8).
  obs::Counter* const shed_ =
      obs::MetricsRegistry::Global().counter("api.shed");
  obs::Counter* const deadline_exceeded_ =
      obs::MetricsRegistry::Global().counter("api.deadline_exceeded");
  obs::Counter* const degraded_ =
      obs::MetricsRegistry::Global().counter("api.degraded");
  obs::Counter* const publish_retries_ =
      obs::MetricsRegistry::Global().counter("api.publish.retries");
};

}  // namespace cnpb::taxonomy

#endif  // CNPROBASE_TAXONOMY_API_SERVICE_H_
