#include "taxonomy/serialize.h"

#include <cerrno>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::taxonomy {

namespace {

// Strict numeric field parses: the whole field must be consumed. Garbage
// like "12abc" is a malformed row, not node 12.
bool ParseNodeId(const std::string& field, NodeId* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(field.c_str(), &end, 10);
  if (errno == ERANGE || end != field.c_str() + field.size()) return false;
  *out = static_cast<NodeId>(value);
  return true;
}

bool ParseSource(const std::string& field, int* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size()) return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseScore(const std::string& field, float* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size()) return false;
  *out = static_cast<float>(value);
  return true;
}

}  // namespace

util::Status SaveTaxonomy(const Taxonomy& taxonomy, const std::string& path) {
  util::TsvWriter writer(path, {.fault_prefix = "taxonomy.save"});
  if (!writer.status().ok()) return writer.status();
  for (NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    writer.WriteRow({"N", taxonomy.Name(id),
                     taxonomy.Kind(id) == NodeKind::kEntity ? "e" : "c"});
  }
  taxonomy.ForEachEdge([&](const IsaEdge& edge) {
    writer.WriteRow({"E", std::to_string(edge.hypo), std::to_string(edge.hyper),
                     std::to_string(static_cast<int>(edge.source)),
                     util::StrFormat("%.6f", edge.score)});
  });
  return writer.Close();
}

util::Status SaveTaxonomyDurable(const Taxonomy& taxonomy,
                                 const std::string& path) {
  // Preserve the current file as the last-good snapshot first: if the save
  // below fails at any point, `path` still holds the previous version, and
  // if a later load finds `path` corrupted out-of-band, `.bak` survives.
  auto current = util::ReadFileToString(path);
  if (current.ok()) {
    // The bytes already carry their own checksum footer; copy them verbatim.
    const util::Status status = util::WriteFileAtomic(
        path + ".bak", *current,
        {.checksum_footer = false, .fault_prefix = "taxonomy.backup"});
    if (!status.ok()) {
      CNPB_LOG(Warning) << "could not refresh last-good snapshot "
                        << path + ".bak" << ": " << status.ToString();
    }
  }
  return SaveTaxonomy(taxonomy, path);
}

util::Result<Taxonomy> LoadTaxonomy(const std::string& path) {
  CNPB_RETURN_IF_ERROR(util::CheckFault("taxonomy.load.read"));
  auto rows = util::ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  Taxonomy taxonomy;
  for (const auto& row : *rows) {
    if (row.empty()) continue;
    if (row[0] == "N") {
      if (row.size() != 3) {
        return util::InvalidArgumentError("node row needs 3 fields");
      }
      taxonomy.AddNode(row[1],
                       row[2] == "e" ? NodeKind::kEntity : NodeKind::kConcept);
    } else if (row[0] == "E") {
      if (row.size() != 5) {
        return util::InvalidArgumentError("edge row needs 5 fields");
      }
      NodeId hypo = kInvalidNode;
      NodeId hyper = kInvalidNode;
      int source = -1;
      float score = 0.0f;
      if (!ParseNodeId(row[1], &hypo) || !ParseNodeId(row[2], &hyper) ||
          !ParseSource(row[3], &source) || !ParseScore(row[4], &score)) {
        return util::InvalidArgumentError("edge row has non-numeric fields");
      }
      if (hypo >= taxonomy.num_nodes() || hyper >= taxonomy.num_nodes() ||
          source < 0 || source >= kNumSources) {
        return util::InvalidArgumentError("edge row references unknown node");
      }
      taxonomy.AddIsa(hypo, hyper, static_cast<Source>(source), score);
    } else {
      return util::InvalidArgumentError("unknown row tag: " + row[0]);
    }
  }
  return taxonomy;
}

util::Result<Taxonomy> LoadTaxonomyWithFallback(const std::string& path) {
  // Which path actually served the load is operationally significant (a
  // fallback means the primary is damaged), so both outcomes are counted
  // and logged, not just the degraded one.
  auto& registry = obs::MetricsRegistry::Global();
  auto primary = LoadTaxonomy(path);
  if (primary.ok()) {
    registry.counter("kb.load.taxonomy.primary")->Increment();
    CNPB_LOG(Info) << "loaded taxonomy from primary " << path;
    return primary;
  }
  // Fall back only for corruption/IO, and only when a last-good exists;
  // otherwise surface the primary error untouched.
  auto fallback = LoadTaxonomy(path + ".bak");
  if (!fallback.ok()) {
    registry.counter("kb.load.taxonomy.failed")->Increment();
    return primary.status();
  }
  registry.counter("kb.load.taxonomy.fallback")->Increment();
  CNPB_LOG(Warning) << "loaded last-good snapshot " << path << ".bak after: "
                    << primary.status().ToString();
  return fallback;
}

}  // namespace cnpb::taxonomy
