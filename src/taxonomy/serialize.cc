#include "taxonomy/serialize.h"

#include <cstdlib>

#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::taxonomy {

util::Status SaveTaxonomy(const Taxonomy& taxonomy, const std::string& path) {
  util::TsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  for (NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    writer.WriteRow({"N", taxonomy.Name(id),
                     taxonomy.Kind(id) == NodeKind::kEntity ? "e" : "c"});
  }
  taxonomy.ForEachEdge([&](const IsaEdge& edge) {
    writer.WriteRow({"E", std::to_string(edge.hypo), std::to_string(edge.hyper),
                     std::to_string(static_cast<int>(edge.source)),
                     util::StrFormat("%.6f", edge.score)});
  });
  return writer.Close();
}

util::Result<Taxonomy> LoadTaxonomy(const std::string& path) {
  auto rows = util::ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  Taxonomy taxonomy;
  for (const auto& row : *rows) {
    if (row.empty()) continue;
    if (row[0] == "N") {
      if (row.size() != 3) {
        return util::InvalidArgumentError("node row needs 3 fields");
      }
      taxonomy.AddNode(row[1],
                       row[2] == "e" ? NodeKind::kEntity : NodeKind::kConcept);
    } else if (row[0] == "E") {
      if (row.size() != 5) {
        return util::InvalidArgumentError("edge row needs 5 fields");
      }
      const NodeId hypo = static_cast<NodeId>(std::strtoul(row[1].c_str(), nullptr, 10));
      const NodeId hyper = static_cast<NodeId>(std::strtoul(row[2].c_str(), nullptr, 10));
      const int source = std::atoi(row[3].c_str());
      if (hypo >= taxonomy.num_nodes() || hyper >= taxonomy.num_nodes() ||
          source < 0 || source >= kNumSources) {
        return util::InvalidArgumentError("edge row references unknown node");
      }
      taxonomy.AddIsa(hypo, hyper, static_cast<Source>(source),
                      static_cast<float>(std::atof(row[4].c_str())));
    } else {
      return util::InvalidArgumentError("unknown row tag: " + row[0]);
    }
  }
  return taxonomy;
}

}  // namespace cnpb::taxonomy
