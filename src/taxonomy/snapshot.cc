#include "taxonomy/snapshot.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <functional>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/snapshot.h"
#include "util/strings.h"
#include "util/timer.h"

namespace cnpb::taxonomy {

namespace {

// Fixed header field offsets (bytes from the start of the file).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffSectionCount = 12;
constexpr size_t kOffNumNodes = 16;
constexpr size_t kOffNumMentions = 20;
constexpr size_t kOffNumEdges = 24;
constexpr size_t kOffTotalSize = 32;
constexpr size_t kOffHeaderCrc = 40;

// Section ids, in file order.
enum SectionId : uint32_t {
  kKinds = 0,
  kNameOffsets,
  kNameBytes,
  kNameSorted,
  kHyperRows,
  kHyperTargets,
  kHyperSources,
  kHyperScores,
  kHypoRows,
  kHypoTargets,
  kHypoSources,
  kHypoScores,
  kMentionOffsets,
  kMentionBytes,
  kMentionRows,
  kMentionIds,
};

constexpr size_t Align8(size_t x) { return (x + 7) & ~size_t{7}; }

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void PutPod(std::string* out, size_t offset, T value) {
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
T GetPod(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// The one mutable edge representation the writer needs: the canonical global
// sequence (hypernym rows in node-id order), from which both CSRs derive.
struct FlatEdge {
  NodeId hypo = kInvalidNode;
  NodeId hyper = kInvalidNode;
  uint8_t source = 0;
  float score = 1.0f;
};

}  // namespace

std::string SerializeSnapshot(const ServingView& view) {
  const size_t n = view.num_nodes();
  std::array<std::string, kSnapshotSectionCount> sections;

  // Nodes: kinds, the name arena with its offset index, and the name-sorted
  // id permutation that backs binary-search Find.
  sections[kKinds].reserve(n);
  sections[kNameOffsets].reserve((n + 1) * sizeof(uint64_t));
  uint64_t name_offset = 0;
  AppendPod<uint64_t>(&sections[kNameOffsets], 0);
  for (NodeId id = 0; id < n; ++id) {
    sections[kKinds].push_back(
        static_cast<char>(static_cast<uint8_t>(view.Kind(id))));
    const std::string_view name = view.Name(id);
    sections[kNameBytes].append(name);
    name_offset += name.size();
    AppendPod<uint64_t>(&sections[kNameOffsets], name_offset);
  }
  std::vector<NodeId> sorted(n);
  std::iota(sorted.begin(), sorted.end(), NodeId{0});
  std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    return view.Name(a) < view.Name(b);
  });
  for (const NodeId id : sorted) AppendPod<uint32_t>(&sections[kNameSorted], id);

  // Canonical edge sequence (see header comment): the hypernym CSR is the
  // sequence itself, the hyponym CSR replays it bucketed by hypernym. Both
  // are derived here — never from VisitHyponyms — so a freshly built
  // taxonomy and a TSV-reloaded one serialize to identical bytes.
  std::vector<FlatEdge> edges;
  edges.reserve(view.num_edges());
  AppendPod<uint64_t>(&sections[kHyperRows], 0);
  for (NodeId id = 0; id < n; ++id) {
    view.VisitHypernyms(id, [&](const HalfEdge& edge) {
      edges.push_back(FlatEdge{static_cast<NodeId>(id), edge.node,
                               static_cast<uint8_t>(edge.source), edge.score});
      return true;
    });
    AppendPod<uint64_t>(&sections[kHyperRows],
                        static_cast<uint64_t>(edges.size()));
  }
  const uint64_t num_edges = edges.size();
  for (const FlatEdge& edge : edges) {
    AppendPod<uint32_t>(&sections[kHyperTargets], edge.hyper);
    sections[kHyperSources].push_back(static_cast<char>(edge.source));
    AppendPod<float>(&sections[kHyperScores], edge.score);
  }
  std::vector<uint64_t> hypo_rows(n + 1, 0);
  for (const FlatEdge& edge : edges) ++hypo_rows[edge.hyper + 1];
  for (size_t i = 1; i <= n; ++i) hypo_rows[i] += hypo_rows[i - 1];
  std::vector<NodeId> hypo_targets(edges.size());
  std::string hypo_sources(edges.size(), '\0');
  std::vector<float> hypo_scores(edges.size());
  std::vector<uint64_t> cursor(hypo_rows.begin(), hypo_rows.end());
  for (const FlatEdge& edge : edges) {
    const uint64_t pos = cursor[edge.hyper]++;
    hypo_targets[pos] = edge.hypo;
    hypo_sources[pos] = static_cast<char>(edge.source);
    hypo_scores[pos] = edge.score;
  }
  for (const uint64_t row : hypo_rows) AppendPod<uint64_t>(&sections[kHypoRows], row);
  for (const NodeId id : hypo_targets) AppendPod<uint32_t>(&sections[kHypoTargets], id);
  sections[kHypoSources] = std::move(hypo_sources);
  for (const float score : hypo_scores) AppendPod<float>(&sections[kHypoScores], score);

  // Mentions arrive in lexicographic order (the VisitMentions contract),
  // which is exactly the order the loader's binary search requires.
  uint64_t mention_offset = 0;
  uint64_t mention_ids = 0;
  uint64_t num_mentions = 0;
  AppendPod<uint64_t>(&sections[kMentionOffsets], 0);
  AppendPod<uint64_t>(&sections[kMentionRows], 0);
  view.VisitMentions(
      [&](std::string_view mention, const NodeId* ids, size_t num_ids) {
        sections[kMentionBytes].append(mention);
        mention_offset += mention.size();
        AppendPod<uint64_t>(&sections[kMentionOffsets], mention_offset);
        for (size_t i = 0; i < num_ids; ++i) {
          AppendPod<uint32_t>(&sections[kMentionIds], ids[i]);
        }
        mention_ids += num_ids;
        AppendPod<uint64_t>(&sections[kMentionRows], mention_ids);
        ++num_mentions;
        return true;
      });

  // Layout: sections at ascending 8-aligned offsets right after the prelude,
  // zero padding in the gaps, no trailing padding.
  std::array<uint64_t, kSnapshotSectionCount> offsets;
  size_t pos = SnapshotPreludeSize();
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    pos = Align8(pos);
    offsets[i] = pos;
    pos += sections[i].size();
  }
  const size_t total_size = pos;

  std::string out(total_size, '\0');
  std::memcpy(out.data() + kOffMagic, kSnapshotMagic.data(),
              kSnapshotMagic.size());
  PutPod<uint32_t>(&out, kOffVersion, kSnapshotFormatVersion);
  PutPod<uint32_t>(&out, kOffSectionCount, kSnapshotSectionCount);
  PutPod<uint32_t>(&out, kOffNumNodes, static_cast<uint32_t>(n));
  PutPod<uint32_t>(&out, kOffNumMentions, static_cast<uint32_t>(num_mentions));
  PutPod<uint64_t>(&out, kOffNumEdges, num_edges);
  PutPod<uint64_t>(&out, kOffTotalSize, static_cast<uint64_t>(total_size));
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    std::memcpy(out.data() + offsets[i], sections[i].data(),
                sections[i].size());
    const size_t entry = kSnapshotHeaderSize + i * kSnapshotSectionEntrySize;
    PutPod<uint32_t>(&out, entry, i);
    PutPod<uint32_t>(&out, entry + 4, util::Crc32c(sections[i]));
    PutPod<uint64_t>(&out, entry + 8, offsets[i]);
    PutPod<uint64_t>(&out, entry + 16,
                     static_cast<uint64_t>(sections[i].size()));
  }
  // The CRC field is still zero here, which is exactly the state the header
  // CRC is defined over.
  PutPod<uint32_t>(&out, kOffHeaderCrc,
                   util::Crc32c(std::string_view(out.data(),
                                                SnapshotPreludeSize())));
  return out;
}

util::Status WriteSnapshot(const ServingView& view, const std::string& path) {
  util::AtomicWriteOptions options;
  options.checksum_footer = false;  // per-section CRCs supersede the footer
  options.fault_prefix = "snapshot";
  util::AtomicFileWriter writer(path, options);
  writer.Append(SerializeSnapshot(view));
  return writer.Commit();
}

util::Status WriteSnapshot(const Taxonomy& taxonomy, MentionIndex mentions,
                           const std::string& path) {
  const HeapServingView view(util::UnownedSnapshot(&taxonomy),
                             std::move(mentions));
  return WriteSnapshot(view, path);
}

util::Result<std::shared_ptr<const Snapshot>> Snapshot::Load(
    const std::string& path) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::ScopedTimer timer(registry.histogram("snapshot.load.seconds"));
  auto fail = [&registry](util::Status status) {
    registry.counter("snapshot.load.error")->Increment();
    return status;
  };
  // Mirrors taxonomy.load.read so fault-injection harnesses can starve both
  // persistence paths the same way.
  if (util::Status fault = util::CheckFault("snapshot.load.read"); !fault.ok()) {
    return fail(std::move(fault));
  }
  util::Result<util::MmapFile> file = util::MmapFile::Open(path);
  if (!file.ok()) return fail(file.status());
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->file_ = std::move(file).value();
  if (util::Status status = snapshot->Init(); !status.ok()) {
    return fail(std::move(status));
  }
  registry.counter("snapshot.load.ok")->Increment();
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

util::Status Snapshot::Init() {
  const uint8_t* base = file_.data();
  const size_t file_size = file_.size();
  if (file_size == 0) {
    return util::InvalidArgumentError("empty snapshot file: " + path());
  }
  if (file_size < kSnapshotHeaderSize ||
      std::memcmp(base + kOffMagic, kSnapshotMagic.data(),
                  kSnapshotMagic.size()) != 0) {
    return util::InvalidArgumentError("not a snapshot file (bad magic): " +
                                      path());
  }
  const uint32_t version = GetPod<uint32_t>(base + kOffVersion);
  if (version != kSnapshotFormatVersion) {
    return util::InvalidArgumentError(
        util::StrFormat("unsupported snapshot format version %u: %s", version,
                        path().c_str()));
  }
  if (GetPod<uint32_t>(base + kOffSectionCount) != kSnapshotSectionCount) {
    return util::InvalidArgumentError("bad snapshot section count: " + path());
  }
  if (file_size < SnapshotPreludeSize()) {
    return util::DataLossError("snapshot truncated inside section table: " +
                               path());
  }
  // The header CRC seals the counts and the whole section table, so every
  // offset/size/section-CRC used below is integrity-checked before use.
  std::string prelude(reinterpret_cast<const char*>(base),
                      SnapshotPreludeSize());
  const uint32_t stored_header_crc = GetPod<uint32_t>(base + kOffHeaderCrc);
  PutPod<uint32_t>(&prelude, kOffHeaderCrc, 0);
  if (util::Crc32c(prelude) != stored_header_crc) {
    return util::DataLossError("snapshot header crc mismatch: " + path());
  }
  num_nodes_ = GetPod<uint32_t>(base + kOffNumNodes);
  num_mentions_ = GetPod<uint32_t>(base + kOffNumMentions);
  num_edges_ = GetPod<uint64_t>(base + kOffNumEdges);
  const uint64_t stated_size = GetPod<uint64_t>(base + kOffTotalSize);
  if (stated_size != file_size) {
    return util::DataLossError(
        util::StrFormat("snapshot size mismatch (header says %llu, file has "
                        "%zu bytes): %s",
                        static_cast<unsigned long long>(stated_size),
                        file_size, path().c_str()));
  }
  // Bound the counts before using them in size arithmetic: every node needs
  // a kind byte and every edge a source byte, so anything larger than the
  // file is structurally impossible (and keeps the multiplications below far
  // from uint64 overflow).
  const uint64_t n = num_nodes_;
  const uint64_t m = num_mentions_;
  const uint64_t e = num_edges_;
  if (n > file_size || e > file_size || m > file_size) {
    return util::InvalidArgumentError("snapshot counts exceed file size: " +
                                      path());
  }

  std::array<SnapshotSectionInfo, kSnapshotSectionCount> table;
  uint64_t prev_end = SnapshotPreludeSize();
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    const uint8_t* entry =
        base + kSnapshotHeaderSize + i * kSnapshotSectionEntrySize;
    table[i].id = GetPod<uint32_t>(entry);
    table[i].crc = GetPod<uint32_t>(entry + 4);
    table[i].offset = GetPod<uint64_t>(entry + 8);
    table[i].size = GetPod<uint64_t>(entry + 16);
    if (table[i].id != i) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot section %u out of order: %s", i,
                          path().c_str()));
    }
    // Overflow-safe bounds: offset and size are each checked against what
    // remains, never summed first.
    if (table[i].offset % 8 != 0 || table[i].offset < prev_end ||
        table[i].offset > file_size ||
        table[i].size > file_size - table[i].offset) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot section %u out of bounds: %s", i,
                          path().c_str()));
    }
    prev_end = table[i].offset + table[i].size;
  }
  const std::array<uint64_t, kSnapshotSectionCount> expected_sizes = {
      n,                // kinds
      8 * (n + 1),      // name offsets
      table[kNameBytes].size,
      4 * n,            // name-sorted ids
      8 * (n + 1),      // hyper rows
      4 * e, e, 4 * e,  // hyper targets/sources/scores
      8 * (n + 1),      // hypo rows
      4 * e, e, 4 * e,  // hypo targets/sources/scores
      8 * (m + 1),      // mention offsets
      table[kMentionBytes].size,
      8 * (m + 1),      // mention rows
      table[kMentionIds].size,
  };
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    if (table[i].size != expected_sizes[i]) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot section %u has size %llu, expected %llu: "
                          "%s",
                          i, static_cast<unsigned long long>(table[i].size),
                          static_cast<unsigned long long>(expected_sizes[i]),
                          path().c_str()));
    }
  }
  if (table[kMentionIds].size % 4 != 0) {
    return util::InvalidArgumentError("snapshot mention-id section misaligned: " +
                                      path());
  }
  num_mention_ids_ = table[kMentionIds].size / 4;
  // Section CRCs are independent, so they run on the process-wide pool.
  // Each check writes its verdict into its own slot and the first failure
  // in slot order wins, making the outcome (and its message) identical for
  // every CNPB_THREADS value.
  {
    std::array<util::Status, kSnapshotSectionCount> crc_status;
    util::ParallelFor(kSnapshotSectionCount, [&](size_t i) {
      const std::string_view payload(
          reinterpret_cast<const char*>(base + table[i].offset),
          table[i].size);
      if (util::Crc32c(payload) != table[i].crc) {
        crc_status[i] = util::DataLossError(
            util::StrFormat("snapshot section %u crc mismatch: %s",
                            static_cast<uint32_t>(i), path().c_str()));
      }
    });
    for (const util::Status& status : crc_status) {
      CNPB_RETURN_IF_ERROR(status);
    }
  }

  // All bytes verified; resolve typed pointers (sections are 8-aligned and
  // mmap bases are page-aligned, so the casts are alignment-safe).
  const auto u64_at = [&](SectionId id) {
    return reinterpret_cast<const uint64_t*>(base + table[id].offset);
  };
  const auto u32_at = [&](SectionId id) {
    return reinterpret_cast<const uint32_t*>(base + table[id].offset);
  };
  kinds_ = base + table[kKinds].offset;
  name_offsets_ = u64_at(kNameOffsets);
  name_bytes_ = reinterpret_cast<const char*>(base + table[kNameBytes].offset);
  name_sorted_ = u32_at(kNameSorted);
  hyper_ = {u64_at(kHyperRows), u32_at(kHyperTargets),
            base + table[kHyperSources].offset,
            reinterpret_cast<const float*>(base + table[kHyperScores].offset)};
  hypo_ = {u64_at(kHypoRows), u32_at(kHypoTargets),
           base + table[kHypoSources].offset,
           reinterpret_cast<const float*>(base + table[kHypoScores].offset)};
  mention_offsets_ = u64_at(kMentionOffsets);
  mention_bytes_ =
      reinterpret_cast<const char*>(base + table[kMentionBytes].offset);
  mention_rows_ = u64_at(kMentionRows);
  mention_ids_ = u32_at(kMentionIds);

  // Structural validation: every index the query paths will ever follow is
  // checked once here, so serving needs no per-query bounds checks beyond
  // the public id range.
  const auto check_arena =
      [&](const uint64_t* offsets, uint64_t count, uint64_t arena_size,
          const char* what) -> util::Status {
    if (offsets[0] != 0) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot %s offsets do not start at 0: %s", what,
                          path().c_str()));
    }
    // Branchless accumulation: these whole-array scans are the hot part of
    // a load, and without the early exit the compiler vectorizes them.
    bool non_monotonic = false;
    for (uint64_t i = 0; i < count; ++i) {
      non_monotonic |= offsets[i + 1] < offsets[i];
    }
    if (non_monotonic) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot %s offsets not monotonic: %s", what,
                          path().c_str()));
    }
    if (offsets[count] != arena_size) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot %s offsets do not cover the arena: %s",
                          what, path().c_str()));
    }
    return util::Status::Ok();
  };
  CNPB_RETURN_IF_ERROR(
      check_arena(name_offsets_, n, table[kNameBytes].size, "name"));
  CNPB_RETURN_IF_ERROR(
      check_arena(mention_offsets_, m, table[kMentionBytes].size, "mention"));
  bool sorted_id_oor = false;
  for (uint64_t i = 0; i < n; ++i) {
    sorted_id_oor |= name_sorted_[i] >= n;
  }
  if (sorted_id_oor) {
    return util::InvalidArgumentError(
        "snapshot name-sorted id out of range: " + path());
  }
  // The remaining whole-array scans also parallelize: each becomes a task
  // returning a Status into its own slot, first failure in slot order wins
  // (the same ladder order as a serial pass). Reference captures are safe —
  // ParallelFor is synchronous, so every task finishes inside this frame.
  // The adjacent-pair string compares dominate validation cost, so they are
  // sharded; shard boundaries are fixed fractions of the element count,
  // never of the thread count, keeping the task list deterministic.
  std::vector<std::function<util::Status()>> checks;
  constexpr uint64_t kPairShards = 8;
  for (uint64_t s = 0; s < kPairShards && n > 1; ++s) {
    const uint64_t begin = 1 + (n - 1) * s / kPairShards;
    const uint64_t end = 1 + (n - 1) * (s + 1) / kPairShards;
    if (begin >= end) continue;
    checks.push_back([this, begin, end]() -> util::Status {
      for (uint64_t i = begin; i < end; ++i) {
        // Strictly increasing names over a full-length id array proves the
        // section is a permutation and that names are unique.
        if (NameAt(name_sorted_[i - 1]) >= NameAt(name_sorted_[i])) {
          return util::InvalidArgumentError(
              "snapshot name-sorted ids not sorted by name: " + path());
        }
      }
      return util::Status::Ok();
    });
  }
  const auto check_csr = [&](const Csr& csr, uint64_t rows, uint64_t entries,
                             const char* what) -> util::Status {
    if (csr.rows[0] != 0 || csr.rows[rows] != entries) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot %s rows do not cover the edges: %s", what,
                          path().c_str()));
    }
    bool non_monotonic = false;
    for (uint64_t i = 0; i < rows; ++i) {
      non_monotonic |= csr.rows[i + 1] < csr.rows[i];
    }
    if (non_monotonic) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot %s rows not monotonic: %s", what,
                          path().c_str()));
    }
    bool target_oor = false;
    for (uint64_t k = 0; k < entries; ++k) {
      target_oor |= csr.targets[k] >= n;
    }
    if (target_oor) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot %s target out of range: %s", what,
                          path().c_str()));
    }
    bool source_oor = false;
    for (uint64_t k = 0; k < entries; ++k) {
      source_oor |= csr.sources[k] >= kNumSources;
    }
    if (source_oor) {
      return util::InvalidArgumentError(
          util::StrFormat("snapshot %s edge source out of range: %s", what,
                          path().c_str()));
    }
    return util::Status::Ok();
  };
  checks.push_back([&, this]() { return check_csr(hyper_, n, e, "hypernym"); });
  checks.push_back([&, this]() { return check_csr(hypo_, n, e, "hyponym"); });
  for (uint64_t s = 0; s < kPairShards && m > 1; ++s) {
    const uint64_t begin = 1 + (m - 1) * s / kPairShards;
    const uint64_t end = 1 + (m - 1) * (s + 1) / kPairShards;
    if (begin >= end) continue;
    checks.push_back([this, begin, end]() -> util::Status {
      for (uint64_t i = begin; i < end; ++i) {
        if (MentionAt(i - 1) >= MentionAt(i)) {
          return util::InvalidArgumentError("snapshot mentions not sorted: " +
                                            path());
        }
      }
      return util::Status::Ok();
    });
  }
  checks.push_back([this, n, m]() -> util::Status {
    if (mention_rows_[0] != 0 || mention_rows_[m] != num_mention_ids_) {
      return util::InvalidArgumentError(
          "snapshot mention rows do not cover the candidate ids: " + path());
    }
    bool rows_non_monotonic = false;
    for (uint64_t i = 0; i < m; ++i) {
      rows_non_monotonic |= mention_rows_[i + 1] < mention_rows_[i];
    }
    if (rows_non_monotonic) {
      return util::InvalidArgumentError(
          "snapshot mention rows not monotonic: " + path());
    }
    bool candidate_oor = false;
    for (uint64_t k = 0; k < num_mention_ids_; ++k) {
      candidate_oor |= mention_ids_[k] >= n;
    }
    if (candidate_oor) {
      return util::InvalidArgumentError(
          "snapshot mention candidate id out of range: " + path());
    }
    return util::Status::Ok();
  });
  std::vector<util::Status> verdicts(checks.size());
  util::ParallelFor(checks.size(),
                    [&](size_t i) { verdicts[i] = checks[i](); });
  for (const util::Status& status : verdicts) {
    CNPB_RETURN_IF_ERROR(status);
  }
  return util::Status::Ok();
}

std::string_view Snapshot::NameAt(NodeId id) const {
  const uint64_t begin = name_offsets_[id];
  return std::string_view(name_bytes_ + begin, name_offsets_[id + 1] - begin);
}

std::string_view Snapshot::MentionAt(uint32_t index) const {
  const uint64_t begin = mention_offsets_[index];
  return std::string_view(mention_bytes_ + begin,
                          mention_offsets_[index + 1] - begin);
}

NodeId Snapshot::Find(std::string_view name) const {
  size_t lo = 0;
  size_t hi = num_nodes_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (NameAt(name_sorted_[mid]) < name) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < num_nodes_ && NameAt(name_sorted_[lo]) == name) {
    return name_sorted_[lo];
  }
  return kInvalidNode;
}

std::string_view Snapshot::Name(NodeId id) const {
  CNPB_CHECK(id < num_nodes_);
  return NameAt(id);
}

NodeKind Snapshot::Kind(NodeId id) const {
  CNPB_CHECK(id < num_nodes_);
  return static_cast<NodeKind>(kinds_[id]);
}

size_t Snapshot::NumHypernyms(NodeId id) const {
  if (id >= num_nodes_) return 0;
  return hyper_.rows[id + 1] - hyper_.rows[id];
}

size_t Snapshot::NumHyponyms(NodeId id) const {
  if (id >= num_nodes_) return 0;
  return hypo_.rows[id + 1] - hypo_.rows[id];
}

void Snapshot::VisitAdjacent(
    const Csr& csr, NodeId id,
    const std::function<bool(const HalfEdge&)>& fn) const {
  if (id >= num_nodes_) return;
  const uint64_t end = csr.rows[id + 1];
  for (uint64_t k = csr.rows[id]; k < end; ++k) {
    if (!fn(HalfEdge{csr.targets[k], static_cast<Source>(csr.sources[k]),
                     csr.scores[k]})) {
      return;
    }
  }
}

void Snapshot::VisitHypernyms(
    NodeId id, const std::function<bool(const HalfEdge&)>& fn) const {
  VisitAdjacent(hyper_, id, fn);
}

void Snapshot::VisitHyponyms(
    NodeId id, const std::function<bool(const HalfEdge&)>& fn) const {
  VisitAdjacent(hypo_, id, fn);
}

uint32_t Snapshot::FindMentionIndex(std::string_view mention) const {
  uint32_t lo = 0;
  uint32_t hi = num_mentions_;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (MentionAt(mid) < mention) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < num_mentions_ && MentionAt(lo) == mention) return lo;
  return num_mentions_;
}

bool Snapshot::HasMention(std::string_view mention) const {
  return FindMentionIndex(mention) != num_mentions_;
}

std::vector<NodeId> Snapshot::MentionCandidates(
    std::string_view mention) const {
  const uint32_t index = FindMentionIndex(mention);
  if (index == num_mentions_) return {};
  return std::vector<NodeId>(mention_ids_ + mention_rows_[index],
                             mention_ids_ + mention_rows_[index + 1]);
}

void Snapshot::VisitMentions(
    const std::function<bool(std::string_view, const NodeId*, size_t)>& fn)
    const {
  for (uint32_t i = 0; i < num_mentions_; ++i) {
    const uint64_t begin = mention_rows_[i];
    if (!fn(MentionAt(i), mention_ids_ + begin,
            static_cast<size_t>(mention_rows_[i + 1] - begin))) {
      return;
    }
  }
}

util::Result<Taxonomy> MaterializeTaxonomy(const ServingView& view) {
  Taxonomy taxonomy;
  const size_t n = view.num_nodes();
  for (NodeId id = 0; id < n; ++id) {
    if (taxonomy.AddNode(view.Name(id), view.Kind(id)) != id) {
      return util::InternalError(
          "serving view contains duplicate node names; cannot materialize");
    }
  }
  // Replaying the canonical sequence reproduces the adjacency structure
  // LoadTaxonomy builds from the equivalent TSV file.
  for (NodeId id = 0; id < n; ++id) {
    view.VisitHypernyms(id, [&](const HalfEdge& edge) {
      taxonomy.AddIsa(id, edge.node, edge.source, edge.score);
      return true;
    });
  }
  return taxonomy;
}

util::Result<std::vector<SnapshotSectionInfo>> ReadSnapshotSections(
    std::string_view bytes) {
  if (bytes.size() < SnapshotPreludeSize() ||
      bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return util::InvalidArgumentError(
        "bytes do not contain a snapshot prelude");
  }
  std::vector<SnapshotSectionInfo> sections(kSnapshotSectionCount);
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    const uint8_t* entry = reinterpret_cast<const uint8_t*>(bytes.data()) +
                           kSnapshotHeaderSize + i * kSnapshotSectionEntrySize;
    sections[i].id = GetPod<uint32_t>(entry);
    sections[i].crc = GetPod<uint32_t>(entry + 4);
    sections[i].offset = GetPod<uint64_t>(entry + 8);
    sections[i].size = GetPod<uint64_t>(entry + 16);
  }
  return sections;
}

util::Status ResealSnapshotHeader(std::string* bytes) {
  if (bytes->size() < SnapshotPreludeSize()) {
    return util::InvalidArgumentError("bytes too short to reseal");
  }
  PutPod<uint32_t>(bytes, kOffHeaderCrc, 0);
  PutPod<uint32_t>(bytes, kOffHeaderCrc,
                   util::Crc32c(std::string_view(bytes->data(),
                                                SnapshotPreludeSize())));
  return util::Status::Ok();
}

util::Status ResealSnapshotSection(std::string* bytes, uint32_t id) {
  CNPB_RETURN_IF_ERROR(ResealSnapshotHeader(bytes));  // validates the prelude
  if (id >= kSnapshotSectionCount) {
    return util::InvalidArgumentError("no such snapshot section");
  }
  util::Result<std::vector<SnapshotSectionInfo>> sections =
      ReadSnapshotSections(*bytes);
  CNPB_RETURN_IF_ERROR(sections.status());
  const SnapshotSectionInfo& info = sections.value()[id];
  if (info.offset > bytes->size() ||
      info.size > bytes->size() - info.offset) {
    return util::InvalidArgumentError(
        "section out of bounds; cannot reseal");
  }
  const uint32_t crc = util::Crc32c(
      std::string_view(bytes->data() + info.offset, info.size));
  PutPod<uint32_t>(bytes,
                   kSnapshotHeaderSize + id * kSnapshotSectionEntrySize + 4,
                   crc);
  return ResealSnapshotHeader(bytes);
}

}  // namespace cnpb::taxonomy
