#ifndef CNPROBASE_UTIL_HASH_H_
#define CNPROBASE_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace cnpb::util {

// FNV-1a 64-bit hash; stable across platforms (used for deterministic
// bucketing and for hashing interned strings).
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Combines two 64-bit hashes (boost-style mix).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_HASH_H_
