#include "util/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace cnpb::util {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitBy(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string CommaSeparated(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace cnpb::util
