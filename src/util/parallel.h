#ifndef CNPROBASE_UTIL_PARALLEL_H_
#define CNPROBASE_UTIL_PARALLEL_H_

#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

namespace cnpb::util {

// Number of worker threads: CNPB_THREADS env var, else hardware concurrency
// (at least 1).
inline int DefaultThreads() {
  const char* env = std::getenv("CNPB_THREADS");
  if (env != nullptr) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Runs fn(i) for every i in [0, n), fanned out over up to DefaultThreads()
// threads with contiguous index ranges. Determinism contract: fn must write
// only to per-index state (e.g. slot i of a pre-sized output vector); the
// caller then reads slots in order, so results are independent of thread
// scheduling. fn must not throw (the project does not use exceptions).
inline void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int threads = DefaultThreads();
  if (threads <= 1 || n < 64) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t num_workers =
      std::min(static_cast<size_t>(threads), n);
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  const size_t chunk = (n + num_workers - 1) / num_workers;
  for (size_t w = 0; w < num_workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    workers.emplace_back([begin, end, &fn]() {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_PARALLEL_H_
