#ifndef CNPROBASE_UTIL_PARALLEL_H_
#define CNPROBASE_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace cnpb::util {

// Runs fn(i) for every i in [0, n) on the process-wide thread pool, using up
// to DefaultThreads() lanes (the calling thread participates). Determinism
// contract: fn must write only to per-index state (e.g. slot i of a
// pre-sized output vector); the caller then reads slots in order, so results
// are independent of thread count and scheduling. fn must not throw (the
// project does not use exceptions). Reentrant calls (fn itself calling
// ParallelFor) execute the nested loop inline and serially.
inline void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int threads = DefaultThreads();
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(threads);
  pool.ParallelFor(n, threads, fn);
}

// Parallel map into per-index slots: returns {fn(0), fn(1), ..., fn(n-1)}.
// The result type must be default-constructible; output order is index
// order regardless of scheduling.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn) {
  using T = std::decay_t<decltype(fn(size_t{0}))>;
  std::vector<T> out(n);
  ParallelFor(n, [&out, &fn](size_t i) { out[i] = fn(i); });
  return out;
}

// A contiguous half-open index range [begin, end).
using IndexRange = std::pair<size_t, size_t>;

// Deterministic contiguous shard plan for n items: a pure function of n
// alone (never of the thread count), so any code that processes shards
// independently and concatenates results in shard order produces output
// that is byte-identical for every CNPB_THREADS value. Shards are balanced
// to within one item; the count targets ~kShardGrain items per shard,
// capped so huge inputs do not drown the scheduler in tiny tasks.
inline std::vector<IndexRange> MakeShards(size_t n) {
  constexpr size_t kShardGrain = 128;
  constexpr size_t kMaxShards = 256;
  if (n == 0) return {};
  const size_t wanted = (n + kShardGrain - 1) / kShardGrain;
  const size_t num_shards = std::min(std::min(wanted, kMaxShards), n);
  std::vector<IndexRange> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = n * s / num_shards;
    const size_t end = n * (s + 1) / num_shards;
    if (begin < end) shards.emplace_back(begin, end);
  }
  return shards;
}

// Runs fn(begin, end) over every shard of [0, n) in parallel and
// concatenates the returned containers in shard order — the order-stable
// merge that keeps sharded extraction byte-identical to a serial pass.
template <typename Fn>
auto ShardedConcat(size_t n, Fn&& fn) {
  using List = std::decay_t<decltype(fn(size_t{0}, size_t{0}))>;
  const std::vector<IndexRange> shards = MakeShards(n);
  std::vector<List> parts = ParallelMap(
      shards.size(),
      [&](size_t s) { return fn(shards[s].first, shards[s].second); });
  size_t total = 0;
  for (const List& part : parts) total += part.size();
  List out;
  out.reserve(total);
  for (List& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_PARALLEL_H_
