#include "util/atomic_file.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/fault_injection.h"
#include "util/strings.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace cnpb::util {

namespace {

constexpr std::string_view kFooterPrefix = "#cnpb:crc32:";

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Monotonic per-process counter so concurrent writers targeting the same
// destination never share a temp file.
std::string TempPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return StrFormat("%s.tmp.%llu.%llu", path.c_str(),
                   static_cast<unsigned long long>(::getpid()),
                   static_cast<unsigned long long>(
                       counter.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string ChecksumFooter(std::string_view payload) {
  return StrFormat("%.*s%08x:%zu\n", static_cast<int>(kFooterPrefix.size()),
                   kFooterPrefix.data(), Crc32(payload), payload.size());
}

Result<std::string> StripVerifyChecksumFooter(std::string content,
                                              const std::string& path) {
  if (content.empty() || content.back() != '\n') return content;
  // The footer is always the last line; find its start.
  const size_t line_start = content.rfind('\n', content.size() - 2);
  const size_t footer_start = line_start == std::string::npos ? 0
                                                              : line_start + 1;
  const std::string_view footer(content.data() + footer_start,
                                content.size() - footer_start);
  if (!StartsWith(footer, kFooterPrefix)) return content;
  // "#cnpb:crc32:<8 hex>:<decimal size>\n"
  const std::string_view body =
      footer.substr(kFooterPrefix.size(), footer.size() -
                                              kFooterPrefix.size() - 1);
  const std::vector<std::string> parts = Split(body, ':');
  uint32_t crc = 0;
  size_t size = 0;
  bool parsed = parts.size() == 2 && parts[0].size() == 8;
  if (parsed) {
    char* end = nullptr;
    crc = static_cast<uint32_t>(std::strtoul(parts[0].c_str(), &end, 16));
    parsed = end == parts[0].c_str() + parts[0].size();
    if (parsed) {
      size = static_cast<size_t>(std::strtoull(parts[1].c_str(), &end, 10));
      parsed = !parts[1].empty() && end == parts[1].c_str() + parts[1].size();
    }
  }
  // A footer-shaped line that fails to parse or verify is treated as
  // corruption, not data: swallowing it silently would defeat the check.
  if (!parsed) {
    return DataLossError("malformed checksum footer: " + path);
  }
  const std::string_view payload(content.data(), footer_start);
  if (payload.size() != size) {
    return DataLossError(
        StrFormat("checksum footer size mismatch (%zu vs %zu): %s",
                  payload.size(), size, path.c_str()));
  }
  const uint32_t actual = Crc32(payload);
  if (actual != crc) {
    return DataLossError(StrFormat("crc32 mismatch (%08x vs %08x): %s",
                                   actual, crc, path.c_str()));
  }
  content.resize(footer_start);
  return content;
}

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   AtomicWriteOptions options)
    : path_(std::move(path)), options_(std::move(options)) {}

AtomicFileWriter::~AtomicFileWriter() = default;

Status AtomicFileWriter::Commit() {
  if (committed_) return FailedPreconditionError("already committed: " + path_);
  CNPB_RETURN_IF_ERROR(CheckFault(options_.fault_prefix + ".write"));

  const std::string temp = TempPathFor(path_);
  FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) return IoError("cannot open for writing: " + temp);
  bool ok = std::fwrite(buffer_.data(), 1, buffer_.size(), f) ==
            buffer_.size();
  if (ok && options_.checksum_footer) {
    const std::string footer = ChecksumFooter(buffer_);
    ok = std::fwrite(footer.data(), 1, footer.size(), f) == footer.size();
  }
  // Flush user-space buffers, then force the payload to stable storage
  // before the rename makes it visible — a crash after rename must never
  // expose a file whose tail the kernel was still holding.
  ok = ok && std::fflush(f) == 0;
  const Status fsync_fault = CheckFault(options_.fault_prefix + ".fsync");
#ifndef _WIN32
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok || !fsync_fault.ok()) {
    std::remove(temp.c_str());
    return fsync_fault.ok() ? IoError("write failed: " + temp) : fsync_fault;
  }

  const Status rename_fault = CheckFault(options_.fault_prefix + ".rename");
  if (!rename_fault.ok()) {
    std::remove(temp.c_str());
    return rename_fault;
  }
  if (std::rename(temp.c_str(), path_.c_str()) != 0) {
    std::remove(temp.c_str());
    return IoError("rename failed: " + temp + " -> " + path_);
  }
  committed_ = true;  // a failed Commit may be retried
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view content,
                       const AtomicWriteOptions& options) {
  AtomicFileWriter writer(path, options);
  writer.Append(content);
  return writer.Commit();
}

Result<std::string> ReadFileToString(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("cannot open for reading: " + path);
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return IoError("read failed: " + path);
  return content;
}

}  // namespace cnpb::util
