#include "util/atomic_file.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/fault_injection.h"
#include "util/strings.h"

#ifndef _WIN32
#include <cerrno>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace cnpb::util {

namespace {

constexpr std::string_view kFooterPrefix = "#cnpb:crc32:";

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table for the
// given (reflected) polynomial; table[k][b] extends it so eight input bytes
// fold in per iteration. Same polynomial, bit order and results as the
// byte-wise loop — only faster, which matters now that snapshot loads
// checksum whole mmap'ed sections.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables(uint32_t poly) {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? poly ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

uint32_t CrcSliceBy8(const std::array<std::array<uint32_t, 256>, 8>& tables,
                     std::string_view data, uint32_t c) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 8) {
    // Fold the CRC state into the first four bytes, then consume all eight
    // through the precomputed distance tables.
    const uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24);
    c = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
        tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
        tables[3][p[4]] ^ tables[2][p[5]] ^ tables[1][p[6]] ^ tables[0][p[7]];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    c = tables[0][(c ^ *p) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CNPB_HAVE_HW_CRC32C 1

// GF(2) matrix machinery for combining independent CRC streams (the zlib
// crc32_combine construction). A matrix is 32 column vectors; Times applies
// it to a CRC register, Multiply composes two matrices.
using CrcMatrix = std::array<uint32_t, 32>;

uint32_t CrcMatrixTimes(const CrcMatrix& mat, uint32_t vec) {
  uint32_t sum = 0;
  for (int i = 0; vec != 0; ++i, vec >>= 1) {
    if (vec & 1) sum ^= mat[i];
  }
  return sum;
}

CrcMatrix CrcMatrixMultiply(const CrcMatrix& a, const CrcMatrix& b) {
  CrcMatrix out;
  for (int i = 0; i < 32; ++i) out[i] = CrcMatrixTimes(a, b[i]);
  return out;
}

// Operator that advances a raw CRC-32C register over `len` zero bytes:
// reg(r, 0^len) == ShiftMatrix(len) * r. Built by squaring the one-zero-bit
// operator, so the cost is O(log len) matrix products, paid once per block
// size at startup.
CrcMatrix Crc32cShiftMatrix(size_t len) {
  CrcMatrix bit;
  bit[0] = 0x82F63B78u;  // reflected CRC-32C polynomial
  for (int i = 1; i < 32; ++i) bit[i] = 1u << (i - 1);
  CrcMatrix out;
  for (int i = 0; i < 32; ++i) out[i] = 1u << i;  // identity
  uint64_t bits = static_cast<uint64_t>(len) * 8;
  while (bits != 0) {
    if (bits & 1) out = CrcMatrixMultiply(bit, out);
    bit = CrcMatrixMultiply(bit, bit);
    bits >>= 1;
  }
  return out;
}

// CRC-32C via the SSE4.2 crc32 instruction. The instruction has 3-cycle
// latency but single-cycle throughput, so one dependency chain caps out at
// ~8 GB/s; three interleaved streams over fixed-size blocks (merged with
// the shift matrices above) run close to 3x that — which is what keeps a
// full-snapshot integrity check well under the mmap cold-start budget.
// Compiled with a target attribute and dispatched at runtime so the binary
// still runs on pre-Nehalem CPUs.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    std::string_view data, uint32_t c) {
  constexpr size_t kBlock = 8192;
  static const CrcMatrix shift_one = Crc32cShiftMatrix(kBlock);
  static const CrcMatrix shift_two = Crc32cShiftMatrix(2 * kBlock);
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 3 * kBlock) {
    uint64_t a = c;
    uint64_t b = 0;
    uint64_t d = 0;
    for (size_t i = 0; i < kBlock; i += 8) {
      uint64_t va, vb, vd;
      __builtin_memcpy(&va, p + i, 8);
      __builtin_memcpy(&vb, p + kBlock + i, 8);
      __builtin_memcpy(&vd, p + 2 * kBlock + i, 8);
      a = __builtin_ia32_crc32di(a, va);
      b = __builtin_ia32_crc32di(b, vb);
      d = __builtin_ia32_crc32di(d, vd);
    }
    // reg(c, A|B|C) = shift2k(reg(c, A)) ^ shift1k(reg(0, B)) ^ reg(0, C).
    c = CrcMatrixTimes(shift_two, static_cast<uint32_t>(a)) ^
        CrcMatrixTimes(shift_one, static_cast<uint32_t>(b)) ^
        static_cast<uint32_t>(d);
    p += 3 * kBlock;
    n -= 3 * kBlock;
  }
  uint64_t state = c;
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    state = __builtin_ia32_crc32di(state, chunk);
    p += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(state);
  for (; n > 0; ++p, --n) {
    c = __builtin_ia32_crc32qi(c, *p);
  }
  return c;
}
#endif

// Monotonic per-process counter so concurrent writers targeting the same
// destination never share a temp file.
std::string TempPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return StrFormat("%s.tmp.%llu.%llu", path.c_str(),
                   static_cast<unsigned long long>(::getpid()),
                   static_cast<unsigned long long>(
                       counter.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDir(const std::string& dir_path) {
#ifndef _WIN32
  const std::string dir = dir_path.empty() ? "." : dir_path;
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return IoError("cannot open directory for fsync: " + dir);
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  // Some filesystems refuse fsync on a directory fd; that is the platform's
  // best effort, not a durability bug we can act on.
  if (rc != 0 && saved_errno != EINVAL && saved_errno != ENOTSUP) {
    return IoError("directory fsync failed: " + dir);
  }
#else
  (void)dir_path;
#endif
  return Status::Ok();
}

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      BuildCrcTables(0xEDB88320u);
  return CrcSliceBy8(tables, data, seed ^ 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  const uint32_t c = seed ^ 0xFFFFFFFFu;
#ifdef CNPB_HAVE_HW_CRC32C
  static const bool has_sse42 = __builtin_cpu_supports("sse4.2");
  if (has_sse42) return Crc32cHardware(data, c) ^ 0xFFFFFFFFu;
#endif
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      BuildCrcTables(0x82F63B78u);
  return CrcSliceBy8(tables, data, c) ^ 0xFFFFFFFFu;
}

std::string ChecksumFooter(std::string_view payload) {
  return StrFormat("%.*s%08x:%zu\n", static_cast<int>(kFooterPrefix.size()),
                   kFooterPrefix.data(), Crc32(payload), payload.size());
}

Result<std::string> StripVerifyChecksumFooter(std::string content,
                                              const std::string& path) {
  if (content.empty() || content.back() != '\n') return content;
  // The footer is always the last line; find its start.
  const size_t line_start = content.rfind('\n', content.size() - 2);
  const size_t footer_start = line_start == std::string::npos ? 0
                                                              : line_start + 1;
  const std::string_view footer(content.data() + footer_start,
                                content.size() - footer_start);
  if (!StartsWith(footer, kFooterPrefix)) return content;
  // "#cnpb:crc32:<8 hex>:<decimal size>\n"
  const std::string_view body =
      footer.substr(kFooterPrefix.size(), footer.size() -
                                              kFooterPrefix.size() - 1);
  const std::vector<std::string> parts = Split(body, ':');
  uint32_t crc = 0;
  size_t size = 0;
  bool parsed = parts.size() == 2 && parts[0].size() == 8;
  if (parsed) {
    char* end = nullptr;
    crc = static_cast<uint32_t>(std::strtoul(parts[0].c_str(), &end, 16));
    parsed = end == parts[0].c_str() + parts[0].size();
    if (parsed) {
      size = static_cast<size_t>(std::strtoull(parts[1].c_str(), &end, 10));
      parsed = !parts[1].empty() && end == parts[1].c_str() + parts[1].size();
    }
  }
  // A footer-shaped line that fails to parse or verify is treated as
  // corruption, not data: swallowing it silently would defeat the check.
  if (!parsed) {
    return DataLossError("malformed checksum footer: " + path);
  }
  const std::string_view payload(content.data(), footer_start);
  if (payload.size() != size) {
    return DataLossError(
        StrFormat("checksum footer size mismatch (%zu vs %zu): %s",
                  payload.size(), size, path.c_str()));
  }
  const uint32_t actual = Crc32(payload);
  if (actual != crc) {
    return DataLossError(StrFormat("crc32 mismatch (%08x vs %08x): %s",
                                   actual, crc, path.c_str()));
  }
  content.resize(footer_start);
  return content;
}

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   AtomicWriteOptions options)
    : path_(std::move(path)), options_(std::move(options)) {}

AtomicFileWriter::~AtomicFileWriter() = default;

Status AtomicFileWriter::Commit() {
  if (committed_) return FailedPreconditionError("already committed: " + path_);
  CNPB_RETURN_IF_ERROR(CheckFault(options_.fault_prefix + ".write"));

  const std::string temp = TempPathFor(path_);
  FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) return IoError("cannot open for writing: " + temp);
  bool ok = std::fwrite(buffer_.data(), 1, buffer_.size(), f) ==
            buffer_.size();
  if (ok && options_.checksum_footer) {
    const std::string footer = ChecksumFooter(buffer_);
    ok = std::fwrite(footer.data(), 1, footer.size(), f) == footer.size();
  }
  // Flush user-space buffers, then force the payload to stable storage
  // before the rename makes it visible — a crash after rename must never
  // expose a file whose tail the kernel was still holding.
  ok = ok && std::fflush(f) == 0;
  const Status fsync_fault = CheckFault(options_.fault_prefix + ".fsync");
#ifndef _WIN32
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok || !fsync_fault.ok()) {
    std::remove(temp.c_str());
    return fsync_fault.ok() ? IoError("write failed: " + temp) : fsync_fault;
  }

  const Status rename_fault = CheckFault(options_.fault_prefix + ".rename");
  if (!rename_fault.ok()) {
    std::remove(temp.c_str());
    return rename_fault;
  }
  if (std::rename(temp.c_str(), path_.c_str()) != 0) {
    std::remove(temp.c_str());
    return IoError("rename failed: " + temp + " -> " + path_);
  }
  // The rename made the new file visible, but only the directory fsync
  // makes the rename itself durable — without it a power loss can revert
  // the directory entry to the old file even though the data blocks of the
  // new one were fsynced. A failure here means the destination already
  // holds the (complete) new file but its visibility is not yet guaranteed;
  // Commit reports the error so the caller can retry the whole write.
  const Status dirsync_fault = CheckFault(options_.fault_prefix + ".dirsync");
  if (!dirsync_fault.ok()) return dirsync_fault;
  CNPB_RETURN_IF_ERROR(SyncDir(ParentDir(path_)));
  committed_ = true;  // a failed Commit may be retried
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view content,
                       const AtomicWriteOptions& options) {
  AtomicFileWriter writer(path, options);
  writer.Append(content);
  return writer.Commit();
}

Result<std::string> ReadFileToString(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("cannot open for reading: " + path);
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return IoError("read failed: " + path);
  return content;
}

}  // namespace cnpb::util
