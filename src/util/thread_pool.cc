#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/logging.h"

namespace cnpb::util {

namespace {

// 0 = no override; set through SetThreadsOverride.
std::atomic<int> g_threads_override{0};

int ResolveEnvThreads() {
  const char* env = std::getenv("CNPB_THREADS");
  if (env != nullptr) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Which pool, if any, owns the current thread. Lets a nested ParallelFor
// detect that it is already running on a worker and fall back to inline
// serial execution instead of deadlocking on its own queue.
thread_local const ThreadPool* t_owning_pool = nullptr;

}  // namespace

int DefaultThreads() {
  const int override_value =
      g_threads_override.load(std::memory_order_relaxed);
  if (override_value > 0) return override_value;
  static const int resolved = ResolveEnvThreads();
  return resolved;
}

void SetThreadsOverride(int threads) {
  g_threads_override.store(threads > 0 ? threads : 0,
                           std::memory_order_relaxed);
}

ScopedThreadsOverride::ScopedThreadsOverride(int threads)
    : previous_(g_threads_override.load(std::memory_order_relaxed)) {
  SetThreadsOverride(threads);
}

ScopedThreadsOverride::~ScopedThreadsOverride() {
  g_threads_override.store(previous_, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::EnsureWorkers(int num_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  CNPB_CHECK(!stop_);
  while (static_cast<int>(workers_.size()) < num_workers) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  t_owning_pool = this;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

bool ThreadPool::OnWorkerThread() const { return t_owning_pool == this; }

void ThreadPool::ParallelFor(size_t n, int max_parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Inline when parallelism is off, the work is a single index, or we are
  // already inside a worker (reentrant call).
  if (max_parallelism <= 1 || n == 1 || OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const size_t lanes = std::min(
      static_cast<size_t>(std::max(max_parallelism, 1)), n);
  // Dynamic chunk scheduling: small grains balance uneven per-index cost
  // (neural decode vs. tag scan) without per-index dispatch overhead.
  const size_t grain = std::max<size_t>(1, n / (4 * lanes));

  struct BatchState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> pending{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  BatchState state;

  auto drain = [&state, n, grain, &fn]() {
    for (;;) {
      const size_t begin =
          state.next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(begin + grain, n);
      for (size_t i = begin; i < end; ++i) fn(i);
    }
  };

  const size_t helper_lanes = lanes - 1;  // the caller is lane 0
  state.pending.store(helper_lanes, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t lane = 0; lane < helper_lanes; ++lane) {
      queue_.emplace_back([&state, &drain]() {
        drain();
        // The decrement must happen under done_mu: `state` lives on the
        // caller's stack, and a decrement outside the lock lets the caller
        // observe pending == 0, return, and destroy the condvar while this
        // worker is still signalling it.
        std::lock_guard<std::mutex> done_lock(state.done_mu);
        if (state.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          state.done_cv.notify_one();
        }
      });
    }
  }
  work_cv_.notify_all();

  drain();
  std::unique_lock<std::mutex> done_lock(state.done_mu);
  state.done_cv.wait(done_lock, [&state]() {
    return state.pending.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreads());
  return pool;
}

}  // namespace cnpb::util
