#ifndef CNPROBASE_UTIL_THREAD_POOL_H_
#define CNPROBASE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cnpb::util {

// Number of worker threads the process should use: CNPB_THREADS env var,
// else hardware concurrency (at least 1). The env var is resolved ONCE, on
// first call, and cached; tests and benches vary the count through
// SetThreadsOverride instead of racing on setenv.
int DefaultThreads();

// Overrides DefaultThreads() for tests/benches. Pass 0 to restore the
// cached env/hardware default. Thread-safe.
void SetThreadsOverride(int threads);

// RAII form of SetThreadsOverride: restores the previous override on
// destruction.
class ScopedThreadsOverride {
 public:
  explicit ScopedThreadsOverride(int threads);
  ~ScopedThreadsOverride();
  ScopedThreadsOverride(const ScopedThreadsOverride&) = delete;
  ScopedThreadsOverride& operator=(const ScopedThreadsOverride&) = delete;

 private:
  int previous_;
};

// A persistent pool of worker threads with a chunked parallel-for. Replaces
// the spawn-threads-per-call loop that used to live in util/parallel.h: the
// sharded build pipeline issues many small fan-outs per build, and thread
// creation cost would otherwise dominate them.
//
// Determinism contract (same as the old ParallelFor): fn must write only to
// per-index state (e.g. slot i of a pre-sized output vector); the caller
// then reads slots in order, so results are independent of chunk scheduling.
// fn must not throw (the project does not use exceptions).
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const;

  // Grows the pool to at least `num_workers` workers (never shrinks).
  void EnsureWorkers(int num_workers);

  // Runs fn(i) for every i in [0, n), chunk-scheduled over at most
  // `max_parallelism` lanes (the calling thread participates as one lane).
  // Blocks until every index has completed. Reentrant: a call made from
  // inside one of this pool's workers runs inline and serially, so nested
  // parallel sections cannot deadlock on a drained queue.
  void ParallelFor(size_t n, int max_parallelism,
                   const std::function<void(size_t)>& fn);

  // True when the calling thread is a worker of this pool.
  bool OnWorkerThread() const;

  // Process-wide shared pool, created on first use with DefaultThreads()
  // workers and grown on demand when the thread override asks for more.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_THREAD_POOL_H_
