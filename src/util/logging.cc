#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace cnpb::util {

namespace {
// Read on every log call from any thread, written by SetMinLogLevel (tests,
// CLI flag parsing) while workers run; relaxed atomic ordering is enough —
// a logging threshold has no happens-before obligations.
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}
LogLevel MinLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= MinLogLevel()) {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace cnpb::util
