#ifndef CNPROBASE_UTIL_JSON_H_
#define CNPROBASE_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cnpb::util {

// Minimal JSON *encoding* helpers shared by the metrics exporters
// (obs/export.cc) and the HTTP serving layer (src/server/). Encoding only:
// the project never needs to parse JSON, so there is no parser to fuzz.

// `s` rendered as a JSON string literal, including the surrounding quotes.
// '"', '\\' and the C0 control characters are escaped ('\n', '\t', '\r' get
// their short forms, the rest "\u00XX"); everything else — in particular
// multi-byte UTF-8 sequences — passes through byte-for-byte, so the output
// is valid JSON for any valid-UTF-8 input.
std::string JsonString(std::string_view s);

// `value` rendered as a JSON number ("%.9g"). JSON has no NaN/Inf literals;
// non-finite values render as "null".
std::string JsonNumber(double value);

// Unsigned integer as a JSON number (no precision loss through double).
std::string JsonUInt(uint64_t value);

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_JSON_H_
