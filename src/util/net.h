#ifndef CNPROBASE_UTIL_NET_H_
#define CNPROBASE_UTIL_NET_H_

#include <sys/uio.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace cnpb::util {

// Thin Status-returning wrappers over the POSIX socket calls the serving
// layer (src/server/) needs. Everything here is loopback/TCP only — the
// reproduction serves the paper's three public APIs over HTTP/1.1, it is
// not a general networking library.

// Ignores SIGPIPE process-wide, so a peer that disconnects mid-write
// surfaces as an EPIPE error Status from SendSome instead of killing the
// process. Call once from main() in any binary that writes to sockets
// (cnprobase_serve, bench_server). Idempotent. The server/client write
// paths additionally pass MSG_NOSIGNAL, so in-process tests are safe even
// without this; the process-wide handler covers any other socket write.
void IgnoreSigpipe();

// Puts `fd` into non-blocking mode.
Status SetNonBlocking(int fd);

// Creates, binds and listens on a TCP socket at host:port (SO_REUSEADDR,
// non-blocking). `host` must be a numeric IPv4 address, e.g. "127.0.0.1".
// Pass port 0 for an ephemeral port; `*bound_port` (optional) receives the
// actual port either way. Returns the listening fd.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog,
                      uint16_t* bound_port);

// Blocking TCP connect to a numeric IPv4 host:port. Returns the connected
// fd (blocking mode, TCP_NODELAY set — callers are request/response
// clients, where Nagle only adds latency).
Result<int> ConnectTcp(const std::string& host, uint16_t port);

// ConnectTcp with a connect deadline: the connect runs non-blocking and is
// awaited with poll(2), so a black-holed peer yields kDeadlineExceeded after
// `timeout` instead of the kernel's multi-minute SYN retry budget. The
// returned fd is restored to blocking mode (same contract as ConnectTcp).
// timeout <= 0 means no deadline (identical to the overload above).
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       std::chrono::milliseconds timeout);

// Waits up to `timeout` for `fd` to become readable (POLLIN | POLLHUP).
// `*ready` is set to true when it is, false when the wait timed out.
// Returns non-ok only on poll() failure. timeout < 0 waits forever.
Status WaitReadable(int fd, std::chrono::milliseconds timeout, bool* ready);

// send() with MSG_NOSIGNAL: a closed peer yields an EPIPE Status (kIoError),
// never a SIGPIPE. Returns the number of bytes written (possibly short on a
// non-blocking fd); 0 with an ok() status means the write would block.
Result<size_t> SendSome(int fd, const char* data, size_t len);

// Scatter-gather send via sendmsg() with MSG_NOSIGNAL, the writev
// counterpart of SendSome: flushes up to `iovcnt` buffers in one syscall so
// a pipelined connection's queued responses go out without concatenation.
// Same contract as SendSome: returns bytes written (possibly short), 0 with
// an ok() status means the write would block, EPIPE is a kIoError Status.
Result<size_t> WritevSome(int fd, const struct iovec* iov, int iovcnt);

// Sets SO_SNDBUF on `fd`. Used by tests/benches to shrink the kernel send
// buffer so write-stall paths trigger quickly; no-op when bytes <= 0.
Status SetSendBufferSize(int fd, int bytes);

// recv(). Returns the number of bytes read; 0 means the peer closed the
// connection cleanly. On a non-blocking fd, "would block" is an ok() result
// reported through `*would_block`.
Result<size_t> RecvSome(int fd, char* buf, size_t len, bool* would_block);

// close() that swallows EINTR. Safe on -1 (no-op).
void CloseFd(int fd);

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_NET_H_
