#ifndef CNPROBASE_UTIL_TIMER_H_
#define CNPROBASE_UTIL_TIMER_H_

#include <chrono>

namespace cnpb::util {

// Wall-clock stopwatch for coarse pipeline-stage timing.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_TIMER_H_
