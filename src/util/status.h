#ifndef CNPROBASE_UTIL_STATUS_H_
#define CNPROBASE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace cnpb::util {

// Error codes for fallible operations. The project does not use exceptions;
// every operation that can fail returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kResourceExhausted,
  kDeadlineExceeded,
  kDataLoss,
};

// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
// Admission control rejected the work (shed load, quota, publish contention).
Status ResourceExhaustedError(std::string message);
// The per-call deadline elapsed before the work finished.
Status DeadlineExceededError(std::string message);
// Stored data failed integrity verification (torn write, bad checksum).
Status DataLossError(std::string message);

// Holds either a value of type T or an error Status. Modeled after
// absl::StatusOr but minimal: check ok() before calling value().
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cnpb::util

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define CNPB_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::cnpb::util::Status cnpb_status_ = (expr);   \
    if (!cnpb_status_.ok()) return cnpb_status_;  \
  } while (0)

#endif  // CNPROBASE_UTIL_STATUS_H_
