#ifndef CNPROBASE_UTIL_RNG_H_
#define CNPROBASE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace cnpb::util {

// Deterministic xoshiro256++ PRNG. Every random decision in the project
// flows from an Rng seeded explicitly, so full pipeline runs are
// reproducible bit-for-bit across machines.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    CNPB_CHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CNPB_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Gaussian via Box-Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * M_PI * u2);
  }

  // Index in [0, n) with Zipf-like weights 1/(i+1)^s. Precomputes nothing;
  // for hot loops build a ZipfSampler instead.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    CNPB_CHECK(!items.empty());
    return items[Uniform(items.size())];
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = Uniform(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Forks a child generator whose stream is independent of this one.
  Rng Fork(uint64_t stream_id) {
    return Rng(Next() ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Samples ranks from a Zipf distribution with exponent `s` over [0, n).
// Used to model skewed API workloads and mention popularity.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    CNPB_CHECK(n > 0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_RNG_H_
