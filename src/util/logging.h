#ifndef CNPROBASE_UTIL_LOGGING_H_
#define CNPROBASE_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace cnpb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level that is actually emitted; defaults to kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

// Stream-style log sink; emits on destruction. `fatal` aborts the process
// after emitting (used by CNPB_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

// Swallows the stream when the log level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace cnpb::util

#define CNPB_LOG(level)                                               \
  ::cnpb::util::internal_logging::LogMessage(                         \
      ::cnpb::util::LogLevel::k##level, __FILE__, __LINE__)           \
      .stream()

// Check macros abort on failure; use for programmer errors / invariants,
// not for data errors (those return Status).
#define CNPB_CHECK(cond)                                                   \
  if (cond) {                                                              \
  } else                                                                   \
    ::cnpb::util::internal_logging::LogMessage(                            \
        ::cnpb::util::LogLevel::kError, __FILE__, __LINE__, /*fatal=*/true) \
            .stream()                                                      \
        << "Check failed: " #cond " "

#define CNPB_CHECK_OK(expr)                          \
  do {                                               \
    const ::cnpb::util::Status s_ = (expr);          \
    CNPB_CHECK(s_.ok()) << s_.ToString();            \
  } while (0)

#endif  // CNPROBASE_UTIL_LOGGING_H_
