#ifndef CNPROBASE_UTIL_ATOMIC_FILE_H_
#define CNPROBASE_UTIL_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cnpb::util {

// Crash-safe persistence primitives.
//
// Contract (DESIGN.md §8): a saver never writes through the live file.
// AtomicFileWriter buffers the payload, writes it to a sibling temp file,
// fsyncs, renames over the destination, and fsyncs the parent directory so
// the rename itself is durable — at every instant the destination path
// holds either the previous complete file or the new complete file, never
// a torn prefix, and a completed Commit survives power loss. An optional CRC32 footer makes
// payload corruption (bit rot, external truncation that preserves line
// structure) detectable at load time; StripVerifyChecksumFooter is the
// load-side half of that contract.

// CRC-32 (ISO-HDLC / zlib polynomial, reflected). `seed` chains incremental
// computation: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// CRC-32C (Castagnoli polynomial, reflected — iSCSI/ext4 flavor). Same
// chaining contract as Crc32. Uses the SSE4.2 crc32 instruction when the
// CPU has it, so checksumming large mmap'ed snapshot sections costs well
// under a millisecond; the software fallback produces identical values.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

struct AtomicWriteOptions {
  // Append a "#cnpb:crc32:<8 hex>:<payload bytes>\n" footer line after the
  // payload. Suitable for line-oriented formats (TSV); binary formats embed
  // their own trailer instead.
  bool checksum_footer = false;
  // Fault points fired by this write: <prefix>.write, <prefix>.fsync,
  // <prefix>.rename, <prefix>.dirsync (see util/fault_injection.h).
  std::string fault_prefix = "file";
};

// fsyncs a directory so a just-created/renamed/removed entry inside it
// survives power loss — renaming a file makes it visible, but only the
// directory fsync makes the *rename itself* durable. Filesystems that
// refuse directory fsync (EINVAL/ENOTSUP) are treated as best-effort OK.
Status SyncDir(const std::string& dir_path);

// Directory component of `path` ("a/b/c" -> "a/b", "c" -> ".").
std::string ParentDir(const std::string& path);

// Buffered atomic writer. Append() never touches the filesystem; Commit()
// performs the whole temp-write + fsync + rename sequence and reports the
// first failure. If Commit() fails (or is never called) the destination is
// untouched and the temp file is removed.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path, AtomicWriteOptions options = {});
  ~AtomicFileWriter();  // abandons if not committed

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  void Append(std::string_view data) { buffer_.append(data); }
  Status Commit();
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  AtomicWriteOptions options_;
  std::string buffer_;
  bool committed_ = false;
};

// One-shot convenience over AtomicFileWriter.
Status WriteFileAtomic(const std::string& path, std::string_view content,
                       const AtomicWriteOptions& options = {});

// Builds the footer line for `payload` (including the trailing newline).
std::string ChecksumFooter(std::string_view payload);

// Verifies and strips a checksum footer from file `content` read off disk.
//   - footer present and valid   -> payload without the footer line
//   - footer present but wrong   -> kDataLoss (never parse corrupt payload)
//   - no footer (legacy/foreign) -> content unchanged
// `path` is only used in error messages.
Result<std::string> StripVerifyChecksumFooter(std::string content,
                                              const std::string& path);

// Reads a whole file into a string (kIoError if unreadable).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_ATOMIC_FILE_H_
