#include "util/mmap_file.h"

#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cnpb::util {

Result<MmapFile> MmapFile::Open(const std::string& path) {
#ifdef _WIN32
  return IoError("mmap is not supported on this platform: " + path);
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("cannot open for mapping: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("cannot stat: " + path);
  }
  MmapFile file;
  file.path_ = path;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* mapped = ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) {
      ::close(fd);
      return IoError("mmap failed: " + path);
    }
    file.data_ = static_cast<const uint8_t*>(mapped);
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return file;
#endif
}

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::Reset() {
#ifndef _WIN32
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
}

}  // namespace cnpb::util
