#ifndef CNPROBASE_UTIL_MMAP_FILE_H_
#define CNPROBASE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cnpb::util {

// A read-only memory-mapped file. Open() maps the whole file shared and
// read-only; the mapping (and therefore every pointer into it) stays valid
// until the object is destroyed or moved-from. The kernel pages bytes in on
// demand, so "loading" a file this way costs one open/fstat/mmap regardless
// of file size — the zero-copy substrate under taxonomy::Snapshot.
//
// A zero-length file maps to {data() == nullptr, size() == 0} rather than an
// error; callers that need a non-empty payload must check size() themselves.
class MmapFile {
 public:
  // Maps `path` read-only. kIoError when the file cannot be opened, stat'ed
  // or mapped.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }
  const std::string& path() const { return path_; }

 private:
  void Reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_MMAP_FILE_H_
