#ifndef CNPROBASE_UTIL_HISTOGRAM_H_
#define CNPROBASE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cnpb::util {

// Streaming summary statistics plus percentile estimation (exact — keeps
// all samples; intended for bench-scale sample counts).
class Histogram {
 public:
  void Add(double value);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  // p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p) const;

  // One-line summary "count=.. mean=.. p50=.. p99=.. max=..".
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_HISTOGRAM_H_
