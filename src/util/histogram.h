#ifndef CNPROBASE_UTIL_HISTOGRAM_H_
#define CNPROBASE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cnpb::util {

// Streaming summary statistics plus percentile estimation (exact — keeps
// all samples; intended for bench-scale sample counts). For hot-path /
// concurrent use, see obs::BucketHistogram instead.
//
// Degenerate cases are explicit: Mean/Min/Max/Percentile on an empty
// histogram and Stddev below two samples return NaN, never a fabricated 0.
class Histogram {
 public:
  void Add(double value);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  // Raw samples in insertion order (e.g. to merge per-thread histograms).
  const std::vector<double>& samples() const { return samples_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  // Sample stddev; NaN for fewer than two samples.
  double Stddev() const;
  // p in [0, 100]; linear interpolation between closest ranks (a
  // single-sample histogram returns that sample for every p).
  double Percentile(double p) const;

  // One-line summary "count=.. mean=.. stddev=.. p50=.. p99=.. max=..";
  // stddev is omitted below two samples, and an empty histogram reports
  // "count=0 (empty)" instead of NaN statistics.
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_HISTOGRAM_H_
