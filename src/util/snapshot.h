#ifndef CNPROBASE_UTIL_SNAPSHOT_H_
#define CNPROBASE_UTIL_SNAPSHOT_H_

#include <atomic>
#include <memory>

namespace cnpb::util {

// RCU-style snapshot holder: a single swappable std::shared_ptr<const T>.
// Readers pin the current value with Acquire() (the returned shared_ptr
// keeps the value alive for as long as the reader holds it); writers
// install a fully-constructed replacement with Publish(). Readers can never
// observe a half-built value: everything reachable from the pointer must be
// immutable once published, and the release/acquire ordering of the slot
// makes the writer's construction happen-before any reader's use.
//
// Retired values are freed by shared_ptr refcounting when the last pinned
// reader releases them — no grace-period machinery needed.
//
// Implementation: the slot is guarded by a one-word spinlock whose critical
// section is two refcount operations. This is the same control-word design
// libstdc++'s std::atomic<std::shared_ptr> uses internally (its readers
// also serialize on a lock bit), but with a release-ordered unlock on the
// read path — GCC 12's _Sp_atomic::load unlocks relaxed, which is a formal
// data race on the stored pointer that ThreadSanitizer reports, and the
// tsan CI job forbids suppressions.
template <typename T>
class SnapshotHolder {
 public:
  SnapshotHolder() = default;
  explicit SnapshotHolder(std::shared_ptr<const T> initial)
      : slot_(std::move(initial)) {}

  SnapshotHolder(const SnapshotHolder&) = delete;
  SnapshotHolder& operator=(const SnapshotHolder&) = delete;

  // Installs `next` as the current snapshot. The caller must not mutate
  // *next afterwards. The unlock's release synchronizes-with the next
  // Acquire()'s lock, so everything written before Publish is visible to
  // every reader that observes the new value.
  void Publish(std::shared_ptr<const T> next) {
    Lock();
    slot_.swap(next);
    Unlock();
    // `next` now holds the retired snapshot; its reference drops here,
    // outside the critical section. In-flight readers keep it alive.
  }

  // Pins and returns the current snapshot (may be null before the first
  // Publish if default-constructed).
  std::shared_ptr<const T> Acquire() const {
    Lock();
    std::shared_ptr<const T> pinned = slot_;
    Unlock();
    return pinned;
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Test-and-test-and-set: spin read-only until the line goes quiet.
      // Publishes are rare and the critical section is a refcount bump, so
      // spinning beats parking.
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const T> slot_;
};

// Wraps a raw pointer the caller guarantees to outlive all users into a
// non-owning shared_ptr, so borrowed values can flow through SnapshotHolder
// without transferring ownership.
template <typename T>
std::shared_ptr<const T> UnownedSnapshot(const T* ptr) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), ptr);
}

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_SNAPSHOT_H_
