#include "util/tsv.h"

#include <cstdio>
#include <utility>

#include "util/atomic_file.h"
#include "util/strings.h"

namespace cnpb::util {

std::string TsvEscape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string TsvUnescape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '\\' && i + 1 < field.size()) {
      switch (field[i + 1]) {
        case 't':
          out += '\t';
          ++i;
          break;
        case 'n':
          out += '\n';
          ++i;
          break;
        case '\\':
          out += '\\';
          ++i;
          break;
        default:
          // Not a sequence TsvEscape emits. Keep the backslash literally
          // (instead of swallowing it) so Unescape(Escape(s)) == s for every
          // byte string and foreign data is never silently corrupted; a lone
          // trailing backslash falls out of the loop the same way.
          out += '\\';
      }
    } else {
      out += field[i];
    }
  }
  return out;
}

TsvWriter::TsvWriter(const std::string& path, TsvWriterOptions options) {
  AtomicWriteOptions write_options;
  write_options.checksum_footer = options.checksum_footer;
  write_options.fault_prefix = std::move(options.fault_prefix);
  writer_ = new AtomicFileWriter(path, std::move(write_options));
}

TsvWriter::~TsvWriter() {
  delete static_cast<AtomicFileWriter*>(writer_);  // abandons if not closed
}

void TsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok() || writer_ == nullptr) return;
  AtomicFileWriter* writer = static_cast<AtomicFileWriter*>(writer_);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) writer->Append("\t");
    writer->Append(TsvEscape(fields[i]));
  }
  writer->Append("\n");
}

Status TsvWriter::Close() {
  if (writer_ != nullptr) {
    AtomicFileWriter* writer = static_cast<AtomicFileWriter*>(writer_);
    const Status commit = writer->Commit();
    if (status_.ok()) status_ = commit;
    delete writer;
    writer_ = nullptr;
  }
  return status_;
}

Result<TsvFileData> ReadTsvFileData(const std::string& path) {
  auto raw = ReadFileToString(path);
  if (!raw.ok()) return raw.status();
  const size_t raw_size = raw->size();
  auto verified = StripVerifyChecksumFooter(*std::move(raw), path);
  if (!verified.ok()) return verified.status();
  TsvFileData data;
  data.checksummed = verified->size() != raw_size;
  const std::string& content = *verified;
  std::vector<std::vector<std::string>>& rows = data.rows;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string_view line(content.data() + start, end - start);
    // Every line is a row — including an empty line, which is a row holding
    // one empty field (needed for exact round-trips).
    std::vector<std::string> raw = Split(line, '\t');
    std::vector<std::string> fields;
    fields.reserve(raw.size());
    for (const std::string& field : raw) {
      fields.push_back(TsvUnescape(field));
    }
    rows.push_back(std::move(fields));
    start = end + 1;
  }
  return data;
}

Result<std::vector<std::vector<std::string>>> ReadTsvFile(
    const std::string& path) {
  auto data = ReadTsvFileData(path);
  if (!data.ok()) return data.status();
  return std::move(data->rows);
}

}  // namespace cnpb::util
