#include "util/tsv.h"

#include <cstdio>

#include "util/strings.h"

namespace cnpb::util {

std::string TsvEscape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string TsvUnescape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '\\' && i + 1 < field.size()) {
      switch (field[i + 1]) {
        case 't':
          out += '\t';
          ++i;
          break;
        case 'n':
          out += '\n';
          ++i;
          break;
        case '\\':
          out += '\\';
          ++i;
          break;
        default:
          // Not a sequence TsvEscape emits. Keep the backslash literally
          // (instead of swallowing it) so Unescape(Escape(s)) == s for every
          // byte string and foreign data is never silently corrupted; a lone
          // trailing backslash falls out of the loop the same way.
          out += '\\';
      }
    } else {
      out += field[i];
    }
  }
  return out;
}

TsvWriter::TsvWriter(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    status_ = IoError("cannot open for writing: " + path);
  } else {
    file_ = f;
  }
}

TsvWriter::~TsvWriter() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

void TsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok() || file_ == nullptr) return;
  FILE* f = static_cast<FILE*>(file_);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc('\t', f);
    const std::string escaped = TsvEscape(fields[i]);
    std::fwrite(escaped.data(), 1, escaped.size(), f);
  }
  std::fputc('\n', f);
}

Status TsvWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(static_cast<FILE*>(file_)) != 0 && status_.ok()) {
      status_ = IoError("fclose failed");
    }
    file_ = nullptr;
  }
  return status_;
}

Result<std::vector<std::vector<std::string>>> ReadTsvFile(
    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("cannot open for reading: " + path);
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);

  std::vector<std::vector<std::string>> rows;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string_view line(content.data() + start, end - start);
    // Every line is a row — including an empty line, which is a row holding
    // one empty field (needed for exact round-trips).
    std::vector<std::string> raw = Split(line, '\t');
    std::vector<std::string> fields;
    fields.reserve(raw.size());
    for (const std::string& field : raw) {
      fields.push_back(TsvUnescape(field));
    }
    rows.push_back(std::move(fields));
    start = end + 1;
  }
  return rows;
}

}  // namespace cnpb::util
