#ifndef CNPROBASE_UTIL_TSV_H_
#define CNPROBASE_UTIL_TSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cnpb::util {

// Escapes tabs/newlines/backslashes so a field can be stored in one TSV cell.
std::string TsvEscape(std::string_view field);
std::string TsvUnescape(std::string_view field);

// Minimal TSV file writer. Fields are escaped; rows end with '\n'.
class TsvWriter {
 public:
  // Opens `path` for writing (truncates). Check status() before use.
  explicit TsvWriter(const std::string& path);
  ~TsvWriter();

  TsvWriter(const TsvWriter&) = delete;
  TsvWriter& operator=(const TsvWriter&) = delete;

  const Status& status() const { return status_; }
  void WriteRow(const std::vector<std::string>& fields);
  Status Close();

 private:
  void* file_ = nullptr;  // FILE*
  Status status_;
};

// Reads a whole TSV file into rows of unescaped fields.
Result<std::vector<std::vector<std::string>>> ReadTsvFile(
    const std::string& path);

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_TSV_H_
