#ifndef CNPROBASE_UTIL_TSV_H_
#define CNPROBASE_UTIL_TSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cnpb::util {

// Escapes tabs/newlines/backslashes so a field can be stored in one TSV cell.
std::string TsvEscape(std::string_view field);
std::string TsvUnescape(std::string_view field);

struct TsvWriterOptions {
  // Append a CRC32 footer so loads can detect payload corruption (see
  // util/atomic_file.h). On by default: every first-party saver writes
  // verifiable files.
  bool checksum_footer = true;
  // Prefix for the fault points this writer's Close() can fire
  // (<prefix>.write / <prefix>.fsync / <prefix>.rename).
  std::string fault_prefix = "tsv";
};

// Minimal TSV file writer. Fields are escaped; rows end with '\n'.
//
// Crash safety: rows are buffered in memory and Close() installs the file
// atomically (temp + fsync + rename, with a CRC32 footer by default), so
// the destination path never holds a torn or truncated file — a failed or
// abandoned save leaves the previous contents untouched.
class TsvWriter {
 public:
  explicit TsvWriter(const std::string& path, TsvWriterOptions options = {});
  ~TsvWriter();

  TsvWriter(const TsvWriter&) = delete;
  TsvWriter& operator=(const TsvWriter&) = delete;

  const Status& status() const { return status_; }
  void WriteRow(const std::vector<std::string>& fields);
  Status Close();

 private:
  void* writer_ = nullptr;  // AtomicFileWriter*
  Status status_;
};

struct TsvFileData {
  std::vector<std::vector<std::string>> rows;
  // True when the file carried a (valid) checksum footer. Files that fail
  // verification never reach the caller — ReadTsvFileData returns kDataLoss
  // instead.
  bool checksummed = false;
};

// Reads a whole TSV file into rows of unescaped fields, verifying and
// stripping the checksum footer when one is present. Foreign files without
// a footer load unverified (checksummed = false).
Result<TsvFileData> ReadTsvFileData(const std::string& path);

// Rows-only convenience over ReadTsvFileData.
Result<std::vector<std::vector<std::string>>> ReadTsvFile(
    const std::string& path);

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_TSV_H_
