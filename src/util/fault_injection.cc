#include "util/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace cnpb::util {

namespace internal_fault {
std::atomic<bool> g_faults_armed{false};
}  // namespace internal_fault

namespace {

// Stable per-point stream: the same (seed, point) pair fires identically
// regardless of what other points are armed or in which order they appear.
uint64_t PointSeed(uint64_t seed, std::string_view point) {
  return seed ^ Fnv1a64(point);
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string copy(s);
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string copy(s);
  const long long value = std::strtoll(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* created = new FaultInjector();
    if (const char* env = std::getenv("CNPB_FAULTS");
        env != nullptr && env[0] != '\0') {
      uint64_t seed = 42;
      if (const char* seed_env = std::getenv("CNPB_FAULT_SEED");
          seed_env != nullptr) {
        seed = std::strtoull(seed_env, nullptr, 10);
      }
      const Status status = created->Configure(env, seed);
      if (!status.ok()) {
        CNPB_LOG(Error) << "ignoring CNPB_FAULTS: " << status.ToString();
      }
    }
    return created;
  }();
  return *injector;
}

namespace {
// Arm from the environment before main: the hot path short-circuits on the
// armed flag without ever constructing Global(), so env-configured specs
// must not rely on a lazy first use to take effect.
const bool g_env_armed = [] {
  if (const char* env = std::getenv("CNPB_FAULTS");
      env != nullptr && env[0] != '\0') {
    FaultInjector::Global();
  }
  return true;
}();
}  // namespace

Status FaultInjector::Configure(std::string_view spec, uint64_t seed) {
  std::unordered_map<std::string, PointState> points;
  for (const std::string& entry_str : Split(spec, ';')) {
    const std::string_view entry = StripAsciiWhitespace(entry_str);
    if (entry.empty()) continue;
    const std::vector<std::string> parts = Split(entry, ':');
    const std::vector<std::string> kv = Split(parts[0], '=');
    FaultSpec fault;
    if (kv.size() != 2 || kv[0].empty() ||
        !ParseDouble(kv[1], &fault.probability) || fault.probability < 0.0 ||
        fault.probability > 1.0) {
      return InvalidArgumentError("bad fault entry: " + std::string(entry));
    }
    for (size_t i = 1; i < parts.size(); ++i) {
      const std::vector<std::string> option = Split(parts[i], '=');
      int64_t value = 0;
      if (option.size() == 2 && option[0] == "delay" &&
          ParseInt64(option[1], &value) && value >= 0) {
        fault.delay_ms = static_cast<int>(value);
      } else if (option.size() == 2 && option[0] == "limit" &&
                 ParseInt64(option[1], &value) && value >= 0) {
        fault.max_fires = value;
      } else {
        return InvalidArgumentError("bad fault option: " + parts[i]);
      }
    }
    PointState state;
    state.spec = fault;
    state.rng.Seed(PointSeed(seed, kv[0]));
    points.emplace(kv[0], std::move(state));
  }

  std::lock_guard<std::mutex> lock(mu_);
  points_ = std::move(points);
  spec_string_ = std::string(spec);
  seed_ = seed;
  internal_fault::g_faults_armed.store(!points_.empty(),
                                       std::memory_order_relaxed);
  return Status::Ok();
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  spec_string_.clear();
  internal_fault::g_faults_armed.store(false, std::memory_order_relaxed);
}

Status FaultInjector::CheckSlow(std::string_view point) {
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(std::string(point));
    if (it == points_.end()) return Status::Ok();
    PointState& state = it->second;
    ++state.call_count;
    if (state.spec.max_fires >= 0 &&
        state.fire_count >= static_cast<uint64_t>(state.spec.max_fires)) {
      return Status::Ok();
    }
    if (!state.rng.Bernoulli(state.spec.probability)) return Status::Ok();
    ++state.fire_count;
    if (state.spec.delay_ms <= 0) {
      return IoError(StrFormat("injected fault at %.*s (fire %llu)",
                               static_cast<int>(point.size()), point.data(),
                               static_cast<unsigned long long>(
                                   state.fire_count)));
    }
    delay_ms = state.spec.delay_ms;
  }
  // Latency fault: sleep outside the lock so concurrent checks on other
  // points are not serialised behind the injected delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  return Status::Ok();
}

uint64_t FaultInjector::fires(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.fire_count;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::FireCounts()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    out.emplace_back(name, state.fire_count);
  }
  return out;
}

std::string FaultInjector::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_string_;
}

uint64_t FaultInjector::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

ScopedFaultInjection::ScopedFaultInjection(std::string_view spec,
                                           uint64_t seed) {
  FaultInjector& injector = FaultInjector::Global();
  previous_spec_ = injector.spec();
  previous_seed_ = injector.seed();
  CNPB_CHECK_OK(injector.Configure(spec, seed));
}

ScopedFaultInjection::~ScopedFaultInjection() {
  CNPB_CHECK_OK(
      FaultInjector::Global().Configure(previous_spec_, previous_seed_));
}

}  // namespace cnpb::util
