#ifndef CNPROBASE_UTIL_FAULT_INJECTION_H_
#define CNPROBASE_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace cnpb::util {

// Deterministic fault injection for chaos testing. Code under test declares
// named fault points ("kb.dump.read", "taxonomy.save.rename", "api.query");
// a test or operator arms a subset of them with firing probabilities, and an
// armed point either fails (returns an error Status for the caller to
// propagate) or injects latency (sleeps), decided by a PRNG seeded per point
// so a given (spec, seed) pair replays the exact same fault schedule.
//
// Spec grammar (also accepted from the CNPB_FAULTS environment variable,
// seeded by CNPB_FAULT_SEED):
//
//   spec    := entry (';' entry)*
//   entry   := point '=' probability (':' option)*
//   option  := "delay=" millis          fire = sleep, not error
//            | "limit=" count           stop firing after `count` fires
//
//   CNPB_FAULTS="kb.dump.read=0.5;api.query=0.02:delay=2;api.publish=0.3:limit=4"
//
// Cost contract: when no faults are armed (the production state),
// CheckFault() is one relaxed atomic load and a never-taken branch — the
// same pattern as obs::MetricsEnabled, which holds the <2% overhead budget
// on the query path. The injector's mutex is only ever touched while armed.

namespace internal_fault {
extern std::atomic<bool> g_faults_armed;
}  // namespace internal_fault

// True when at least one fault point is armed.
inline bool FaultsArmed() {
  return internal_fault::g_faults_armed.load(std::memory_order_relaxed);
}

// One armed fault point.
struct FaultSpec {
  double probability = 0.0;
  int delay_ms = 0;       // > 0: latency fault (sleep) instead of an error
  int64_t max_fires = -1; // >= 0: disarm after this many fires
};

class FaultInjector {
 public:
  // The process-wide injector. First use arms it from CNPB_FAULTS /
  // CNPB_FAULT_SEED if those are set.
  static FaultInjector& Global();

  // Replaces the armed set with `spec` (see grammar above). An empty spec
  // disarms everything. Point names are free-form but should match the
  // registry in DESIGN.md §8.
  Status Configure(std::string_view spec, uint64_t seed);
  void Clear();

  // Slow path behind CheckFault(); call only while armed. Returns an
  // injected IoError when the point fires as an error, Ok otherwise
  // (including after an injected delay).
  Status CheckSlow(std::string_view point);

  // Times a point has fired (errors and delays both count).
  uint64_t fires(std::string_view point) const;
  std::vector<std::pair<std::string, uint64_t>> FireCounts() const;

  // Current spec string and seed (for logging / test diagnostics).
  std::string spec() const;
  uint64_t seed() const;

 private:
  struct PointState {
    FaultSpec spec;
    Rng rng{0};
    uint64_t fire_count = 0;
    uint64_t call_count = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
  std::string spec_string_;
  uint64_t seed_ = 0;
};

// The hot-path check every fault point compiles down to.
inline Status CheckFault(std::string_view point) {
  if (!FaultsArmed()) return Status::Ok();
  return FaultInjector::Global().CheckSlow(point);
}

// Arms a spec for the lifetime of a scope and restores the previous
// configuration (usually "disarmed") on destruction — the test helper.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::string_view spec, uint64_t seed);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  std::string previous_spec_;
  uint64_t previous_seed_;
};

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_FAULT_INJECTION_H_
