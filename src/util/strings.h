#ifndef CNPROBASE_UTIL_STRINGS_H_
#define CNPROBASE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cnpb::util {

// Splits `s` on `sep`; keeps empty pieces. Split("a,,b", ',') -> {a,"",b}.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on a multi-byte separator string (needed for UTF-8 separators such
// as the Chinese enumeration comma "、"). `sep` must be non-empty.
std::vector<std::string> SplitBy(std::string_view s, std::string_view sep);

// Joins the pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// Removes ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Strict unsigned-decimal parse: `s` must be nonempty and consist solely of
// ASCII digits, with no leading whitespace, sign, or trailing bytes, and the
// value must fit in uint64_t. Unlike strtoull (which silently accepts " 5",
// "+5" and wraps on overflow), any deviation returns false and leaves *out
// untouched. This is the canonical integer parse for untrusted wire and
// file input (query parameters, TSV ids).
bool ParseUint64(std::string_view s, uint64_t* out);

// Human-readable count, e.g. 1234567 -> "1,234,567".
std::string CommaSeparated(uint64_t n);

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_STRINGS_H_
