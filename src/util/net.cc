#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/strings.h"

namespace cnpb::util {

namespace {

Status ErrnoError(const char* what) {
  return util::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoError("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog,
                      uint16_t* bound_port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) <
      0) {
    const Status s = ErrnoError("bind");
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, backlog) < 0) {
    const Status s = ErrnoError("listen");
    CloseFd(fd);
    return s;
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      const Status s = ErrnoError("getsockname");
      CloseFd(fd);
      return s;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status s = ErrnoError("connect");
    CloseFd(fd);
    return s;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return ConnectTcp(host, port);
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      const Status s = ErrnoError("connect");
      CloseFd(fd);
      return s;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int prc;
    do {
      prc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    } while (prc < 0 && errno == EINTR);
    if (prc < 0) {
      const Status s = ErrnoError("poll(connect)");
      CloseFd(fd);
      return s;
    }
    if (prc == 0) {
      CloseFd(fd);
      return DeadlineExceededError(
          StrFormat("connect to %s:%u timed out after %lld ms", host.c_str(),
                    unsigned{port}, static_cast<long long>(timeout.count())));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      if (err != 0) errno = err;
      const Status s = ErrnoError("connect");
      CloseFd(fd);
      return s;
    }
  }
  // Restore blocking mode so callers see ConnectTcp's contract.
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    const Status s = ErrnoError("fcntl(~O_NONBLOCK)");
    CloseFd(fd);
    return s;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status WaitReadable(int fd, std::chrono::milliseconds timeout, bool* ready) {
  if (ready != nullptr) *ready = false;
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1,
                timeout.count() < 0 ? -1 : static_cast<int>(timeout.count()));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoError("poll");
  if (ready != nullptr) *ready = rc > 0;
  return Status::Ok();
}

Result<size_t> SendSome(int fd, const char* data, size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return ErrnoError(errno == EPIPE ? "send (peer closed)" : "send");
  }
}

Result<size_t> WritevSome(int fd, const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  for (;;) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return ErrnoError(errno == EPIPE ? "sendmsg (peer closed)" : "sendmsg");
  }
}

Status SetSendBufferSize(int fd, int bytes) {
  if (bytes <= 0) return Status::Ok();
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) < 0) {
    return ErrnoError("setsockopt(SO_SNDBUF)");
  }
  return Status::Ok();
}

Result<size_t> RecvSome(int fd, char* buf, size_t len, bool* would_block) {
  if (would_block != nullptr) *would_block = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (would_block != nullptr) *would_block = true;
      return size_t{0};
    }
    return ErrnoError("recv");
  }
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc < 0 && errno == EINTR);
}

}  // namespace cnpb::util
