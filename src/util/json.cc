#include "util/json.h"

#include <cmath>

#include "util/strings.h"

namespace cnpb::util {

std::string JsonString(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.9g", value);
}

std::string JsonUInt(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

}  // namespace cnpb::util
