#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace cnpb::util {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

void Histogram::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Histogram::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) return 0.0;
  CNPB_CHECK(p >= 0.0 && p <= 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Histogram::Summary() const {
  return StrFormat("count=%zu mean=%.3f p50=%.3f p99=%.3f max=%.3f", count(),
                   Mean(), Percentile(50), Percentile(99), Max());
}

}  // namespace cnpb::util
