#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/strings.h"

namespace cnpb::util {

namespace {
double Nan() { return std::numeric_limits<double>::quiet_NaN(); }
}  // namespace

void Histogram::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

double Histogram::Mean() const {
  if (samples_.empty()) return Nan();
  return sum_ / static_cast<double>(samples_.size());
}

void Histogram::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::Min() const {
  EnsureSorted();
  return sorted_.empty() ? Nan() : sorted_.front();
}

double Histogram::Max() const {
  EnsureSorted();
  return sorted_.empty() ? Nan() : sorted_.back();
}

double Histogram::Stddev() const {
  // The sample standard deviation is undefined below two samples; NaN makes
  // the degenerate case explicit instead of masquerading as "no spread".
  if (samples_.size() < 2) return Nan();
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) return Nan();
  CNPB_CHECK(p >= 0.0 && p <= 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Histogram::Summary() const {
  if (samples_.empty()) return "count=0 (empty)";
  std::string out = StrFormat("count=%zu mean=%.3f", count(), Mean());
  // Stddev is undefined for a single sample; omit it rather than print a
  // meaningless 0.
  if (count() >= 2) out += StrFormat(" stddev=%.3f", Stddev());
  out += StrFormat(" p50=%.3f p99=%.3f max=%.3f", Percentile(50),
                   Percentile(99), Max());
  return out;
}

}  // namespace cnpb::util
