#ifndef CNPROBASE_UTIL_RETRY_H_
#define CNPROBASE_UTIL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "util/status.h"

namespace cnpb::util {

// Bounded exponential-backoff retry for transient failures: IO errors from
// the persistence layer (including injected ones) and ResourceExhausted
// from publish contention / admission control. Permanent errors — bad data,
// invalid arguments, checksum DataLoss — are returned immediately: retrying
// them cannot succeed and would mask real corruption.

struct RetryOptions {
  int max_attempts = 5;
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{50};
};

inline bool IsRetryableError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

struct RetryResult {
  Status status;
  int attempts = 0;  // attempts actually made (>= 1)
};

// The sleep schedule RetryWithBackoff follows. Every sleep is clamped to
// [1ms, max_backoff]: a zero initial_backoff used to hot-spin forever,
// because 0 * multiplier stayed 0 on every iteration — the clamp gives the
// exponential growth a nonzero seed, so a zero start still backs off
// 1, 2, 4, ... ms.
class BackoffSequence {
 public:
  explicit BackoffSequence(const RetryOptions& options)
      : options_(options), next_(options.initial_backoff) {}

  // The sleep to take before the next retry; advances the schedule.
  std::chrono::milliseconds Next() {
    const std::chrono::milliseconds sleep = std::max(
        std::chrono::milliseconds(1), std::min(next_, options_.max_backoff));
    next_ = std::min(
        options_.max_backoff,
        std::chrono::milliseconds(static_cast<int64_t>(
            static_cast<double>(sleep.count()) * options_.backoff_multiplier)));
    return sleep;
  }

 private:
  RetryOptions options_;
  std::chrono::milliseconds next_;
};

// Calls `fn` (returning Status) until it succeeds, fails permanently, or
// `max_attempts` is exhausted; sleeps the backoff between attempts.
template <typename Fn>
RetryResult RetryWithBackoff(const RetryOptions& options, Fn&& fn) {
  RetryResult result;
  BackoffSequence backoff(options);
  for (int attempt = 1;; ++attempt) {
    result.status = fn();
    result.attempts = attempt;
    if (result.status.ok() || !IsRetryableError(result.status) ||
        attempt >= options.max_attempts) {
      return result;
    }
    std::this_thread::sleep_for(backoff.Next());
  }
}

// Convenience for call sites that only need the final Status.
template <typename Fn>
Status Retry(const RetryOptions& options, Fn&& fn) {
  return RetryWithBackoff(options, std::forward<Fn>(fn)).status;
}

}  // namespace cnpb::util

#endif  // CNPROBASE_UTIL_RETRY_H_
