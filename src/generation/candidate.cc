#include "generation/candidate.h"

#include <unordered_set>

namespace cnpb::generation {

CandidateList MergeCandidates(const std::vector<const CandidateList*>& lists) {
  CandidateList merged;
  std::unordered_set<std::string> seen;
  for (const CandidateList* list : lists) {
    for (const Candidate& candidate : *list) {
      std::string key = candidate.hypo;
      key.push_back('\x01');
      key.append(candidate.hyper);
      if (seen.insert(std::move(key)).second) {
        merged.push_back(candidate);
      }
    }
  }
  return merged;
}

}  // namespace cnpb::generation
