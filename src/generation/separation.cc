#include "generation/separation.h"

#include "text/utf8.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace cnpb::generation {

SeparationAlgorithm::SeparationAlgorithm(const text::NgramCounter* pmi)
    : pmi_(pmi) {
  CNPB_CHECK(pmi != nullptr);
}

SeparationAlgorithm::Parse SeparationAlgorithm::ParseWords(
    const std::vector<std::string>& words) const {
  Parse parse;
  if (words.empty()) return parse;

  auto make_leaf = [&parse](const std::string& text) {
    parse.arena.push_back(std::make_unique<TreeNode>());
    parse.arena.back()->text = text;
    return parse.arena.back().get();
  };
  auto make_join = [&parse](const TreeNode* left, const TreeNode* right) {
    parse.arena.push_back(std::make_unique<TreeNode>());
    TreeNode* node = parse.arena.back().get();
    node->text = left->text + right->text;
    node->left = left;
    node->right = right;
    return node;
  };

  std::vector<const TreeNode*> seq;
  seq.reserve(words.size());
  for (const std::string& word : words) seq.push_back(make_leaf(word));

  // Sliding window over (seq[center-1], seq[center], seq[center+1]),
  // starting at the rightmost three elements (paper steps 1-4).
  size_t center = seq.size() >= 3 ? seq.size() - 2 : 1;
  size_t fuel = 4 * words.size() * words.size() + 16;
  while (seq.size() > 2) {
    CNPB_CHECK(fuel-- > 0) << "separation failed to converge";
    if (center < 1) center = 1;
    if (center > seq.size() - 2) center = seq.size() - 2;
    const size_t left = center - 1;
    const size_t right = center + 1;
    const double pmi_left = pmi_->Pmi(seq[left]->text, seq[center]->text);
    const double pmi_right = pmi_->Pmi(seq[center]->text, seq[right]->text);
    if (pmi_left < pmi_right) {
      // Step 2: bind the right pair, slide left.
      seq[center] = make_join(seq[center], seq[right]);
      seq.erase(seq.begin() + static_cast<ptrdiff_t>(right));
      if (center >= 1) --center;
    } else if (left == 0) {
      // Step 4: the leftmost element is in the window and the left pair
      // binds tighter: join it and move the window right.
      seq[0] = make_join(seq[0], seq[1]);
      seq.erase(seq.begin() + 1);
      center = 1;
    } else {
      // Step 3: slide the window left.
      --center;
    }
  }
  parse.root =
      seq.size() == 1 ? seq[0] : make_join(seq[0], seq[1]);

  // Hypernyms: every node on the rightmost path below the root (the paper's
  // "leaf nodes along with the rightmost path"). For 蚂蚁金服(首席(战略官))
  // this yields {首席战略官, 战略官}.
  const TreeNode* node = parse.root;
  while (node->right != nullptr) {
    node = node->right;
    parse.hypernyms.push_back(node->text);
  }
  if (parse.hypernyms.empty()) {
    parse.hypernyms.push_back(parse.root->text);  // single-word compound
  }
  return parse;
}

SeparationAlgorithm::Parse SeparationAlgorithm::ParseCompound(
    std::string_view compound, const text::Segmenter& segmenter) const {
  return ParseWords(segmenter.Segment(compound));
}

BracketExtractor::BracketExtractor(const text::Segmenter* segmenter,
                                   const text::NgramCounter* pmi)
    : segmenter_(segmenter), separation_(pmi) {
  CNPB_CHECK(segmenter != nullptr);
}

std::vector<std::string> BracketExtractor::HypernymsOf(
    std::string_view bracket) const {
  std::vector<std::string> hypernyms;
  for (const std::string& part : util::SplitBy(bracket, "、")) {
    if (part.empty()) continue;
    SeparationAlgorithm::Parse parse =
        separation_.ParseCompound(part, *segmenter_);
    for (std::string& hyper : parse.hypernyms) {
      // Bare numbers and single ASCII tokens are segmentation debris, never
      // hypernyms.
      if (hyper.empty()) continue;
      if (hyper.find_first_not_of("0123456789") == std::string::npos) continue;
      hypernyms.push_back(std::move(hyper));
    }
  }
  return hypernyms;
}

CandidateList BracketExtractor::ExtractRange(const kb::EncyclopediaDump& dump,
                                             size_t begin, size_t end) const {
  CandidateList candidates;
  for (size_t i = begin; i < end; ++i) {
    const kb::EncyclopediaPage& page = dump.page(i);
    if (page.bracket.empty()) continue;
    for (std::string& hyper : HypernymsOf(page.bracket)) {
      if (hyper == page.mention) continue;
      Candidate candidate;
      candidate.hypo = page.name;
      candidate.hyper = std::move(hyper);
      candidate.source = taxonomy::Source::kBracket;
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

CandidateList BracketExtractor::Extract(
    const kb::EncyclopediaDump& dump) const {
  return util::ShardedConcat(dump.size(), [&](size_t begin, size_t end) {
    return ExtractRange(dump, begin, end);
  });
}

}  // namespace cnpb::generation
