#include "generation/direct_extraction.h"

#include "util/parallel.h"

namespace cnpb::generation {

CandidateList ExtractFromTags(const kb::EncyclopediaDump& dump, size_t begin,
                              size_t end) {
  CandidateList candidates;
  for (size_t i = begin; i < end; ++i) {
    const kb::EncyclopediaPage& page = dump.page(i);
    for (const std::string& tag : page.tags) {
      if (tag.empty() || tag == page.mention) continue;
      Candidate candidate;
      candidate.hypo = page.name;
      candidate.hyper = tag;
      candidate.source = taxonomy::Source::kTag;
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

CandidateList ExtractFromTags(const kb::EncyclopediaDump& dump) {
  return util::ShardedConcat(dump.size(), [&dump](size_t begin, size_t end) {
    return ExtractFromTags(dump, begin, end);
  });
}

}  // namespace cnpb::generation
