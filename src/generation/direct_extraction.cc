#include "generation/direct_extraction.h"

namespace cnpb::generation {

CandidateList ExtractFromTags(const kb::EncyclopediaDump& dump) {
  CandidateList candidates;
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    for (const std::string& tag : page.tags) {
      if (tag.empty() || tag == page.mention) continue;
      Candidate candidate;
      candidate.hypo = page.name;
      candidate.hyper = tag;
      candidate.source = taxonomy::Source::kTag;
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace cnpb::generation
