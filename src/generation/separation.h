#ifndef CNPROBASE_GENERATION_SEPARATION_H_
#define CNPROBASE_GENERATION_SEPARATION_H_

#include <memory>
#include <string>
#include <vector>

#include "generation/candidate.h"
#include "kb/dump.h"
#include "text/ngram.h"
#include "text/segmenter.h"

namespace cnpb::generation {

// The paper's separation algorithm (§II, Fig. 3): parses the word sequence
// of a disambiguation bracket into a binary tree by comparing the PMI of
// adjacent pairs inside a right-to-left sliding window, then reads the
// hypernyms off the rightmost path of the tree.
class SeparationAlgorithm {
 public:
  struct TreeNode {
    std::string text;
    const TreeNode* left = nullptr;   // null for leaves
    const TreeNode* right = nullptr;
    bool IsLeaf() const { return left == nullptr; }
  };

  // Parse result; owns the tree arena.
  struct Parse {
    const TreeNode* root = nullptr;
    std::vector<std::string> hypernyms;  // rightmost-path node texts
    std::vector<std::unique_ptr<TreeNode>> arena;
  };

  // `pmi` must outlive the algorithm.
  explicit SeparationAlgorithm(const text::NgramCounter* pmi);

  // Parses a pre-segmented noun compound. Empty input gives a null root.
  Parse ParseWords(const std::vector<std::string>& words) const;

  // Convenience: segments `compound` first.
  Parse ParseCompound(std::string_view compound,
                      const text::Segmenter& segmenter) const;

 private:
  const text::NgramCounter* pmi_;
};

// Runs the separation algorithm over every bracketed page in the dump and
// emits bracket-source candidates. Brackets are split on the Chinese
// enumeration comma 、 first (刘德华（中国香港男演员、歌手）yields both
// isA(…, 男演员) and isA(…, 歌手)).
class BracketExtractor {
 public:
  BracketExtractor(const text::Segmenter* segmenter,
                   const text::NgramCounter* pmi);

  CandidateList Extract(const kb::EncyclopediaDump& dump) const;

  // Shard form: extracts only from pages [begin, end), serially, in page
  // order. Parsing is read-only on the segmenter and PMI table, so shards
  // may run on concurrent threads; concatenating shard outputs in shard
  // order reproduces Extract exactly.
  CandidateList ExtractRange(const kb::EncyclopediaDump& dump, size_t begin,
                             size_t end) const;

  // Hypernyms for one bracket string (exposed for tests/benches).
  std::vector<std::string> HypernymsOf(std::string_view bracket) const;

 private:
  const text::Segmenter* segmenter_;
  SeparationAlgorithm separation_;
};

}  // namespace cnpb::generation

#endif  // CNPROBASE_GENERATION_SEPARATION_H_
