#ifndef CNPROBASE_GENERATION_PREDICATE_DISCOVERY_H_
#define CNPROBASE_GENERATION_PREDICATE_DISCOVERY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "generation/candidate.h"
#include "kb/dump.h"

namespace cnpb::generation {

// Predicate discovery (paper §II): aligns SPO triples against the
// high-precision bracket-derived isA relations (distant supervision) to find
// the infobox predicates that implicitly express isA (e.g. 职业), then
// extracts isA relations from the triples of the selected predicates.
//
// The paper discovers 341 candidate predicates and manually keeps 12; we
// simulate the manual purification with a support/precision threshold and a
// cap, and report the same two counts.
class PredicateDiscovery {
 public:
  struct Config {
    size_t min_support = 20;       // triples needed to judge a predicate
    double min_precision = 0.2;    // alignment-precision floor (brackets are
                                   // sparse, so alignment caps well below 1)
    size_t max_selected = 12;      // the paper's hand-picked budget
  };

  struct PredicateStats {
    std::string predicate;
    size_t total = 0;    // triples with this predicate
    size_t aligned = 0;  // triples confirmed by the bracket prior
    double precision() const {
      return total == 0 ? 0.0 : static_cast<double>(aligned) / total;
    }
  };

  struct Discovery {
    std::vector<PredicateStats> candidates;  // aligned > 0, sorted by prec.
    std::vector<std::string> selected;       // the purified predicates
  };

  explicit PredicateDiscovery(const Config& config) : config_(config) {}

  // `prior` is the bracket-source candidate list (precision > 96%).
  Discovery Discover(const kb::EncyclopediaDump& dump,
                     const CandidateList& prior) const;

  // Extracts infobox-source candidates using the selected predicates.
  static CandidateList Extract(const kb::EncyclopediaDump& dump,
                               const std::vector<std::string>& selected);

  // Shard form: extracts only from pages [begin, end), in page order, so
  // concatenating shard outputs in shard order reproduces Extract exactly.
  static CandidateList Extract(const kb::EncyclopediaDump& dump,
                               const std::vector<std::string>& selected,
                               size_t begin, size_t end);

 private:
  Config config_;
};

}  // namespace cnpb::generation

#endif  // CNPROBASE_GENERATION_PREDICATE_DISCOVERY_H_
