#ifndef CNPROBASE_GENERATION_NEURAL_GENERATION_H_
#define CNPROBASE_GENERATION_NEURAL_GENERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "generation/candidate.h"
#include "kb/dump.h"
#include "nn/copynet.h"
#include "nn/vocab.h"
#include "text/segmenter.h"

namespace cnpb::generation {

// Neural generation (paper §II): builds a distant-supervision dataset from
// the high-precision bracket isA relations (abstract of the hyponym ->
// hypernym), trains a CopyNet-style encoder-decoder on it, and generates a
// hypernym for every page with an abstract.
class NeuralGeneration {
 public:
  struct Config {
    nn::CopyNet::Config model;
    int epochs = 3;
    int batch_size = 8;
    size_t max_train_samples = 4000;
    size_t max_source_len = 30;   // abstract tokens fed to the encoder
    uint64_t min_input_freq = 2;  // rarer source words become <unk>
    // Targets seen at least this often enter the generate-mode vocabulary;
    // rarer hypernyms are reachable only by copying (the OOV case).
    size_t min_target_count = 20;
    float lr = 0.01f;
    uint64_t seed = 97;
  };

  struct TrainStats {
    std::vector<float> epoch_loss;
    size_t num_samples = 0;
    size_t num_oov_targets = 0;  // training targets outside the output vocab
    size_t input_vocab_size = 0;
    size_t output_vocab_size = 0;
  };

  explicit NeuralGeneration(const Config& config);

  // Builds the dataset: for every page with both a bracket-derived hypernym
  // in `prior` and a non-empty abstract, (segmented abstract -> hypernym).
  // Returns the number of samples.
  size_t BuildDataset(const kb::EncyclopediaDump& dump,
                      const CandidateList& prior,
                      const text::Segmenter& segmenter);

  // Trains the model; must be called after BuildDataset.
  TrainStats Train();

  // Held-out accuracy: fraction of the last `holdout` dataset samples whose
  // first generated token equals the gold hypernym. Split by `oov_only` to
  // measure the copy mechanism's contribution.
  double EvalAccuracy(size_t holdout, bool oov_only) const;

  // Generates abstract-source candidates for every page with an abstract.
  CandidateList ExtractAll(const kb::EncyclopediaDump& dump,
                           const text::Segmenter& segmenter) const;

  // Shard form: decodes only pages [begin, end), serially, in page order.
  // Inference is read-only on the trained model, so shards may run on
  // concurrent threads; concatenating shard outputs in shard order
  // reproduces ExtractAll exactly.
  CandidateList ExtractRange(const kb::EncyclopediaDump& dump,
                             const text::Segmenter& segmenter, size_t begin,
                             size_t end) const;

  size_t dataset_size() const { return examples_.size(); }
  const nn::Vocab& output_vocab() const { return output_vocab_; }

  // Checkpointing: writes <prefix>.params / <prefix>.in.vocab /
  // <prefix>.out.vocab. Load reconstructs the model with this instance's
  // Config (architecture dims must match the checkpoint) and is then ready
  // for ExtractAll without retraining.
  util::Status Save(const std::string& prefix) const;
  util::Status Load(const std::string& prefix);

 private:
  nn::CopyNet::Example MakeSource(const std::string& abstract,
                                  const text::Segmenter& segmenter) const;

  Config config_;
  nn::Vocab input_vocab_;
  nn::Vocab output_vocab_;
  std::vector<nn::CopyNet::Example> examples_;
  std::unique_ptr<nn::CopyNet> model_;
  size_t train_end_ = 0;  // examples_[0, train_end_) are used for training
};

}  // namespace cnpb::generation

#endif  // CNPROBASE_GENERATION_NEURAL_GENERATION_H_
