#include "generation/predicate_discovery.h"

#include <algorithm>
#include <unordered_map>

namespace cnpb::generation {

namespace {
std::string PairKey(const std::string& hypo, const std::string& hyper) {
  std::string key = hypo;
  key.push_back('\x01');
  key.append(hyper);
  return key;
}
}  // namespace

PredicateDiscovery::Discovery PredicateDiscovery::Discover(
    const kb::EncyclopediaDump& dump, const CandidateList& prior) const {
  std::unordered_set<std::string> prior_pairs;
  prior_pairs.reserve(prior.size());
  for (const Candidate& candidate : prior) {
    prior_pairs.insert(PairKey(candidate.hypo, candidate.hyper));
  }

  std::unordered_map<std::string, PredicateStats> stats;
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    for (const kb::SpoTriple& triple : page.infobox) {
      PredicateStats& s = stats[triple.predicate];
      s.predicate = triple.predicate;
      ++s.total;
      if (prior_pairs.count(PairKey(page.name, triple.object)) > 0) {
        ++s.aligned;
      }
    }
  }

  Discovery discovery;
  for (auto& [predicate, s] : stats) {
    if (s.aligned > 0) discovery.candidates.push_back(s);
  }
  std::sort(discovery.candidates.begin(), discovery.candidates.end(),
            [](const PredicateStats& a, const PredicateStats& b) {
              if (a.precision() != b.precision()) {
                return a.precision() > b.precision();
              }
              return a.predicate < b.predicate;
            });
  for (const PredicateStats& s : discovery.candidates) {
    if (discovery.selected.size() >= config_.max_selected) break;
    if (s.total < config_.min_support) continue;
    if (s.precision() < config_.min_precision) continue;
    discovery.selected.push_back(s.predicate);
  }
  return discovery;
}

CandidateList PredicateDiscovery::Extract(
    const kb::EncyclopediaDump& dump, const std::vector<std::string>& selected,
    size_t begin, size_t end) {
  std::unordered_set<std::string> selected_set(selected.begin(),
                                               selected.end());
  CandidateList candidates;
  for (size_t i = begin; i < end; ++i) {
    const kb::EncyclopediaPage& page = dump.page(i);
    for (const kb::SpoTriple& triple : page.infobox) {
      if (selected_set.count(triple.predicate) == 0) continue;
      if (triple.object.empty() || triple.object == page.mention) continue;
      Candidate candidate;
      candidate.hypo = page.name;
      candidate.hyper = triple.object;
      candidate.source = taxonomy::Source::kInfobox;
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

CandidateList PredicateDiscovery::Extract(
    const kb::EncyclopediaDump& dump,
    const std::vector<std::string>& selected) {
  return Extract(dump, selected, 0, dump.size());
}

}  // namespace cnpb::generation
