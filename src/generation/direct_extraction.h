#ifndef CNPROBASE_GENERATION_DIRECT_EXTRACTION_H_
#define CNPROBASE_GENERATION_DIRECT_EXTRACTION_H_

#include "generation/candidate.h"
#include "kb/dump.h"

namespace cnpb::generation {

// Direct extraction from tags (paper §II): every tag of a page is taken as a
// hypernym of the page's entity. Tags equal to the mention itself are
// skipped. This is deliberately credulous — the verification module is what
// makes the tag source precise.
CandidateList ExtractFromTags(const kb::EncyclopediaDump& dump);

// Shard form: extracts only from pages [begin, end). Candidates appear in
// page order, so concatenating shard outputs in shard order reproduces the
// full-dump extraction exactly.
CandidateList ExtractFromTags(const kb::EncyclopediaDump& dump, size_t begin,
                              size_t end);

}  // namespace cnpb::generation

#endif  // CNPROBASE_GENERATION_DIRECT_EXTRACTION_H_
