#ifndef CNPROBASE_GENERATION_CANDIDATE_H_
#define CNPROBASE_GENERATION_CANDIDATE_H_

#include <string>
#include <vector>

#include "taxonomy/taxonomy.h"

namespace cnpb::generation {

// One candidate isA relation produced by the generation module, before
// verification. `hypo` is a disambiguated page name (entity) or a concept
// word; `hyper` is a concept word.
struct Candidate {
  std::string hypo;
  std::string hyper;
  taxonomy::Source source = taxonomy::Source::kImported;
  float score = 1.0f;
};

using CandidateList = std::vector<Candidate>;

// Merges candidate lists, deduplicating exact (hypo, hyper) pairs. The first
// occurrence wins (callers pass higher-precision sources first, so
// provenance reflects the most trustworthy origin).
CandidateList MergeCandidates(const std::vector<const CandidateList*>& lists);

}  // namespace cnpb::generation

#endif  // CNPROBASE_GENERATION_CANDIDATE_H_
