#include "generation/neural_generation.h"

#include <algorithm>
#include <unordered_map>

#include "nn/adam.h"
#include "nn/serialize.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace cnpb::generation {

NeuralGeneration::NeuralGeneration(const Config& config) : config_(config) {}

nn::CopyNet::Example NeuralGeneration::MakeSource(
    const std::string& abstract, const text::Segmenter& segmenter) const {
  nn::CopyNet::Example example;
  example.source_words = segmenter.Segment(abstract);
  if (example.source_words.size() > config_.max_source_len) {
    example.source_words.resize(config_.max_source_len);
  }
  example.source_ids = input_vocab_.Encode(example.source_words);
  return example;
}

size_t NeuralGeneration::BuildDataset(const kb::EncyclopediaDump& dump,
                                      const CandidateList& prior,
                                      const text::Segmenter& segmenter) {
  // First bracket hypernym per page = the most specific one.
  std::unordered_map<std::string, const std::string*> target_of;
  for (const Candidate& candidate : prior) {
    target_of.emplace(candidate.hypo, &candidate.hyper);
  }

  // Pass 1: collect raw samples and count words.
  struct RawSample {
    const std::string* abstract;
    const std::string* target;
  };
  std::vector<RawSample> raw;
  std::unordered_map<std::string, size_t> source_freq;
  std::unordered_map<std::string, size_t> target_count;
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    if (page.abstract.empty()) continue;
    auto it = target_of.find(page.name);
    if (it == target_of.end()) continue;
    raw.push_back({&page.abstract, it->second});
    ++target_count[*it->second];
    if (raw.size() >= config_.max_train_samples) break;
  }
  for (const RawSample& sample : raw) {
    for (const std::string& word : segmenter.Segment(*sample.abstract)) {
      ++source_freq[word];
    }
  }

  input_vocab_ = nn::Vocab();
  for (const auto& [word, freq] : source_freq) {
    if (freq >= config_.min_input_freq) input_vocab_.Add(word);
  }
  output_vocab_ = nn::Vocab();
  for (const auto& [word, count] : target_count) {
    if (count >= config_.min_target_count) output_vocab_.Add(word);
  }

  examples_.clear();
  examples_.reserve(raw.size());
  for (const RawSample& sample : raw) {
    nn::CopyNet::Example example = MakeSource(*sample.abstract, segmenter);
    example.target_words = {*sample.target};
    examples_.push_back(std::move(example));
  }
  // Hold out the tail 10% for EvalAccuracy.
  train_end_ = examples_.size() - examples_.size() / 10;
  return examples_.size();
}

NeuralGeneration::TrainStats NeuralGeneration::Train() {
  TrainStats stats;
  stats.num_samples = train_end_;
  stats.input_vocab_size = static_cast<size_t>(input_vocab_.size());
  stats.output_vocab_size = static_cast<size_t>(output_vocab_.size());
  for (size_t i = 0; i < train_end_; ++i) {
    for (const std::string& target : examples_[i].target_words) {
      if (!output_vocab_.Contains(target)) {
        ++stats.num_oov_targets;
        break;
      }
    }
  }

  model_ = std::make_unique<nn::CopyNet>(&input_vocab_, &output_vocab_,
                                         config_.model);
  nn::Adam::Config adam_config;
  adam_config.lr = config_.lr;
  nn::Adam optimizer(model_->Params(), adam_config);

  util::Rng rng(config_.seed);
  std::vector<size_t> order(train_end_);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    std::vector<const nn::CopyNet::Example*> batch;
    for (size_t i = 0; i < order.size(); ++i) {
      batch.push_back(&examples_[order[i]]);
      if (batch.size() == static_cast<size_t>(config_.batch_size) ||
          i + 1 == order.size()) {
        epoch_loss += model_->AccumulateBatch(batch);
        optimizer.Step();
        ++batches;
        batch.clear();
      }
    }
    stats.epoch_loss.push_back(
        batches == 0 ? 0.0f : static_cast<float>(epoch_loss / batches));
  }
  return stats;
}

double NeuralGeneration::EvalAccuracy(size_t holdout, bool oov_only) const {
  CNPB_CHECK(model_ != nullptr) << "Train() before EvalAccuracy()";
  const size_t begin =
      holdout >= examples_.size() ? 0 : examples_.size() - holdout;
  size_t correct = 0;
  size_t total = 0;
  for (size_t i = std::max(begin, train_end_); i < examples_.size(); ++i) {
    const nn::CopyNet::Example& example = examples_[i];
    if (example.target_words.empty()) continue;
    const std::string& gold = example.target_words[0];
    if (oov_only && output_vocab_.Contains(gold)) continue;
    ++total;
    const std::vector<std::string> generated =
        model_->Generate(example.source_ids, example.source_words);
    if (!generated.empty() && generated[0] == gold) ++correct;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

util::Status NeuralGeneration::Save(const std::string& prefix) const {
  if (model_ == nullptr) {
    return util::FailedPreconditionError("no trained model to save");
  }
  CNPB_RETURN_IF_ERROR(nn::SaveParameters(model_->Params(), prefix + ".params"));
  CNPB_RETURN_IF_ERROR(nn::SaveVocab(input_vocab_, prefix + ".in.vocab"));
  return nn::SaveVocab(output_vocab_, prefix + ".out.vocab");
}

util::Status NeuralGeneration::Load(const std::string& prefix) {
  auto in_vocab = nn::LoadVocab(prefix + ".in.vocab");
  if (!in_vocab.ok()) return in_vocab.status();
  auto out_vocab = nn::LoadVocab(prefix + ".out.vocab");
  if (!out_vocab.ok()) return out_vocab.status();
  input_vocab_ = std::move(*in_vocab);
  output_vocab_ = std::move(*out_vocab);
  model_ = std::make_unique<nn::CopyNet>(&input_vocab_, &output_vocab_,
                                         config_.model);
  return nn::LoadParameters(model_->Params(), prefix + ".params");
}

CandidateList NeuralGeneration::ExtractRange(const kb::EncyclopediaDump& dump,
                                             const text::Segmenter& segmenter,
                                             size_t begin, size_t end) const {
  CNPB_CHECK(model_ != nullptr) << "Train() before ExtractRange()";
  CandidateList candidates;
  for (size_t i = begin; i < end; ++i) {
    const kb::EncyclopediaPage& page = dump.page(i);
    if (page.abstract.empty()) continue;
    const nn::CopyNet::Example source = MakeSource(page.abstract, segmenter);
    const std::vector<std::string> generated =
        model_->Generate(source.source_ids, source.source_words);
    if (generated.empty()) continue;
    const std::string& hyper = generated[0];
    if (hyper.empty() || hyper == page.mention) continue;
    // A hypernym must be a common noun; generated function words (是/一种)
    // and punctuation are decoder misfires, not classes.
    const text::Pos pos = segmenter.lexicon().PosOf(hyper);
    if (pos == text::Pos::kOther || pos == text::Pos::kParticle ||
        pos == text::Pos::kNumeral) {
      continue;
    }
    Candidate candidate;
    candidate.hypo = page.name;
    candidate.hyper = hyper;
    candidate.source = taxonomy::Source::kAbstract;
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

CandidateList NeuralGeneration::ExtractAll(
    const kb::EncyclopediaDump& dump, const text::Segmenter& segmenter) const {
  CNPB_CHECK(model_ != nullptr) << "Train() before ExtractAll()";
  return util::ShardedConcat(dump.size(), [&](size_t begin, size_t end) {
    return ExtractRange(dump, segmenter, begin, end);
  });
}

}  // namespace cnpb::generation
