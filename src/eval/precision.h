#ifndef CNPROBASE_EVAL_PRECISION_H_
#define CNPROBASE_EVAL_PRECISION_H_

#include <functional>
#include <map>
#include <string>

#include "generation/candidate.h"
#include "taxonomy/taxonomy.h"

namespace cnpb::eval {

// Judges whether isA(hypo, hyper) is correct. Backed by synth::GoldTruth in
// experiments; the indirection keeps eval free of generator types.
using Oracle = std::function<bool(const std::string& hypo,
                                  const std::string& hyper)>;

struct PrecisionResult {
  size_t evaluated = 0;
  size_t correct = 0;
  double precision() const {
    return evaluated == 0 ? 0.0 : static_cast<double>(correct) / evaluated;
  }
};

// Exact precision over every edge of the taxonomy.
PrecisionResult ExactPrecision(const taxonomy::Taxonomy& taxonomy,
                               const Oracle& oracle);

// The paper's protocol: uniformly sample `sample_size` relations (default
// 2000) and label them — here by the oracle instead of human annotators.
PrecisionResult SampledPrecision(const taxonomy::Taxonomy& taxonomy,
                                 const Oracle& oracle,
                                 size_t sample_size = 2000,
                                 uint64_t seed = 1

);

// Precision of a candidate list (pre- or post-verification).
PrecisionResult CandidatePrecision(const generation::CandidateList& candidates,
                                   const Oracle& oracle);

// Exact precision per provenance source (the in-text 96.2% bracket / 97.4%
// tag numbers).
std::map<taxonomy::Source, PrecisionResult> PrecisionBySource(
    const taxonomy::Taxonomy& taxonomy, const Oracle& oracle);

}  // namespace cnpb::eval

#endif  // CNPROBASE_EVAL_PRECISION_H_
