#include "eval/comparison.h"

#include "util/strings.h"

namespace cnpb::eval {

ComparisonRow MakeRow(const std::string& name,
                      const taxonomy::Taxonomy& taxonomy, const Oracle& oracle,
                      size_t sample_size, uint64_t seed) {
  ComparisonRow row;
  row.name = name;
  row.num_entities = taxonomy.NumEntities();
  row.num_concepts = taxonomy.NumConcepts();
  row.num_isa = taxonomy.num_edges();
  row.precision =
      SampledPrecision(taxonomy, oracle, sample_size, seed).precision();
  return row;
}

std::string FormatTable(const std::vector<ComparisonRow>& rows) {
  std::string out;
  out += util::StrFormat("%-24s %14s %14s %14s %10s\n", "Taxonomy",
                         "# of entities", "# of concepts", "# of isA",
                         "precision");
  for (const ComparisonRow& row : rows) {
    out += util::StrFormat(
        "%-24s %14s %14s %14s %9.1f%%\n", row.name.c_str(),
        util::CommaSeparated(row.num_entities).c_str(),
        util::CommaSeparated(row.num_concepts).c_str(),
        util::CommaSeparated(row.num_isa).c_str(), row.precision * 100.0);
  }
  return out;
}

}  // namespace cnpb::eval
