#ifndef CNPROBASE_EVAL_COMPARISON_H_
#define CNPROBASE_EVAL_COMPARISON_H_

#include <string>
#include <vector>

#include "eval/precision.h"
#include "taxonomy/taxonomy.h"

namespace cnpb::eval {

// One row of Table I: a taxonomy's size and precision.
struct ComparisonRow {
  std::string name;
  size_t num_entities = 0;
  size_t num_concepts = 0;
  size_t num_isa = 0;
  double precision = 0.0;
};

// Builds a row from a materialised taxonomy using the 2000-sample protocol.
ComparisonRow MakeRow(const std::string& name,
                      const taxonomy::Taxonomy& taxonomy, const Oracle& oracle,
                      size_t sample_size = 2000, uint64_t seed = 1);

// Formats rows as an aligned ASCII table matching Table I's columns.
std::string FormatTable(const std::vector<ComparisonRow>& rows);

}  // namespace cnpb::eval

#endif  // CNPROBASE_EVAL_COMPARISON_H_
