#ifndef CNPROBASE_EVAL_COVERAGE_H_
#define CNPROBASE_EVAL_COVERAGE_H_

#include <string>
#include <vector>

#include "kb/dump.h"
#include "taxonomy/taxonomy.h"

namespace cnpb::eval {

// QA-coverage experiment (paper §IV-B): a question is covered when it
// contains at least one taxonomy entity or concept. Entities are matched by
// their bare mentions (page names carry disambiguation brackets that never
// occur in question text). The paper reports 91.68% coverage on NLPCC 2016
// and 2.14 concepts per covered entity.
struct CoverageResult {
  size_t total_questions = 0;
  size_t covered_questions = 0;
  size_t covered_with_entity = 0;  // matched an entity (not just a concept)
  double sum_entity_concepts = 0;  // hypernym count over matched entities
  size_t matched_entities = 0;

  double coverage() const {
    return total_questions == 0
               ? 0.0
               : static_cast<double>(covered_questions) / total_questions;
  }
  double avg_concepts_per_entity() const {
    return matched_entities == 0 ? 0.0
                                 : sum_entity_concepts / matched_entities;
  }
};

CoverageResult QaCoverage(const taxonomy::Taxonomy& taxonomy,
                          const kb::EncyclopediaDump& dump,
                          const std::vector<std::string>& questions);

}  // namespace cnpb::eval

#endif  // CNPROBASE_EVAL_COVERAGE_H_
