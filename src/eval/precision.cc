#include "eval/precision.h"

#include <vector>

#include "util/rng.h"

namespace cnpb::eval {

PrecisionResult ExactPrecision(const taxonomy::Taxonomy& taxonomy,
                               const Oracle& oracle) {
  PrecisionResult result;
  taxonomy.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    ++result.evaluated;
    if (oracle(taxonomy.Name(edge.hypo), taxonomy.Name(edge.hyper))) {
      ++result.correct;
    }
  });
  return result;
}

PrecisionResult SampledPrecision(const taxonomy::Taxonomy& taxonomy,
                                 const Oracle& oracle, size_t sample_size,
                                 uint64_t seed) {
  std::vector<std::pair<taxonomy::NodeId, taxonomy::NodeId>> edges;
  edges.reserve(taxonomy.num_edges());
  taxonomy.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    edges.emplace_back(edge.hypo, edge.hyper);
  });
  util::Rng rng(seed);
  PrecisionResult result;
  if (edges.empty()) return result;
  const size_t n = std::min(sample_size, edges.size());
  // Partial Fisher-Yates gives a uniform sample without replacement.
  for (size_t i = 0; i < n; ++i) {
    const size_t j = i + rng.Uniform(edges.size() - i);
    std::swap(edges[i], edges[j]);
    ++result.evaluated;
    if (oracle(taxonomy.Name(edges[i].first), taxonomy.Name(edges[i].second))) {
      ++result.correct;
    }
  }
  return result;
}

PrecisionResult CandidatePrecision(const generation::CandidateList& candidates,
                                   const Oracle& oracle) {
  PrecisionResult result;
  for (const generation::Candidate& candidate : candidates) {
    ++result.evaluated;
    if (oracle(candidate.hypo, candidate.hyper)) ++result.correct;
  }
  return result;
}

std::map<taxonomy::Source, PrecisionResult> PrecisionBySource(
    const taxonomy::Taxonomy& taxonomy, const Oracle& oracle) {
  std::map<taxonomy::Source, PrecisionResult> by_source;
  taxonomy.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    PrecisionResult& result = by_source[edge.source];
    ++result.evaluated;
    if (oracle(taxonomy.Name(edge.hypo), taxonomy.Name(edge.hyper))) {
      ++result.correct;
    }
  });
  return by_source;
}

}  // namespace cnpb::eval
