#include "eval/coverage.h"

#include "text/trie_matcher.h"

namespace cnpb::eval {

namespace {
// Payload encoding: entity node ids are offset by 1 (payload 0 = "concept
// only" marker is avoided by always adding 1 and flagging kind in bit 0).
uint64_t EncodeEntity(taxonomy::NodeId id) {
  return (static_cast<uint64_t>(id) << 1) | 1;
}
uint64_t EncodeConcept(taxonomy::NodeId id) {
  return (static_cast<uint64_t>(id) << 1);
}
}  // namespace

CoverageResult QaCoverage(const taxonomy::Taxonomy& taxonomy,
                          const kb::EncyclopediaDump& dump,
                          const std::vector<std::string>& questions) {
  text::TrieMatcher matcher;
  // Entity mentions (from pages that made it into the taxonomy). Entity
  // matches win over concept matches for the same surface because they are
  // added later (last registration wins in the trie).
  for (taxonomy::NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
    if (taxonomy.Kind(id) == taxonomy::NodeKind::kConcept) {
      matcher.Add(taxonomy.Name(id), EncodeConcept(id));
    }
  }
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    const taxonomy::NodeId id = taxonomy.Find(page.name);
    if (id != taxonomy::kInvalidNode &&
        taxonomy.Kind(id) == taxonomy::NodeKind::kEntity) {
      matcher.Add(page.mention, EncodeEntity(id));
      for (const std::string& alias : page.aliases) {
        matcher.Add(alias, EncodeEntity(id));
      }
    }
  }

  CoverageResult result;
  result.total_questions = questions.size();
  for (const std::string& question : questions) {
    const auto matches = matcher.FindAll(question);
    if (matches.empty()) continue;
    ++result.covered_questions;
    bool has_entity = false;
    for (const auto& match : matches) {
      if ((match.payload & 1) == 1) {
        has_entity = true;
        const taxonomy::NodeId id =
            static_cast<taxonomy::NodeId>(match.payload >> 1);
        result.sum_entity_concepts +=
            static_cast<double>(taxonomy.Hypernyms(id).size());
        ++result.matched_entities;
      }
    }
    if (has_entity) ++result.covered_with_entity;
  }
  return result;
}

}  // namespace cnpb::eval
