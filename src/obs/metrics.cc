#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <limits>

namespace cnpb::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---- HistogramSnapshot ------------------------------------------------------

double HistogramSnapshot::BucketLowerBound(size_t i) {
  const int octave = kMinExp + static_cast<int>(i) / kSubPerOctave;
  const double mantissa =
      1.0 + static_cast<double>(i % kSubPerOctave) / kSubPerOctave;
  return std::ldexp(mantissa, octave);
}

double HistogramSnapshot::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return BucketLowerBound(i + 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

uint64_t HistogramSnapshot::TotalCount() const {
  uint64_t total = 0;
  for (const uint64_t b : buckets) total += b;
  return total;
}

double HistogramSnapshot::Mean() const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(count);
}

double HistogramSnapshot::Percentile(double p) const {
  const uint64_t total = TotalCount();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  // Rank in (0, total]; the sample at cumulative rank `target` owns p.
  double target = p / 100.0 * static_cast<double>(total);
  if (target < 1.0) target = 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(cumulative + buckets[i]) >= target) {
      const double frac =
          (target - static_cast<double>(cumulative)) / buckets[i];
      const double lo = BucketLowerBound(i);
      double hi = BucketUpperBound(i);
      // The overflow bucket has no finite ceiling; report its floor rather
      // than interpolating toward infinity.
      if (!std::isfinite(hi)) hi = lo;
      return lo + frac * (hi - lo);
    }
    cumulative += buckets[i];
  }
  return BucketLowerBound(kNumBuckets - 1);
}

// ---- BucketHistogram --------------------------------------------------------

size_t BucketHistogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN clamp low
  // For positive doubles the IEEE-754 bit pattern is monotone in the value:
  // the biased exponent plus the top kSubBits mantissa bits form the
  // log-linear slot directly — no libm call on the hot path.
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  const int64_t slot =
      static_cast<int64_t>(bits >> (52 - HistogramSnapshot::kSubBits)) -
      (static_cast<int64_t>(HistogramSnapshot::kMinExp + 1023)
       << HistogramSnapshot::kSubBits);
  if (slot < 0) return 0;
  if (slot >= static_cast<int64_t>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<size_t>(slot);
}

HistogramSnapshot BucketHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments may be touched from atexit-ordered code.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

BucketHistogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<BucketHistogram>())
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snapshot());
  }
  return out;
}

}  // namespace cnpb::obs
