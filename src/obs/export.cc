#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/json.h"
#include "util/strings.h"

namespace cnpb::obs {

namespace {

using util::JsonNumber;
using util::JsonString;

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
// map dots (and anything else) to underscores under a "cnpb_" prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "cnpb_";
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Prometheus (unlike JSON) spells out non-finite samples.
std::string FormatDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return util::StrFormat("%.9g", value);
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.CounterValues()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + util::StrFormat("%llu",
                                        static_cast<unsigned long long>(value));
    out += '\n';
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, snap] : registry.HistogramSnapshots()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;  // sparse: skip empty buckets
      cumulative += snap.buckets[i];
      out += prom + "_bucket{le=\"" +
             FormatDouble(HistogramSnapshot::BucketUpperBound(i)) + "\"} " +
             util::StrFormat("%llu",
                             static_cast<unsigned long long>(cumulative)) +
             "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " +
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(cumulative)) +
           "\n";
    out += prom + "_sum " + FormatDouble(snap.sum) + "\n";
    out += prom + "_count " +
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(snap.count)) +
           "\n";
  }
  return out;
}

std::string ToJson(const MetricsRegistry& registry) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.CounterValues()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": " +
           util::StrFormat("%llu", static_cast<unsigned long long>(value));
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry.GaugeValues()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": " + JsonNumber(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : registry.HistogramSnapshots()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": {\n";
    out += util::StrFormat("      \"count\": %llu,\n",
                           static_cast<unsigned long long>(snap.count));
    out += "      \"sum\": " + JsonNumber(snap.sum) + ",\n";
    out += "      \"mean\": " + JsonNumber(snap.Mean()) + ",\n";
    out += "      \"p50\": " + JsonNumber(snap.Percentile(50)) + ",\n";
    out += "      \"p90\": " + JsonNumber(snap.Percentile(90)) + ",\n";
    out += "      \"p99\": " + JsonNumber(snap.Percentile(99)) + ",\n";
    out += "      \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      out += first_bucket ? "\n" : ",\n";
      first_bucket = false;
      out += "        {\"le\": " +
             JsonNumber(HistogramSnapshot::BucketUpperBound(i)) +
             util::StrFormat(
                 ", \"count\": %llu}",
                 static_cast<unsigned long long>(snap.buckets[i]));
    }
    out += first_bucket ? "]\n" : "\n      ]\n";
    out += "    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

util::Status WriteMetricsFiles(const MetricsRegistry& registry,
                               const std::string& base_path) {
  const auto write = [](const std::string& path,
                        const std::string& content) -> util::Status {
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return util::IoError("cannot open for writing: " + path);
    }
    const size_t written = std::fwrite(content.data(), 1, content.size(), f);
    const int rc = std::fclose(f);
    if (written != content.size() || rc != 0) {
      return util::IoError("short write: " + path);
    }
    return util::Status::Ok();
  };
  if (util::Status s = write(base_path + ".prom", ToPrometheusText(registry));
      !s.ok()) {
    return s;
  }
  return write(base_path + ".json", ToJson(registry));
}

}  // namespace cnpb::obs
