#ifndef CNPROBASE_OBS_EXPORT_H_
#define CNPROBASE_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace cnpb::obs {

// Renders every instrument in `registry` as Prometheus text exposition
// format: counters and gauges as single samples, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`. Dotted metric names
// are sanitised to [a-zA-Z0-9_:] and prefixed with "cnpb_".
std::string ToPrometheusText(const MetricsRegistry& registry);

// Renders the registry as one JSON object:
//   {"counters": {...}, "gauges": {...},
//    "histograms": {name: {count, sum, mean, p50, p90, p99,
//                          buckets: [{le, count}, ...]}}}
// Only non-empty histogram buckets are listed; `le` is the bucket's
// exclusive upper bound (the last bucket reports its lower bound with
// "+Inf" semantics folded into count).
std::string ToJson(const MetricsRegistry& registry);

// Writes `base_path`.prom and `base_path`.json next to each other — the
// report pair behind the CLI/bench `--metrics-out` flag.
util::Status WriteMetricsFiles(const MetricsRegistry& registry,
                               const std::string& base_path);

}  // namespace cnpb::obs

#endif  // CNPROBASE_OBS_EXPORT_H_
