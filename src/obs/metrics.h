#ifndef CNPROBASE_OBS_METRICS_H_
#define CNPROBASE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cnpb::obs {

// Process-wide observability instruments. Three kinds:
//
//   Counter          monotone event count (relaxed-atomic increments)
//   Gauge            last-written value (stage wall time, snapshot age, ...)
//   BucketHistogram  bounded log-bucket latency histogram, lock-free on the
//                    write path, with mergeable snapshots
//
// Unlike util::Histogram (which keeps every sample and re-sorts for
// percentiles — fine for benches, unusable on a hot query path), a
// BucketHistogram is O(1) memory with a fixed bucket layout, so it can sit
// on the serving path of ApiService and inside sharded build loops.
//
// All instruments live in a MetricsRegistry, addressed by dotted names
// ("api.latency.men2ent"); the exporters in obs/export.h turn a registry
// into Prometheus text or JSON. Instrument handles returned by the registry
// are stable for the registry's lifetime — callers on hot paths look them
// up once and cache the pointer.

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

// Global kill switch (default on). When off, instruments skip their atomic
// writes and timers skip their clock reads, so a metrics-disabled run is the
// baseline the <2%-overhead contract in bench_scaling compares against.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (MetricsEnabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) {
    if (MetricsEnabled()) value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// One immutable copy of a BucketHistogram's state. Snapshots taken while
// writers are still running are internally consistent per bucket (each
// bucket count is a single atomic load) but not a cross-bucket atomic cut;
// once writers quiesce, totals are exact. Snapshots merge by bucket-wise
// addition, so per-shard or per-service histograms aggregate losslessly.
struct HistogramSnapshot {
  // Fixed log-linear layout: kSubPerOctave buckets per power of two,
  // spanning [2^kMinExp, 2^kMaxExp). Values are typically seconds: the
  // layout covers ~60 ns .. 256 s with <=19% relative bucket width.
  static constexpr int kSubBits = 2;
  static constexpr int kSubPerOctave = 1 << kSubBits;
  static constexpr int kMinExp = -24;
  static constexpr int kMaxExp = 8;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExp - kMinExp) * kSubPerOctave;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  double sum = 0.0;

  // Inclusive lower / exclusive upper value bound of bucket i. The first
  // bucket also absorbs every value below 2^kMinExp (and non-positive
  // values); the last absorbs everything >= its lower bound.
  static double BucketLowerBound(size_t i);
  static double BucketUpperBound(size_t i);

  void Merge(const HistogramSnapshot& other);

  uint64_t TotalCount() const;  // sum over buckets (use instead of `count`
                                // for percentiles mid-flight)
  double Mean() const;
  // p in [0, 100]; linear interpolation inside the owning bucket. NaN when
  // empty.
  double Percentile(double p) const;
};

// Fixed-size log-bucket histogram with lock-free relaxed-atomic increments.
// Observe is wait-free (bucket index is computed from the double's bit
// pattern — no libm call) and touches three cache lines at most: the
// bucket, the count, and the sum.
class BucketHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  void Observe(double value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> (C++20) compiles to a CAS loop; contention
    // on the hot path is bounded by the relaxed ordering and short retries.
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  // Maps a value to its bucket. Non-positive and NaN clamp to bucket 0,
  // oversized values to the last bucket. Pure function, exposed for tests.
  static size_t BucketIndex(double value);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Observes wall time into a BucketHistogram (in seconds) on destruction.
// Skips the clock reads entirely when metrics are disabled or `hist` is
// null, so the disabled cost is one relaxed load and a branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(BucketHistogram* hist)
      : hist_(MetricsEnabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  BucketHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// Named instrument store. Lookup is mutex-guarded (cache the returned
// pointer on hot paths); the returned instruments live as long as the
// registry and are safe to use from any thread.
class MetricsRegistry {
 public:
  // The process-wide registry every subsystem reports into by default.
  static MetricsRegistry& Global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  BucketHistogram* histogram(std::string_view name);

  // Stable name-sorted copies for the exporters.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramSnapshots()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<BucketHistogram>, std::less<>>
      histograms_;
};

}  // namespace cnpb::obs

#endif  // CNPROBASE_OBS_METRICS_H_
