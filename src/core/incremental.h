#ifndef CNPROBASE_CORE_INCREMENTAL_H_
#define CNPROBASE_CORE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "generation/neural_generation.h"
#include "kb/dump.h"
#include "taxonomy/taxonomy.h"
#include "text/lexicon.h"
#include "text/ngram.h"
#include "text/segmenter.h"
#include "util/status.h"
#include "verification/pipeline.h"

namespace cnpb::core {

// Incremental taxonomy maintenance. CN-Probase is deployed on top of
// CN-DBpedia, a never-ending extraction system (Xu et al. 2017): new pages
// arrive continuously, and rebuilding 15M entities per batch is not an
// option. The updater trains the expensive components once on the base dump
// (CopyNet, predicate selection) and then processes page batches by
// extracting candidates from the delta only, while verification statistics
// (NER supports, concept attribute distributions) are maintained
// incrementally over the union — the verification pipeline is constructed
// once and fed just the per-batch deltas, so batch cost does not grow with
// the accumulated corpus.
//
// Serving: each batch materialises a fresh taxonomy off to the side and
// freezes it into an immutable snapshot; Publish() installs the current
// snapshot (plus a mention index rebuilt for it) into a live ApiService in
// one atomic swap, so queries keep flowing — against a coherent version —
// while batches apply.
class IncrementalUpdater {
 public:
  struct BatchReport {
    size_t pages_added = 0;
    // Fresh candidates extracted from the batch delta.
    size_t candidates = 0;
    // Of the fresh (hypo, hyper) pairs not already in the taxonomy:
    // `accepted` survived verification into the new taxonomy, `rejected`
    // were vetoed. Fresh pairs duplicating existing edges count as neither.
    size_t accepted = 0;
    size_t rejected = 0;
    // Pre-existing edges withdrawn because the accumulated evidence now
    // votes against them (revocation, not rejection).
    size_t revoked = 0;
    double seconds = 0.0;
  };

  // Builds the base taxonomy from `base` and prepares the reusable
  // components. `lexicon` must outlive the updater; the corpus seeds the
  // PMI table and NER supports.
  IncrementalUpdater(const kb::EncyclopediaDump& base,
                     const text::Lexicon* lexicon,
                     const std::vector<std::vector<std::string>>& corpus,
                     const CnProbaseBuilder::Config& config);

  // Applies one batch of new pages (and optional new corpus sentences);
  // returns what happened. Pages whose names already exist are skipped; new
  // pages get fresh unique page ids continuing after the base dump's.
  BatchReport ApplyBatch(
      const std::vector<kb::EncyclopediaPage>& pages,
      const std::vector<std::vector<std::string>>& new_corpus = {});

  // Publishes the current snapshot to `service` as a new immutable version:
  // the mention index is rebuilt off to the side for exactly this taxonomy,
  // then ApiService::Publish swaps both in as one unit. Queries
  // in flight are never blocked and never observe a half-applied update.
  // Returns the service's new version number.
  uint64_t Publish(taxonomy::ApiService* service) const;

  // Persists the current snapshot durably: atomic checksummed write via
  // SaveTaxonomyDurable (preserving the previous file as `path`.bak), with
  // transient IO failures retried under exponential backoff. Pairs with
  // taxonomy::LoadTaxonomyWithFallback for crash recovery. On success,
  // `persisted_generation` (when non-null) receives the generation number
  // the written file captures — callers recording a durable cursor need the
  // generation of the bytes on disk, not whatever generation() reads later.
  util::Status SaveSnapshot(const std::string& path,
                            uint64_t* persisted_generation = nullptr) const;

  // Persists the current snapshot in the zero-copy binary format
  // (taxonomy/snapshot.h), mention index included, so a server can mmap it
  // straight into serving. Atomic write, retried like SaveSnapshot; the TSV
  // save remains the durable fallback format. `persisted_generation` as in
  // SaveSnapshot.
  util::Status SaveBinarySnapshot(
      const std::string& path, uint64_t* persisted_generation = nullptr) const;

  const taxonomy::Taxonomy& taxonomy() const { return *taxonomy_; }
  // The current frozen snapshot (replaced wholesale by each ApplyBatch;
  // safe to hold across batches and to serve from concurrently).
  std::shared_ptr<const taxonomy::Taxonomy> snapshot() const {
    return taxonomy_;
  }
  // Number of taxonomy generations materialised so far (base build = 1,
  // +1 per non-empty batch).
  uint64_t generation() const { return generation_; }
  const kb::EncyclopediaDump& dump() const { return dump_; }
  const CnProbaseBuilder::Report& base_report() const { return base_report_; }

 private:
  // Extracts candidates from pages [first_page, dump_.size()).
  generation::CandidateList ExtractFrom(size_t first_page);

  CnProbaseBuilder::Config config_;
  const text::Lexicon* lexicon_;
  kb::EncyclopediaDump dump_;  // union of base + applied batches
  text::Segmenter segmenter_;
  text::NgramCounter ngrams_;
  generation::NeuralGeneration neural_;
  std::vector<std::string> selected_predicates_;
  CnProbaseBuilder::Report base_report_;
  // Persistent across batches; fed only the deltas (see AddPage /
  // AddCorpusSentence). Null when verification is disabled.
  std::unique_ptr<verification::VerificationPipeline> pipeline_;
  std::shared_ptr<const taxonomy::Taxonomy> taxonomy_;
  uint64_t generation_ = 0;
  uint64_t next_page_id_ = 1;  // first id past the base dump's maximum
};

}  // namespace cnpb::core

#endif  // CNPROBASE_CORE_INCREMENTAL_H_
