#ifndef CNPROBASE_CORE_INCREMENTAL_H_
#define CNPROBASE_CORE_INCREMENTAL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "generation/neural_generation.h"
#include "kb/dump.h"
#include "taxonomy/taxonomy.h"
#include "text/lexicon.h"
#include "text/ngram.h"
#include "text/segmenter.h"

namespace cnpb::core {

// Incremental taxonomy maintenance. CN-Probase is deployed on top of
// CN-DBpedia, a never-ending extraction system (Xu et al. 2017): new pages
// arrive continuously, and rebuilding 15M entities per batch is not an
// option. The updater trains the expensive components once on the base dump
// (CopyNet, predicate selection) and then processes page batches by
// extracting candidates from the delta only, while verification statistics
// (NER supports, concept attribute distributions) are maintained over the
// union.
class IncrementalUpdater {
 public:
  struct BatchReport {
    size_t pages_added = 0;
    size_t candidates = 0;
    size_t accepted = 0;
    size_t rejected = 0;
    double seconds = 0.0;
  };

  // Builds the base taxonomy from `base` and prepares the reusable
  // components. `lexicon` must outlive the updater; the corpus seeds the
  // PMI table and NER supports.
  IncrementalUpdater(const kb::EncyclopediaDump& base,
                     const text::Lexicon* lexicon,
                     const std::vector<std::vector<std::string>>& corpus,
                     const CnProbaseBuilder::Config& config);

  // Applies one batch of new pages (and optional new corpus sentences);
  // returns what happened. Pages whose names already exist are skipped.
  BatchReport ApplyBatch(
      const std::vector<kb::EncyclopediaPage>& pages,
      const std::vector<std::vector<std::string>>& new_corpus = {});

  const taxonomy::Taxonomy& taxonomy() const { return taxonomy_; }
  const kb::EncyclopediaDump& dump() const { return dump_; }
  const CnProbaseBuilder::Report& base_report() const { return base_report_; }

 private:
  // Extracts candidates from pages [first_page, dump_.size()).
  generation::CandidateList ExtractFrom(size_t first_page);

  CnProbaseBuilder::Config config_;
  const text::Lexicon* lexicon_;
  kb::EncyclopediaDump dump_;  // union of base + applied batches
  std::vector<std::vector<std::string>> corpus_;
  text::Segmenter segmenter_;
  text::NgramCounter ngrams_;
  generation::NeuralGeneration neural_;
  std::vector<std::string> selected_predicates_;
  CnProbaseBuilder::Report base_report_;
  taxonomy::Taxonomy taxonomy_;
};

}  // namespace cnpb::core

#endif  // CNPROBASE_CORE_INCREMENTAL_H_
