#ifndef CNPROBASE_CORE_BUILDER_H_
#define CNPROBASE_CORE_BUILDER_H_

#include <string>
#include <vector>

#include "generation/candidate.h"
#include "generation/neural_generation.h"
#include "generation/predicate_discovery.h"
#include "kb/dump.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "text/lexicon.h"
#include "verification/pipeline.h"

namespace cnpb::core {

// The CN-Probase construction pipeline (paper Figure 2): four generation
// extractors over the encyclopedia dump, candidate merging, and the
// three-strategy verification module, producing the final taxonomy.
class CnProbaseBuilder {
 public:
  struct Config {
    // Generation toggles (ablations / single-source baselines).
    bool enable_bracket = true;
    bool enable_abstract = true;
    bool enable_infobox = true;
    bool enable_tag = true;
    bool enable_verification = true;

    generation::NeuralGeneration::Config neural;
    generation::PredicateDiscovery::Config predicates;
    verification::VerificationPipeline::Config verification;

    // Per-source confidence priors, recorded as edge scores. Set from each
    // source's measured precision; ApiService ranks hypernyms by them.
    float bracket_prior = 0.96f;
    float infobox_prior = 0.92f;
    float tag_prior = 0.90f;
    float abstract_prior = 0.85f;
  };

  struct Report {
    size_t bracket_candidates = 0;
    size_t abstract_candidates = 0;
    size_t infobox_candidates = 0;
    size_t tag_candidates = 0;
    size_t merged_candidates = 0;
    generation::PredicateDiscovery::Discovery discovery;
    generation::NeuralGeneration::TrainStats neural_stats;
    verification::VerificationPipeline::Report verification;
    double seconds_generation = 0.0;
    double seconds_verification = 0.0;
  };

  // `corpus` is the segmented text corpus backing PMI and NER supports.
  // All inputs must outlive the call.
  static taxonomy::Taxonomy Build(
      const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
      const std::vector<std::vector<std::string>>& corpus,
      const Config& config, Report* report);

  // Builds the verified candidate list without materialising the taxonomy
  // (used by evaluation to score individual sources).
  static generation::CandidateList BuildCandidates(
      const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
      const std::vector<std::vector<std::string>>& corpus,
      const Config& config, Report* report);

  // Materialises a taxonomy from verified candidates: every hypernym string
  // becomes a concept node; hyponyms that never appear as hypernyms become
  // entity nodes.
  static taxonomy::Taxonomy Materialise(
      const generation::CandidateList& candidates);

  // Wires an ApiService mention index from the dump's pages.
  static void RegisterMentions(const kb::EncyclopediaDump& dump,
                               const taxonomy::Taxonomy& taxonomy,
                               taxonomy::ApiService* service);

  // Builds the mention index (surface mention + aliases -> entity node) for
  // `taxonomy` from the dump's pages, for publishing alongside it as one
  // immutable version (ApiService::Publish).
  static taxonomy::ApiService::MentionIndex BuildMentionIndex(
      const kb::EncyclopediaDump& dump, const taxonomy::Taxonomy& taxonomy);
};

}  // namespace cnpb::core

#endif  // CNPROBASE_CORE_BUILDER_H_
