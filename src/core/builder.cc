#include "core/builder.h"

#include <unordered_set>

#include "generation/direct_extraction.h"
#include "generation/separation.h"
#include "text/ngram.h"
#include "text/segmenter.h"
#include "util/timer.h"

namespace cnpb::core {

generation::CandidateList CnProbaseBuilder::BuildCandidates(
    const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
    const std::vector<std::vector<std::string>>& corpus, const Config& config,
    Report* report) {
  Report local;
  util::WallTimer timer;

  text::Segmenter segmenter(&lexicon);
  text::NgramCounter ngrams;
  for (const auto& sentence : corpus) ngrams.AddSentence(sentence);

  // --- generation module ---------------------------------------------------
  generation::CandidateList bracket;
  if (config.enable_bracket || config.enable_abstract ||
      config.enable_infobox) {
    // Bracket extraction also powers distant supervision for the abstract
    // and infobox extractors, so it runs whenever either needs a prior.
    generation::BracketExtractor extractor(&segmenter, &ngrams);
    bracket = extractor.Extract(dump);
  }

  generation::CandidateList abstract_candidates;
  generation::NeuralGeneration neural(config.neural);
  if (config.enable_abstract) {
    neural.BuildDataset(dump, bracket, segmenter);
    local.neural_stats = neural.Train();
    abstract_candidates = neural.ExtractAll(dump, segmenter);
  }

  generation::CandidateList infobox_candidates;
  if (config.enable_infobox) {
    generation::PredicateDiscovery discovery(config.predicates);
    local.discovery = discovery.Discover(dump, bracket);
    infobox_candidates =
        generation::PredicateDiscovery::Extract(dump, local.discovery.selected);
  }

  generation::CandidateList tag_candidates;
  if (config.enable_tag) {
    tag_candidates = generation::ExtractFromTags(dump);
  }

  if (!config.enable_bracket) bracket.clear();
  for (auto& candidate : bracket) candidate.score = config.bracket_prior;
  for (auto& candidate : infobox_candidates) {
    candidate.score = config.infobox_prior;
  }
  for (auto& candidate : tag_candidates) candidate.score = config.tag_prior;
  for (auto& candidate : abstract_candidates) {
    candidate.score = config.abstract_prior;
  }
  local.bracket_candidates = bracket.size();
  local.abstract_candidates = abstract_candidates.size();
  local.infobox_candidates = infobox_candidates.size();
  local.tag_candidates = tag_candidates.size();

  // Merge in decreasing-precision order so provenance reflects the most
  // trustworthy source of each pair.
  generation::CandidateList merged = generation::MergeCandidates(
      {&bracket, &infobox_candidates, &tag_candidates, &abstract_candidates});
  local.merged_candidates = merged.size();
  local.seconds_generation = timer.ElapsedSeconds();

  // --- verification module -------------------------------------------------
  timer.Restart();
  generation::CandidateList verified;
  if (config.enable_verification) {
    verification::VerificationPipeline pipeline(&dump, &lexicon,
                                                config.verification);
    for (const auto& sentence : corpus) pipeline.AddCorpusSentence(sentence);
    verified = pipeline.Verify(merged, &local.verification);
  } else {
    verified = std::move(merged);
    local.verification.input = local.merged_candidates;
    local.verification.output = verified.size();
  }
  local.seconds_verification = timer.ElapsedSeconds();

  if (report != nullptr) *report = std::move(local);
  return verified;
}

taxonomy::Taxonomy CnProbaseBuilder::Materialise(
    const generation::CandidateList& candidates) {
  taxonomy::Taxonomy taxonomy;
  // Concepts first so a term that is both a page and a hypernym gets the
  // concept kind (subconcept relations).
  std::unordered_set<std::string_view> concepts;
  for (const generation::Candidate& candidate : candidates) {
    concepts.insert(candidate.hyper);
  }
  for (const generation::Candidate& candidate : candidates) {
    taxonomy.AddNode(candidate.hyper, taxonomy::NodeKind::kConcept);
  }
  for (const generation::Candidate& candidate : candidates) {
    const taxonomy::NodeKind kind = concepts.count(candidate.hypo) > 0
                                        ? taxonomy::NodeKind::kConcept
                                        : taxonomy::NodeKind::kEntity;
    taxonomy.AddIsa(candidate.hypo, candidate.hyper, candidate.source,
                    candidate.score, kind);
  }
  return taxonomy;
}

taxonomy::Taxonomy CnProbaseBuilder::Build(
    const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
    const std::vector<std::vector<std::string>>& corpus, const Config& config,
    Report* report) {
  return Materialise(BuildCandidates(dump, lexicon, corpus, config, report));
}

void CnProbaseBuilder::RegisterMentions(const kb::EncyclopediaDump& dump,
                                        const taxonomy::Taxonomy& taxonomy,
                                        taxonomy::ApiService* service) {
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    const taxonomy::NodeId id = taxonomy.Find(page.name);
    if (id != taxonomy::kInvalidNode) {
      service->RegisterMention(page.mention, id);
      for (const std::string& alias : page.aliases) {
        service->RegisterMention(alias, id);
      }
    }
  }
}

}  // namespace cnpb::core
