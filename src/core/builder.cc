#include "core/builder.h"

#include <algorithm>
#include <iterator>
#include <unordered_set>

#include "generation/direct_extraction.h"
#include "generation/separation.h"
#include "obs/metrics.h"
#include "text/ngram.h"
#include "text/segmenter.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace cnpb::core {

namespace {

// Moves the contents of per-shard candidate lists into one list, in shard
// order. Because shards are contiguous page ranges in index order, the
// concatenation equals what a serial full-dump pass would produce — the
// order-stable merge that makes the build byte-identical for any
// CNPB_THREADS value.
generation::CandidateList ConcatShards(
    std::vector<generation::CandidateList>& parts) {
  size_t total = 0;
  for (const generation::CandidateList& part : parts) total += part.size();
  generation::CandidateList out;
  out.reserve(total);
  for (generation::CandidateList& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace

generation::CandidateList CnProbaseBuilder::BuildCandidates(
    const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
    const std::vector<std::vector<std::string>>& corpus, const Config& config,
    Report* report) {
  Report local;
  util::WallTimer timer;

  // Build-stage instruments. Stage wall times are gauges (last build wins);
  // shard-level timings go to histograms so tail shards stay visible, and the
  // shard/page counters make pipeline progress observable from outside.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter* shards_processed = metrics.counter("build.shards_processed");
  obs::Counter* pages_processed = metrics.counter("build.pages_processed");
  obs::BucketHistogram* bracket_shard_seconds =
      metrics.histogram("build.shard.bracket_seconds");
  obs::BucketHistogram* abstract_shard_seconds =
      metrics.histogram("build.shard.abstract_seconds");
  obs::BucketHistogram* infobox_shard_seconds =
      metrics.histogram("build.shard.infobox_seconds");
  obs::BucketHistogram* tag_shard_seconds =
      metrics.histogram("build.shard.tag_seconds");
  util::WallTimer stage_timer;

  text::Segmenter segmenter(&lexicon);
  text::NgramCounter ngrams;
  for (const auto& sentence : corpus) ngrams.AddSentence(sentence);

  // Deterministic shard plan over dump pages: a pure function of the page
  // count, never of the thread count. Both generation passes below fan out
  // over these shards and concatenate the per-shard outputs in shard order.
  const std::vector<util::IndexRange> shards = util::MakeShards(dump.size());

  // --- generation module ---------------------------------------------------
  // Pass 1 (sharded): bracket extraction. It runs first and alone because
  // its output is also the distant-supervision prior for the abstract and
  // infobox extractors.
  generation::CandidateList bracket;
  stage_timer.Restart();
  if (config.enable_bracket || config.enable_abstract ||
      config.enable_infobox) {
    generation::BracketExtractor extractor(&segmenter, &ngrams);
    std::vector<generation::CandidateList> parts =
        util::ParallelMap(shards.size(), [&](size_t s) {
          obs::ScopedTimer shard_timer(bracket_shard_seconds);
          shards_processed->Increment();
          pages_processed->Increment(shards[s].second - shards[s].first);
          return extractor.ExtractRange(dump, shards[s].first,
                                        shards[s].second);
        });
    bracket = ConcatShards(parts);
  }
  metrics.gauge("build.stage.bracket_seconds")
      ->Set(stage_timer.ElapsedSeconds());

  // Global stages: neural training and predicate discovery consume the whole
  // bracket prior / dump at once (corpus-level statistics), so they cannot
  // be sharded without changing results.
  generation::NeuralGeneration neural(config.neural);
  stage_timer.Restart();
  if (config.enable_abstract) {
    neural.BuildDataset(dump, bracket, segmenter);
    local.neural_stats = neural.Train();
  }
  metrics.gauge("build.stage.neural_train_seconds")
      ->Set(stage_timer.ElapsedSeconds());
  generation::PredicateDiscovery discovery(config.predicates);
  stage_timer.Restart();
  if (config.enable_infobox) {
    local.discovery = discovery.Discover(dump, bracket);
  }
  metrics.gauge("build.stage.predicate_discovery_seconds")
      ->Set(stage_timer.ElapsedSeconds());

  // Pass 2 (sharded): the three remaining extractors run per shard on the
  // frozen model / selected predicates, writing per-shard slots.
  struct ShardOutput {
    generation::CandidateList abstracts;
    generation::CandidateList infobox;
    generation::CandidateList tags;
  };
  std::vector<ShardOutput> shard_outputs(shards.size());
  stage_timer.Restart();
  util::ParallelFor(shards.size(), [&](size_t s) {
    const auto [begin, end] = shards[s];
    ShardOutput& out = shard_outputs[s];
    if (config.enable_abstract) {
      obs::ScopedTimer shard_timer(abstract_shard_seconds);
      out.abstracts = neural.ExtractRange(dump, segmenter, begin, end);
    }
    if (config.enable_infobox) {
      obs::ScopedTimer shard_timer(infobox_shard_seconds);
      out.infobox = generation::PredicateDiscovery::Extract(
          dump, local.discovery.selected, begin, end);
    }
    if (config.enable_tag) {
      obs::ScopedTimer shard_timer(tag_shard_seconds);
      out.tags = generation::ExtractFromTags(dump, begin, end);
    }
    shards_processed->Increment();
    pages_processed->Increment(end - begin);
  });
  metrics.gauge("build.stage.extract_pass2_seconds")
      ->Set(stage_timer.ElapsedSeconds());

  generation::CandidateList abstract_candidates;
  generation::CandidateList infobox_candidates;
  generation::CandidateList tag_candidates;
  {
    std::vector<generation::CandidateList> abstracts, infoboxes, tags;
    abstracts.reserve(shards.size());
    infoboxes.reserve(shards.size());
    tags.reserve(shards.size());
    for (ShardOutput& out : shard_outputs) {
      abstracts.push_back(std::move(out.abstracts));
      infoboxes.push_back(std::move(out.infobox));
      tags.push_back(std::move(out.tags));
    }
    abstract_candidates = ConcatShards(abstracts);
    infobox_candidates = ConcatShards(infoboxes);
    tag_candidates = ConcatShards(tags);
  }

  if (!config.enable_bracket) bracket.clear();
  for (auto& candidate : bracket) candidate.score = config.bracket_prior;
  for (auto& candidate : infobox_candidates) {
    candidate.score = config.infobox_prior;
  }
  for (auto& candidate : tag_candidates) candidate.score = config.tag_prior;
  for (auto& candidate : abstract_candidates) {
    candidate.score = config.abstract_prior;
  }
  local.bracket_candidates = bracket.size();
  local.abstract_candidates = abstract_candidates.size();
  local.infobox_candidates = infobox_candidates.size();
  local.tag_candidates = tag_candidates.size();

  // Merge in decreasing-precision order so provenance reflects the most
  // trustworthy source of each pair.
  stage_timer.Restart();
  generation::CandidateList merged = generation::MergeCandidates(
      {&bracket, &infobox_candidates, &tag_candidates, &abstract_candidates});
  metrics.gauge("build.stage.merge_seconds")
      ->Set(stage_timer.ElapsedSeconds());
  local.merged_candidates = merged.size();
  local.seconds_generation = timer.ElapsedSeconds();
  metrics.counter("build.candidates.bracket")->Increment(bracket.size());
  metrics.counter("build.candidates.abstract")
      ->Increment(abstract_candidates.size());
  metrics.counter("build.candidates.infobox")
      ->Increment(infobox_candidates.size());
  metrics.counter("build.candidates.tag")->Increment(tag_candidates.size());
  metrics.counter("build.candidates.merged")->Increment(merged.size());

  // --- verification module -------------------------------------------------
  timer.Restart();
  generation::CandidateList verified;
  if (config.enable_verification) {
    verification::VerificationPipeline pipeline(&dump, &lexicon,
                                                config.verification);
    for (const auto& sentence : corpus) pipeline.AddCorpusSentence(sentence);
    verified = pipeline.Verify(merged, &local.verification);
  } else {
    verified = std::move(merged);
    local.verification.input = local.merged_candidates;
    local.verification.output = verified.size();
  }
  local.seconds_verification = timer.ElapsedSeconds();
  metrics.gauge("build.stage.generation_seconds")->Set(local.seconds_generation);
  metrics.gauge("build.stage.verification_seconds")
      ->Set(local.seconds_verification);
  metrics.counter("build.runs")->Increment();

  if (report != nullptr) *report = std::move(local);
  return verified;
}

taxonomy::Taxonomy CnProbaseBuilder::Materialise(
    const generation::CandidateList& candidates) {
  taxonomy::Taxonomy taxonomy;
  // Concepts first so a term that is both a page and a hypernym gets the
  // concept kind (subconcept relations).
  std::unordered_set<std::string_view> concepts;
  for (const generation::Candidate& candidate : candidates) {
    concepts.insert(candidate.hyper);
  }
  for (const generation::Candidate& candidate : candidates) {
    taxonomy.AddNode(candidate.hyper, taxonomy::NodeKind::kConcept);
  }
  for (const generation::Candidate& candidate : candidates) {
    const taxonomy::NodeKind kind = concepts.count(candidate.hypo) > 0
                                        ? taxonomy::NodeKind::kConcept
                                        : taxonomy::NodeKind::kEntity;
    taxonomy.AddIsa(candidate.hypo, candidate.hyper, candidate.source,
                    candidate.score, kind);
  }
  return taxonomy;
}

taxonomy::Taxonomy CnProbaseBuilder::Build(
    const kb::EncyclopediaDump& dump, const text::Lexicon& lexicon,
    const std::vector<std::vector<std::string>>& corpus, const Config& config,
    Report* report) {
  return Materialise(BuildCandidates(dump, lexicon, corpus, config, report));
}

void CnProbaseBuilder::RegisterMentions(const kb::EncyclopediaDump& dump,
                                        const taxonomy::Taxonomy& taxonomy,
                                        taxonomy::ApiService* service) {
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    const taxonomy::NodeId id = taxonomy.Find(page.name);
    if (id != taxonomy::kInvalidNode) {
      service->RegisterMention(page.mention, id);
      for (const std::string& alias : page.aliases) {
        service->RegisterMention(alias, id);
      }
    }
  }
}

taxonomy::ApiService::MentionIndex CnProbaseBuilder::BuildMentionIndex(
    const kb::EncyclopediaDump& dump, const taxonomy::Taxonomy& taxonomy) {
  taxonomy::ApiService::MentionIndex index;
  auto add = [&index](const std::string& mention, taxonomy::NodeId id) {
    std::vector<taxonomy::NodeId>& candidates = index[mention];
    if (std::find(candidates.begin(), candidates.end(), id) ==
        candidates.end()) {
      candidates.push_back(id);
    }
  };
  for (const kb::EncyclopediaPage& page : dump.pages()) {
    const taxonomy::NodeId id = taxonomy.Find(page.name);
    if (id != taxonomy::kInvalidNode) {
      add(page.mention, id);
      for (const std::string& alias : page.aliases) add(alias, id);
    }
  }
  return index;
}

}  // namespace cnpb::core
