#include "core/incremental.h"

#include <unordered_set>

#include "generation/direct_extraction.h"
#include "generation/predicate_discovery.h"
#include "generation/separation.h"
#include "util/timer.h"
#include "verification/pipeline.h"

namespace cnpb::core {

namespace {

std::string PairKey(const std::string& hypo, const std::string& hyper) {
  std::string key = hypo;
  key.push_back('\x01');
  key.append(hyper);
  return key;
}

kb::EncyclopediaDump CopyPages(const kb::EncyclopediaDump& source,
                               size_t first_page) {
  kb::EncyclopediaDump out;
  for (size_t i = first_page; i < source.size(); ++i) {
    kb::EncyclopediaPage page = source.page(i);
    page.page_id = 0;
    out.AddPage(std::move(page));
  }
  return out;
}

}  // namespace

IncrementalUpdater::IncrementalUpdater(
    const kb::EncyclopediaDump& base, const text::Lexicon* lexicon,
    const std::vector<std::vector<std::string>>& corpus,
    const CnProbaseBuilder::Config& config)
    : config_(config),
      lexicon_(lexicon),
      dump_(CopyPages(base, 0)),
      corpus_(corpus),
      segmenter_(lexicon),
      neural_(config.neural) {
  for (const auto& sentence : corpus_) ngrams_.AddSentence(sentence);

  // One-time expensive preparation on the base dump: bracket prior, CopyNet
  // training, predicate selection.
  generation::BracketExtractor extractor(&segmenter_, &ngrams_);
  const generation::CandidateList prior = extractor.Extract(dump_);
  neural_.BuildDataset(dump_, prior, segmenter_);
  base_report_.neural_stats = neural_.Train();
  generation::PredicateDiscovery discovery(config_.predicates);
  base_report_.discovery = discovery.Discover(dump_, prior);
  selected_predicates_ = base_report_.discovery.selected;

  // Base build (reuses what was just prepared).
  generation::CandidateList abstract_candidates =
      neural_.ExtractAll(dump_, segmenter_);
  generation::CandidateList infobox_candidates =
      generation::PredicateDiscovery::Extract(dump_, selected_predicates_);
  generation::CandidateList tag_candidates =
      generation::ExtractFromTags(dump_);
  generation::CandidateList bracket = prior;
  for (auto& c : bracket) c.score = config_.bracket_prior;
  for (auto& c : infobox_candidates) c.score = config_.infobox_prior;
  for (auto& c : tag_candidates) c.score = config_.tag_prior;
  for (auto& c : abstract_candidates) c.score = config_.abstract_prior;
  base_report_.bracket_candidates = bracket.size();
  base_report_.abstract_candidates = abstract_candidates.size();
  base_report_.infobox_candidates = infobox_candidates.size();
  base_report_.tag_candidates = tag_candidates.size();

  generation::CandidateList merged = generation::MergeCandidates(
      {&bracket, &infobox_candidates, &tag_candidates, &abstract_candidates});
  base_report_.merged_candidates = merged.size();

  generation::CandidateList verified;
  if (config_.enable_verification) {
    verification::VerificationPipeline pipeline(&dump_, lexicon_,
                                                config_.verification);
    for (const auto& sentence : corpus_) pipeline.AddCorpusSentence(sentence);
    verified = pipeline.Verify(merged, &base_report_.verification);
  } else {
    verified = std::move(merged);
  }
  taxonomy_ = CnProbaseBuilder::Materialise(verified);
}

generation::CandidateList IncrementalUpdater::ExtractFrom(size_t first_page) {
  const kb::EncyclopediaDump delta = CopyPages(dump_, first_page);
  generation::BracketExtractor extractor(&segmenter_, &ngrams_);
  generation::CandidateList bracket = extractor.Extract(delta);
  generation::CandidateList abstract_candidates =
      neural_.ExtractAll(delta, segmenter_);
  generation::CandidateList infobox_candidates =
      generation::PredicateDiscovery::Extract(delta, selected_predicates_);
  generation::CandidateList tag_candidates =
      generation::ExtractFromTags(delta);
  for (auto& c : bracket) c.score = config_.bracket_prior;
  for (auto& c : infobox_candidates) c.score = config_.infobox_prior;
  for (auto& c : tag_candidates) c.score = config_.tag_prior;
  for (auto& c : abstract_candidates) c.score = config_.abstract_prior;
  return generation::MergeCandidates(
      {&bracket, &infobox_candidates, &tag_candidates, &abstract_candidates});
}

IncrementalUpdater::BatchReport IncrementalUpdater::ApplyBatch(
    const std::vector<kb::EncyclopediaPage>& pages,
    const std::vector<std::vector<std::string>>& new_corpus) {
  BatchReport report;
  util::WallTimer timer;

  const size_t first_new = dump_.size();
  for (const kb::EncyclopediaPage& page : pages) {
    if (dump_.FindByName(page.name) != nullptr) continue;  // already known
    kb::EncyclopediaPage copy = page;
    copy.page_id = 0;
    dump_.AddPage(std::move(copy));
    ++report.pages_added;
  }
  for (const auto& sentence : new_corpus) {
    ngrams_.AddSentence(sentence);
    corpus_.push_back(sentence);
  }
  if (report.pages_added == 0) {
    report.seconds = timer.ElapsedSeconds();
    return report;
  }

  const generation::CandidateList fresh = ExtractFrom(first_new);
  report.candidates = fresh.size();

  // Existing relations join the pool so the verification statistics (NER s2,
  // concept hyponym sets, attribute distributions) see the whole taxonomy —
  // and so accumulating evidence can also revoke old relations.
  generation::CandidateList pool;
  pool.reserve(taxonomy_.num_edges() + fresh.size());
  taxonomy_.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    generation::Candidate candidate;
    candidate.hypo = taxonomy_.Name(edge.hypo);
    candidate.hyper = taxonomy_.Name(edge.hyper);
    candidate.source = edge.source;
    candidate.score = edge.score;
    pool.push_back(std::move(candidate));
  });
  std::unordered_set<std::string> existing;
  existing.reserve(pool.size());
  for (const auto& candidate : pool) {
    existing.insert(PairKey(candidate.hypo, candidate.hyper));
  }
  for (const auto& candidate : fresh) {
    if (existing.count(PairKey(candidate.hypo, candidate.hyper)) == 0) {
      pool.push_back(candidate);
    }
  }

  generation::CandidateList verified;
  if (config_.enable_verification) {
    verification::VerificationPipeline pipeline(&dump_, lexicon_,
                                                config_.verification);
    for (const auto& sentence : corpus_) pipeline.AddCorpusSentence(sentence);
    verified = pipeline.Verify(pool, nullptr);
  } else {
    verified = std::move(pool);
  }
  const size_t before = taxonomy_.num_edges();
  taxonomy_ = CnProbaseBuilder::Materialise(verified);
  const size_t after = taxonomy_.num_edges();
  report.accepted = after > before ? after - before : 0;
  report.rejected = report.candidates > report.accepted
                        ? report.candidates - report.accepted
                        : 0;
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace cnpb::core
