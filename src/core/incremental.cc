#include "core/incremental.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "generation/direct_extraction.h"
#include "generation/predicate_discovery.h"
#include "generation/separation.h"
#include "obs/metrics.h"
#include "taxonomy/api_service.h"
#include "taxonomy/serialize.h"
#include "taxonomy/snapshot.h"
#include "util/retry.h"
#include "util/timer.h"

namespace cnpb::core {

namespace {

std::string PairKey(const std::string& hypo, const std::string& hyper) {
  std::string key = hypo;
  key.push_back('\x01');
  key.append(hyper);
  return key;
}

// Copies pages [first_page, source.size()) preserving their page ids (ids of
// zero are auto-assigned by AddPage).
kb::EncyclopediaDump CopyPages(const kb::EncyclopediaDump& source,
                               size_t first_page) {
  kb::EncyclopediaDump out;
  for (size_t i = first_page; i < source.size(); ++i) {
    out.AddPage(source.page(i));
  }
  return out;
}

}  // namespace

IncrementalUpdater::IncrementalUpdater(
    const kb::EncyclopediaDump& base, const text::Lexicon* lexicon,
    const std::vector<std::vector<std::string>>& corpus,
    const CnProbaseBuilder::Config& config)
    : config_(config),
      lexicon_(lexicon),
      dump_(CopyPages(base, 0)),
      segmenter_(lexicon),
      neural_(config.neural) {
  util::WallTimer base_timer;
  // Batch pages get fresh ids continuing after the base dump's maximum, so
  // ids stay unique across the union.
  for (const kb::EncyclopediaPage& page : dump_.pages()) {
    next_page_id_ = std::max(next_page_id_, page.page_id + 1);
  }
  for (const auto& sentence : corpus) ngrams_.AddSentence(sentence);

  // One-time expensive preparation on the base dump: bracket prior, CopyNet
  // training, predicate selection.
  generation::BracketExtractor extractor(&segmenter_, &ngrams_);
  const generation::CandidateList prior = extractor.Extract(dump_);
  neural_.BuildDataset(dump_, prior, segmenter_);
  base_report_.neural_stats = neural_.Train();
  generation::PredicateDiscovery discovery(config_.predicates);
  base_report_.discovery = discovery.Discover(dump_, prior);
  selected_predicates_ = base_report_.discovery.selected;

  // Base build (reuses what was just prepared).
  generation::CandidateList abstract_candidates =
      neural_.ExtractAll(dump_, segmenter_);
  generation::CandidateList infobox_candidates =
      generation::PredicateDiscovery::Extract(dump_, selected_predicates_);
  generation::CandidateList tag_candidates =
      generation::ExtractFromTags(dump_);
  generation::CandidateList bracket = prior;
  for (auto& c : bracket) c.score = config_.bracket_prior;
  for (auto& c : infobox_candidates) c.score = config_.infobox_prior;
  for (auto& c : tag_candidates) c.score = config_.tag_prior;
  for (auto& c : abstract_candidates) c.score = config_.abstract_prior;
  base_report_.bracket_candidates = bracket.size();
  base_report_.abstract_candidates = abstract_candidates.size();
  base_report_.infobox_candidates = infobox_candidates.size();
  base_report_.tag_candidates = tag_candidates.size();

  generation::CandidateList merged = generation::MergeCandidates(
      {&bracket, &infobox_candidates, &tag_candidates, &abstract_candidates});
  base_report_.merged_candidates = merged.size();

  generation::CandidateList verified;
  if (config_.enable_verification) {
    // Constructed once, over the base dump; batches fold their deltas in via
    // AddPage/AddCorpusSentence instead of rebuilding from scratch.
    pipeline_ = std::make_unique<verification::VerificationPipeline>(
        &dump_, lexicon_, config_.verification);
    for (const auto& sentence : corpus) pipeline_->AddCorpusSentence(sentence);
    verified = pipeline_->Verify(merged, &base_report_.verification);
  } else {
    verified = std::move(merged);
  }
  taxonomy_ =
      taxonomy::Taxonomy::Freeze(CnProbaseBuilder::Materialise(verified));
  generation_ = 1;
  obs::MetricsRegistry::Global()
      .gauge("incremental.base_build_seconds")
      ->Set(base_timer.ElapsedSeconds());
}

generation::CandidateList IncrementalUpdater::ExtractFrom(size_t first_page) {
  const kb::EncyclopediaDump delta = CopyPages(dump_, first_page);
  generation::BracketExtractor extractor(&segmenter_, &ngrams_);
  generation::CandidateList bracket = extractor.Extract(delta);
  generation::CandidateList abstract_candidates =
      neural_.ExtractAll(delta, segmenter_);
  generation::CandidateList infobox_candidates =
      generation::PredicateDiscovery::Extract(delta, selected_predicates_);
  generation::CandidateList tag_candidates =
      generation::ExtractFromTags(delta);
  for (auto& c : bracket) c.score = config_.bracket_prior;
  for (auto& c : infobox_candidates) c.score = config_.infobox_prior;
  for (auto& c : tag_candidates) c.score = config_.tag_prior;
  for (auto& c : abstract_candidates) c.score = config_.abstract_prior;
  return generation::MergeCandidates(
      {&bracket, &infobox_candidates, &tag_candidates, &abstract_candidates});
}

IncrementalUpdater::BatchReport IncrementalUpdater::ApplyBatch(
    const std::vector<kb::EncyclopediaPage>& pages,
    const std::vector<std::vector<std::string>>& new_corpus) {
  BatchReport report;
  util::WallTimer timer;

  const size_t first_new = dump_.size();
  for (const kb::EncyclopediaPage& page : pages) {
    if (dump_.FindByName(page.name) != nullptr) continue;  // already known
    kb::EncyclopediaPage copy = page;
    copy.page_id = next_page_id_++;
    dump_.AddPage(std::move(copy));
    if (pipeline_ != nullptr) pipeline_->AddPage(dump_.page(dump_.size() - 1));
    ++report.pages_added;
  }
  for (const auto& sentence : new_corpus) {
    ngrams_.AddSentence(sentence);
    if (pipeline_ != nullptr) pipeline_->AddCorpusSentence(sentence);
  }
  if (report.pages_added == 0) {
    report.seconds = timer.ElapsedSeconds();
    return report;
  }

  const generation::CandidateList fresh = ExtractFrom(first_new);
  report.candidates = fresh.size();

  // Existing relations join the pool so the verification statistics (NER s2,
  // concept hyponym sets, attribute distributions) see the whole taxonomy —
  // and so accumulating evidence can also revoke old relations.
  generation::CandidateList pool;
  pool.reserve(taxonomy_->num_edges() + fresh.size());
  std::unordered_set<std::string> existing;
  existing.reserve(taxonomy_->num_edges());
  taxonomy_->ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    generation::Candidate candidate;
    candidate.hypo = taxonomy_->Name(edge.hypo);
    candidate.hyper = taxonomy_->Name(edge.hyper);
    candidate.source = edge.source;
    candidate.score = edge.score;
    existing.insert(PairKey(candidate.hypo, candidate.hyper));
    pool.push_back(std::move(candidate));
  });
  // Fresh pairs not already in the taxonomy: the batch's genuinely new
  // proposals, tracked so acceptance can be read off the final edge set.
  std::unordered_set<std::string> proposed;
  proposed.reserve(fresh.size());
  for (const auto& candidate : fresh) {
    std::string key = PairKey(candidate.hypo, candidate.hyper);
    if (existing.count(key) > 0) continue;
    if (proposed.insert(std::move(key)).second) pool.push_back(candidate);
  }

  generation::CandidateList verified;
  if (pipeline_ != nullptr) {
    verified = pipeline_->Verify(pool, nullptr);
  } else {
    verified = std::move(pool);
  }
  // Materialise the next version off to the side, then swap the frozen
  // snapshot; readers holding the old snapshot() are unaffected.
  taxonomy::Taxonomy next = CnProbaseBuilder::Materialise(verified);
  std::unordered_set<std::string> after;
  after.reserve(next.num_edges());
  next.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    after.insert(PairKey(next.Name(edge.hypo), next.Name(edge.hyper)));
  });
  // Accounting from the actual edge sets: a proposed pair either made it in
  // (accepted) or was vetoed (rejected); an existing pair that vanished was
  // revoked — the three are distinct outcomes, not one clamped difference.
  for (const std::string& key : proposed) {
    if (after.count(key) > 0) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
  }
  for (const std::string& key : existing) {
    if (after.count(key) == 0) ++report.revoked;
  }
  taxonomy_ = taxonomy::Taxonomy::Freeze(std::move(next));
  ++generation_;
  report.seconds = timer.ElapsedSeconds();

  // Batch accounting: counters accumulate over the updater's lifetime;
  // revocations feed the verification outcome triple (verify.candidates.*)
  // because the revoke decision is made here, against the previous taxonomy.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.counter("incremental.batches")->Increment();
  metrics.counter("incremental.pages_added")->Increment(report.pages_added);
  metrics.counter("incremental.candidates")->Increment(report.candidates);
  metrics.counter("incremental.accepted")->Increment(report.accepted);
  metrics.counter("incremental.rejected")->Increment(report.rejected);
  metrics.counter("incremental.revoked")->Increment(report.revoked);
  metrics.counter("verify.candidates.revoked")->Increment(report.revoked);
  metrics.gauge("incremental.last_batch_seconds")->Set(report.seconds);
  metrics.histogram("incremental.batch_seconds")->Observe(report.seconds);
  return report;
}

uint64_t IncrementalUpdater::Publish(taxonomy::ApiService* service) const {
  return service->Publish(
      taxonomy_, CnProbaseBuilder::BuildMentionIndex(dump_, *taxonomy_));
}

util::Status IncrementalUpdater::SaveSnapshot(
    const std::string& path, uint64_t* persisted_generation) const {
  // Capture which generation these bytes are before any IO: a caller that
  // records the save in a durable cursor must attribute the file to the
  // snapshot actually written, not to a later generation() read.
  const uint64_t generation = generation_;
  // The snapshot save sits on the update path of a long-running system, so a
  // transient IO hiccup (or injected taxonomy.save.* fault) should not lose
  // the generation — retry with backoff; the atomic write guarantees the
  // previous file survives every failed attempt.
  const util::RetryResult result = util::RetryWithBackoff(
      util::RetryOptions{},
      [&] { return taxonomy::SaveTaxonomyDurable(*taxonomy_, path); });
  if (result.attempts > 1) {
    obs::MetricsRegistry::Global()
        .counter("incremental.snapshot_retries")
        ->Increment(result.attempts - 1);
  }
  if (result.status.ok() && persisted_generation != nullptr) {
    *persisted_generation = generation;
  }
  return result.status;
}

util::Status IncrementalUpdater::SaveBinarySnapshot(
    const std::string& path, uint64_t* persisted_generation) const {
  const uint64_t generation = generation_;
  const util::RetryResult result =
      util::RetryWithBackoff(util::RetryOptions{}, [&] {
        return taxonomy::WriteSnapshot(
            *taxonomy_,
            CnProbaseBuilder::BuildMentionIndex(dump_, *taxonomy_), path);
      });
  if (result.attempts > 1) {
    obs::MetricsRegistry::Global()
        .counter("incremental.snapshot_retries")
        ->Increment(result.attempts - 1);
  }
  if (result.status.ok() && persisted_generation != nullptr) {
    *persisted_generation = generation;
  }
  return result.status;
}

}  // namespace cnpb::core
