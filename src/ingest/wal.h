#ifndef CNPROBASE_INGEST_WAL_H_
#define CNPROBASE_INGEST_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kb/page.h"
#include "util/status.h"

namespace cnpb::ingest {

// Write-ahead log for continuous ingestion (DESIGN.md §13).
//
// The live-feed daemon must never lose an acknowledged page upsert and never
// apply one twice across a crash. The WAL is the durability half of that
// contract: every operation is appended as a length-prefixed, CRC-32C-sealed
// record to an append-only segment file and only acknowledged once an fsync
// covers it (group commit — one fsync amortises every record staged since
// the last). Segments rotate at a size threshold; sealed segments are
// immutable and become the unit of compaction and pruning.
//
// On-disk layout of a WAL directory:
//
//   wal-<first_lsn, %020u>.log      append-only record segments
//   wal.cursor                      durable commit cursor (atomic TSV + CRC)
//   checkpoint-<lsn>.pages.tsv      compaction checkpoint: applied pages
//   checkpoint-<lsn>.snap           compaction checkpoint: binary taxonomy
//
// Segment format: a 16-byte header ("CNPBWAL1" magic + u64 first_lsn),
// then records. Record wire format (little-endian):
//
//   u32 payload_len
//   u32 crc32c          over [lsn, op, priority, reserved, payload]
//   u64 lsn             monotonically increasing, never reused
//   u8  op              1 = upsert, 2 = delete
//   u8  priority        0 = most urgent (scheduling hint, not ordering)
//   u16 reserved        must be zero
//   payload             op-specific bytes
//
// Recovery semantics: replay scans segments in LSN order, skipping whole
// segments fully covered by the commit cursor (bounded replay — the
// compaction acceptance criterion), and validates every record's CRC. An
// invalid record in a *sealed* segment is corruption (kDataLoss). An
// invalid record in the *last* segment is a torn tail: the crash interrupted
// an un-fsynced append, so replay ends cleanly there — acknowledged records
// always precede the tear, because acknowledgement requires the fsync that
// would have sealed those bytes. WalWriter::Open truncates the tear off the
// last segment before opening a fresh one, so demoting that segment to
// sealed never turns a tolerated tear into sealed-segment corruption on a
// later boot.

enum class WalOp : uint8_t {
  kUpsert = 1,  // payload = EncodePageUpsert(page)
  kDelete = 2,  // payload = disambiguated entity name (tombstone)
};

struct WalRecord {
  uint64_t lsn = 0;
  WalOp op = WalOp::kUpsert;
  uint8_t priority = 1;  // 0 = most urgent; scheduler key, not a guarantee
  std::string payload;
};

// Page payload codec: length-prefixed binary fields (page_id excluded — the
// updater assigns fresh ids at apply time). Decode is fully bounds-checked
// and fails with kDataLoss rather than reading past the payload; the record
// CRC makes that path unreachable short of an encoder bug.
std::string EncodePageUpsert(const kb::EncyclopediaPage& page);
util::Result<kb::EncyclopediaPage> DecodePageUpsert(std::string_view payload);

// One record in wire format (header + payload), ready to append.
std::string EncodeWalRecord(const WalRecord& record);

struct WalSegmentInfo {
  std::string path;
  uint64_t first_lsn = 0;
};

// Creates `dir` if it does not exist (one level; parents must exist).
util::Status EnsureDir(const std::string& dir);

// WAL segments under `dir`, sorted by first_lsn. Missing directory is an
// IoError; a directory with no segments is an empty (OK) result.
util::Result<std::vector<WalSegmentInfo>> ListWalSegments(
    const std::string& dir);

struct WalOptions {
  // Rotate to a new segment once the active one reaches this size.
  size_t segment_bytes = 4u << 20;
  // Records larger than this are rejected at append and treated as framing
  // garbage at replay (a bound against interpreting a torn length prefix as
  // a multi-gigabyte allocation).
  size_t max_record_bytes = 16u << 20;
  // Fault points: <prefix>.append, <prefix>.write, <prefix>.fsync,
  // <prefix>.rotate.
  std::string fault_prefix = "wal";
};

// Appender. Not thread-safe — the IngestDaemon serialises access and layers
// group commit on top (many submitters, one fsync). Opening truncates any
// torn tail off the previous last segment (so demoting it to sealed never
// manufactures sealed-segment corruption) and then starts a fresh segment
// at next_lsn, so a recovered process never appends after a tear.
class WalWriter {
 public:
  static util::Result<std::unique_ptr<WalWriter>> Open(
      const std::string& dir, const WalOptions& options = {});
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Buffers one record in memory and returns its LSN. Nothing touches the
  // file until Sync(), so a failed physical write can never strand partial
  // bytes between records; durable only after Sync().
  util::Result<uint64_t> Append(WalOp op, uint8_t priority,
                                std::string_view payload);

  // Group-commit barrier: writes and fsyncs everything appended so far,
  // then rotates the segment if it is over size. A failed rotation degrades
  // (the oversized segment keeps absorbing appends, retried next Sync). A
  // failed write or fsync fails the commit — nothing staged since the last
  // successful Sync may be acknowledged — and poisons the active segment:
  // it is closed and truncated back to its synced prefix, and the
  // still-buffered records are rewritten into a fresh segment by the next
  // Sync, so an acked record never sits behind a torn one.
  util::Status Sync();

  uint64_t next_lsn() const { return next_lsn_; }
  // Highest LSN guaranteed durable (advanced by successful Sync()).
  uint64_t durable_lsn() const { return durable_lsn_; }
  size_t active_segment_bytes() const { return active_bytes_; }
  uint64_t rotations() const { return rotations_; }

  // Test hook: die the way SIGKILL does. Closes the underlying descriptor
  // out from under stdio so bytes appended since the last flush are
  // discarded instead of being flushed by the destructor — a graceful
  // fclose would make every append look durable and hide torn-tail states
  // from the chaos tests. The writer is unusable afterwards.
  void SimulateCrash();

 private:
  WalWriter(std::string dir, WalOptions options);

  util::Status OpenSegment(uint64_t first_lsn);
  util::Status CloseSegment();
  // Retires the active segment after a failed write/fsync: discards stdio
  // state, records the synced prefix to cut back to, and attempts the cut.
  void PoisonActiveSegment();
  // Truncates a poisoned segment to its synced prefix (retried by Sync
  // until it lands — no new segment may take writes while a tear remains).
  util::Status HealPoisonedSegment();

  std::string dir_;
  WalOptions options_;
  void* file_ = nullptr;    // FILE*
  std::string active_path_; // path of the active segment
  std::string pending_buf_; // encoded records appended since the last Sync
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  uint64_t last_appended_lsn_ = 0;
  size_t active_bytes_ = 0;  // synced bytes in the active segment
  uint64_t rotations_ = 0;
  bool rotate_pending_ = false;
  bool poisoned_ = false;         // a failed write left a segment to heal
  std::string poisoned_path_;
  uint64_t poisoned_keep_bytes_ = 0;
};

struct WalReplayReport {
  uint64_t records_delivered = 0;
  // Records read but suppressed because lsn <= after_lsn (redelivery across
  // a segment that also holds newer records).
  uint64_t records_skipped = 0;
  size_t segments_total = 0;
  // Segments actually read. Bounded replay shows up here: after compaction
  // this stays the post-cursor suffix, not the whole log.
  size_t segments_scanned = 0;
  bool torn_tail = false;
  uint64_t torn_bytes = 0;  // bytes discarded at the tear
  uint64_t max_lsn = 0;     // highest LSN delivered or skipped
};

// Replays records with lsn > after_lsn in LSN order. `fn` returning an
// error aborts the replay with that status. See the header comment for the
// sealed-vs-last-segment corruption contract.
util::Status ReplayWal(
    const std::string& dir, uint64_t after_lsn,
    const std::function<util::Status(const WalRecord&)>& fn,
    WalReplayReport* report = nullptr,
    size_t max_record_bytes = WalOptions{}.max_record_bytes);

// Durable commit cursor. `applied_lsn` is the exactly-once boundary: every
// record with lsn <= applied_lsn has its effect captured by the referenced
// checkpoint files, so recovery must never re-deliver them; everything
// above is replayed. The cursor only ever advances together with the
// checkpoint that covers it (written checkpoint -> snapshot -> cursor, in
// that order), so a crash at any point leaves a coherent older triple.
struct IngestCursor {
  uint64_t applied_lsn = 0;
  uint64_t generation = 0;        // taxonomy generation in the snapshot
  std::string checkpoint_file;    // pages TSV, relative to the WAL dir
  std::string snapshot_file;      // binary taxonomy snapshot, relative
};

// Atomic checksummed write (+ directory fsync) of `dir`/wal.cursor.
// Fault points: wal.cursor.{write,fsync,rename,dirsync}.
util::Status SaveCursor(const std::string& dir, const IngestCursor& cursor);

// kNotFound when no cursor exists (a fresh log — replay everything, which
// is correct because pruning only ever happens after a cursor commit);
// kDataLoss when the file exists but fails verification — recovery must
// refuse to guess a replay boundary from a corrupt cursor.
util::Result<IngestCursor> LoadCursor(const std::string& dir);

// Deletes sealed segments whose every record is covered by `cursor_lsn`
// (the active/last segment always survives), then fsyncs the directory.
// Fires compact.prune once per pruned segment. Returns segments removed.
util::Result<size_t> PruneWalSegments(const std::string& dir,
                                      uint64_t cursor_lsn);

// Deletes checkpoint-<lsn>.* files whose lsn differs from `keep_lsn`
// (failed compaction attempts leave orphans; the next success sweeps them).
// Returns files removed.
size_t PruneStaleCheckpoints(const std::string& dir, uint64_t keep_lsn);

}  // namespace cnpb::ingest

#endif  // CNPROBASE_INGEST_WAL_H_
