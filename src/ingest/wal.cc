#include "ingest/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/strings.h"
#include "util/tsv.h"

#ifndef _WIN32
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace cnpb::ingest {

namespace {

constexpr char kSegmentMagic[8] = {'C', 'N', 'P', 'B', 'W', 'A', 'L', '1'};
constexpr size_t kSegmentHeaderBytes = 16;
constexpr size_t kRecordHeaderBytes = 20;
constexpr char kCursorName[] = "wal.cursor";

// Explicit little-endian serialisation (the documented wire format): a
// memcpy of the native representation would silently write a different,
// non-portable format on a big-endian host.
void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

// Appends one length-prefixed string field.
void PutField(std::string* out, std::string_view field) {
  PutU32(out, static_cast<uint32_t>(field.size()));
  out->append(field);
}

// Bounds-checked cursor over a payload being decoded.
struct PayloadReader {
  std::string_view data;
  size_t pos = 0;

  bool ReadU32(uint32_t* v) {
    if (data.size() - pos < 4) return false;
    *v = GetU32(data.data() + pos);
    pos += 4;
    return true;
  }
  bool ReadField(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (data.size() - pos < len) return false;
    out->assign(data.data() + pos, len);
    pos += len;
    return true;
  }
};

std::string SegmentName(uint64_t first_lsn) {
  return util::StrFormat("wal-%020llu.log",
                         static_cast<unsigned long long>(first_lsn));
}

// Parses "wal-<20 digits>.log" -> first_lsn; false for anything else.
bool ParseSegmentName(std::string_view name, uint64_t* first_lsn) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() != kPrefix.size() + 20 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 20; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *first_lsn = value;
  return true;
}

// Shrinks `path` to `new_size` bytes and fsyncs it. Used to cut a torn
// tail (or a poisoned write) back to the last fully-valid record so the
// segment stays scannable once it is no longer the last one.
util::Status TruncateFile(const std::string& path, uint64_t new_size) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return util::IoError("cannot open wal segment for truncate: " + path);
  }
  const bool ok = ::ftruncate(fd, static_cast<off_t>(new_size)) == 0 &&
                  ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return util::IoError("cannot truncate wal segment: " + path);
#else
  (void)path;
  (void)new_size;
#endif
  return util::Status::Ok();
}

// Scans one segment file, delivering records with lsn > after_lsn to `fn`
// (null fn = count only). `is_last` selects the torn-tail contract: an
// invalid record in the last segment ends the scan cleanly; in a sealed
// segment it is kDataLoss.
util::Status ScanSegment(const WalSegmentInfo& segment, bool is_last,
                         size_t max_record_bytes, uint64_t after_lsn,
                         const std::function<util::Status(const WalRecord&)>* fn,
                         WalReplayReport* report) {
  auto content = util::ReadFileToString(segment.path);
  if (!content.ok()) return content.status();
  const std::string& buf = *content;

  auto invalid = [&](size_t offset, const char* what) -> util::Status {
    if (is_last) {
      // Torn tail: a crash interrupted an un-fsynced append. Everything
      // before the tear was delivered; the rest is discarded.
      report->torn_tail = true;
      report->torn_bytes = buf.size() - offset;
      return util::Status::Ok();
    }
    return util::DataLossError(util::StrFormat(
        "wal segment corrupt (%s at offset %zu): %s", what, offset,
        segment.path.c_str()));
  };

  if (buf.size() < kSegmentHeaderBytes ||
      std::memcmp(buf.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return invalid(0, "bad segment header");
  }
  const uint64_t header_first_lsn = GetU64(buf.data() + 8);
  if (header_first_lsn != segment.first_lsn) {
    // The name is part of the ordering contract; a mismatch means the file
    // was tampered with or mis-copied, which is corruption in any segment.
    return util::DataLossError("wal segment header/name lsn mismatch: " +
                               segment.path);
  }

  size_t offset = kSegmentHeaderBytes;
  uint64_t prev_lsn = segment.first_lsn == 0 ? 0 : segment.first_lsn - 1;
  while (offset < buf.size()) {
    if (buf.size() - offset < kRecordHeaderBytes) {
      return invalid(offset, "truncated record header");
    }
    const char* header = buf.data() + offset;
    const uint32_t payload_len = GetU32(header);
    if (payload_len > max_record_bytes) {
      return invalid(offset, "oversized payload length");
    }
    if (buf.size() - offset - kRecordHeaderBytes < payload_len) {
      return invalid(offset, "truncated record payload");
    }
    const uint32_t stored_crc = GetU32(header + 4);
    const uint32_t actual_crc = util::Crc32c(
        std::string_view(header + 8, kRecordHeaderBytes - 8 + payload_len));
    if (stored_crc != actual_crc) {
      return invalid(offset, "record crc mismatch");
    }
    const uint64_t lsn = GetU64(header + 8);
    const uint8_t op = static_cast<uint8_t>(header[16]);
    const uint8_t priority = static_cast<uint8_t>(header[17]);
    const uint16_t reserved = static_cast<uint16_t>(
        static_cast<uint8_t>(header[18]) |
        (static_cast<uint16_t>(static_cast<uint8_t>(header[19])) << 8));
    if (reserved != 0 ||
        (op != static_cast<uint8_t>(WalOp::kUpsert) &&
         op != static_cast<uint8_t>(WalOp::kDelete)) ||
        lsn <= prev_lsn) {
      return invalid(offset, "malformed record");
    }
    prev_lsn = lsn;
    report->max_lsn = std::max(report->max_lsn, lsn);
    if (lsn <= after_lsn) {
      ++report->records_skipped;
    } else {
      ++report->records_delivered;
      if (fn != nullptr) {
        WalRecord record;
        record.lsn = lsn;
        record.op = static_cast<WalOp>(op);
        record.priority = priority;
        record.payload.assign(header + kRecordHeaderBytes, payload_len);
        CNPB_RETURN_IF_ERROR((*fn)(record));
      }
    }
    offset += kRecordHeaderBytes + payload_len;
  }
  return util::Status::Ok();
}

}  // namespace

std::string EncodePageUpsert(const kb::EncyclopediaPage& page) {
  std::string out;
  PutField(&out, page.name);
  PutField(&out, page.mention);
  PutField(&out, page.bracket);
  PutField(&out, page.abstract);
  PutU32(&out, static_cast<uint32_t>(page.infobox.size()));
  for (const kb::SpoTriple& triple : page.infobox) {
    PutField(&out, triple.predicate);
    PutField(&out, triple.object);
  }
  PutU32(&out, static_cast<uint32_t>(page.tags.size()));
  for (const std::string& tag : page.tags) PutField(&out, tag);
  PutU32(&out, static_cast<uint32_t>(page.aliases.size()));
  for (const std::string& alias : page.aliases) PutField(&out, alias);
  return out;
}

util::Result<kb::EncyclopediaPage> DecodePageUpsert(std::string_view payload) {
  PayloadReader reader{payload};
  kb::EncyclopediaPage page;
  auto fail = [] {
    return util::DataLossError("wal upsert payload truncated");
  };
  if (!reader.ReadField(&page.name) || !reader.ReadField(&page.mention) ||
      !reader.ReadField(&page.bracket) || !reader.ReadField(&page.abstract)) {
    return fail();
  }
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return fail();
  page.infobox.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    kb::SpoTriple triple;
    triple.subject = page.name;
    if (!reader.ReadField(&triple.predicate) ||
        !reader.ReadField(&triple.object)) {
      return fail();
    }
    page.infobox.push_back(std::move(triple));
  }
  if (!reader.ReadU32(&count)) return fail();
  page.tags.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string tag;
    if (!reader.ReadField(&tag)) return fail();
    page.tags.push_back(std::move(tag));
  }
  if (!reader.ReadU32(&count)) return fail();
  page.aliases.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string alias;
    if (!reader.ReadField(&alias)) return fail();
    page.aliases.push_back(std::move(alias));
  }
  if (reader.pos != payload.size()) {
    return util::DataLossError("wal upsert payload has trailing bytes");
  }
  return page;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string body;  // the CRC-covered bytes: lsn, op, priority, reserved,
                     // payload
  PutU64(&body, record.lsn);
  body.push_back(static_cast<char>(record.op));
  body.push_back(static_cast<char>(record.priority));
  body.push_back('\0');
  body.push_back('\0');
  body.append(record.payload);

  std::string out;
  out.reserve(kRecordHeaderBytes + record.payload.size());
  PutU32(&out, static_cast<uint32_t>(record.payload.size()));
  PutU32(&out, util::Crc32c(body));
  out.append(body);
  return out;
}

util::Status EnsureDir(const std::string& dir) {
#ifndef _WIN32
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return util::IoError("cannot create directory: " + dir);
  }
#endif
  return util::Status::Ok();
}

util::Result<std::vector<WalSegmentInfo>> ListWalSegments(
    const std::string& dir) {
  std::vector<WalSegmentInfo> segments;
#ifndef _WIN32
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return util::IoError("cannot open wal directory: " + dir);
  }
  while (struct dirent* entry = ::readdir(d)) {
    uint64_t first_lsn = 0;
    if (!ParseSegmentName(entry->d_name, &first_lsn)) continue;
    segments.push_back({dir + "/" + entry->d_name, first_lsn});
  }
  ::closedir(d);
#endif
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

WalWriter::WalWriter(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

util::Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& dir, const WalOptions& options) {
  CNPB_RETURN_IF_ERROR(EnsureDir(dir));
  auto segments = ListWalSegments(dir);
  if (!segments.ok()) return segments.status();

  // The highest durable LSN lives in the last segment; earlier segments are
  // bounded above by their successor's first_lsn. Tolerate a torn tail —
  // those bytes were never acknowledged and the fresh segment strands them.
  uint64_t next_lsn = 1;
  if (!segments->empty()) {
    const WalSegmentInfo& last = segments->back();
    next_lsn = std::max<uint64_t>(1, last.first_lsn);
    WalReplayReport scan;
    const util::Status status = ScanSegment(
        last, /*is_last=*/true, options.max_record_bytes,
        /*after_lsn=*/UINT64_MAX, /*fn=*/nullptr, &scan);
    if (!status.ok()) return status;
    next_lsn = std::max(next_lsn, scan.max_lsn + 1);
    if (scan.torn_tail && scan.torn_bytes > 0) {
      // Cut the tear before the fresh segment below demotes this one to
      // sealed: a tear holds no acknowledged record, but sealed-segment
      // scans treat the same bytes as corruption, so leaving it in place
      // turns a second crash before compaction into a permanent kDataLoss
      // boot loop. After the cut the segment is all-valid records.
#ifndef _WIN32
      struct stat st;
      if (::stat(last.path.c_str(), &st) != 0) {
        return util::IoError("cannot stat torn wal segment: " + last.path);
      }
      const uint64_t size = static_cast<uint64_t>(st.st_size);
      const uint64_t keep = size >= scan.torn_bytes ? size - scan.torn_bytes : 0;
      CNPB_RETURN_IF_ERROR(TruncateFile(last.path, keep));
#endif
    }
  }

  std::unique_ptr<WalWriter> writer(new WalWriter(dir, options));
  writer->next_lsn_ = next_lsn;
  writer->durable_lsn_ = next_lsn - 1;
  writer->last_appended_lsn_ = next_lsn - 1;
  CNPB_RETURN_IF_ERROR(writer->OpenSegment(next_lsn));
  return writer;
}

util::Status WalWriter::OpenSegment(uint64_t first_lsn) {
  // A fresh segment per process start: never append after a (possibly torn)
  // tail. Reopening the same first_lsn truncates a record-free leftover
  // from a crashed start — it cannot hold acknowledged records, else
  // next_lsn would be past it.
  const std::string path = dir_ + "/" + SegmentName(first_lsn);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return util::IoError("cannot open wal segment: " + path);
  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  PutU64(&header, first_lsn);
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  ok = ok && std::fflush(f) == 0;
#ifndef _WIN32
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  if (!ok) {
    std::fclose(f);
    std::remove(path.c_str());
    return util::IoError("cannot initialise wal segment: " + path);
  }
  // The segment must exist durably before any record in it is acked.
  if (const util::Status dirsync = util::SyncDir(dir_); !dirsync.ok()) {
    std::fclose(f);
    return dirsync;
  }
  file_ = f;
  active_path_ = path;
  active_bytes_ = header.size();
  rotate_pending_ = false;
  return util::Status::Ok();
}

void WalWriter::PoisonActiveSegment() {
  if (file_ == nullptr) return;
  FILE* f = static_cast<FILE*>(file_);
  file_ = nullptr;
#ifndef _WIN32
  // Discard whatever stdio still buffers (the same /dev/null trick as
  // SimulateCrash): after a short write nothing past the synced prefix can
  // be trusted, and flushing more garbage behind the tear is exactly the
  // failure mode being contained.
  const int null_fd = ::open("/dev/null", O_WRONLY);
  if (null_fd >= 0) {
    ::dup2(null_fd, ::fileno(f));
    ::close(null_fd);
  }
#endif
  std::fclose(f);
  poisoned_ = true;
  poisoned_path_ = active_path_;
  poisoned_keep_bytes_ = active_bytes_;
  obs::MetricsRegistry::Global()
      .counter("ingest.wal.segments_poisoned")
      ->Increment();
  (void)HealPoisonedSegment();  // best effort now; retried at the next Sync
}

util::Status WalWriter::HealPoisonedSegment() {
  if (!poisoned_) return util::Status::Ok();
  // Every byte at or below the keep mark was covered by a successful fsync;
  // everything past it is a (possibly partial) record from the failed
  // write. Cutting back to the mark restores the invariant that a segment
  // holds only whole, valid records — so it can be sealed safely while the
  // still-buffered records move to a fresh segment.
  CNPB_RETURN_IF_ERROR(TruncateFile(poisoned_path_, poisoned_keep_bytes_));
  poisoned_ = false;
  return util::Status::Ok();
}

util::Status WalWriter::CloseSegment() {
  if (file_ == nullptr) return util::Status::Ok();
  FILE* f = static_cast<FILE*>(file_);
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    return util::IoError("wal segment close failed");
  }
  return util::Status::Ok();
}

util::Result<uint64_t> WalWriter::Append(WalOp op, uint8_t priority,
                                         std::string_view payload) {
  CNPB_RETURN_IF_ERROR(util::CheckFault(options_.fault_prefix + ".append"));
  if (payload.size() > options_.max_record_bytes) {
    return util::InvalidArgumentError("wal record payload too large");
  }
  // Records stage in memory and reach the file only inside Sync(): writing
  // eagerly here would mean a short write (ENOSPC/EIO) leaves partial
  // record bytes mid-segment while later appends keep landing after the
  // tear — and a later successful fsync would then ack records that replay
  // can never reach past the CRC-invalid gap.
  WalRecord record;
  record.lsn = next_lsn_;
  record.op = op;
  record.priority = priority;
  record.payload.assign(payload);
  const std::string wire = EncodeWalRecord(record);
  pending_buf_.append(wire);
  last_appended_lsn_ = next_lsn_;
  ++next_lsn_;
  obs::MetricsRegistry::Global().counter("ingest.wal.records")->Increment();
  obs::MetricsRegistry::Global()
      .counter("ingest.wal.bytes")
      ->Increment(wire.size());
  return record.lsn;
}

util::Status WalWriter::Sync() {
  // A poisoned segment must be healed (cut back to its synced prefix)
  // before any new segment takes writes: sealing a tear behind fresh acked
  // records is the one state recovery cannot repair.
  CNPB_RETURN_IF_ERROR(HealPoisonedSegment());
  if (pending_buf_.empty() && file_ == nullptr && !rotate_pending_) {
    return util::Status::Ok();  // nothing staged, nothing open
  }
  if (file_ == nullptr) {
    // A poisoned or failed-rotation state left no active segment. The
    // fresh segment starts at the first unsynced LSN so the still-buffered
    // records land in a segment whose header names them.
    CNPB_RETURN_IF_ERROR(OpenSegment(durable_lsn_ + 1));
  }
  FILE* f = static_cast<FILE*>(file_);
  if (!pending_buf_.empty()) {
    const util::Status write_fault =
        util::CheckFault(options_.fault_prefix + ".write");
    if (!write_fault.ok()) {
      PoisonActiveSegment();
      return write_fault;
    }
    if (std::fwrite(pending_buf_.data(), 1, pending_buf_.size(), f) !=
            pending_buf_.size() ||
        std::fflush(f) != 0) {
      PoisonActiveSegment();
      return util::IoError("wal write failed");
    }
  } else if (std::fflush(f) != 0) {
    return util::IoError("wal flush failed");
  }
  const util::Status fsync_fault =
      util::CheckFault(options_.fault_prefix + ".fsync");
  if (!fsync_fault.ok()) {
    // Bytes from this commit reached the fd but are not durable; their
    // state after a real EIO is unknowable, so retire the segment and let
    // the retry rewrite them cleanly.
    if (!pending_buf_.empty()) PoisonActiveSegment();
    return fsync_fault;
  }
#ifndef _WIN32
  if (::fsync(::fileno(f)) != 0) {
    if (!pending_buf_.empty()) PoisonActiveSegment();
    return util::IoError("wal fsync failed");
  }
#endif
  active_bytes_ += pending_buf_.size();
  pending_buf_.clear();
  durable_lsn_ = last_appended_lsn_;
  obs::MetricsRegistry::Global().counter("ingest.wal.fsyncs")->Increment();

  if (active_bytes_ >= options_.segment_bytes || rotate_pending_) {
    // Rotation failure degrades: the oversized segment keeps absorbing
    // appends (correctness does not depend on segment size) and the next
    // Sync retries. Only act once the fault check passes, so a failed
    // rotation never leaves the writer without an active segment while
    // records are staged.
    const util::Status rotate_fault =
        util::CheckFault(options_.fault_prefix + ".rotate");
    if (!rotate_fault.ok()) {
      rotate_pending_ = true;
      obs::MetricsRegistry::Global()
          .counter("ingest.wal.rotate_failures")
          ->Increment();
      return util::Status::Ok();
    }
    CNPB_RETURN_IF_ERROR(CloseSegment());
    CNPB_RETURN_IF_ERROR(OpenSegment(next_lsn_));
    ++rotations_;
    obs::MetricsRegistry::Global().counter("ingest.wal.rotations")->Increment();
  }
  return util::Status::Ok();
}

void WalWriter::SimulateCrash() {
  pending_buf_.clear();  // un-synced records die with the process
  if (file_ == nullptr) return;
  FILE* f = static_cast<FILE*>(file_);
  file_ = nullptr;
#ifndef _WIN32
  // Point the fd at /dev/null before fclose: the flush stdio insists on
  // lands in the bit bucket, so un-synced appends vanish exactly as they
  // would under SIGKILL (closing the fd outright would race fd reuse).
  const int null_fd = ::open("/dev/null", O_WRONLY);
  if (null_fd >= 0) {
    ::dup2(null_fd, ::fileno(f));
    ::close(null_fd);
  }
#endif
  std::fclose(f);
}

util::Status ReplayWal(const std::string& dir, uint64_t after_lsn,
                       const std::function<util::Status(const WalRecord&)>& fn,
                       WalReplayReport* report, size_t max_record_bytes) {
  WalReplayReport local;
  WalReplayReport* out = report != nullptr ? report : &local;
  *out = WalReplayReport{};
  auto segments = ListWalSegments(dir);
  if (!segments.ok()) return segments.status();
  out->segments_total = segments->size();
  for (size_t i = 0; i < segments->size(); ++i) {
    const bool is_last = i + 1 == segments->size();
    if (!is_last && (*segments)[i + 1].first_lsn <= after_lsn + 1) {
      // Every record in this segment is < the successor's first_lsn, hence
      // <= after_lsn: fully covered by the cursor. Skipping the read is
      // what keeps recovery bounded by compaction.
      continue;
    }
    ++out->segments_scanned;
    CNPB_RETURN_IF_ERROR(ScanSegment((*segments)[i], is_last,
                                     max_record_bytes, after_lsn, &fn, out));
  }
  return util::Status::Ok();
}

util::Status SaveCursor(const std::string& dir, const IngestCursor& cursor) {
  util::TsvWriter writer(dir + "/" + kCursorName,
                         {.checksum_footer = true,
                          .fault_prefix = "wal.cursor"});
  CNPB_RETURN_IF_ERROR(writer.status());
  writer.WriteRow({std::to_string(cursor.applied_lsn),
                   std::to_string(cursor.generation), cursor.checkpoint_file,
                   cursor.snapshot_file});
  return writer.Close();
}

util::Result<IngestCursor> LoadCursor(const std::string& dir) {
  const std::string path = dir + "/" + kCursorName;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return util::NotFoundError("no wal cursor: " + path);
    std::fclose(f);
  }
  auto data = util::ReadTsvFileData(path);
  if (!data.ok()) return data.status();
  // A cursor is always written with a footer; one without is not "legacy",
  // it is a file we cannot trust to bound the replay.
  if (!data->checksummed) {
    return util::DataLossError("wal cursor missing checksum footer: " + path);
  }
  if (data->rows.size() != 1 || data->rows[0].size() != 4) {
    return util::DataLossError("wal cursor malformed: " + path);
  }
  IngestCursor cursor;
  if (!util::ParseUint64(data->rows[0][0], &cursor.applied_lsn) ||
      !util::ParseUint64(data->rows[0][1], &cursor.generation)) {
    return util::DataLossError("wal cursor malformed: " + path);
  }
  cursor.checkpoint_file = data->rows[0][2];
  cursor.snapshot_file = data->rows[0][3];
  return cursor;
}

util::Result<size_t> PruneWalSegments(const std::string& dir,
                                      uint64_t cursor_lsn) {
  auto segments = ListWalSegments(dir);
  if (!segments.ok()) return segments.status();
  size_t removed = 0;
  for (size_t i = 0; i + 1 < segments->size(); ++i) {
    // Segment i is fully covered iff its successor starts at or below
    // cursor_lsn + 1 (records in i are all < that first_lsn).
    if ((*segments)[i + 1].first_lsn > cursor_lsn + 1) break;
    CNPB_RETURN_IF_ERROR(util::CheckFault("compact.prune"));
    if (std::remove((*segments)[i].path.c_str()) != 0) {
      return util::IoError("cannot prune wal segment: " + (*segments)[i].path);
    }
    ++removed;
  }
  if (removed > 0) {
    CNPB_RETURN_IF_ERROR(util::SyncDir(dir));
    obs::MetricsRegistry::Global()
        .counter("ingest.wal.segments_pruned")
        ->Increment(removed);
  }
  return removed;
}

size_t PruneStaleCheckpoints(const std::string& dir, uint64_t keep_lsn) {
  size_t removed = 0;
#ifndef _WIN32
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::vector<std::string> stale;
  constexpr std::string_view kPrefix = "checkpoint-";
  while (struct dirent* entry = ::readdir(d)) {
    const std::string_view name = entry->d_name;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    const size_t dot = name.find('.', kPrefix.size());
    if (dot == std::string_view::npos) continue;
    uint64_t lsn = 0;
    if (!util::ParseUint64(name.substr(kPrefix.size(), dot - kPrefix.size()),
                           &lsn)) {
      continue;
    }
    if (lsn != keep_lsn) stale.push_back(dir + "/" + std::string(name));
  }
  ::closedir(d);
  for (const std::string& path : stale) {
    if (std::remove(path.c_str()) == 0) ++removed;
  }
  if (removed > 0) (void)util::SyncDir(dir);
#else
  (void)dir;
  (void)keep_lsn;
#endif
  return removed;
}

}  // namespace cnpb::ingest
