#ifndef CNPROBASE_INGEST_DAEMON_H_
#define CNPROBASE_INGEST_DAEMON_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "ingest/wal.h"
#include "kb/page.h"
#include "obs/metrics.h"
#include "taxonomy/api_service.h"
#include "util/status.h"

namespace cnpb::ingest {

// Crash-safe continuous ingestion (DESIGN.md §13).
//
// The daemon turns the one-shot IncrementalUpdater into a long-running
// streaming service with a durability contract:
//
//   ack      A Submit* call returning OK means the operation is fsynced in
//            the WAL. Group commit: concurrent submitters share one fsync.
//   apply    A worker thread drains acknowledged operations into
//            IncrementalUpdater batches, most-urgent priority first (FIFO
//            by LSN within a priority).
//   publish  Applied batches reach the ApiService on a bounded-lag cadence:
//            as soon as >= publish_min_pages are applied-but-unpublished,
//            or the oldest unpublished page is >= publish_max_delay old.
//            Readers keep serving pinned versions throughout.
//   compact  Periodically the applied state is checkpointed (pages TSV +
//            binary taxonomy snapshot) and the commit cursor advanced, so
//            recovery replays only the WAL suffix past the cursor and old
//            segments can be pruned.
//
// Exactly-once across crashes: the cursor only advances together with a
// checkpoint that captures every effect at or below it, and recovery
// re-applies the checkpoint pages then replays the suffix. Replayed
// operations that were already applied (the window between apply and the
// next checkpoint) no-op through the updater's name dedup, so a crash at
// any fault point (wal.*, ingest.*, compact.*, or a hard kill) loses no
// acknowledged operation and double-applies none.
//
// Delete semantics are best-effort tombstones: a delete cancels same-name
// upserts that are still queued behind it (lower LSN, not yet applied) and
// is recorded durably, but it cannot retract a page already materialised
// into the taxonomy — the updater has no page-removal operation. Recovery
// replays the same suppression rule over the whole post-checkpoint suffix,
// which is deliberately *stronger* than what the live run may have done:
// whether a live upsert escaped its delete depends on scheduler timing
// that is not recorded anywhere durable, so replay cannot reconstruct it
// and instead resolves every such race in the delete's favour. The one
// documented divergence window: a page upserted then deleted inside the
// uncheckpointed suffix may have been served before the crash (the upsert
// won the live race) yet be absent after recovery — recovery retroactively
// honors the delete. The reverse never happens: a page without a
// higher-LSN same-name delete is never suppressed, and acked upserts are
// otherwise never lost.
class IngestDaemon {
 public:
  struct Options {
    // Directory holding WAL segments, the cursor, and checkpoints.
    std::string wal_dir;
    // Publish cadence: whichever bound trips first.
    size_t publish_min_pages = 32;
    std::chrono::milliseconds publish_max_delay{200};
    // Max pages the worker folds into one ApplyBatch call.
    size_t batch_max_pages = 64;
    // Checkpoint + prune after this many operations applied since the last
    // successful compaction. 0 disables automatic compaction (CompactNow()
    // still works).
    uint64_t compact_every_records = 512;
    // Delay between worker retries after a failed apply/publish (fault or
    // real IO error) — exponential growth is overkill here because the
    // worker also wakes for every new submission.
    std::chrono::milliseconds retry_delay{10};
    WalOptions wal;
  };

  enum class StopMode {
    // Finish everything: sync staged records, apply and publish every
    // pending operation, write a final checkpoint, then join the worker.
    kDrain,
    // Simulated crash for chaos tests: join the worker wherever it is and
    // drop un-synced WAL bytes (WalWriter::SimulateCrash). No cursor write,
    // no drain — recovery must reconstruct from disk alone.
    kAbort,
  };

  struct Stats {
    uint64_t submitted = 0;      // Submit* calls accepted into the WAL
    uint64_t acked = 0;          // submissions covered by an fsync (OK acks)
    uint64_t applied = 0;        // operations folded into the taxonomy
    uint64_t batches = 0;        // ApplyBatch calls
    uint64_t publishes = 0;      // versions pushed to the ApiService
    uint64_t compactions = 0;    // successful checkpoints
    uint64_t tombstoned = 0;     // pending upserts cancelled by deletes
    uint64_t next_lsn = 0;
    uint64_t durable_lsn = 0;
    uint64_t cursor_lsn = 0;     // durable commit cursor (last compaction)
    uint64_t resolved_lsn = 0;   // contiguous applied boundary (cursor bound)
    uint64_t generation = 0;     // updater generation
    uint64_t served_version = 0; // ApiService version (0 when no service)
    size_t pending = 0;          // acked, not yet applied
    size_t unpublished_pages = 0;
    bool draining = false;
  };

  // `updater` must be positioned at the checkpoint base state (typically
  // freshly built over the base dump); Start() layers checkpoint and WAL
  // recovery on top. `service` may be null (no serving — apply only).
  // Neither is owned; both must outlive the daemon.
  IngestDaemon(core::IncrementalUpdater* updater,
               taxonomy::ApiService* service, Options options);
  ~IngestDaemon();  // Stop(kDrain) if still running

  IngestDaemon(const IngestDaemon&) = delete;
  IngestDaemon& operator=(const IngestDaemon&) = delete;

  // Recovers (cursor -> checkpoint pages -> WAL suffix replay), opens a
  // fresh WAL segment, publishes the recovered state, and starts the
  // worker. Returns kDataLoss for corrupt sealed segments / cursor — the
  // operator must intervene rather than serve silently incomplete data.
  util::Status Start();

  // What recovery did (valid after a successful Start()).
  const WalReplayReport& recovery_report() const { return recovery_; }

  // Durably enqueues one page upsert / one delete-by-name. Returns the
  // record's LSN once it is fsynced (the ack); an error means the caller
  // must retry — the operation may or may not survive a crash, and a retry
  // is safe because apply dedups by name. Thread-safe; concurrent callers
  // share fsyncs. priority 0 is most urgent.
  util::Result<uint64_t> Submit(const kb::EncyclopediaPage& page,
                                uint8_t priority = 1);
  util::Result<uint64_t> SubmitDelete(const std::string& name,
                                      uint8_t priority = 1);
  // Appends every page, then acks them under a single fsync. Returns the
  // last LSN.
  util::Result<uint64_t> SubmitBatch(
      const std::vector<kb::EncyclopediaPage>& pages, uint8_t priority = 1);

  // Blocks until everything acked so far is applied and published (or
  // `timeout` elapses — kDeadlineExceeded). Testing / drain aid.
  util::Status Flush(std::chrono::milliseconds timeout =
                         std::chrono::milliseconds(60000));

  // Runs a checkpoint + prune on the caller's thread at the current
  // resolved boundary. Also what the worker calls on cadence.
  util::Status CompactNow();

  util::Status Stop(StopMode mode);
  bool running() const { return running_; }

  Stats stats() const;
  // Folds daemon state into gauges (ingest.pending, ingest.resolved_lsn,
  // ...) right before a registry export.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct PendingOp {
    uint64_t lsn = 0;
    uint8_t priority = 1;
    WalOp op = WalOp::kUpsert;
    kb::EncyclopediaPage page;  // upserts
    std::string name;           // deletes
    std::chrono::steady_clock::time_point acked_at;
  };

  // Appends one record under mu_ and stages it (no fsync).
  util::Result<uint64_t> AppendLocked(WalOp op, uint8_t priority,
                                      std::string_view payload,
                                      PendingOp staged);
  // Group-commit barrier: returns once durable_lsn >= lsn (possibly via a
  // concurrent caller's fsync). Moves newly durable staged ops to pending.
  util::Status CommitThrough(uint64_t lsn);
  void PromoteStagedLocked();  // staged (lsn <= durable) -> pending

  void WorkerLoop();
  // One worker step under `lk` (mu_): apply a batch, publish, or compact.
  // Returns true if it did (or retried) work, false if there was nothing
  // actionable. Drops the lock around updater calls.
  bool WorkerStepLocked(std::unique_lock<std::mutex>& lk);
  // Checkpoint + cursor + prune at `floor_lsn`. Caller holds updater_mu_
  // and must NOT hold mu_ (except during the single-threaded drain path).
  util::Status CompactAt(uint64_t floor_lsn);

  uint64_t ResolvedLsnLocked() const;

  core::IncrementalUpdater* const updater_;
  taxonomy::ApiService* const service_;
  const Options options_;

  // mu_ guards the WAL writer, staged/pending queues, and all cursor
  // bookkeeping. updater_mu_ serialises every IncrementalUpdater call
  // (worker apply/publish vs. external CompactNow). Lock order: mu_ may be
  // taken before updater_mu_, never the reverse; the worker holds neither
  // across the other.
  mutable std::mutex mu_;
  std::mutex updater_mu_;
  std::condition_variable work_cv_;   // worker wakeups
  std::condition_variable ack_cv_;    // CommitThrough / Flush waiters
  std::unique_ptr<WalWriter> wal_;
  std::deque<PendingOp> staged_;      // appended, not yet durable
  // Durable, not yet applied; keyed for the scheduler. The map is the
  // priority queue: iteration order == (priority, lsn).
  std::map<std::pair<uint8_t, uint64_t>, PendingOp> pending_;

  IngestCursor cursor_;               // last durable checkpoint
  uint64_t enqueued_floor_ = 0;       // every lsn <= this left staged_
  // Smallest LSN popped into the batch currently being applied (UINT64_MAX
  // when none): pins the resolved boundary while apply runs outside mu_.
  uint64_t inflight_min_lsn_ = UINT64_MAX;
  size_t base_pages_ = 0;             // dump size before any daemon apply
  uint64_t generation_cache_ = 0;     // updater generation, readable under mu_
  uint64_t applied_since_compact_ = 0;
  size_t unpublished_pages_ = 0;
  std::chrono::steady_clock::time_point oldest_unpublished_;
  std::vector<std::chrono::steady_clock::time_point> unpublished_acks_;

  std::thread worker_;
  bool running_ = false;
  bool draining_ = false;
  bool abort_ = false;

  WalReplayReport recovery_;

  // Counters (registry handles cached once; see obs/metrics.h).
  obs::Counter* const submitted_ctr_;
  obs::Counter* const acked_ctr_;
  obs::Counter* const applied_ctr_;
  obs::Counter* const batches_ctr_;
  obs::Counter* const publishes_ctr_;
  obs::Counter* const compactions_ctr_;
  obs::Counter* const tombstoned_ctr_;
  obs::Counter* const apply_retries_ctr_;
  obs::Counter* const publish_retries_ctr_;
  obs::BucketHistogram* const publish_lag_;
  obs::BucketHistogram* const commit_seconds_;

  uint64_t submitted_ = 0, acked_ = 0, applied_ = 0, batches_ = 0,
           publishes_ = 0, compactions_ = 0, tombstoned_ = 0;
};

}  // namespace cnpb::ingest

#endif  // CNPROBASE_INGEST_DAEMON_H_
