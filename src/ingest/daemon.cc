#include "ingest/daemon.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "kb/dump.h"
#include "util/fault_injection.h"

namespace cnpb::ingest {

namespace {

using Clock = std::chrono::steady_clock;

std::string CheckpointPagesName(uint64_t lsn) {
  return "checkpoint-" + std::to_string(lsn) + ".pages.tsv";
}
std::string CheckpointSnapName(uint64_t lsn) {
  return "checkpoint-" + std::to_string(lsn) + ".snap";
}

obs::MetricsRegistry& Registry() { return obs::MetricsRegistry::Global(); }

}  // namespace

IngestDaemon::IngestDaemon(core::IncrementalUpdater* updater,
                           taxonomy::ApiService* service, Options options)
    : updater_(updater),
      service_(service),
      options_(std::move(options)),
      submitted_ctr_(Registry().counter("ingest.submitted")),
      acked_ctr_(Registry().counter("ingest.acked")),
      applied_ctr_(Registry().counter("ingest.applied")),
      batches_ctr_(Registry().counter("ingest.batches")),
      publishes_ctr_(Registry().counter("ingest.publishes")),
      compactions_ctr_(Registry().counter("ingest.compactions")),
      tombstoned_ctr_(Registry().counter("ingest.tombstoned")),
      apply_retries_ctr_(Registry().counter("ingest.apply.retries")),
      publish_retries_ctr_(Registry().counter("ingest.publish.retries")),
      publish_lag_(Registry().histogram("ingest.publish.lag_seconds")),
      commit_seconds_(Registry().histogram("ingest.commit_seconds")) {
  // The page count of the pristine base build: everything past this index
  // was applied through the daemon (checkpoint restore, replay, or live)
  // and belongs in the next checkpoint.
  base_pages_ = updater_->dump().size();
}

IngestDaemon::~IngestDaemon() {
  if (running_) (void)Stop(StopMode::kDrain);
}

util::Status IngestDaemon::Start() {
  if (running_) return util::FailedPreconditionError("ingest daemon running");
  CNPB_RETURN_IF_ERROR(EnsureDir(options_.wal_dir));

  // 1. Durable cursor: the exactly-once boundary. Absent = fresh log.
  auto cursor = LoadCursor(options_.wal_dir);
  if (cursor.ok()) {
    cursor_ = *cursor;
  } else if (cursor.status().code() == util::StatusCode::kNotFound) {
    cursor_ = IngestCursor{};
  } else {
    return cursor.status();  // corrupt cursor: refuse to guess the boundary
  }

  // 2. Checkpoint pages: every page applied at or below the cursor,
  // re-applied as one batch. Name dedup makes this idempotent against the
  // base dump; fresh page ids are reassigned, which no downstream state
  // depends on across restarts.
  if (!cursor_.checkpoint_file.empty()) {
    auto checkpoint =
        kb::EncyclopediaDump::Load(options_.wal_dir + "/" +
                                   cursor_.checkpoint_file);
    if (!checkpoint.ok()) {
      return util::DataLossError(
          "ingest checkpoint unreadable (" + cursor_.checkpoint_file +
          "): " + checkpoint.status().message());
    }
    if (checkpoint->size() > 0) updater_->ApplyBatch(checkpoint->pages());
  }

  // 3. Collect the WAL suffix BEFORE opening the writer: Open() creates a
  // fresh segment, which would demote the current last segment to "sealed"
  // and turn its (legitimate) torn tail into kDataLoss.
  std::vector<WalRecord> suffix;
  CNPB_RETURN_IF_ERROR(ReplayWal(
      options_.wal_dir, cursor_.applied_lsn,
      [&suffix](const WalRecord& record) {
        suffix.push_back(record);
        return util::Status::Ok();
      },
      &recovery_, options_.wal.max_record_bytes));

  auto wal = WalWriter::Open(options_.wal_dir, options_.wal);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);

  // 4. Apply the suffix. Two-pass tombstones: a delete suppresses every
  // same-name upsert ordered before it. This is deliberately stronger than
  // the live rule (which only cancels upserts still queued when the delete
  // arrives — an applied page is untouchable): whether a given suffix
  // upsert beat its delete to the scheduler pre-crash is not recorded
  // anywhere durable, so replay resolves the race in the delete's favour.
  // A page served pre-crash may therefore be absent after recovery — the
  // documented divergence window (see the class comment / DESIGN.md §13).
  std::unordered_map<std::string, uint64_t> deletes;  // name -> max lsn
  for (const WalRecord& record : suffix) {
    if (record.op == WalOp::kDelete) {
      uint64_t& lsn = deletes[record.payload];
      lsn = std::max(lsn, record.lsn);
    }
  }
  std::vector<kb::EncyclopediaPage> batch;
  batch.reserve(options_.batch_max_pages);
  auto flush_batch = [&] {
    if (batch.empty()) return;
    updater_->ApplyBatch(batch);
    ++batches_;
    batches_ctr_->Increment();
    batch.clear();
  };
  for (const WalRecord& record : suffix) {
    if (record.op == WalOp::kUpsert) {
      auto page = DecodePageUpsert(record.payload);
      if (!page.ok()) return page.status();
      const auto tombstone = deletes.find(page->name);
      if (tombstone != deletes.end() && record.lsn < tombstone->second) {
        ++tombstoned_;
        tombstoned_ctr_->Increment();
        continue;
      }
      batch.push_back(std::move(*page));
      if (batch.size() >= options_.batch_max_pages) flush_batch();
    }
  }
  flush_batch();
  applied_ += suffix.size();
  applied_ctr_->Increment(suffix.size());
  applied_since_compact_ = suffix.size();

  // Every durable record is now folded in: the fresh writer's next_lsn sits
  // exactly one past the highest surviving record.
  enqueued_floor_ = wal_->next_lsn() - 1;
  inflight_min_lsn_ = UINT64_MAX;
  generation_cache_ = updater_->generation();

  // 5. Serve the recovered state before accepting traffic, so readers never
  // see a pre-recovery generation after a restart.
  if (service_ != nullptr) (void)updater_->Publish(service_);

  Registry().gauge("ingest.recovery.records_replayed")
      ->Set(static_cast<double>(recovery_.records_delivered));
  Registry().gauge("ingest.recovery.segments_scanned")
      ->Set(static_cast<double>(recovery_.segments_scanned));

  running_ = true;
  draining_ = false;
  abort_ = false;
  worker_ = std::thread([this] { WorkerLoop(); });
  return util::Status::Ok();
}

util::Result<uint64_t> IngestDaemon::AppendLocked(WalOp op, uint8_t priority,
                                                  std::string_view payload,
                                                  PendingOp staged) {
  auto lsn = wal_->Append(op, priority, payload);
  if (!lsn.ok()) return lsn.status();
  staged.lsn = *lsn;
  staged.priority = priority;
  staged.op = op;
  staged_.push_back(std::move(staged));
  ++submitted_;
  submitted_ctr_->Increment();
  return *lsn;
}

void IngestDaemon::PromoteStagedLocked() {
  const uint64_t durable = wal_->durable_lsn();
  const auto now = Clock::now();
  bool promoted = false;
  while (!staged_.empty() && staged_.front().lsn <= durable) {
    PendingOp op = std::move(staged_.front());
    staged_.pop_front();
    op.acked_at = now;
    enqueued_floor_ = op.lsn;
    ++acked_;
    acked_ctr_->Increment();
    pending_.emplace(std::make_pair(op.priority, op.lsn), std::move(op));
    promoted = true;
  }
  if (promoted) {
    work_cv_.notify_all();
    ack_cv_.notify_all();
  }
}

util::Status IngestDaemon::CommitThrough(uint64_t lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  if (wal_ == nullptr) return util::FailedPreconditionError("daemon stopped");
  if (wal_->durable_lsn() >= lsn) return util::Status::Ok();
  // Leaderless group commit: whichever submitter gets the lock first fsyncs
  // everything appended so far; later waiters find durable_lsn already past
  // their record and skip the fsync entirely.
  obs::ScopedTimer timer(commit_seconds_);
  const util::Status status = wal_->Sync();
  if (status.ok()) PromoteStagedLocked();
  return status;
}

util::Result<uint64_t> IngestDaemon::Submit(const kb::EncyclopediaPage& page,
                                            uint8_t priority) {
  util::Result<uint64_t> lsn = [&]() -> util::Result<uint64_t> {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_ || draining_) {
      return util::FailedPreconditionError("ingest daemon not accepting");
    }
    PendingOp op;
    op.page = page;
    return AppendLocked(WalOp::kUpsert, priority, EncodePageUpsert(page),
                        std::move(op));
  }();
  if (!lsn.ok()) return lsn;
  CNPB_RETURN_IF_ERROR(CommitThrough(*lsn));
  return lsn;
}

util::Result<uint64_t> IngestDaemon::SubmitDelete(const std::string& name,
                                                  uint8_t priority) {
  util::Result<uint64_t> lsn = [&]() -> util::Result<uint64_t> {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_ || draining_) {
      return util::FailedPreconditionError("ingest daemon not accepting");
    }
    PendingOp op;
    op.name = name;
    return AppendLocked(WalOp::kDelete, priority, name, std::move(op));
  }();
  if (!lsn.ok()) return lsn;
  CNPB_RETURN_IF_ERROR(CommitThrough(*lsn));
  return lsn;
}

util::Result<uint64_t> IngestDaemon::SubmitBatch(
    const std::vector<kb::EncyclopediaPage>& pages, uint8_t priority) {
  if (pages.empty()) return util::InvalidArgumentError("empty ingest batch");
  uint64_t last = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_ || draining_) {
      return util::FailedPreconditionError("ingest daemon not accepting");
    }
    for (const kb::EncyclopediaPage& page : pages) {
      PendingOp op;
      op.page = page;
      auto lsn = AppendLocked(WalOp::kUpsert, priority,
                              EncodePageUpsert(page), std::move(op));
      // Earlier appends stay staged: they were never acked, so they may or
      // may not survive — and if they do, replay applies them, which is the
      // same at-least-once contract a failed Submit has.
      if (!lsn.ok()) return lsn.status();
      last = *lsn;
    }
  }
  CNPB_RETURN_IF_ERROR(CommitThrough(last));
  return last;
}

uint64_t IngestDaemon::ResolvedLsnLocked() const {
  // The contiguous applied boundary: every LSN at or below it has been
  // resolved (applied, tombstoned, or was never durable). Pending and
  // in-flight operations pin it down; priority scheduling may apply higher
  // LSNs early, which is safe because re-delivery of an applied page
  // no-ops through name dedup.
  uint64_t floor = enqueued_floor_;
  for (const auto& [key, op] : pending_) {
    floor = std::min(floor, op.lsn - 1);
  }
  if (inflight_min_lsn_ != UINT64_MAX) {
    floor = std::min(floor, inflight_min_lsn_ - 1);
  }
  return floor;
}

void IngestDaemon::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!abort_) {
    if (WorkerStepLocked(lk)) continue;  // did work; look again immediately
    // Nothing actionable: sleep until new work or the publish deadline.
    if (unpublished_pages_ > 0) {
      work_cv_.wait_until(lk, oldest_unpublished_ + options_.publish_max_delay);
    } else {
      work_cv_.wait(lk);
    }
  }
}

bool IngestDaemon::WorkerStepLocked(std::unique_lock<std::mutex>& lk) {
  // --- apply ---------------------------------------------------------------
  if (!pending_.empty()) {
    std::vector<PendingOp> batch;
    uint64_t min_lsn = UINT64_MAX;
    size_t cancelled = 0;
    auto it = pending_.begin();
    while (it != pending_.end() && batch.size() < options_.batch_max_pages) {
      PendingOp op = std::move(it->second);
      it = pending_.erase(it);
      min_lsn = std::min(min_lsn, op.lsn);
      if (op.op == WalOp::kDelete) {
        // Tombstone: cancel not-yet-applied same-name upserts ordered
        // before the delete — both still queued and already in this batch.
        for (auto jt = pending_.begin(); jt != pending_.end();) {
          if (jt->second.op == WalOp::kUpsert && jt->second.lsn < op.lsn &&
              jt->second.page.name == op.name) {
            min_lsn = std::min(min_lsn, jt->second.lsn);
            jt = pending_.erase(jt);
            ++cancelled;
          } else {
            ++jt;
          }
        }
        const auto new_end = std::remove_if(
            batch.begin(), batch.end(), [&op](const PendingOp& b) {
              return b.op == WalOp::kUpsert && b.lsn < op.lsn &&
                     b.page.name == op.name;
            });
        cancelled += static_cast<size_t>(batch.end() - new_end);
        batch.erase(new_end, batch.end());
        it = pending_.begin();  // erasures invalidated the cursor position
      }
      batch.push_back(std::move(op));
    }
    inflight_min_lsn_ = min_lsn;
    tombstoned_ += cancelled;
    tombstoned_ctr_->Increment(cancelled);

    std::vector<kb::EncyclopediaPage> pages;
    pages.reserve(batch.size());
    for (PendingOp& op : batch) {
      if (op.op == WalOp::kUpsert) pages.push_back(op.page);
    }

    lk.unlock();
    util::Status applied = util::CheckFault("ingest.apply");
    if (applied.ok() && !pages.empty()) {
      std::lock_guard<std::mutex> ulk(updater_mu_);
      updater_->ApplyBatch(pages);
    }
    lk.lock();

    if (!applied.ok()) {
      // Put the batch back (tombstone cancellations stay cancelled — the
      // delete that caused them is in the batch and will be retried after
      // them, re-deriving nothing) and retry after a beat.
      for (PendingOp& op : batch) {
        pending_.emplace(std::make_pair(op.priority, op.lsn), std::move(op));
      }
      inflight_min_lsn_ = UINT64_MAX;
      apply_retries_ctr_->Increment();
      work_cv_.wait_for(lk, options_.retry_delay);
      return true;
    }

    const auto now = Clock::now();
    if (unpublished_pages_ == 0) oldest_unpublished_ = now;
    for (const PendingOp& op : batch) {
      if (op.op == WalOp::kUpsert) {
        ++unpublished_pages_;
        unpublished_acks_.push_back(op.acked_at);
      }
    }
    applied_ += batch.size() + cancelled;
    applied_ctr_->Increment(batch.size() + cancelled);
    applied_since_compact_ += batch.size() + cancelled;
    ++batches_;
    batches_ctr_->Increment();
    inflight_min_lsn_ = UINT64_MAX;
    // Only this thread mutates the updater while running, so the read does
    // not race; caching it lets stats() avoid updater_mu_ entirely.
    generation_cache_ = updater_->generation();
    ack_cv_.notify_all();
    return true;
  }

  // --- publish -------------------------------------------------------------
  const bool publish_due =
      unpublished_pages_ > 0 &&
      (unpublished_pages_ >= options_.publish_min_pages || draining_ ||
       Clock::now() - oldest_unpublished_ >= options_.publish_max_delay);
  if (publish_due) {
    lk.unlock();
    util::Status published = util::CheckFault("ingest.publish");
    if (published.ok() && service_ != nullptr) {
      std::lock_guard<std::mutex> ulk(updater_mu_);
      (void)updater_->Publish(service_);
    }
    lk.lock();
    if (!published.ok()) {
      publish_retries_ctr_->Increment();
      work_cv_.wait_for(lk, options_.retry_delay);
      return true;
    }
    const auto now = Clock::now();
    for (const auto& acked_at : unpublished_acks_) {
      publish_lag_->Observe(
          std::chrono::duration<double>(now - acked_at).count());
    }
    unpublished_acks_.clear();
    unpublished_pages_ = 0;
    ++publishes_;
    publishes_ctr_->Increment();
    ack_cv_.notify_all();
    return true;
  }

  // --- compact -------------------------------------------------------------
  if (options_.compact_every_records > 0 &&
      applied_since_compact_ >= options_.compact_every_records) {
    const uint64_t floor = ResolvedLsnLocked();
    lk.unlock();
    util::Status compacted;
    {
      std::lock_guard<std::mutex> ulk(updater_mu_);
      compacted = CompactAt(floor);
    }
    lk.lock();
    if (!compacted.ok()) {
      Registry().counter("ingest.compact.failures")->Increment();
      work_cv_.wait_for(lk, options_.retry_delay);
      return true;
    }
    cursor_.applied_lsn = floor;
    ++compactions_;
    compactions_ctr_->Increment();
    applied_since_compact_ = 0;
    return true;
  }

  return false;
}

util::Status IngestDaemon::CompactAt(uint64_t floor_lsn) {
  // Ordering is the crash-safety argument: pages -> snapshot -> cursor ->
  // prune. The cursor names versioned files, so a crash after any step
  // leaves the previous (cursor, checkpoint) pair fully intact; orphaned
  // checkpoint-<lsn>.* from a failed attempt are swept by the next success.
  const std::string pages_name = CheckpointPagesName(floor_lsn);
  const std::string snap_name = CheckpointSnapName(floor_lsn);

  CNPB_RETURN_IF_ERROR(util::CheckFault("compact.pages"));
  kb::EncyclopediaDump delta;
  const kb::EncyclopediaDump& dump = updater_->dump();
  for (size_t i = base_pages_; i < dump.size(); ++i) {
    delta.AddPage(dump.page(i));
  }
  CNPB_RETURN_IF_ERROR(delta.Save(options_.wal_dir + "/" + pages_name));

  CNPB_RETURN_IF_ERROR(util::CheckFault("compact.snapshot"));
  uint64_t generation = 0;
  CNPB_RETURN_IF_ERROR(updater_->SaveBinarySnapshot(
      options_.wal_dir + "/" + snap_name, &generation));

  CNPB_RETURN_IF_ERROR(util::CheckFault("compact.cursor"));
  IngestCursor cursor;
  cursor.applied_lsn = floor_lsn;
  cursor.generation = generation;
  cursor.checkpoint_file = pages_name;
  cursor.snapshot_file = snap_name;
  CNPB_RETURN_IF_ERROR(SaveCursor(options_.wal_dir, cursor));

  // Pruning is best-effort: a failure (compact.prune) leaves extra sealed
  // segments that the cursor already covers — replay skips them without
  // reading, so only disk space is at stake until the next compaction.
  auto pruned = PruneWalSegments(options_.wal_dir, floor_lsn);
  if (!pruned.ok()) {
    Registry().counter("ingest.compact.prune_failures")->Increment();
  }
  PruneStaleCheckpoints(options_.wal_dir, floor_lsn);
  return util::Status::Ok();
}

util::Status IngestDaemon::CompactNow() {
  uint64_t floor = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (wal_ == nullptr) {
      return util::FailedPreconditionError("daemon stopped");
    }
    floor = ResolvedLsnLocked();
  }
  util::Status status;
  {
    std::lock_guard<std::mutex> ulk(updater_mu_);
    status = CompactAt(floor);
  }
  if (status.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    cursor_.applied_lsn = floor;
    ++compactions_;
    compactions_ctr_->Increment();
    applied_since_compact_ = 0;
  }
  return status;
}

util::Status IngestDaemon::Flush(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (wal_ == nullptr) {
      return util::FailedPreconditionError("daemon stopped");
    }
    // Force-sync stragglers staged by failed/abandoned submissions.
    while (!staged_.empty()) {
      const util::Status status = wal_->Sync();
      if (status.ok()) {
        PromoteStagedLocked();
        break;
      }
      if (Clock::now() >= deadline) {
        return util::DeadlineExceededError("ingest flush: wal sync");
      }
      lk.unlock();
      std::this_thread::sleep_for(options_.retry_delay);
      lk.lock();
    }
    work_cv_.notify_all();
    const bool drained = ack_cv_.wait_until(lk, deadline, [this] {
      return pending_.empty() && inflight_min_lsn_ == UINT64_MAX &&
             unpublished_pages_ == 0;
    });
    if (!drained) return util::DeadlineExceededError("ingest flush");
  }
  return util::Status::Ok();
}

util::Status IngestDaemon::Stop(StopMode mode) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return util::Status::Ok();
    draining_ = true;
    if (mode == StopMode::kAbort) abort_ = true;
    work_cv_.notify_all();
  }

  if (mode == StopMode::kAbort) {
    if (worker_.joinable()) worker_.join();
    std::lock_guard<std::mutex> lk(mu_);
    // Die hard: un-synced WAL bytes are dropped, no cursor write, queues
    // discarded. Recovery must reconstruct everything from disk.
    if (wal_ != nullptr) {
      wal_->SimulateCrash();
      wal_.reset();
    }
    staged_.clear();
    pending_.clear();
    running_ = false;
    return util::Status::Ok();
  }

  // Drain: everything acked must be applied and published before exit.
  util::Status drain_status = Flush();
  {
    std::lock_guard<std::mutex> lk(mu_);
    abort_ = true;
    work_cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();

  // Final checkpoint so the next start replays (near) nothing. Best-effort:
  // a failure here loses no data, only replay time.
  if (drain_status.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    const uint64_t floor = ResolvedLsnLocked();
    std::lock_guard<std::mutex> ulk(updater_mu_);
    const util::Status compacted = CompactAt(floor);
    if (compacted.ok()) {
      cursor_.applied_lsn = floor;
      ++compactions_;
      compactions_ctr_->Increment();
      applied_since_compact_ = 0;
    } else {
      Registry().counter("ingest.compact.failures")->Increment();
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  wal_.reset();  // graceful close
  running_ = false;
  return drain_status;
}

IngestDaemon::Stats IngestDaemon::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.submitted = submitted_;
  s.acked = acked_;
  s.applied = applied_;
  s.batches = batches_;
  s.publishes = publishes_;
  s.compactions = compactions_;
  s.tombstoned = tombstoned_;
  if (wal_ != nullptr) {
    s.next_lsn = wal_->next_lsn();
    s.durable_lsn = wal_->durable_lsn();
  }
  s.cursor_lsn = cursor_.applied_lsn;
  s.resolved_lsn = ResolvedLsnLocked();
  s.generation = generation_cache_;
  s.served_version = service_ != nullptr ? service_->version() : 0;
  s.pending = pending_.size();
  s.unpublished_pages = unpublished_pages_;
  s.draining = draining_;
  return s;
}

void IngestDaemon::ExportMetrics(obs::MetricsRegistry* registry) const {
  const Stats s = stats();
  registry->gauge("ingest.pending")->Set(static_cast<double>(s.pending));
  registry->gauge("ingest.unpublished_pages")
      ->Set(static_cast<double>(s.unpublished_pages));
  registry->gauge("ingest.durable_lsn")
      ->Set(static_cast<double>(s.durable_lsn));
  registry->gauge("ingest.resolved_lsn")
      ->Set(static_cast<double>(s.resolved_lsn));
  registry->gauge("ingest.cursor_lsn")
      ->Set(static_cast<double>(s.cursor_lsn));
  registry->gauge("ingest.generation")
      ->Set(static_cast<double>(s.generation));
}

}  // namespace cnpb::ingest
