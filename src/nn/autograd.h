#ifndef CNPROBASE_NN_AUTOGRAD_H_
#define CNPROBASE_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace cnpb::nn {

// Reverse-mode autodiff over a dynamically built graph. A Var is a
// shared-ownership node holding a value, a lazily-allocated gradient, and a
// closure that pushes its gradient into its parents. Graphs are built per
// training sample and discarded after Backward().
struct Node {
  Tensor value;
  Tensor grad;              // allocated on demand, same shape as value
  bool requires_grad = false;
  bool grad_ready = false;  // grad tensor allocated & zeroed
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void()> backward_fn;  // reads this->grad, accumulates parents

  void EnsureGrad() {
    if (!grad_ready) {
      grad = Tensor::Zeros(value.rows(), value.cols());
      grad_ready = true;
    }
  }
};

using Var = std::shared_ptr<Node>;

// Creates a leaf. Parameters pass requires_grad = true; constants false.
Var MakeVar(Tensor value, bool requires_grad = false);

// Runs backpropagation from `loss` (must be a scalar, shape [1]). Gradients
// accumulate into every reachable node with requires_grad.
void Backward(const Var& loss);

// ---- ops -----------------------------------------------------------------
// All ops propagate requires_grad and register backward closures.

Var Add(const Var& a, const Var& b);             // same shape
Var Sub(const Var& a, const Var& b);             // same shape
Var Mul(const Var& a, const Var& b);             // elementwise, same shape
Var ScalarMul(const Var& a, float c);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var OneMinus(const Var& a);                      // 1 - a
Var MatVec(const Var& w, const Var& x);          // [m,n] x [n] -> [m]
Var Dot(const Var& a, const Var& b);             // [n]·[n] -> [1]
Var Concat(const Var& a, const Var& b);          // [n]+[m] -> [n+m]
Var Softmax(const Var& a);                       // [n] -> [n]
Var NegLog(const Var& a);                        // scalar -> scalar, -log(a)
Var Gather(const Var& a, int index);             // [n] -> [1]
// Sum of a[j] over the given indices (the copy-mass op): [n] -> [1].
Var GatherSum(const Var& a, const std::vector<int>& indices);
// Row `index` of matrix [V,d] -> [d]; backward scatter-adds (embeddings).
Var Row(const Var& table, int index);
// Stacks T vectors [h] into [T,h]; backward scatters rows.
Var StackRows(const std::vector<Var>& rows);
// H^T a with H [T,h], a [T] -> [h] (attention context).
Var MatTVec(const Var& h, const Var& a);

}  // namespace cnpb::nn

#endif  // CNPROBASE_NN_AUTOGRAD_H_
