#ifndef CNPROBASE_NN_SERIALIZE_H_
#define CNPROBASE_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/autograd.h"
#include "nn/vocab.h"
#include "util/status.h"

namespace cnpb::nn {

// Binary parameter persistence. The file stores, per parameter, its shape
// and raw float32 payload; loading requires an identically-shaped parameter
// list (the caller reconstructs the model architecture first, then fills
// the weights — the usual checkpoint contract).
util::Status SaveParameters(const std::vector<Var>& params,
                            const std::string& path);
util::Status LoadParameters(const std::vector<Var>& params,
                            const std::string& path);

// Vocab persistence (one word per line, TSV-escaped, reserved tokens
// included so ids are stable).
util::Status SaveVocab(const Vocab& vocab, const std::string& path);
util::Result<Vocab> LoadVocab(const std::string& path);

}  // namespace cnpb::nn

#endif  // CNPROBASE_NN_SERIALIZE_H_
