#ifndef CNPROBASE_NN_COPYNET_H_
#define CNPROBASE_NN_COPYNET_H_

#include <string>
#include <vector>

#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/vocab.h"
#include "util/rng.h"

namespace cnpb::nn {

// Encoder-decoder with attention and a copy mechanism, the model family the
// paper uses for hypernym generation from abstracts (CopyNet, Gu et al.
// 2016). At each decode step the output distribution is a gated mixture of
//   generate-mode: softmax over a small output vocabulary, and
//   copy-mode:     the attention distribution over source positions,
// so out-of-vocabulary hypernyms remain reachable by pointing at the source
// — the OOV problem the paper cites as the reason for choosing CopyNet.
//
// Architecture (dims are config):
//   encoder: input embedding + GRU over source tokens -> states h_1..h_T
//   decoder: GRU over [emb(y_prev); context_prev]
//   attention: bilinear, e_j = h_j · (W_a s_t); a = softmax(e)
//   p_gen = sigmoid(w_g [s_t; c_t]);  P = p_gen*P_vocab + (1-p_gen)*copy
class CopyNet {
 public:
  struct Config {
    int embed_dim = 32;
    int hidden_dim = 64;
    int max_decode_len = 4;
    bool use_copy = true;  // false = plain attentional seq2seq (ablation)
    uint64_t seed = 1234;
  };

  struct Example {
    std::vector<int> source_ids;            // input-vocab ids
    std::vector<std::string> source_words;  // surface forms, same length
    std::vector<std::string> target_words;  // without the implicit <eos>
  };

  // Vocabularies must outlive the model.
  CopyNet(const Vocab* input_vocab, const Vocab* output_vocab,
          const Config& config);

  // Accumulates gradients over the batch and returns the mean per-token
  // loss. The caller owns the optimizer step.
  float AccumulateBatch(const std::vector<const Example*>& batch);

  // Greedy decode; returns generated words (may include copied source words
  // that are outside the output vocabulary).
  std::vector<std::string> Generate(const std::vector<int>& source_ids,
                                    const std::vector<std::string>& source_words) const;

  std::vector<Var> Params() const;
  const Config& config() const { return config_; }

 private:
  // Runs the encoder; fills per-token states and returns the final state.
  Var Encode(const std::vector<int>& ids, std::vector<Var>* states) const;

  struct StepOutput {
    Var state;      // decoder state s_t
    Var context;    // attention context c_t [hidden]
    Var attention;  // a over source positions [T]
    Var p_gen;      // [1]
    Var p_vocab;    // [Vout]
  };
  StepOutput DecodeStep(const Var& h_matrix, const Var& prev_state,
                        const Var& prev_context, int prev_word_id) const;
  Var ZeroContext() const;

  const Vocab* input_vocab_;
  const Vocab* output_vocab_;
  Config config_;
  Embedding input_embed_;
  Embedding output_embed_;
  GruCell encoder_;
  GruCell decoder_;
  Linear attn_;       // hidden -> hidden
  Linear out_;        // 2*hidden -> |Vout|
  Linear copy_gate_;  // 2*hidden -> 1
};

}  // namespace cnpb::nn

#endif  // CNPROBASE_NN_COPYNET_H_
