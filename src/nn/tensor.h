#ifndef CNPROBASE_NN_TENSOR_H_
#define CNPROBASE_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace cnpb::nn {

// Dense float tensor, row-major, rank 1 or 2. Sized for the small CopyNet
// model (hidden dims of tens, vocab of thousands); no SIMD heroics.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(int n) : rows_(n), cols_(1), data_(n, 0.0f) {}
  Tensor(int rows, int cols) : rows_(rows), cols_(cols) {
    CNPB_CHECK(rows >= 0 && cols >= 0);
    data_.assign(static_cast<size_t>(rows) * cols, 0.0f);
  }

  static Tensor Zeros(int rows, int cols = 1) { return Tensor(rows, cols); }

  // Uniform(-scale, scale) initialisation.
  static Tensor RandomUniform(int rows, int cols, float scale,
                              util::Rng& rng) {
    Tensor t(rows, cols);
    for (float& v : t.data_) {
      v = scale * (2.0f * static_cast<float>(rng.UniformDouble()) - 1.0f);
    }
    return t;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& at(int r, int c = 0) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float at(int r, int c = 0) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) {
    for (float& x : data_) x = v;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

}  // namespace cnpb::nn

#endif  // CNPROBASE_NN_TENSOR_H_
