#include "nn/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace cnpb::nn {

Var MakeVar(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return node;
}

namespace {

// Creates a result node wired to its parents.
Var MakeOp(Tensor value, std::vector<Var> parents) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  for (const Var& p : parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  node->parents = std::move(parents);
  return node;
}

void CheckSameShape(const Var& a, const Var& b) {
  CNPB_CHECK(a->value.SameShape(b->value));
}

}  // namespace

void Backward(const Var& loss) {
  CNPB_CHECK(loss->value.size() == 1) << "Backward needs a scalar loss";
  // Topological order via iterative DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.get(), 0);
  visited.insert(loss.get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents.size()) {
      Node* parent = node->parents[next_parent].get();
      ++next_parent;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  loss->EnsureGrad();
  loss->grad[0] = 1.0f;
  // order is children-after-parents reversed; iterate from the back.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad_ready) node->backward_fn();
  }
}

Var Add(const Var& a, const Var& b) {
  CheckSameShape(a, b);
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] += b->value[i];
  Var node = MakeOp(std::move(out), {a, b});
  Node* raw = node.get();
  node->backward_fn = [raw, a, b]() {
    for (const Var& p : {a, b}) {
      if (!p->requires_grad) continue;
      p->EnsureGrad();
      for (size_t i = 0; i < raw->grad.size(); ++i) p->grad[i] += raw->grad[i];
    }
  };
  return node;
}

Var Sub(const Var& a, const Var& b) {
  CheckSameShape(a, b);
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] -= b->value[i];
  Var node = MakeOp(std::move(out), {a, b});
  Node* raw = node.get();
  node->backward_fn = [raw, a, b]() {
    if (a->requires_grad) {
      a->EnsureGrad();
      for (size_t i = 0; i < raw->grad.size(); ++i) a->grad[i] += raw->grad[i];
    }
    if (b->requires_grad) {
      b->EnsureGrad();
      for (size_t i = 0; i < raw->grad.size(); ++i) b->grad[i] -= raw->grad[i];
    }
  };
  return node;
}

Var Mul(const Var& a, const Var& b) {
  CheckSameShape(a, b);
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b->value[i];
  Var node = MakeOp(std::move(out), {a, b});
  Node* raw = node.get();
  node->backward_fn = [raw, a, b]() {
    if (a->requires_grad) {
      a->EnsureGrad();
      for (size_t i = 0; i < raw->grad.size(); ++i) {
        a->grad[i] += raw->grad[i] * b->value[i];
      }
    }
    if (b->requires_grad) {
      b->EnsureGrad();
      for (size_t i = 0; i < raw->grad.size(); ++i) {
        b->grad[i] += raw->grad[i] * a->value[i];
      }
    }
  };
  return node;
}

Var ScalarMul(const Var& a, float c) {
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= c;
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a, c]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    for (size_t i = 0; i < raw->grad.size(); ++i) {
      a->grad[i] += raw->grad[i] * c;
    }
  };
  return node;
}

Var Tanh(const Var& a) {
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    for (size_t i = 0; i < raw->grad.size(); ++i) {
      const float y = raw->value[i];
      a->grad[i] += raw->grad[i] * (1.0f - y * y);
    }
  };
  return node;
}

Var Sigmoid(const Var& a) {
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    for (size_t i = 0; i < raw->grad.size(); ++i) {
      const float y = raw->value[i];
      a->grad[i] += raw->grad[i] * y * (1.0f - y);
    }
  };
  return node;
}

Var OneMinus(const Var& a) {
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] = 1.0f - out[i];
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    for (size_t i = 0; i < raw->grad.size(); ++i) {
      a->grad[i] -= raw->grad[i];
    }
  };
  return node;
}

Var MatVec(const Var& w, const Var& x) {
  const int m = w->value.rows();
  const int n = w->value.cols();
  CNPB_CHECK(x->value.rows() == n && x->value.cols() == 1);
  Tensor out(m);
  for (int i = 0; i < m; ++i) {
    float acc = 0.0f;
    const float* row = w->value.data() + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) acc += row[j] * x->value[j];
    out[i] = acc;
  }
  Var node = MakeOp(std::move(out), {w, x});
  Node* raw = node.get();
  node->backward_fn = [raw, w, x, m, n]() {
    if (w->requires_grad) {
      w->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        const float g = raw->grad[i];
        if (g == 0.0f) continue;
        float* grow = w->grad.data() + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j) grow[j] += g * x->value[j];
      }
    }
    if (x->requires_grad) {
      x->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        const float g = raw->grad[i];
        if (g == 0.0f) continue;
        const float* row = w->value.data() + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j) x->grad[j] += g * row[j];
      }
    }
  };
  return node;
}

Var Dot(const Var& a, const Var& b) {
  CheckSameShape(a, b);
  float acc = 0.0f;
  for (size_t i = 0; i < a->value.size(); ++i) acc += a->value[i] * b->value[i];
  Tensor out(1);
  out[0] = acc;
  Var node = MakeOp(std::move(out), {a, b});
  Node* raw = node.get();
  node->backward_fn = [raw, a, b]() {
    const float g = raw->grad[0];
    if (a->requires_grad) {
      a->EnsureGrad();
      for (size_t i = 0; i < a->value.size(); ++i) {
        a->grad[i] += g * b->value[i];
      }
    }
    if (b->requires_grad) {
      b->EnsureGrad();
      for (size_t i = 0; i < b->value.size(); ++i) {
        b->grad[i] += g * a->value[i];
      }
    }
  };
  return node;
}

Var Concat(const Var& a, const Var& b) {
  CNPB_CHECK(a->value.cols() == 1 && b->value.cols() == 1);
  const int na = a->value.rows();
  const int nb = b->value.rows();
  Tensor out(na + nb);
  for (int i = 0; i < na; ++i) out[i] = a->value[i];
  for (int i = 0; i < nb; ++i) out[na + i] = b->value[i];
  Var node = MakeOp(std::move(out), {a, b});
  Node* raw = node.get();
  node->backward_fn = [raw, a, b, na, nb]() {
    if (a->requires_grad) {
      a->EnsureGrad();
      for (int i = 0; i < na; ++i) a->grad[i] += raw->grad[i];
    }
    if (b->requires_grad) {
      b->EnsureGrad();
      for (int i = 0; i < nb; ++i) b->grad[i] += raw->grad[na + i];
    }
  };
  return node;
}

Var Softmax(const Var& a) {
  const size_t n = a->value.size();
  Tensor out(a->value.rows(), a->value.cols());
  float max_val = a->value[0];
  for (size_t i = 1; i < n; ++i) max_val = std::max(max_val, a->value[i]);
  float total = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::exp(a->value[i] - max_val);
    total += out[i];
  }
  for (size_t i = 0; i < n; ++i) out[i] /= total;
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a, n]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    // dL/dx_i = y_i * (g_i - sum_j g_j y_j)
    float dot = 0.0f;
    for (size_t i = 0; i < n; ++i) dot += raw->grad[i] * raw->value[i];
    for (size_t i = 0; i < n; ++i) {
      a->grad[i] += raw->value[i] * (raw->grad[i] - dot);
    }
  };
  return node;
}

Var NegLog(const Var& a) {
  CNPB_CHECK(a->value.size() == 1);
  Tensor out(1);
  const float x = std::max(a->value[0], 1e-12f);
  out[0] = -std::log(x);
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    const float x = std::max(a->value[0], 1e-12f);
    a->grad[0] += raw->grad[0] * (-1.0f / x);
  };
  return node;
}

Var Gather(const Var& a, int index) {
  CNPB_CHECK(index >= 0 && static_cast<size_t>(index) < a->value.size());
  Tensor out(1);
  out[0] = a->value[index];
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a, index]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    a->grad[index] += raw->grad[0];
  };
  return node;
}

Var GatherSum(const Var& a, const std::vector<int>& indices) {
  Tensor out(1);
  float acc = 0.0f;
  for (int index : indices) {
    CNPB_CHECK(index >= 0 && static_cast<size_t>(index) < a->value.size());
    acc += a->value[index];
  }
  out[0] = acc;
  Var node = MakeOp(std::move(out), {a});
  Node* raw = node.get();
  node->backward_fn = [raw, a, indices]() {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    for (int index : indices) a->grad[index] += raw->grad[0];
  };
  return node;
}

Var Row(const Var& table, int index) {
  const int d = table->value.cols();
  CNPB_CHECK(index >= 0 && index < table->value.rows());
  Tensor out(d);
  const float* src = table->value.data() + static_cast<size_t>(index) * d;
  for (int j = 0; j < d; ++j) out[j] = src[j];
  Var node = MakeOp(std::move(out), {table});
  Node* raw = node.get();
  node->backward_fn = [raw, table, index, d]() {
    if (!table->requires_grad) return;
    table->EnsureGrad();
    float* dst = table->grad.data() + static_cast<size_t>(index) * d;
    for (int j = 0; j < d; ++j) dst[j] += raw->grad[j];
  };
  return node;
}

Var StackRows(const std::vector<Var>& rows) {
  CNPB_CHECK(!rows.empty());
  const int h = rows[0]->value.rows();
  const int t = static_cast<int>(rows.size());
  Tensor out(t, h);
  for (int i = 0; i < t; ++i) {
    CNPB_CHECK(rows[i]->value.rows() == h && rows[i]->value.cols() == 1);
    for (int j = 0; j < h; ++j) out.at(i, j) = rows[i]->value[j];
  }
  Var node = MakeOp(std::move(out), std::vector<Var>(rows));
  Node* raw = node.get();
  node->backward_fn = [raw, rows, t, h]() {
    for (int i = 0; i < t; ++i) {
      if (!rows[i]->requires_grad) continue;
      rows[i]->EnsureGrad();
      for (int j = 0; j < h; ++j) {
        rows[i]->grad[j] += raw->grad.at(i, j);
      }
    }
  };
  return node;
}

Var MatTVec(const Var& h, const Var& a) {
  const int t = h->value.rows();
  const int dim = h->value.cols();
  CNPB_CHECK(a->value.rows() == t && a->value.cols() == 1);
  Tensor out(dim);
  for (int i = 0; i < t; ++i) {
    const float w = a->value[i];
    if (w == 0.0f) continue;
    const float* row = h->value.data() + static_cast<size_t>(i) * dim;
    for (int j = 0; j < dim; ++j) out[j] += w * row[j];
  }
  Var node = MakeOp(std::move(out), {h, a});
  Node* raw = node.get();
  node->backward_fn = [raw, h, a, t, dim]() {
    if (h->requires_grad) {
      h->EnsureGrad();
      for (int i = 0; i < t; ++i) {
        const float w = a->value[i];
        if (w == 0.0f) continue;
        float* grow = h->grad.data() + static_cast<size_t>(i) * dim;
        for (int j = 0; j < dim; ++j) grow[j] += w * raw->grad[j];
      }
    }
    if (a->requires_grad) {
      a->EnsureGrad();
      for (int i = 0; i < t; ++i) {
        const float* row = h->value.data() + static_cast<size_t>(i) * dim;
        float acc = 0.0f;
        for (int j = 0; j < dim; ++j) acc += row[j] * raw->grad[j];
        a->grad[i] += acc;
      }
    }
  };
  return node;
}

}  // namespace cnpb::nn
