#include "nn/serialize.h"

#include <cstring>

#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::nn {

namespace {
constexpr char kMagic[8] = {'C', 'N', 'P', 'B', 'N', 'N', '0', '1'};
// Binary trailer: magic + little-endian CRC32 of everything before it. A
// truncated or bit-flipped checkpoint fails verification instead of loading
// garbage weights.
constexpr char kCrcMagic[8] = {'C', 'N', 'P', 'B', 'C', 'R', 'C', '1'};
constexpr size_t kTrailerSize = sizeof(kCrcMagic) + sizeof(uint32_t);

void AppendBytes(std::string& out, const void* data, size_t size) {
  out.append(static_cast<const char*>(data), size);
}

// In-memory cursor over the checkpoint payload.
struct ByteReader {
  const char* pos;
  const char* end;
  bool Read(void* out, size_t size) {
    if (static_cast<size_t>(end - pos) < size) return false;
    std::memcpy(out, pos, size);
    pos += size;
    return true;
  }
};

}  // namespace

util::Status SaveParameters(const std::vector<Var>& params,
                            const std::string& path) {
  std::string buffer;
  AppendBytes(buffer, kMagic, sizeof(kMagic));
  const uint32_t count = static_cast<uint32_t>(params.size());
  AppendBytes(buffer, &count, sizeof(count));
  for (const Var& p : params) {
    const int32_t rows = p->value.rows();
    const int32_t cols = p->value.cols();
    AppendBytes(buffer, &rows, sizeof(rows));
    AppendBytes(buffer, &cols, sizeof(cols));
    AppendBytes(buffer, p->value.data(), sizeof(float) * p->value.size());
  }
  const uint32_t crc = util::Crc32(buffer);
  AppendBytes(buffer, kCrcMagic, sizeof(kCrcMagic));
  AppendBytes(buffer, &crc, sizeof(crc));
  return util::WriteFileAtomic(
      path, buffer, {.checksum_footer = false, .fault_prefix = "nn.save"});
}

util::Status LoadParameters(const std::vector<Var>& params,
                            const std::string& path) {
  CNPB_RETURN_IF_ERROR(util::CheckFault("nn.load.read"));
  auto content = util::ReadFileToString(path);
  if (!content.ok()) return content.status();
  std::string_view payload(*content);
  // Verify and strip the CRC trailer when present (pre-trailer checkpoints
  // load unverified).
  if (payload.size() >= kTrailerSize &&
      std::memcmp(payload.data() + payload.size() - kTrailerSize, kCrcMagic,
                  sizeof(kCrcMagic)) == 0) {
    uint32_t stored = 0;
    std::memcpy(&stored,
                payload.data() + payload.size() - sizeof(uint32_t),
                sizeof(uint32_t));
    payload.remove_suffix(kTrailerSize);
    const uint32_t actual = util::Crc32(payload);
    if (actual != stored) {
      return util::DataLossError(util::StrFormat(
          "checkpoint crc32 mismatch (%08x vs %08x): %s", actual, stored,
          path.c_str()));
    }
  }
  ByteReader reader{payload.data(), payload.data() + payload.size()};
  char magic[sizeof(kMagic)];
  if (!reader.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::InvalidArgumentError("bad checkpoint magic: " + path);
  }
  uint32_t count = 0;
  if (!reader.Read(&count, sizeof(count)) || count != params.size()) {
    return util::InvalidArgumentError(util::StrFormat(
        "checkpoint has %u parameters, model has %zu", count, params.size()));
  }
  for (const Var& p : params) {
    int32_t rows = 0, cols = 0;
    if (!reader.Read(&rows, sizeof(rows)) ||
        !reader.Read(&cols, sizeof(cols)) || rows != p->value.rows() ||
        cols != p->value.cols()) {
      return util::InvalidArgumentError("checkpoint shape mismatch");
    }
    if (!reader.Read(p->value.data(), sizeof(float) * p->value.size())) {
      return util::IoError("truncated checkpoint: " + path);
    }
  }
  // A complete checkpoint is consumed exactly; leftover bytes mean a torn
  // trailer or foreign data appended to the file.
  if (reader.pos != reader.end) {
    return util::InvalidArgumentError("trailing bytes in checkpoint: " + path);
  }
  return util::Status::Ok();
}

util::Status SaveVocab(const Vocab& vocab, const std::string& path) {
  util::TsvWriter writer(path, {.fault_prefix = "nn.vocab.save"});
  if (!writer.status().ok()) return writer.status();
  for (int id = 0; id < vocab.size(); ++id) {
    writer.WriteRow({vocab.Word(id)});
  }
  return writer.Close();
}

util::Result<Vocab> LoadVocab(const std::string& path) {
  auto rows = util::ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  Vocab vocab;
  for (size_t i = 0; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() != 1) {
      return util::InvalidArgumentError("vocab row needs exactly 1 field");
    }
    if (i < 3) {
      // Reserved tokens must match the fixed layout.
      if (row[0] != vocab.Word(static_cast<int>(i))) {
        return util::InvalidArgumentError("vocab reserved tokens corrupted");
      }
      continue;
    }
    vocab.Add(row[0]);
  }
  return vocab;
}

}  // namespace cnpb::nn
